# Convenience entry points; CI runs scripts/check.sh.
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: lint test check baseline bench

lint:
	$(PYTHON) -m repro lint src/repro

test:
	$(PYTHON) -m pytest -x -q

# Regenerate the tracked benchmark results (docs/PERFORMANCE.md).
bench:
	$(PYTHON) -m repro bench --out BENCH_crypto.json

check:
	./scripts/check.sh

# Re-snapshot the lint baseline (then add a justifying "reason" to each
# new entry — the guard test requires one).
baseline:
	$(PYTHON) -m repro lint src/repro --write-baseline
