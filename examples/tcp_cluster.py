#!/usr/bin/env python
"""The replica stack over real TCP sockets (docs/DEPLOYMENT.md).

Every other example runs on the deterministic simulator.  This one runs
the identical protocol stack — dealer, replicas, threshold-signed
replies, Section-6 crash recovery — over the asyncio TCP transport:
keys are dealt to JSON files, four replicas each listen on a localhost
socket with HMAC-authenticated channels, and a client submits
operations over the wire.  Mid-run one replica is torn down, the
cluster keeps serving with three, and a fresh replica rejoins on the
same address and recovers the history it missed.

(`python -m repro demo-cluster` runs the same lifecycle with one OS
process per replica; here everything shares one event loop so the
example stays fast and portable.)

Run:  python examples/tcp_cluster.py
"""

import asyncio
import pathlib
import random
import tempfile

from repro.crypto import deal_system, keystore, small_group
from repro.crypto.dealer import CLIENT_BASE
from repro.net.runtime import (
    CLUSTER_FILE,
    ClusterConfig,
    ReplicaHost,
    allocate_addresses,
)
from repro.net.transport import TransportNetwork
from repro.smr.client import ServiceClient


async def submit(net, client, operation):
    nonce = client.submit(operation)
    await net.wait_until(lambda: nonce in client.completed, timeout=60)
    reply = client.completed[nonce]
    # The answer carries the service's threshold signature — no single
    # server is trusted, even over raw sockets.
    assert reply.verify(client.public, client.client_id, operation)
    print(f"  {operation!r} -> {reply.result!r}")
    return reply.result


async def main_async(directory) -> None:
    print("dealing keys for n=4, t=1 plus one client identity")
    keys = deal_system(4, random.Random(42), t=1, clients=1, group=small_group())
    keystore.write_deployment(keys, directory)
    addresses = allocate_addresses(list(range(4)) + [CLIENT_BASE])
    ClusterConfig(addresses).save(directory / CLUSTER_FILE)

    hosts = {party: ReplicaHost(directory, party) for party in range(4)}
    for host in hosts.values():
        await host.start()
    print("4 replicas listening:",
          ", ".join(f"{p}@:{hosts[p].network.listen_address[1]}" for p in hosts))

    public = keystore.load_public(directory / "public.json")
    cid, channel_keys = keystore.load_client(directory / f"client-{CLIENT_BASE}.json")
    net = TransportNetwork(cid, addresses, channel_keys)
    client = ServiceClient(cid, net, public, random.Random(7))
    net.attach(cid, client)
    net.trace.enable_byte_accounting()
    await net.start()
    try:
        print("writes with the full cluster:")
        assert await submit(net, client, ("set", "alpha", 1)) == ("ok", 1)
        assert await submit(net, client, ("set", "beta", 2)) == ("ok", 2)

        print("replica 3 goes down (connections drop mid-protocol)")
        await hosts[3].close()
        print("the cluster keeps serving with 3 of 4 replicas:")
        assert await submit(net, client, ("set", "gamma", 3)) == ("ok", 3)

        print("a fresh replica 3 rejoins and runs Section-6 state transfer")
        hosts[3] = ReplicaHost(directory, 3)  # volatile state is gone
        await hosts[3].start(recover=True)
        assert await submit(net, client, ("get", "gamma")) == ("value", 3)

        deadline = asyncio.get_running_loop().time() + 30
        while hosts[3].replica.recovering or len(hosts[3].replica.executed) < 3:
            assert asyncio.get_running_loop().time() < deadline
            await asyncio.sleep(0.05)
        snapshot = dict(hosts[3].replica.state_machine.snapshot()[1])
        print(f"recovered replica's state: {snapshot}")
        assert snapshot == {"alpha": 1, "beta": 2, "gamma": 3}

        sent = net.trace.bytes_sent
        print(f"client sent {sent} payload bytes "
              "(identical accounting to the simulator)")
    finally:
        await net.close()
        for host in hosts.values():
            await host.close()
    print("TCP cluster with crash recovery OK")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-tcp-example-") as tmp:
        asyncio.run(main_async(pathlib.Path(tmp)))


if __name__ == "__main__":
    main()
