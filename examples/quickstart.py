#!/usr/bin/env python
"""Quickstart: a fault-tolerant secure directory in a few lines.

Builds a four-server replicated directory (tolerating one Byzantine
server), binds a name, resolves it, and verifies the *service*
signature on the answer — the client never needs to trust any single
server, only the service's public key.

Run:  python examples/quickstart.py
"""

import random

from repro.apps import DirectoryClient, DirectoryService
from repro.net import SilentNode
from repro.smr import build_service


def main() -> None:
    # One call deals the threshold keys, builds the asynchronous
    # network with a randomized (adversarial-order) scheduler, and
    # starts one replica per server.
    deployment = build_service(n=4, state_machine_factory=DirectoryService, t=1)

    # Corrupt one server before anything happens: it stays silent
    # forever, which no timeout could distinguish from a slow link.
    deployment.controller.corrupt(deployment.network, 3, SilentNode())

    directory = DirectoryClient(deployment.new_client())
    deployment.network.start()

    n1 = directory.bind("dns:example.com", "192.0.2.17")
    n2 = directory.resolve("dns:example.com")
    results = deployment.run_until_complete(directory.client, [n1, n2])

    print("bind    ->", results[n1].result)
    print("resolve ->", results[n2].result)

    # The reply carries a threshold signature of the whole service;
    # anyone holding the public bundle can verify it offline.
    ok = results[n2].verify(
        deployment.keys.public,
        directory.client.client_id,
        ("resolve", "dns:example.com"),
    )
    print("service signature valid:", ok)

    # All honest replicas hold identical state.
    snapshots = {r.state_machine.snapshot() for r in deployment.honest_replicas()}
    print("honest replicas in agreement:", len(snapshots) == 1)

    assert results[n2].result == ("entry", "dns:example.com", "192.0.2.17",
                                  directory.client.client_id, 1)
    assert ok and len(snapshots) == 1
    print("quickstart OK —", deployment.network.delivered_count, "messages delivered")


if __name__ == "__main__":
    random.seed(0)
    main()
