#!/usr/bin/env python
"""A distributed certification authority (Section 5.1), end to end.

Seven servers, two of them Byzantine (one silent, one spamming junk).
Users request certificates on their public keys; the CA enforces its
credential policy, issues threshold-signed certificates, serves
lookups, processes a policy change (which, being totally ordered,
cleanly splits "issued under policy v1" from "v2"), and revokes a
certificate.  The user verifies the certificate against the single
service verification key — no individual server is trusted.

Run:  python examples/certification_authority.py
"""

import random

from repro.apps import CaClient, CertificationAuthority
from repro.net import SilentNode, SpamNode
from repro.smr import build_service


def main() -> None:
    deployment = build_service(
        n=7, state_machine_factory=CertificationAuthority, t=2, seed=3
    )
    network = deployment.network

    # Two corrupted servers: one mute, one flooding garbage.
    deployment.controller.corrupt(network, 5, SilentNode())
    deployment.controller.corrupt(
        network,
        6,
        SpamNode(
            network,
            6,
            payload_factory=lambda rng: ("junk", rng.randrange(1 << 16)),
            rng=random.Random(13),
            fanout=2,
        ),
    )

    alice = CaClient(deployment.new_client())
    admin = CaClient(deployment.new_client())
    network.start()

    # 1. Policy enforcement: missing credentials are rejected.
    n_bad = alice.request_certificate("alice", 0xA11CE, {"name": "Alice"})
    # 2. A compliant request is certified.
    n_ok = alice.request_certificate(
        "alice", 0xA11CE, {"name": "Alice", "email": "alice@example.org"}
    )
    results = deployment.run_until_complete(alice.client, [n_bad, n_ok])
    print("incomplete credentials ->", results[n_bad].result)
    cert = CaClient.parse_certificate(results[n_ok])
    print("issued certificate     ->", cert)
    assert results[n_bad].result[0] == "denied" and cert is not None

    # The certificate reply is signed by the *service*: verifiable offline.
    assert results[n_ok].verify(
        deployment.keys.public,
        alice.client.client_id,
        ("issue", "alice", 0xA11CE, (("email", "alice@example.org"), ("name", "Alice"))),
    )
    print("threshold signature on certificate verifies: True")

    # 3. Policy change (administrative, totally ordered w.r.t. issuance).
    n_pol = admin.set_policy("name", "email", "employee_id")
    results = deployment.run_until_complete(admin.client, [n_pol])
    print("policy updated         ->", results[n_pol].result)

    n_old_style = alice.request_certificate(
        "bob", 0xB0B, {"name": "Bob", "email": "bob@example.org"}
    )
    n_new_style = alice.request_certificate(
        "carol",
        0xCA201,
        {"name": "Carol", "email": "carol@example.org", "employee_id": "E-1001"},
    )
    results = deployment.run_until_complete(alice.client, [n_old_style, n_new_style])
    print("old-policy request     ->", results[n_old_style].result)
    print("new-policy request     ->", results[n_new_style].result)
    assert results[n_old_style].result[0] == "denied"
    assert results[n_new_style].result[0] == "certificate"

    # 4. Revocation and status lookup.
    n_rev = admin.revoke(cert.serial, "key compromise")
    n_look = alice.lookup("alice")
    results = deployment.run_until_complete(admin.client, [n_rev])
    results.update(deployment.run_until_complete(alice.client, [n_look]))
    print("revocation             ->", results[n_rev].result)
    print("status after revocation->", results[n_look].result)
    assert results[n_look].result[1] == "revoked"

    snapshots = {r.state_machine.snapshot() for r in deployment.honest_replicas()}
    assert len(snapshots) == 1
    print("CA example OK —", network.delivered_count, "messages delivered,",
          "5 honest replicas in perfect agreement")


if __name__ == "__main__":
    main()
