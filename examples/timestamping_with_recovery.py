#!/usr/bin/env python
"""Hash-linked time-stamping plus crash recovery (Sections 5.2 and 6).

A four-server time-stamping service issues stamps whose hash chain
makes the history tamper-evident.  Mid-run, one server crashes and
loses its volatile state; after more stamps are issued, a fresh replica
rejoins, performs the Section 6 crash-recovery state transfer (adopting
the delivery log endorsed by an honest-containing set of peers), and
rebuilds the identical chain — verified client-side from genesis.

Run:  python examples/timestamping_with_recovery.py
"""

from repro.apps.timestamping import (
    GENESIS,
    TimestampClient,
    TimestampingService,
    verify_chain_segment,
)
from repro.core.protocol import Context
from repro.core.runtime import ProtocolRuntime
from repro.smr import build_service
from repro.smr.replica import Replica, service_session


def main() -> None:
    deployment = build_service(4, TimestampingService, t=1, seed=77)
    client = TimestampClient(deployment.new_client())
    deployment.network.start()

    # Phase 1: two stamps while everyone is up.
    for doc in (b"design v1", b"design v2"):
        deployment.run_until_complete(client.client, [client.stamp(doc)])
    deployment.network.run(max_steps=400_000)
    print("stamps issued:", deployment.replicas[0].state_machine.sequence)

    # Phase 2: server 3 crashes (volatile state gone) and misses a stamp.
    deployment.network.crash(3)
    print("server 3 crashed")
    deployment.run_until_complete(client.client, [client.stamp(b"design v3")])
    deployment.network.run(max_steps=400_000)

    # Phase 3: a fresh replica rejoins and runs state transfer.
    runtime = ProtocolRuntime(
        3, deployment.network, deployment.keys.public,
        deployment.keys.private[3], seed=123,
    )
    fresh = Replica(TimestampingService())
    runtime.spawn(service_session("service"), fresh)
    deployment.network.recover(3, runtime)
    fresh.begin_recovery(Context(runtime, service_session("service")))
    deployment.network.run(max_steps=400_000)
    deployment.replicas[3] = fresh
    print("server 3 recovered; chain length:",
          fresh.state_machine.sequence)

    # Phase 4: the recovered server participates in new stamps.
    deployment.run_until_complete(client.client, [client.stamp(b"design v4")])
    deployment.network.run(max_steps=400_000)

    heads = {r.state_machine.head for r in deployment.replicas.values()}
    print("all four replicas share one chain head:", len(heads) == 1)

    # Client-side audit of the recovered server's chain, from genesis.
    records = fresh.state_machine.records
    ok = verify_chain_segment(records, GENESIS)
    print(f"client-side audit of {len(records)} records from genesis:", ok)

    assert len(heads) == 1 and ok and fresh.state_machine.sequence == 4
    print("timestamping + crash recovery OK")


if __name__ == "__main__":
    main()
