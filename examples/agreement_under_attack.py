#!/usr/bin/env python
"""Randomized Byzantine agreement vs. a deterministic protocol, both
under the Section 2.2 network attack.

The adversary controls scheduling and may let time pass without
delivering anything.  Against the deterministic leader-based baseline
(CL99/PBFT style) it starves whoever is currently leader until the
other replicas' timeouts fire, then starves the next leader: the
protocol cycles through view changes forever and never decides —
liveness rests on timing assumptions that a network adversary simply
violates (Figure 1).  The randomized agreement of this architecture
decides under the same starvation strategy, because no party plays a
distinguished role and termination comes from the threshold coin, not
from timeouts.

Run:  python examples/agreement_under_attack.py
"""

import random

from repro.baselines import LeaderConsensus, leader_session
from repro.baselines.leader_based import ViewChange
from repro.core import BinaryAgreement, ProtocolRuntime, aba_session
from repro.core.protocol import Context
from repro.crypto import deal_system, small_group
from repro.net import Network, StarvingScheduler


class LeaderStarver(StarvingScheduler):
    """Content-aware starvation: the adversary reads all traffic, so it
    can wave view changes through (keeping the victims busy electing
    new leaders) while starving every leader's actual proposals."""

    def select(self, pending, rng):
        self.clock += 1
        if not pending:
            return None
        for env in pending:
            self._birth.setdefault(env.seq, self.clock)
        targets = self.targets()

        def starved(env) -> bool:
            message = env.payload[1] if (
                isinstance(env.payload, tuple) and len(env.payload) == 2
            ) else None
            if isinstance(message, ViewChange):
                return False
            return env.sender in targets or env.recipient in targets

        fast = [i for i, env in enumerate(pending) if not starved(env)]
        if fast:
            return fast[rng.randrange(len(fast))]
        overdue = [
            i for i, env in enumerate(pending)
            if self.clock - self._birth[env.seq] > self.patience
        ]
        if overdue:
            return overdue[0]
        return None


def build(n, t, scheduler, seed):
    keys = deal_system(n, random.Random(seed), t=t, group=small_group())
    network = Network(scheduler, random.Random(seed + 1))
    runtimes = {}
    for i in range(n):
        runtime = ProtocolRuntime(i, network, keys.public, keys.private[i], seed=seed)
        network.attach(i, runtime)
        runtimes[i] = runtime
    return network, runtimes


def attack_deterministic(n=4, t=1, budget=20_000) -> tuple[int, int]:
    """Starve the current leader(s); returns (deciders, max view reached)."""
    instances = {}

    def leaders() -> set[int]:
        return {inst.view % n for inst in instances.values()} or {0}

    network, runtimes = build(n, t, LeaderStarver(leaders, patience=2000), seed=11)
    session = leader_session("attacked")
    for i, runtime in runtimes.items():
        instances[i] = runtime.spawn(session, LeaderConsensus(("value", i), timeout=40))
    network.start()
    for _ in range(budget):
        network.step()  # may stall — that IS the attack
        for i, runtime in runtimes.items():
            instances[i].tick(Context(runtime, session))
    deciders = sum(1 for r in runtimes.values() if r.result(session) is not None)
    return deciders, max(inst.view for inst in instances.values())


def attack_randomized(n=4, t=1, budget=400_000) -> tuple[int, set, int]:
    """Starve one honest party the same way; agreement still terminates."""
    network, runtimes = build(n, t, StarvingScheduler({0}, patience=2000), seed=23)
    session = aba_session("attacked")
    for i, runtime in runtimes.items():
        runtime.spawn(session, BinaryAgreement(i % 2))
    network.start()
    steps = 0
    while steps < budget and not all(
        r.result(session) is not None for r in runtimes.values()
    ):
        network.step()
        steps += 1
    decisions = {r.result(session) for r in runtimes.values()}
    return n, decisions, steps


def main() -> None:
    deciders, max_view = attack_deterministic()
    print(f"deterministic baseline under leader starvation: "
          f"{deciders}/4 parties decided after 20000 scheduling rounds; "
          f"view changes churned up to view {max_view}")

    count, decisions, steps = attack_randomized()
    print(f"randomized agreement under the same starvation: "
          f"{count}/4 parties decided value {decisions} in {steps} rounds")

    assert deciders == 0, "the delay attack should block the deterministic protocol"
    assert max_view >= 3, "the attack should force repeated view changes"
    assert decisions == {0} or decisions == {1}, "agreement must hold"
    print("asynchronous randomized agreement survives the timing attack — OK")


if __name__ == "__main__":
    main()
