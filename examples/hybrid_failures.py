#!/usr/bin/env python
"""Hybrid failure structures (Section 6): crashes are cheaper than
corruptions.

Nine servers run the authentication service.  Under the classical
Byzantine threshold, n=9 admits t=2 — two faults of *any* kind.  The
hybrid model separates budgets: b Byzantine plus c crash faults need
only n > 3b + 2c, so nine servers can ride out **one Byzantine server
plus two crashed ones** (three faults), or even **four crashes** with
b=0 — and, because crashed servers never leak their key shares, the
secret sharing threshold drops to b+1.

Run:  python examples/hybrid_failures.py
"""

from repro.adversary.hybrid import HybridQuorumSystem
from repro.apps import AuthenticationClient, AuthenticationService
from repro.net import SilentNode
from repro.smr import build_service


def demo(b: int, c: int, byzantine: list[int], crashed: list[int]) -> None:
    quorum = HybridQuorumSystem(n=9, b=b, c=c)
    print(f"\n--- hybrid budget b={b} Byzantine, c={c} crash "
          f"(admissible: 9 > 3*{b}+2*{c} = {3 * b + 2 * c}) ---")
    deployment = build_service(
        9, AuthenticationService, hybrid=(b, c), seed=17 + b
    )
    for server in byzantine:
        deployment.controller.corrupt(deployment.network, server, SilentNode())
    for server in crashed:
        deployment.network.crash(server)
    print(f"faults injected: byzantine={byzantine}, crashed={crashed} "
          f"({len(byzantine) + len(crashed)} of 9)")
    assert quorum.admissible_faults(byzantine, crashed)

    auth = AuthenticationClient(deployment.new_client())
    deployment.network.start()
    n1 = auth.enroll("alice", b"correct horse battery staple")
    deployment.run_until_complete(auth.client, [n1], max_steps=900_000)
    n2 = auth.authenticate("alice", b"correct horse battery staple")
    n3 = auth.authenticate("alice", b"hunter2")
    results = deployment.run_until_complete(auth.client, [n2, n3], max_steps=900_000)
    print("authenticate (right secret) ->", results[n2].result)
    print("authenticate (wrong secret) ->", results[n3].result)
    assert results[n2].result == ("authenticated", "alice")
    assert results[n3].result == ("denied", "bad credential")


def main() -> None:
    # Three faults on nine servers — beyond the classical t=2 bound.
    demo(b=1, c=2, byzantine=[8], crashed=[6, 7])
    # Four crashes with no Byzantine margin at all.
    demo(b=0, c=4, byzantine=[], crashed=[5, 6, 7, 8])

    # The classical threshold model cannot express either pattern.
    from repro.adversary import threshold_structure

    print("\nclassical n=9 threshold: largest admissible t =", 2)
    assert not threshold_structure(9, 2).is_corruptible({6, 7, 8})
    print("three simultaneous faults corruptible under t=2:", False)
    print("hybrid failure structures OK")


if __name__ == "__main__":
    main()
