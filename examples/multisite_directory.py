#!/usr/bin/env python
"""Example 2 of the paper, live: a sixteen-server directory for a
multi-national company (New York, Tokyo, Zurich, Haifa) running four
operating systems (AIX, NT, Linux, Solaris), one server per
(location, OS) pair.

The generalized adversary structure tolerates the *simultaneous*
corruption of all servers in one location **and** all servers running
one operating system — up to seven servers at once.  Any classical
threshold scheme on sixteen servers tolerates at most five.

This script corrupts the entire Tokyo site plus every Linux box
(7 servers) and shows the directory still processes authenticated
requests; it then confirms that a threshold deployment of the same
size refuses to even model such a corruption.

Run:  python examples/multisite_directory.py
"""

from repro.adversary import (
    example2_access_formula,
    example2_assignment,
    example2_structure,
    threshold_structure,
)
from repro.apps import DirectoryClient, DirectoryService
from repro.net import SilentNode
from repro.smr import build_service


def main() -> None:
    assignment = example2_assignment()
    structure = example2_structure()
    print("adversary structure:", len(structure.maximal_sets),
          "maximal corruptible coalitions, Q3 =", structure.satisfies_q3())

    deployment = build_service(
        n=16,
        state_machine_factory=DirectoryService,
        structure=structure,
        access_formula=example2_access_formula(),
        seed=7,
    )

    tokyo = assignment.parties_with("location", "tokyo")
    linux = assignment.parties_with("os", "linux")
    doomed = sorted(tokyo | linux)
    print(f"corrupting Tokyo site + all Linux hosts: servers {doomed} "
          f"({len(doomed)} of 16)")
    for server in doomed:
        deployment.controller.corrupt(deployment.network, server, SilentNode())

    directory = DirectoryClient(deployment.new_client())
    deployment.network.start()
    n1 = directory.bind("hr/payroll", "db7.internal")
    n2 = directory.resolve("hr/payroll")
    results = deployment.run_until_complete(directory.client, [n1, n2])
    print("bind    ->", results[n1].result)
    print("resolve ->", results[n2].result)
    assert results[n2].result[2] == "db7.internal"

    snapshots = {r.state_machine.snapshot() for r in deployment.honest_replicas()}
    print("surviving replicas consistent:", len(snapshots) == 1)

    # The same corruption is inadmissible for ANY threshold system of 16
    # servers: t >= 7 violates n > 3t.
    thresh = threshold_structure(16, 5)
    print("best threshold structure (t=5) tolerates this coalition:",
          thresh.is_corruptible(doomed))
    assert not thresh.is_corruptible(doomed)
    print("multisite directory OK —",
          deployment.network.delivered_count, "messages delivered")


if __name__ == "__main__":
    main()
