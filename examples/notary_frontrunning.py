#!/usr/bin/env python
"""The patent race (Section 5.2): why the notary needs *secure causal*
atomic broadcast.

An inventor files a patent digest with the distributed notary.  Server 3
is corrupted and colludes with a competitor; the adversary also controls
the network.  The attack:

1. the network delivers the inventor's submission to the corrupted
   server first, which reads it, leaks the digest, and withholds it;
2. all other copies of the inventor's submission are delayed (the
   adversary may reorder anything);
3. the competitor files the stolen digest; its request is scheduled and
   ordered first;
4. only then does the network release the inventor's copies.

* On **plain atomic broadcast** the submission travels in the clear:
  the digest leaks in step 1 and the competitor wins the registration.
* On **secure causal atomic broadcast** the submission is a TDH2
  ciphertext until its position in the total order is fixed: nothing
  leaks, and CCA2 security means even replaying/mauling the ciphertext
  cannot produce a *related* filing in the competitor's name.

Run:  python examples/notary_frontrunning.py
"""

import random

from repro.apps import NotaryClient, NotaryService
from repro.core.runtime import ProtocolRuntime
from repro.net.scheduler import Scheduler
from repro.smr import Replica, build_service, service_session
from repro.smr.replica import SubmitEncrypted, SubmitRequest
from repro.smr.state_machine import Request

CORRUPT = 3


class FrontRunScheduler(Scheduler):
    """The adversary's network strategy for the race."""

    def __init__(self, inventor_id: int) -> None:
        self.inventor_id = inventor_id
        self.block_inventor = False

    def select(self, pending, rng):
        if not pending:
            return None
        # Step 1: the corrupted server always hears the victim first.
        for i, env in enumerate(pending):
            if env.sender == self.inventor_id and env.recipient == CORRUPT:
                return i
        # Step 2: starve every other copy of the victim's traffic.
        if self.block_inventor:
            fast = [i for i, e in enumerate(pending) if e.sender != self.inventor_id]
            pool = fast if fast else list(range(len(pending)))
        else:
            pool = list(range(len(pending)))
        return pool[rng.randrange(len(pool))]


class WithholdingRuntime(ProtocolRuntime):
    """Corrupted server: leaks what it can read and withholds the
    victim's submissions instead of broadcasting them."""

    def __init__(self, *args, spy, inventor_id, **kwargs):
        super().__init__(*args, **kwargs)
        self.spy = spy
        self.inventor_id = inventor_id

    def on_message(self, sender: int, payload: object) -> None:
        if isinstance(payload, tuple) and len(payload) == 2:
            message = payload[1]
            if isinstance(message, SubmitRequest):
                request = Request.decode(message.request)
                if request is not None and request.operation[0] == "register":
                    digest = request.operation[1]
                    if isinstance(digest, bytes):
                        self.spy.append(digest)
                    if request.client == self.inventor_id:
                        return  # withhold the victim's filing
            if isinstance(message, SubmitEncrypted):
                # Ciphertext only: nothing to read.  (CCA2 security is
                # what stops mauling it into a related filing.)
                if sender == self.inventor_id:
                    return  # withholding still possible — but useless
        super().on_message(sender, payload)


def race(confidential: bool) -> tuple[str, int]:
    deployment = build_service(
        n=4, state_machine_factory=NotaryService, t=1, causal=confidential, seed=42
    )
    network = deployment.network
    spy: list[bytes] = []

    inventor = NotaryClient(deployment.new_client(), confidential=confidential)
    competitor = NotaryClient(deployment.new_client(), confidential=confidential)

    scheduler = FrontRunScheduler(inventor.client.client_id)
    network.scheduler = scheduler

    tapped = WithholdingRuntime(
        CORRUPT,
        network,
        deployment.keys.public,
        deployment.keys.private[CORRUPT],
        seed=99,
        spy=spy,
        inventor_id=inventor.client.client_id,
    )
    tapped.spawn(service_session("service"), Replica(NotaryService(), causal=confidential))
    deployment.controller.corrupt(network, CORRUPT, tapped)

    network.start()
    invention = b"perpetual motion machine, mark II"
    nonce = inventor.register(invention)

    # Run the adversary's playbook.
    stolen_nonce = None
    for _ in range(50):
        network.step()
        if spy and stolen_nonce is None:
            scheduler.block_inventor = True
            stolen_nonce = (
                competitor.client.submit_confidential(("register", spy[0]))
                if confidential
                else competitor.client.submit(("register", spy[0]))
            )
            break
    if stolen_nonce is not None:
        network.run(
            until=lambda: stolen_nonce in competitor.client.completed,
            max_steps=500_000,
        )
        scheduler.block_inventor = False
    network.run(until=lambda: nonce in inventor.client.completed, max_steps=500_000)

    result = inventor.client.completed[nonce].result
    _tag, _seq, _digest, registrant, _first = result
    winner = "inventor" if registrant == inventor.client.client_id else "competitor"
    return winner, len(spy)


def main() -> None:
    winner_plain, leaks_plain = race(confidential=False)
    print(f"plain atomic broadcast : digests leaked={leaks_plain}, "
          f"registration owned by -> {winner_plain}")

    winner_causal, leaks_causal = race(confidential=True)
    print(f"secure causal broadcast: digests leaked={leaks_causal}, "
          f"registration owned by -> {winner_causal}")

    assert winner_plain == "competitor", "the attack should succeed without encryption"
    assert winner_causal == "inventor" and leaks_causal == 0
    print("front-running defeated by secure causal atomic broadcast — OK")


if __name__ == "__main__":
    random.seed(0)
    main()
