"""Deterministic leader-based baseline: fast path, safety, liveness loss."""

from helpers import ctx_for, make_network

from repro.baselines.leader_based import LeaderConsensus, leader_session
from repro.net.scheduler import FifoScheduler, StarvingScheduler


def _drive(net, rts, instances, session, budget):
    net.start()
    for _ in range(budget):
        net.step()
        for party, runtime in rts.items():
            instances[party].tick(ctx_for(runtime, session))
        if all(r.result(session) is not None for r in rts.values()):
            break
    return {p: r.result(session) for p, r in rts.items()}


def _spawn(rts, session, timeout=200):
    return {
        p: rt.spawn(session, LeaderConsensus(("v", p), timeout=timeout))
        for p, rt in rts.items()
    }


def test_fast_path_on_friendly_network(keys_4_1):
    net, rts = make_network(keys_4_1, FifoScheduler(), seed=1)
    session = leader_session("fast")
    instances = _spawn(rts, session, timeout=500)
    results = _drive(net, rts, instances, session, budget=2000)
    assert all(v == ("v", 0) for v in results.values())  # view-0 leader's value
    assert all(inst.view == 0 for inst in instances.values())


def test_agreement_is_never_violated(keys_4_1):
    for seed in range(4):
        net, rts = make_network(keys_4_1, FifoScheduler(), seed=seed)
        session = leader_session(("safe", seed))
        instances = _spawn(rts, session, timeout=30)  # aggressive timeouts
        results = _drive(net, rts, instances, session, budget=5000)
        decided = {v for v in results.values() if v is not None}
        assert len(decided) <= 1, f"seed {seed}: split decision {decided}"


def test_view_change_preserves_prepared_value(keys_4_1):
    """The PBFT safety rule: if a value prepared in view v, later views
    re-propose it.  Force a view change after prepare by starving the
    leader's commits — decision must still be the view-0 value."""
    session = leader_session("prepared")
    instances = {}

    def leaders():
        return {inst.view % 4 for inst in instances.values()} or set()

    # Starve nothing at first; flip on after prepare happens.
    scheduler = StarvingScheduler(set(), patience=300)
    net, rts = make_network(keys_4_1, scheduler, seed=5)
    instances.update(_spawn(rts, session, timeout=40))
    net.start()
    prepared_seen = None
    for _ in range(8000):
        net.step()
        for party, runtime in rts.items():
            instances[party].tick(ctx_for(runtime, session))
        if prepared_seen is None:
            for inst in instances.values():
                if inst.prepared is not None:
                    prepared_seen = inst.prepared
                    scheduler._targets = {0}  # now starve the old leader
                    break
        if all(r.result(session) is not None for r in rts.values()):
            break
    decided = {r.result(session) for r in rts.values() if r.result(session)}
    if prepared_seen is not None and decided:
        assert decided == {prepared_seen[1]}


def test_liveness_lost_under_leader_starvation(keys_4_1):
    """The Figure 1 claim: a deterministic protocol with timeout-driven
    view changes never decides when the adversary starves every leader
    (content-aware starvation is exercised in the example/benchmark; the
    blunt form here already blocks it)."""
    session = leader_session("starved")
    instances = {}

    def leaders():
        return {inst.view % 4 for inst in instances.values()} or {0}

    net, rts = make_network(keys_4_1, StarvingScheduler(leaders, patience=3000), seed=6)
    instances.update(_spawn(rts, session, timeout=40))
    results = _drive(net, rts, instances, session, budget=15_000)
    assert all(v is None for v in results.values())


def test_view_changes_make_progress_without_leader(keys_4_1):
    """If the view-0 leader is simply dead (not network-starved), the
    timeout mechanism does recover via a view change — the case
    failure detectors are designed for."""
    net, rts = make_network(keys_4_1, FifoScheduler(), seed=7, parties=[1, 2, 3])
    from repro.net.adversary import SilentNode

    net.attach(0, SilentNode())
    session = leader_session("dead-leader")
    instances = {
        p: rt.spawn(session, LeaderConsensus(("v", p), timeout=30))
        for p, rt in rts.items()
    }
    results = _drive(net, rts, instances, session, budget=8000)
    decided = {v for v in results.values() if v is not None}
    assert len(decided) == 1
    assert max(inst.view for inst in instances.values()) >= 1
