"""Failure detectors and view-based membership: the Section 2.2 critique."""

from repro.baselines.failure_detector import TimeoutFailureDetector, ViewBasedGroup


class TestTimeoutFailureDetector:
    def test_silence_triggers_suspicion(self):
        fd = TimeoutFailureDetector(parties=[0, 1, 2], timeout=5)
        for _ in range(6):
            fd.tick()
        assert fd.suspected == {0, 1, 2}

    def test_messages_prevent_suspicion(self):
        fd = TimeoutFailureDetector(parties=[0, 1], timeout=5)
        for _ in range(20):
            fd.heard(0)
            fd.tick()
        assert 0 not in fd.suspected
        assert 1 in fd.suspected

    def test_late_message_retracts_suspicion(self):
        fd = TimeoutFailureDetector(parties=[0], timeout=3)
        for _ in range(4):
            fd.tick()
        assert 0 in fd.suspected
        fd.heard(0)
        assert 0 not in fd.suspected

    def test_wrong_suspicions_accumulate_without_bound(self):
        """An adversary that alternates starving and releasing an honest
        party makes the detector wrong over and over — the Section 2.2
        'unlimited number of wrong suspicions'."""
        fd = TimeoutFailureDetector(parties=[0], timeout=3, honest=frozenset({0}))
        for _cycle in range(10):
            for _ in range(4):
                fd.tick()  # starve: suspicion fires (wrongly)
            fd.heard(0)  # release: suspicion retracted
        assert fd.wrong_suspicions == 10

    def test_unknown_party_heard_is_ignored(self):
        fd = TimeoutFailureDetector(parties=[0], timeout=3)
        fd.heard(99)  # no crash
        assert 99 not in fd.last_heard


class TestViewBasedGroup:
    def test_expulsion_requires_two_thirds(self):
        g = ViewBasedGroup(members=list(range(6)))
        assert not g.vote_expel(0, 5)
        assert not g.vote_expel(1, 5)
        assert not g.vote_expel(2, 5)
        assert not g.vote_expel(3, 5)
        assert g.vote_expel(4, 5)  # fifth vote: 5 >= 2*6/3+1
        assert 5 not in g.members
        assert g.view_number == 1

    def test_non_member_votes_ignored(self):
        g = ViewBasedGroup(members=[0, 1, 2])
        assert not g.vote_expel(9, 0)
        assert not g.vote_expel(0, 9)

    def test_adversary_shrinks_group_to_corrupt_majority(self):
        """The Rampart attack: delay honest members one at a time; each
        gets expelled by (legitimate-looking) suspicion votes.  With
        n=7, t=2 corrupted, expelling three honest members leaves 4
        members of which 2 are corrupted — integrity gone."""
        corrupted = frozenset({5, 6})
        g = ViewBasedGroup(members=list(range(7)), corrupted=corrupted)
        assert not g.integrity_lost
        for victim in (0, 1, 2):
            voters = [m for m in g.members if m != victim]
            for voter in voters:
                if g.vote_expel(voter, victim):
                    break
        assert g.members == [3, 4, 5, 6]
        assert g.integrity_lost  # 2 corrupt of 4: >= one third
        assert g.view_number == 3

    def test_static_group_never_reaches_this_state(self):
        """Contrast: the architecture under test never changes the
        group, so the corrupt fraction is fixed at dealing time."""
        corrupted = frozenset({5, 6})
        g = ViewBasedGroup(members=list(range(7)), corrupted=corrupted)
        assert g.corrupt_fraction < 1 / 3
        assert not g.integrity_lost

    def test_empty_group_is_lost(self):
        g = ViewBasedGroup(members=[])
        assert g.integrity_lost
