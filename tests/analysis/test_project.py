"""Call-graph construction: the resolution forms RL006/RL007 rely on."""

from repro.analysis import SourceFile
from repro.analysis.project import ProjectGraph


def build(*named_sources: tuple[str, str]) -> ProjectGraph:
    sources = [
        SourceFile.from_source(text, relpath=relpath)
        for relpath, text in named_sources
    ]
    return ProjectGraph.build(sources)


def callee_names(graph: ProjectGraph, qualname: str) -> set[str]:
    return {
        callee
        for site in graph.calls.get(qualname, [])
        for callee in site.callees
    }


def test_local_and_module_function_calls_resolve():
    graph = build(
        (
            "core/a.py",
            "def helper(value):\n"
            "    return value\n"
            "\n"
            "def entry(value):\n"
            "    return helper(value)\n",
        )
    )
    assert callee_names(graph, "core/a.py::entry") == {"core/a.py::helper"}


def test_imported_symbol_calls_resolve_across_modules():
    graph = build(
        ("core/b.py", "def shared(value):\n    return value\n"),
        (
            "core/a.py",
            "from .b import shared\n"
            "\n"
            "def entry(value):\n"
            "    return shared(value)\n",
        ),
    )
    assert callee_names(graph, "core/a.py::entry") == {"core/b.py::shared"}


def test_relative_import_across_packages_resolves():
    graph = build(
        ("net/wire.py", "def loads(raw):\n    return raw\n"),
        (
            "smr/replica.py",
            "from ..net import wire\n"
            "\n"
            "def decode(raw):\n"
            "    return wire.loads(raw)\n",
        ),
    )
    assert callee_names(graph, "smr/replica.py::decode") == {"net/wire.py::loads"}


def test_self_method_calls_resolve_through_base_classes():
    graph = build(
        (
            "core/a.py",
            "class Base:\n"
            "    def shared(self):\n"
            "        return 1\n"
            "\n"
            "class Derived(Base):\n"
            "    def entry(self):\n"
            "        return self.shared()\n",
        )
    )
    assert callee_names(graph, "core/a.py::Derived.entry") == {
        "core/a.py::Base.shared"
    }


def test_field_type_inference_resolves_attribute_method_calls():
    graph = build(
        (
            "core/abc.py",
            "class AtomicBroadcast:\n"
            "    def on_message(self, ctx, sender, message):\n"
            "        return message\n",
        ),
        (
            "smr/replica.py",
            "from ..core.abc import AtomicBroadcast\n"
            "\n"
            "class Replica:\n"
            "    def __init__(self):\n"
            "        self.abc = AtomicBroadcast()\n"
            "\n"
            "    def on_message(self, ctx, sender, message):\n"
            "        self.abc.on_message(ctx, sender, message)\n",
        ),
    )
    assert "core/abc.py::AtomicBroadcast.on_message" in callee_names(
        graph, "smr/replica.py::Replica.on_message"
    )


def test_duck_dispatch_is_conservative_but_denylists_builtins():
    graph = build(
        (
            "core/a.py",
            "class Backend:\n"
            "    def deliver(self, payload):\n"
            "        return payload\n"
            "\n"
            "def entry(backend, bag, payload):\n"
            "    bag.append(payload)\n"
            "    return backend.deliver(payload)\n",
        )
    )
    names = callee_names(graph, "core/a.py::entry")
    assert "core/a.py::Backend.deliver" in names  # duck-resolved
    assert all("append" not in callee for callee in names)  # builtin denylist


def test_reachability_includes_closures_and_called_privates():
    graph = build(
        (
            "core/a.py",
            "class Proto:\n"
            "    def on_start(self, ctx):\n"
            "        ctx.spawn(on_output=lambda value: self._private(value))\n"
            "\n"
            "    def _private(self, value):\n"
            "        return value\n"
            "\n"
            "    def _orphan(self, value):\n"
            "        return value\n",
        )
    )
    reachable = graph.reachable_from(["core/a.py::Proto.on_start"])
    assert "core/a.py::Proto._private" in reachable  # via the closure
    assert "core/a.py::Proto._orphan" not in reachable


def test_nested_functions_do_not_leak_into_module_namespace():
    graph = build(
        (
            "core/a.py",
            "def outer():\n"
            "    def inner():\n"
            "        return 1\n"
            "    return inner()\n"
            "\n"
            "def other():\n"
            "    return inner()\n",  # no module-level `inner` exists
        )
    )
    assert callee_names(graph, "core/a.py::other") == set()
