"""Fixture-driven self-tests: each rule fires with exact id and location."""

from pathlib import Path

from repro.analysis import SourceFile, lint_sources, rules_by_id

FIXTURES = Path(__file__).parent / "fixtures"


def load(name: str, relpath: str) -> SourceFile:
    return SourceFile.from_path(FIXTURES / name, relpath=relpath)


def findings(name: str, rule: str, relpath: str | None = None):
    source = load(name, relpath or f"core/{name}")
    report = lint_sources([source], rules=rules_by_id([rule]))
    return report


def locations(report):
    return [(diag.rule, diag.line) for diag in report.diagnostics]


# -- RL001: raw quorum arithmetic ------------------------------------------------


def test_rl001_fires_on_each_pattern():
    report = findings("rl001_bad.py", "RL001")
    assert locations(report) == [
        ("RL001", 5),  # n - t
        ("RL001", 9),  # 2*t + 1
        ("RL001", 13),  # n // 3
        ("RL001", 17),  # 1 + t*2 (commuted)
        ("RL001", 21),  # bare 3*t in a comparison
    ]
    assert all(d.severity == "error" for d in report.diagnostics)
    assert all("QuorumSystem" in d.hint for d in report.diagnostics)


def test_rl001_clean_fixture_is_clean():
    assert findings("rl001_ok.py", "RL001").diagnostics == []


def test_rl001_skips_adversary_package():
    source = load("rl001_bad.py", "adversary/quorums.py")
    report = lint_sources([source], rules=rules_by_id(["RL001"]))
    assert report.diagnostics == []


# -- RL002: discarded verify()/combine() ----------------------------------------


def test_rl002_fires_on_discarded_results():
    report = findings("rl002_bad.py", "RL002")
    assert locations(report) == [
        ("RL002", 5),
        ("RL002", 10),
        ("RL002", 11),
        ("RL002", 15),  # batch verify_shares
        ("RL002", 16),  # verify_dleq_batch
        ("RL002", 17),  # verify_batch
    ]
    assert "verify" in report.diagnostics[0].message


def test_rl002_clean_fixture_is_clean():
    assert findings("rl002_ok.py", "RL002").diagnostics == []


def test_rl002_scope_is_core_crypto_smr():
    source = load("rl002_bad.py", "apps/notary.py")
    report = lint_sources([source], rules=rules_by_id(["RL002"]))
    assert report.diagnostics == []
    for scoped in ("core/x.py", "crypto/x.py", "smr/x.py"):
        source = load("rl002_bad.py", scoped)
        assert lint_sources([source], rules=rules_by_id(["RL002"])).diagnostics


# -- RL003: nondeterminism ------------------------------------------------------


def test_rl003_fires_on_each_pattern():
    report = findings("rl003_bad.py", "RL003")
    assert locations(report) == [
        ("RL003", 9),  # random.choice
        ("RL003", 13),  # time.time
        ("RL003", 17),  # datetime.now
        ("RL003", 21),  # dict.popitem
        ("RL003", 25),  # unsorted for over .items()
        ("RL003", 31),  # list comprehension over .values()
        ("RL003", 35),  # generator over .values() fed to next()
    ]


def test_rl003_clean_fixture_is_clean():
    assert findings("rl003_ok.py", "RL003").diagnostics == []


# -- RL004: message registration / handling (project-wide) ----------------------


def test_rl004_unregistered_and_unhandled():
    wire = load("rl004_wire.py", "net/wire.py")
    core = load("rl004_core.py", "core/rl004_core.py")
    report = lint_sources([core, wire], rules=rules_by_id(["RL004"]))
    text = core.text
    sent_unregistered_line = text[: text.index("class SentUnregistered")].count("\n") + 1
    unhandled_line = text[: text.index("class RegisteredUnhandled")].count("\n") + 1
    assert locations(report) == [
        ("RL004", sent_unregistered_line),
        ("RL004", unhandled_line),
    ]
    assert "never registered" in report.diagnostics[0].message
    assert "no handler" in report.diagnostics[1].message


def test_rl004_silent_without_definitions_in_scope():
    # The same definitions outside core/ or net/wire.py are not messages.
    wire = load("rl004_wire.py", "net/wire.py")
    elsewhere = load("rl004_core.py", "apps/rl004_core.py")
    report = lint_sources([elsewhere, wire], rules=rules_by_id(["RL004"]))
    assert report.diagnostics == []


# -- RL005: async hygiene -------------------------------------------------------


def test_rl005_fires_on_dropped_coroutine_and_unguarded_write():
    report = findings("rl005_bad.py", "RL005")
    assert locations(report) == [("RL005", 9), ("RL005", 11)]
    assert "never awaited" in report.diagnostics[0].message
    assert "after an await" in report.diagnostics[1].message


def test_rl005_clean_fixture_is_clean():
    assert findings("rl005_ok.py", "RL005").diagnostics == []


def test_rl005_transport_orphaned_tasks_and_unawaited_sends():
    report = findings("rl005_transport_bad.py", "RL005", relpath="net/transport.py")
    assert locations(report) == [("RL005", 6), ("RL005", 7), ("RL005", 8)]
    assert "dropped" in report.diagnostics[0].message
    assert "add_done_callback" in report.diagnostics[1].message
    assert "awaitable" in report.diagnostics[2].message


def test_rl005_transport_clean_fixture_is_clean():
    for relpath in ("net/transport.py", "net/runtime.py"):
        report = findings("rl005_transport_ok.py", "RL005", relpath=relpath)
        assert report.diagnostics == []


def test_rl005_scope_excludes_the_simulator():
    report = findings("rl005_transport_bad.py", "RL005", relpath="net/simulator.py")
    assert report.diagnostics == []


def test_rl005_unbounded_reads_in_chaos_layer():
    for relpath in ("net/runtime.py", "net/chaos.py"):
        report = findings("rl005_reads_bad.py", "RL005", relpath=relpath)
        assert locations(report) == [
            ("RL005", 7),   # proc.stdout.readline()
            ("RL005", 12),  # event.wait()
            ("RL005", 16),  # queue.get()
            ("RL005", 21),  # reader.readexactly()
        ]
        assert all("no timeout" in d.message for d in report.diagnostics)
        assert all("noqa-RL005" in d.hint for d in report.diagnostics)


def test_rl005_unbounded_reads_clean_when_bounded_or_justified():
    report = findings("rl005_reads_ok.py", "RL005", relpath="net/chaos.py")
    assert report.diagnostics == []
    assert report.suppressed == 1  # the justified readline


def test_rl005_unbounded_reads_not_applied_to_transport():
    # The transport's reader loops are bounded by connection lifetime;
    # mode 5 polices only the chaos orchestration layer.
    report = findings("rl005_reads_bad.py", "RL005", relpath="net/transport.py")
    assert report.diagnostics == []


# -- RL006: whole-program taint (project-wide) ----------------------------------


def test_rl006_fires_on_unsanitized_source_to_sink_paths():
    report = findings("rl006_bad.py", "RL006", relpath="smr/rl006_bad.py")
    lines = [line for _, line in locations(report)]
    text = load("rl006_bad.py", "smr/rl006_bad.py").text
    apply_line = text[: text.index("self.state_machine.apply(message")].count("\n") + 1
    deliver_apply = text[: text.index("self.state_machine.apply(request")].count("\n") + 1
    assert apply_line in lines  # on_message param -> apply
    assert deliver_apply in lines  # wire.loads result -> apply
    assert all(rule == "RL006" for rule, _ in locations(report))
    assert all(d.severity == "error" for d in report.diagnostics)
    assert "unverified network input" in report.diagnostics[0].message


def test_rl006_gated_fixture_is_clean():
    report = findings("rl006_ok.py", "RL006", relpath="smr/rl006_ok.py")
    assert report.diagnostics == []


def test_rl006_catches_seeded_verify_removal_on_deliver_path():
    # The acceptance regression: take the gated replica and strip one
    # verify() gate from its deliver path — RL006 must start firing.
    gated_text = load("rl006_ok.py", "smr/rl006_ok.py").text
    gate = (
        "        if not self.keys.verify(message.operation, message.signature):\n"
        "            return\n"
    )
    assert gate in gated_text
    stripped = SourceFile.from_source(
        gated_text.replace(gate, ""), relpath="smr/rl006_ok.py"
    )
    report = lint_sources([stripped], rules=rules_by_id(["RL006"]))
    assert report.diagnostics, "removing the verify() gate must be caught"
    assert {d.rule for d in report.diagnostics} == {"RL006"}
    assert any("apply" in d.message for d in report.diagnostics)


def test_rl006_chain_names_the_functions_on_the_path():
    report = findings("rl006_bad.py", "RL006", relpath="smr/rl006_bad.py")
    messages = " ".join(d.message for d in report.diagnostics)
    assert "Replica.on_message" in messages
    assert "Replica._on_submit" in messages


# -- RL007: handler reachability vs wire registry (project-wide) -----------------


def _rl007_report():
    wire = load("rl007_wire.py", "net/wire.py")
    core = load("rl007_core.py", "core/rl007_core.py")
    return lint_sources([core, wire], rules=rules_by_id(["RL007"])), core.text


def test_rl007_unregistered_dispatch_in_reachable_handler_is_error():
    report, text = _rl007_report()
    ghost_line = text[: text.index("isinstance(message, Ghost)")].count("\n") + 1
    ghost = [d for d in report.diagnostics if "Ghost" in d.message]
    assert [d.line for d in ghost] == [ghost_line]
    assert ghost[0].severity == "error"
    assert "never registered" in ghost[0].message


def test_rl007_unreachable_handler_for_registered_message_is_warning():
    report, text = _rl007_report()
    orphan_line = text[: text.index("isinstance(message, OrphanRegistered)")].count("\n") + 1
    orphan = [d for d in report.diagnostics if "OrphanRegistered" in d.message]
    assert [d.line for d in orphan] == [orphan_line]
    assert orphan[0].severity == "warning"
    assert "unreachable" in orphan[0].message


# -- inline suppression ---------------------------------------------------------


def test_noqa_suppresses_exact_rules_only():
    source = load("rl_noqa.py", "core/rl_noqa.py")
    report = lint_sources([source], rules=rules_by_id(["RL001", "RL003"]))
    assert locations(report) == [("RL001", 23)]  # the unsuppressed finding
    assert report.suppressed == 4


def test_noqa_for_other_rule_does_not_suppress():
    source = SourceFile.from_source(
        "def f(n, t):\n    return n - t  # repro: noqa-RL003\n",
        relpath="core/example.py",
    )
    report = lint_sources([source], rules=rules_by_id(["RL001"]))
    assert locations(report) == [("RL001", 2)]


# -- RL008: stale read across await (project-wide) -------------------------------


def test_rl008_fires_on_each_hazard_kind():
    report = findings("rl008_bad.py", "RL008", relpath="core/rl008_bad.py")
    assert locations(report) == [
        ("RL008", 16),  # read / suspend / write-back
        ("RL008", 21),  # single-statement RMW around an await
        ("RL008", 28),  # stale value written via sync helper
        ("RL008", 35),  # alias of a container entry mutated post-await
    ]
    assert all(d.severity == "error" for d in report.diagnostics)
    messages = [d.message for d in report.diagnostics]
    assert "without re-validation" in messages[0]
    assert "_store" in messages[2]  # interprocedural: names the helper
    assert "orphaned object" in messages[3]


def test_rl008_clean_fixture_is_clean():
    report = findings("rl008_ok.py", "RL008", relpath="core/rl008_ok.py")
    assert report.diagnostics == []


def test_rl008_scope_is_core_smr_net():
    report = findings("rl008_bad.py", "RL008", relpath="apps/rl008_bad.py")
    assert report.diagnostics == []


def test_rl008_noqa_suppresses():
    text = load("rl008_bad.py", "core/rl008_bad.py").text
    text = text.replace(
        "self.count = current + 1  # RL008 here",
        "self.count = current + 1  # repro: noqa-RL008 -- test justification",
    )
    source = SourceFile.from_source(text, relpath="core/rl008_bad.py")
    report = lint_sources([source], rules=rules_by_id(["RL008"]))
    assert [line for _, line in locations(report)] == [21, 28, 35]
    assert report.suppressed == 1


def test_rl008_baseline_round_trip():
    from repro.analysis.baseline import Baseline

    source = load("rl008_bad.py", "core/rl008_bad.py")
    first = lint_sources([source], rules=rules_by_id(["RL008"]))
    baseline = Baseline.from_diagnostics(first.diagnostics, reason="known")
    second = lint_sources(
        [source], rules=rules_by_id(["RL008"]), baseline=baseline
    )
    assert second.diagnostics == []
    assert len(second.baselined) == len(first.diagnostics)
    assert second.stale_baseline == []


def test_rl008_catches_seeded_guard_removal_in_the_real_transport():
    # The acceptance regression, mirroring the RL006 verify-removal
    # test: strip the superseded-channel re-validation this PR added to
    # _handle_connection and RL008 must start firing on the alias write.
    real = (
        Path(__file__).parent.parent.parent
        / "src" / "repro" / "net" / "transport.py"
    )
    text = real.read_text(encoding="utf-8")
    guard_start = text.index("if self._inbound.get(peer) is not inbound:")
    guard_end = text.index('raise ConnectionResetError("superseded inbound channel")')
    guard_end = text.index("\n", guard_end) + 1
    line_start = text.rindex("\n", 0, guard_start) + 1
    stripped_text = text[:line_start] + text[guard_end:]

    intact = SourceFile.from_source(text, relpath="net/transport.py")
    stripped = SourceFile.from_source(stripped_text, relpath="net/transport.py")
    intact_report = lint_sources([intact], rules=rules_by_id(["RL008"]))
    stripped_report = lint_sources([stripped], rules=rules_by_id(["RL008"]))

    def alias_findings(report):
        return [d for d in report.diagnostics if "orphaned object" in d.message]

    assert alias_findings(intact_report) == []
    fired = alias_findings(stripped_report)
    assert fired, "removing the re-validation guard must be caught"
    assert "_inbound" in fired[0].message


# -- RL009: unowned mutable handoff (project-wide) -------------------------------


def test_rl009_fires_on_handoffs_and_unkeyed_round_state():
    report = findings("rl009_bad.py", "RL009", relpath="core/rl009_bad.py")
    assert locations(report) == [
        ("RL009", 10),  # create_task then append
        ("RL009", 15),  # ensure_future then item assignment
        ("RL009", 20),  # pool.submit then append
        ("RL009", 40),  # un-keyed round-scoped attribute
    ]
    assert all(d.severity == "error" for d in report.diagnostics)
    assert "handed to a concurrent task" in report.diagnostics[0].message
    assert "pipeline_depth" in report.diagnostics[3].message


def test_rl009_clean_fixture_is_clean():
    report = findings("rl009_ok.py", "RL009", relpath="core/rl009_ok.py")
    assert report.diagnostics == []


def test_rl009_noqa_and_baseline_round_trip():
    from repro.analysis.baseline import Baseline

    text = load("rl009_bad.py", "core/rl009_bad.py").text
    text = text.replace(
        'work.append(4)  # RL009 here',
        'work.append(4)  # repro: noqa-RL009 -- test justification',
    )
    source = SourceFile.from_source(text, relpath="core/rl009_bad.py")
    report = lint_sources([source], rules=rules_by_id(["RL009"]))
    assert report.suppressed == 1
    baseline = Baseline.from_diagnostics(report.diagnostics, reason="known")
    again = lint_sources(
        [source], rules=rules_by_id(["RL009"]), baseline=baseline
    )
    assert again.diagnostics == []
    assert again.stale_baseline == []
