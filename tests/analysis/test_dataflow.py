"""Taint engine semantics: propagation, gating, interprocedural flow."""

from repro.analysis import SourceFile
from repro.analysis.dataflow import TaintAnalysis, TaintCatalog
from repro.analysis.project import ProjectGraph

CATALOG = TaintCatalog(
    source_calls=frozenset({"loads"}),
    source_methods=frozenset({"on_message"}),
    source_param_names=frozenset({"message", "payload"}),
    sanitizers=frozenset({"verify", "is_quorum"}),
    sink_calls={"apply": "state-machine apply", "sign_share": "signing"},
    sink_write_receivers=frozenset({"journal"}),
    source_receivers=frozenset({"wire", "codec"}),
)


def analyze(text: str, relpath: str = "core/flow.py") -> TaintAnalysis:
    source = SourceFile.from_source(text, relpath=relpath)
    graph = ProjectGraph.build([source])
    return TaintAnalysis.run(graph, CATALOG)


def sink_lines(analysis: TaintAnalysis) -> list[int]:
    return sorted(finding.hit.line for finding in analysis.sink_findings())


def test_on_message_param_to_sink_is_flagged():
    analysis = analyze(
        "class Proto:\n"
        "    def on_message(self, ctx, sender, message):\n"
        "        self.machine.apply(message)\n"
    )
    assert sink_lines(analysis) == [3]


def test_verify_in_test_gates_the_fall_through():
    analysis = analyze(
        "class Proto:\n"
        "    def on_message(self, ctx, sender, message):\n"
        "        if not ctx.keys.verify(message):\n"
        "            return\n"
        "        self.machine.apply(message)\n"
    )
    assert sink_lines(analysis) == []


def test_gating_in_one_branch_does_not_leak_into_siblings():
    analysis = analyze(
        "class Proto:\n"
        "    def on_message(self, ctx, sender, message):\n"
        "        if sender == 0:\n"
        "            ctx.keys.verify(message)\n"
        "        elif sender == 1:\n"
        "            self.machine.apply(message)\n"
    )
    assert sink_lines(analysis) == [6]


def test_taint_flows_through_call_into_callee_sink():
    analysis = analyze(
        "class Proto:\n"
        "    def on_message(self, ctx, sender, message):\n"
        "        self._handle(ctx, message)\n"
        "\n"
        "    def _handle(self, ctx, request):\n"
        "        self.machine.apply(request)\n"
    )
    assert sink_lines(analysis) == [6]


def test_taint_flows_through_return_summaries():
    analysis = analyze(
        "class Proto:\n"
        "    def on_message(self, ctx, sender, message):\n"
        "        decoded = self._decode(message)\n"
        "        self.machine.apply(decoded)\n"
        "\n"
        "    def _decode(self, request):\n"
        "        return request\n"
    )
    assert sink_lines(analysis) == [4]


def test_source_call_requires_catalogued_receiver():
    tainted = analyze(
        "class Proto:\n"
        "    def run(self, ctx, wire, raw):\n"
        "        value = wire.loads(raw)\n"
        "        self.machine.apply(value)\n"
    )
    assert sink_lines(tainted) == [4]
    local = analyze(
        "class Proto:\n"
        "    def run(self, ctx, json, raw):\n"
        "        value = json.loads(raw)\n"
        "        self.machine.apply(value)\n"
    )
    assert sink_lines(local) == []


def test_field_stores_carry_taint_across_methods():
    analysis = analyze(
        "class Proto:\n"
        "    def on_message(self, ctx, sender, message):\n"
        "        self.pending = message\n"
        "\n"
        "    def flush(self, ctx):\n"
        "        self.machine.apply(self.pending)\n"
    )
    assert sink_lines(analysis) == [6]


def test_helper_that_verifies_gates_its_caller():
    analysis = analyze(
        "class Proto:\n"
        "    def on_message(self, ctx, sender, message):\n"
        "        if not self._valid(ctx, message):\n"
        "            return\n"
        "        self.machine.apply(message)\n"
        "\n"
        "    def _valid(self, ctx, request):\n"
        "        return ctx.keys.verify(request)\n"
    )
    assert sink_lines(analysis) == []


def test_strong_update_clears_taint():
    analysis = analyze(
        "class Proto:\n"
        "    def on_message(self, ctx, sender, message):\n"
        "        value = message\n"
        "        value = 0\n"
        "        self.machine.apply(value)\n"
    )
    assert sink_lines(analysis) == []


def test_loop_carried_taint_converges():
    analysis = analyze(
        "class Proto:\n"
        "    def on_message(self, ctx, sender, message):\n"
        "        queue = []\n"
        "        for item in message.entries:\n"
        "            queue.append(item)\n"
        "        for item in queue:\n"
        "            self.machine.apply(item)\n"
    )
    assert sink_lines(analysis) == [7]


def test_finding_chain_names_the_hops():
    analysis = analyze(
        "class Proto:\n"
        "    def on_message(self, ctx, sender, message):\n"
        "        self._handle(ctx, message)\n"
        "\n"
        "    def _handle(self, ctx, request):\n"
        "        self.machine.apply(request)\n"
    )
    [finding] = analysis.sink_findings()
    chain = " ".join(finding.chain)
    assert "Proto.on_message" in chain
    assert "Proto._handle" in chain
