"""Engine plumbing: discovery, baseline ratchet, output formats, CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    BaselineError,
    SourceFile,
    discover_files,
    format_json,
    lint_sources,
    run_lint,
    rules_by_id,
    write_baseline,
)
from repro.analysis.source import LintSyntaxError, package_relative_path
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

VIOLATION = "def f(n, t):\n    return n - t\n"


def _report(text: str = VIOLATION, relpath: str = "core/example.py", baseline=None):
    source = SourceFile.from_source(text, relpath=relpath)
    return lint_sources([source], rules=rules_by_id(["RL001"]), baseline=baseline)


# -- discovery / parsing --------------------------------------------------------


def test_discover_files_expands_directories_sorted(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    sub = tmp_path / "sub"
    sub.mkdir()
    (sub / "a.py").write_text("y = 2\n")
    (sub / "notes.txt").write_text("not python\n")
    files = discover_files([tmp_path])
    assert files == [tmp_path / "b.py", sub / "a.py"]


def test_discover_files_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        discover_files([tmp_path / "nope"])


def test_package_relative_path():
    assert package_relative_path(Path("/x/src/repro/core/a.py")) == "core/a.py"
    assert package_relative_path(Path("/x/elsewhere/a.py")) == "a.py"


def test_syntax_error_is_reported_not_raised(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    report = run_lint([tmp_path])
    assert not report.ok
    assert report.errors and "broken.py" in report.errors[0]
    with pytest.raises(LintSyntaxError):
        SourceFile.from_source("def f(:\n")


# -- baseline ratchet -----------------------------------------------------------


def test_baseline_absorbs_known_finding():
    baseline = Baseline(
        entries=[BaselineEntry(rule="RL001", path="core/example.py", code="return n - t")]
    )
    report = _report(baseline=baseline)
    assert report.ok
    assert len(report.baselined) == 1
    assert report.stale_baseline == []


def test_baseline_matching_ignores_line_numbers():
    baseline = Baseline(
        entries=[BaselineEntry(rule="RL001", path="core/example.py", code="return n - t", line=999)]
    )
    shifted = "# a new leading comment\n\n\n" + VIOLATION
    assert _report(text=shifted, baseline=baseline).ok


def test_baseline_count_limits_occurrences():
    baseline = Baseline(
        entries=[BaselineEntry(rule="RL001", path="core/example.py", code="return n - t")]
    )
    doubled = "def f(n, t):\n    return n - t\n\ndef g(n, t):\n    return n - t\n"
    report = _report(text=doubled, baseline=baseline)
    assert len(report.baselined) == 1
    assert len(report.diagnostics) == 1  # the second identical line is new


def test_stale_baseline_entry_reported():
    baseline = Baseline(
        entries=[BaselineEntry(rule="RL001", path="core/example.py", code="return n - t")]
    )
    report = _report(text="def f():\n    return 0\n", baseline=baseline)
    assert report.ok  # stale entries do not fail the lint itself ...
    assert len(report.stale_baseline) == 1  # ... but the guard test checks them


def test_baseline_round_trip(tmp_path):
    report = _report()
    path = tmp_path / "baseline.json"
    write_baseline(report, path)
    loaded = Baseline.load(path)
    assert [e.fingerprint() for e in loaded.entries] == [
        ("RL001", "core/example.py", "return n - t")
    ]
    assert _report(baseline=loaded).ok


def test_malformed_baseline_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{\"version\": 99}")
    with pytest.raises(BaselineError):
        Baseline.load(path)
    path.write_text("not json")
    with pytest.raises(BaselineError):
        Baseline.load(path)


# -- output formats -------------------------------------------------------------


def test_text_format_mentions_rule_and_location():
    report = _report()
    text = report.format_text()
    assert "core/example.py:2:" in text
    assert "RL001" in text
    assert "1 finding(s)" in text


def test_json_format_is_machine_readable():
    report = _report()
    data = json.loads(format_json(report))
    assert data["ok"] is False
    assert data["files_scanned"] == 1
    [diag] = data["diagnostics"]
    assert diag["rule"] == "RL001"
    assert diag["line"] == 2
    assert diag["code"] == "return n - t"


def test_unknown_rule_id_rejected():
    with pytest.raises(KeyError):
        rules_by_id(["RL999"])


# -- severity, timings, parallelism ---------------------------------------------


def _warning_report():
    # A noqa naming a nonexistent rule yields an RL000 *warning* only.
    source = SourceFile.from_source(
        "x = 1  # repro: noqa-RL998\n", relpath="core/warned.py"
    )
    return lint_sources([source], rules=rules_by_id(["RL001"]))


def test_warnings_do_not_fail_the_lint():
    report = _warning_report()
    assert report.ok
    assert report.error_count == 0
    assert report.warning_count == 1
    [diag] = report.diagnostics
    assert diag.rule == "RL000"
    assert diag.severity == "warning"
    assert "RL998" in diag.message


def test_error_counts_split_by_severity():
    report = _report()
    assert report.error_count == 1
    assert report.warning_count == 0
    assert "1 error(s), 0 warning(s)" in report.format_text()


def test_per_rule_timings_recorded_and_shown_verbose():
    report = _report()
    assert "RL001" in report.timings
    assert report.timings["RL001"] >= 0.0
    assert "timing: RL001" in report.format_text(verbose=True)
    assert "timing:" not in report.format_text(verbose=False)


def test_parallel_jobs_report_matches_serial(tmp_path):
    for index in range(10):
        (tmp_path / f"mod{index}.py").write_text(VIOLATION)
    serial = run_lint([tmp_path])
    parallel = run_lint([tmp_path], jobs=2)
    assert [d.fingerprint() for d in parallel.diagnostics] == [
        d.fingerprint() for d in serial.diagnostics
    ]
    assert parallel.files_scanned == serial.files_scanned == 10


# -- noqa suppression edge cases -------------------------------------------------


def test_noqa_on_decorator_line_suppresses_the_decorated_def():
    # RL004 anchors on the `class` line; the suppression sits on the
    # decorator line above it and must still apply.
    text = (
        "from dataclasses import dataclass\n"
        "\n"
        "\n"
        "@dataclass  # repro: noqa-RL004\n"
        "class Ghost:\n"
        "    round: int\n"
        "\n"
        "\n"
        "class Proto:\n"
        "    def on_start(self, ctx):\n"
        "        ctx.send(0, Ghost(round=1))\n"
        "\n"
        "    def on_message(self, ctx, sender, message):\n"
        "        return isinstance(message, Ghost)\n"
    )
    source = SourceFile.from_source(text, relpath="core/example.py")
    report = lint_sources([source], rules=rules_by_id(["RL004"]))
    assert report.diagnostics == []
    assert report.suppressed == 1


def test_noqa_on_multiline_statement_continuation_suppresses():
    text = (
        "def f(n, t):\n"
        "    return (\n"
        "        n - t  # repro: noqa-RL001\n"
        "    )\n"
    )
    source = SourceFile.from_source(text, relpath="core/example.py")
    report = lint_sources([source], rules=rules_by_id(["RL001"]))
    assert report.diagnostics == []
    assert report.suppressed == 1


def test_noqa_naming_unknown_rule_warns_not_silently_passes():
    report = _warning_report()
    assert report.warning_count == 1
    assert "unknown rule RL998" in report.diagnostics[0].message


def test_noqa_known_rule_produces_no_unknown_warning():
    source = SourceFile.from_source(
        "def f(n, t):\n    return n - t  # repro: noqa-RL001\n",
        relpath="core/example.py",
    )
    report = lint_sources([source], rules=rules_by_id(["RL001"]))
    assert report.diagnostics == []
    assert report.suppressed == 1


# -- baseline reason preservation ------------------------------------------------


def test_write_baseline_preserves_existing_reasons(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(_report(), path)
    loaded = Baseline.load(path)
    loaded.entries[0].reason = "hand-written protocol justification"
    loaded.write(path)

    report = _report(baseline=Baseline.load(path))
    assert report.ok
    write_baseline(report, path)
    assert (
        Baseline.load(path).entries[0].reason
        == "hand-written protocol justification"
    )


def test_write_baseline_new_entries_get_placeholder(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(_report(), path)
    [entry] = Baseline.load(path).entries
    assert "add a specific justification" in entry.reason


# -- SARIF -----------------------------------------------------------------------


def test_sarif_output_shape_and_content():
    from repro.analysis import format_sarif

    report = _report()
    data = json.loads(format_sarif(report))
    assert data["version"] == "2.1.0"
    [run] = data["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert "RL001" in rule_ids and "RL006" in rule_ids and "RL007" in rule_ids
    [result] = run["results"]
    assert result["ruleId"] == "RL001"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/core/example.py"
    assert location["region"]["startLine"] == 2


def test_sarif_emits_no_results_for_clean_or_baselined_report():
    from repro.analysis import format_sarif

    baseline = Baseline(
        entries=[BaselineEntry(rule="RL001", path="core/example.py", code="return n - t")]
    )
    report = _report(baseline=baseline)
    data = json.loads(format_sarif(report))
    assert data["runs"][0]["results"] == []
    assert data["runs"][0]["invocations"][0]["executionSuccessful"] is True


def test_cli_sarif_format(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text(VIOLATION)
    rc = main(["lint", str(target), "--no-baseline", "--format", "sarif"])
    assert rc == 1
    data = json.loads(capsys.readouterr().out)
    assert data["runs"][0]["results"][0]["ruleId"] == "RL001"


# -- CLI ------------------------------------------------------------------------


def test_cli_lint_exits_nonzero_on_findings(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text(VIOLATION)
    rc = main(["lint", str(target), "--no-baseline"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "RL001" in out


def test_cli_lint_exits_zero_on_clean_tree(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("def f(ctx, received):\n    return ctx.quorum.is_quorum(received)\n")
    rc = main(["lint", str(target), "--no-baseline"])
    assert rc == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_lint_json_format(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text(VIOLATION)
    rc = main(["lint", str(target), "--no-baseline", "--format", "json"])
    assert rc == 1
    data = json.loads(capsys.readouterr().out)
    assert data["diagnostics"][0]["rule"] == "RL001"


def test_cli_lint_write_and_use_baseline(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text(VIOLATION)
    baseline = tmp_path / "baseline.json"
    rc = main(["lint", str(target), "--baseline", str(baseline), "--write-baseline"])
    assert rc == 0
    assert baseline.exists()
    capsys.readouterr()
    rc = main(["lint", str(target), "--baseline", str(baseline)])
    assert rc == 0
    assert "1 baselined" in capsys.readouterr().out


def test_cli_lint_rule_selection(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(VIOLATION)
    assert main(["lint", str(target), "--no-baseline", "--rules", "RL002"]) == 0
    assert main(["lint", str(target), "--no-baseline", "--rules", "RL001"]) == 1


def test_cli_lint_rejects_unknown_rule(tmp_path, capsys):
    assert main(["lint", str(tmp_path), "--rules", "RL999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_lint_missing_path(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nope"), "--no-baseline"]) == 2
    assert "repro lint:" in capsys.readouterr().err


def test_cli_help_lists_lint(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
    assert "lint" in capsys.readouterr().out
