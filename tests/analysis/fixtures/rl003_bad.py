"""RL003 fixture: nondeterminism in protocol code (linted as if in core/)."""

import random
import time
from datetime import datetime


def choose_leader(parties):
    return random.choice(sorted(parties))  # line 9: module-level random


def timestamp():
    return time.time()  # line 13: wall clock


def started_at():
    return datetime.now()  # line 17: wall clock


def evict(cache: dict):
    return cache.popitem()  # line 21: arrival-order-dependent pop


def first_vote(votes: dict):
    for party, vote in votes.items():  # line 25: unsorted dict iteration
        return party, vote
    return None


def vote_list(votes: dict):
    return [v for v in votes.values()]  # line 31: order-sensitive comprehension


def first_matching(votes: dict, value):
    return next(v for v in votes.values() if v == value)  # line 35: generator to next()
