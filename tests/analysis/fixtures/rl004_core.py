"""RL004 fixture: message dataclasses (linted with relpath core/rl004_core.py).

``Registered`` is sent, registered and handled (clean).
``SentUnregistered`` is sent and handled but missing from the codec list.
``RegisteredUnhandled`` is in the codec list but nothing dispatches on it.
``PlainRecord`` is a dataclass that is never sent nor registered: not a
message, so the rule ignores it entirely.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Registered:
    round: int


@dataclass(frozen=True)
class SentUnregistered:
    round: int


@dataclass(frozen=True)
class RegisteredUnhandled:
    round: int


@dataclass(frozen=True)
class PlainRecord:
    label: str


class Protocol:
    def on_start(self, ctx):
        ctx.broadcast(Registered(round=1))
        ctx.send(0, SentUnregistered(round=1))

    def on_message(self, ctx, sender, message):
        if isinstance(message, Registered):
            return "registered"
        if isinstance(message, SentUnregistered):
            return "sent-unregistered"
        return None
