"""Suppression fixture: inline ``# repro: noqa`` markers silence findings."""

import random


def suppressed_single(parties, n, t):
    needed = n - t  # repro: noqa-RL001
    return len(parties) >= needed


def suppressed_list(votes: dict, t: int):
    coin = random.random()  # repro: noqa-RL001,RL003
    return coin, 2 * t + 1  # repro: noqa-RL001


def suppressed_all(votes: dict):
    for party, vote in votes.items():  # repro: noqa
        return party, vote
    return None


def not_suppressed(n, t):
    return n - t  # a plain comment does not suppress
