"""RL004 fixture: a miniature net/wire.py registry (relpath net/wire.py)."""


def _ensure_registry(register, rl004_core):
    classes = [
        rl004_core.Registered,
        rl004_core.RegisteredUnhandled,
    ]
    for cls in classes:
        register(cls)
