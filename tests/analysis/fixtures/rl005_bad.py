"""RL005 fixture: async-hygiene violations (linted as if in core/)."""


class Handler:
    async def flush(self, ctx):
        self.pending = ()

    async def on_message(self, ctx, sender, message):
        self.flush(ctx)  # line 9: coroutine never awaited
        value = await ctx.receive()
        self.decided_value = value  # line 11: post-await write, no guard re-check
