"""RL005 mode-5 clean fixture: every read is bounded or justified."""
import asyncio


async def drain_stdout(proc):
    raw = await proc.stdout.readline()  # repro: noqa-RL005 EOF-bounded pipe drain
    return raw


async def await_event(stop: asyncio.Event):
    await asyncio.wait_for(stop.wait(), 5.0)


async def pull_queue(queue: asyncio.Queue):
    item = await asyncio.wait_for(queue.get(), timeout=1.0)
    return item


async def poll_lines(lines: list[str]):
    # sleep is not a read; bounded by construction.
    while not lines:
        await asyncio.sleep(0.05)
    return lines[0]
