"""RL009 negatives: ownership transferred or state properly keyed."""

import asyncio


class Spawner:
    async def copy_at_handoff(self):
        work = [1, 2, 3]
        asyncio.create_task(self._consume(list(work)))
        work.append(4)  # caller kept ownership: a copy was handed off

    async def handoff_then_release(self):
        work = [1, 2, 3]
        asyncio.create_task(self._consume(work))
        work = [5]  # rebinding releases the handed-off object
        work.append(6)

    async def mutate_before_handoff(self):
        work = [1, 2, 3]
        work.append(4)
        asyncio.create_task(self._consume(work))

    async def _consume(self, payload):
        await asyncio.sleep(0)
        return payload


class PipelinedProtocol:
    """Keys every piece of round-scoped state by round number."""

    def __init__(self, depth):
        self.pipeline_depth = depth
        self.round = 0
        self.highest_started = 0
        self.proposals = {}

    def on_propose(self, sender, message):
        r = message.round
        if r >= self.round + self.pipeline_depth:
            return
        self.proposals.setdefault(r, {})[sender] = message.value
        if r > self.highest_started:
            self.highest_started = r  # allowlisted monotone cursor
