"""RL005 transport fixture: every task retained + observed, sends awaited."""


class Channel:
    def start(self, loop, writer):
        self._task = loop.create_task(self.pump(writer))
        self._task.add_done_callback(lambda t: t.cancelled() or t.exception())

    async def run(self, loop, writer):
        task = loop.create_task(self.pump(writer))
        task.add_done_callback(lambda t: t.cancelled() or t.exception())
        await writer.drain()
        return task

    async def pump(self, writer):
        writer.write(b"x")
        await writer.drain()

    def stop(self):
        self._task.cancel()
