"""RL007 fixture: handler reachability vs the wire registry.

``Ghost`` is sent and dispatched by a *reachable* handler but never
registered — works in the in-process simulator, undecodable over real
bytes (error).  ``OrphanRegistered`` is registered and sent, but its
only dispatch site sits in a private method nothing calls (warning).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Ghost:
    round: int


@dataclass(frozen=True)
class OrphanRegistered:
    round: int


class Protocol:
    def on_start(self, ctx):
        ctx.broadcast(Ghost(round=1))
        ctx.broadcast(OrphanRegistered(round=1))

    def on_message(self, ctx, sender, message):
        if isinstance(message, Ghost):
            return "ghost"
        return None

    def _forgotten_handler(self, ctx, message):
        if isinstance(message, OrphanRegistered):
            return "orphan"
        return None
