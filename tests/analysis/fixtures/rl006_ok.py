"""RL006 fixture: the same deliver path, properly gated (stays quiet).

Identical flows to ``rl006_bad.py`` but every source -> sink path runs
through a catalogued sanitizer first — the early-return ``verify`` gate
on the submit path and a quorum check on the deliver path.  The seeded
regression test strips the ``verify`` gate from this file's text and
asserts RL006 starts firing.
"""


class Replica:
    def __init__(self, state_machine, keys):
        self.state_machine = state_machine
        self.keys = keys

    def on_message(self, ctx, sender, message):
        self._on_submit(ctx, sender, message)

    def _on_submit(self, ctx, sender, message):
        if not self.keys.verify(message.operation, message.signature):
            return
        result = self.state_machine.apply(message.operation)
        share = self.keys.sign_share(result)
        ctx.send(sender, share)

    def on_deliver(self, ctx, sender, wire, raw_bytes):
        request = wire.loads(raw_bytes)
        if not ctx.quorum.is_quorum(request.supporters):
            return
        self.state_machine.apply(request.operation)
