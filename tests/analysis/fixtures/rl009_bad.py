"""RL009 positives: mutate-after-handoff and un-keyed round state."""

import asyncio


class Spawner:
    async def mutate_after_create_task(self):
        work = [1, 2, 3]
        asyncio.create_task(self._consume(work))
        work.append(4)  # RL009 here

    async def mutate_after_ensure_future(self):
        options = {"fast": True}
        asyncio.ensure_future(self._consume(options))
        options["fast"] = False  # RL009 here

    def mutate_after_pool_submit(self, pool):
        batch = list(range(8))
        pool.submit(self._consume, batch)
        batch.append(9)  # RL009 here

    async def _consume(self, payload):
        await asyncio.sleep(0)
        return payload


class PipelinedProtocol:
    """Consults pipeline_depth, so rounds run concurrently."""

    def __init__(self, depth):
        self.pipeline_depth = depth
        self.round = 0
        self.current_proposal = None
        self.proposals = {}

    def on_propose(self, sender, message):
        r = message.round
        if r >= self.round + self.pipeline_depth:
            return
        self.current_proposal = message.value  # RL009 here (un-keyed)
