"""RL002 fixture: discarded verification results (linted as if in core/)."""


def deliver(key, statement, message):
    key.verify(statement, message.signature)  # line 5: result discarded
    return message.payload


def collect(scheme, statement, shares):
    scheme.combine(statement, shares)  # line 10: result discarded
    scheme.verify_share(statement, shares[0])  # line 11: result discarded


def screen(scheme, ct, name, group, items, shares):
    scheme.verify_shares(ct, shares)  # line 15: batch result discarded
    verify_dleq_batch(group, items)  # line 16: batch verdict discarded
    scheme.verify_batch(group, items)  # line 17: batch verdict discarded
