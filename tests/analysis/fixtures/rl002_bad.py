"""RL002 fixture: discarded verification results (linted as if in core/)."""


def deliver(key, statement, message):
    key.verify(statement, message.signature)  # line 5: result discarded
    return message.payload


def collect(scheme, statement, shares):
    scheme.combine(statement, shares)  # line 10: result discarded
    scheme.verify_share(statement, shares[0])  # line 11: result discarded
