"""RL005 clean fixture: awaited coroutines and guarded post-await writes."""


class Handler:
    async def flush(self, ctx):
        self.pending = ()

    async def on_message(self, ctx, sender, message, r):
        await self.flush(ctx)
        value = await ctx.receive()
        if r != self.round:  # guard re-checked after the await
            return
        self.decided_value = value
