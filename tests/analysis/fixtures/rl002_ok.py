"""RL002 clean fixture: every verification gates progress."""


def deliver(key, statement, message):
    if not key.verify(statement, message.signature):
        return None
    return message.payload


def collect(scheme, statement, shares):
    certificate = scheme.combine(statement, shares)
    valid = [s for s in shares if scheme.verify_share(statement, s)]
    return certificate, valid


def screen(scheme, ct, group, items, shares):
    valid = scheme.verify_shares(ct, shares)
    if not verify_dleq_batch(group, items):
        return None
    return valid
