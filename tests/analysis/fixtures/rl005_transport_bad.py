"""RL005 transport fixture: orphaned tasks and un-awaited sends."""


class Channel:
    async def run(self, loop, writer):
        loop.create_task(self.pump(writer))  # line 6: task dropped
        task = loop.create_task(self.pump(writer))  # line 7: never observed
        writer.drain()  # line 8: awaitable dropped
        return task

    async def pump(self, writer):
        writer.write(b"x")
        await writer.drain()
