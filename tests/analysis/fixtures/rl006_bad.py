"""RL006 fixture: unsanitized network input reaching protected sinks.

A miniature replica (linted with relpath ``smr/rl006_bad.py``): the
``on_message`` parameter is Byzantine input by definition, and the
``wire.loads`` result on the deliver path is a taint source; neither
flow passes a verify/combine/quorum gate before ``apply`` /
``sign_share``.
"""


class Replica:
    def __init__(self, state_machine, keys):
        self.state_machine = state_machine
        self.keys = keys

    def on_message(self, ctx, sender, message):
        self._on_submit(ctx, sender, message)

    def _on_submit(self, ctx, sender, message):
        result = self.state_machine.apply(message.operation)
        share = self.keys.sign_share(result)
        ctx.send(sender, share)

    def on_deliver(self, ctx, sender, wire, raw_bytes):
        request = wire.loads(raw_bytes)
        self.state_machine.apply(request.operation)
