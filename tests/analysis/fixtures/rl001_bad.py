"""RL001 fixture: raw quorum arithmetic (linted as if in core/)."""


def quorum_reached(received: set, n: int, t: int) -> bool:
    return len(received) >= n - t  # line 5: n - t


def strong_quorum(received: set, t: int) -> bool:
    return len(received) >= 2 * t + 1  # line 9: 2*t + 1


def resilience_bound(n: int) -> int:
    return n // 3  # line 13: n // 3


def commuted(t: int) -> int:
    return 1 + t * 2  # line 17: commuted k*t + 1


def q3_check(n: int, t: int) -> bool:
    return n > 3 * t  # line 21: bare 3*t in a comparison
