"""RL008 negatives: every span is re-validated, re-read, or never stale."""

import asyncio


class Counter:
    def __init__(self):
        self.count = 0
        self.slots = {}
        self.epoch = 0

    async def revalidated(self):
        # The `if` test re-reads the cell after the suspension, so the
        # write is guarded (the fall-through path is validated because
        # the mismatch branch terminates).
        current = self.count
        await asyncio.sleep(0)
        if current != self.count:
            return
        self.count = current + 1

    async def reread(self):
        # Re-reading after the await makes the write fresh.
        await asyncio.sleep(0)
        current = self.count
        self.count = current + 1

    async def no_suspension_between(self):
        # The write precedes the await: nothing is stale yet.
        current = self.count
        self.count = current + 1
        await asyncio.sleep(0)

    async def alias_revalidated(self):
        # Alias re-checked against the container after the suspension.
        slot = self.slots.get("a")
        await asyncio.sleep(0)
        if self.slots.get("a") is not slot:
            return
        slot.value = 1

    async def unrelated_write(self):
        # The post-await write does not derive from the stale read.
        current = self.count
        await asyncio.sleep(0)
        self.epoch = 1
        del current

    async def asserted(self):
        snapshot = self.count
        await asyncio.sleep(0)
        assert snapshot == self.count
        self.count = snapshot + 1
