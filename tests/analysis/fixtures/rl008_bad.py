"""RL008 positives: stale reads across awaits, one per hazard kind."""

import asyncio


class Counter:
    def __init__(self):
        self.count = 0
        self.slots = {}
        self.pending = {}

    async def lost_update(self):
        # kind "write": classic read / suspend / write-back.
        current = self.count
        await asyncio.sleep(0)
        self.count = current + 1  # RL008 here

    async def single_statement_rmw(self):
        # kind "write", single-statement form: the read happens before
        # the await inside the same expression.
        self.count = self.count + await self._increment()  # RL008 here

    async def helper_write(self):
        # kind "helper": the stale value reaches the cell through a
        # sync helper's parameter.
        snapshot = self.count
        await asyncio.sleep(0)
        self._store(snapshot)  # RL008 here

    async def alias_mutation(self):
        # kind "alias": an object obtained from a cell is mutated after
        # the suspension; the container may have been repopulated.
        slot = self.slots.get("a")
        await asyncio.sleep(0)
        slot.value = 1  # RL008 here

    async def _increment(self):
        await asyncio.sleep(0)
        return 1

    def _store(self, value):
        self.count = value
