"""RL003 clean fixture: sanctioned determinism patterns."""

import random


def make_rng(seed: int) -> random.Random:
    # Constructing a seeded generator is the sanctioned pattern.
    return random.Random(seed)


def choose_leader(ctx, parties):
    return ctx.rng.choice(sorted(parties))


def first_vote(votes: dict):
    for party in sorted(votes):
        return party, votes[party]
    return None


def vote_values(votes: dict):
    # Set/dict comprehensions are order-insensitive: allowed.
    return {v.value for v in votes.values()}


def share_map(votes: dict):
    return {p: v.share for p, v in votes.items()}


def tally(votes: dict) -> int:
    # Order-insensitive reducers over generators are allowed.
    return sum(v.weight for v in votes.values())


def all_bound(votes: dict, bound) -> bool:
    return all(v in bound for v in votes.values())
