"""RL007 fixture: miniature wire registry (linted with relpath net/wire.py)."""


def _ensure_registry(register, rl007_core):
    classes = [
        rl007_core.OrphanRegistered,
    ]
    for cls in classes:
        register(cls)
