"""RL005 mode-5 fixture: unbounded network/process reads (loaded with a
net/runtime.py-style relpath so the chaos-layer scope applies)."""
import asyncio


async def drain_stdout(proc):
    raw = await proc.stdout.readline()  # line 7: no timeout
    return raw


async def await_event(stop: asyncio.Event):
    await stop.wait()  # line 12: no timeout


async def pull_queue(queue: asyncio.Queue):
    item = await queue.get()  # line 16: no timeout
    return item


async def read_exact(reader: asyncio.StreamReader):
    return await reader.readexactly(4)  # line 21: no timeout
