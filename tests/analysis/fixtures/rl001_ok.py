"""RL001 clean fixture: quorum checks via the QuorumSystem, benign arithmetic."""


def quorum_reached(ctx, received: set) -> bool:
    return ctx.quorum.is_quorum(received)


def strong_quorum(ctx, received: set) -> bool:
    return ctx.quorum.is_strong_quorum(received)


def polynomial_degree(t: int) -> int:
    # t + 1 alone is threshold-crypto share counting, not quorum logic.
    return t + 1


def unrelated_arithmetic(n: int) -> int:
    return n // 2 + 3 * n
