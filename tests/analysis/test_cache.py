"""The incremental lint cache: hits skip work, results stay identical."""

import json

import pytest

from repro.analysis import engine
from repro.analysis.cache import LintCache, compute_salt
from repro.analysis.source import SourceFile

BAD = "import random\n\n\ndef pick(xs):\n    return random.choice(xs)\n"
OK = "def double(x):\n    return 2 * x\n"


@pytest.fixture
def tree(tmp_path):
    # Under a `repro/` directory so package_relative_path puts the
    # files in the rules' core/ scope.
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD)
    (pkg / "ok.py").write_text(OK)
    return tmp_path / "repro"


def _run(tree, cache_path, **kwargs):
    return engine.run_lint([tree], cache_path=cache_path, **kwargs)


def _findings(report):
    return [d.to_dict() for d in report.diagnostics]


def test_cached_rerun_is_identical_and_skips_all_work(tree, tmp_path, monkeypatch):
    cache_path = tmp_path / ".lint-cache.json"
    first = _run(tree, cache_path)
    assert any(d.rule == "RL003" for d in first.diagnostics)
    assert cache_path.exists()

    # A fully-unchanged tree must not be parsed, let alone re-checked.
    def boom(*args, **kwargs):
        raise AssertionError("cache miss on an unchanged tree")

    monkeypatch.setattr(engine, "_scan_one", boom)
    monkeypatch.setattr(SourceFile, "from_path", boom)
    second = _run(tree, cache_path)
    assert _findings(second) == _findings(first)
    assert second.suppressed == first.suppressed
    assert second.files_scanned == first.files_scanned


def test_no_cache_path_matches_cached_results(tree, tmp_path):
    cached = _run(tree, tmp_path / ".lint-cache.json")
    uncached = _run(tree, None)
    assert _findings(cached) == _findings(uncached)


def test_single_file_change_invalidates_exactly_that_file(tree, tmp_path):
    cache_path = tmp_path / ".lint-cache.json"
    _run(tree, cache_path)
    (tree / "core" / "ok.py").write_text(
        "import time\n\n\ndef now():\n    return time.time()\n"
    )
    report = _run(tree, cache_path)
    assert any(d.path == "core/ok.py" and d.rule == "RL003" for d in report.diagnostics)
    fresh = _run(tree, None)
    assert _findings(report) == _findings(fresh)


def test_rule_selection_salts_the_cache(tree, tmp_path):
    cache_path = tmp_path / ".lint-cache.json"
    subset = _run(tree, cache_path, rule_ids=["RL001"])
    assert subset.diagnostics == []
    full = _run(tree, cache_path)
    assert any(d.rule == "RL003" for d in full.diagnostics)


def test_corrupt_cache_is_treated_as_empty(tree, tmp_path):
    cache_path = tmp_path / ".lint-cache.json"
    cache_path.write_text("{not json")
    report = _run(tree, cache_path)
    fresh = _run(tree, None)
    assert _findings(report) == _findings(fresh)
    # And the bad file was replaced with a valid cache.
    data = json.loads(cache_path.read_text())
    assert data["salt"] == compute_salt(None)


def test_linter_edit_invalidates_via_salt(tree, tmp_path):
    cache_path = tmp_path / ".lint-cache.json"
    _run(tree, cache_path)
    loaded = LintCache.load(cache_path, compute_salt(None))
    assert loaded.files  # real salt: entries visible
    skewed = LintCache.load(cache_path, "different-salt")
    assert skewed.files == {}  # skewed salt: cold cache


def test_baseline_split_is_never_cached(tree, tmp_path):
    from repro.analysis.baseline import Baseline

    cache_path = tmp_path / ".lint-cache.json"
    first = _run(tree, cache_path)
    assert first.diagnostics
    # Write a baseline *after* the cache was populated: the cached
    # second run must still apply it.
    baseline_path = tmp_path / "lint-baseline.json"
    Baseline.from_diagnostics(first.diagnostics, reason="known").write(baseline_path)
    second = _run(tree, cache_path, baseline_path=baseline_path)
    assert second.diagnostics == []
    assert len(second.baselined) == len(first.diagnostics)
