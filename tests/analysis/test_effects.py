"""Unit tests for the concurrency-effect summary layer (analysis/effects.py)."""

from repro.analysis.effects import EffectAnalysis, format_cell
from repro.analysis.project import ProjectGraph
from repro.analysis.source import SourceFile


def analyze(text: str, relpath: str = "core/mod.py") -> EffectAnalysis:
    graph = ProjectGraph.build([SourceFile.from_source(text, relpath=relpath)])
    return EffectAnalysis.run(graph)


def test_direct_reads_writes_and_suspension():
    analysis = analyze(
        "import asyncio\n"
        "class C:\n"
        "    async def bump(self):\n"
        "        v = self.count\n"
        "        await asyncio.sleep(0)\n"
        "        self.count = v + 1\n"
        "    def peek(self):\n"
        "        return self.count\n"
    )
    bump = analysis.summaries["core/mod.py::C.bump"]
    assert ("C", "count") in bump.reads
    assert ("C", "count") in bump.writes
    assert bump.is_async and bump.suspends
    peek = analysis.summaries["core/mod.py::C.peek"]
    assert not peek.suspends
    assert ("C", "count") in peek.return_cells


def test_transitive_suspension_and_effects_through_calls():
    analysis = analyze(
        "import asyncio\n"
        "class C:\n"
        "    async def outer(self):\n"
        "        await self.inner()\n"
        "    async def inner(self):\n"
        "        await asyncio.sleep(0)\n"
        "        self.state = 1\n"
        "    async def caller(self):\n"
        "        self.sync_helper()\n"
        "    def sync_helper(self):\n"
        "        self.other = self.state\n"
    )
    outer = analysis.summaries["core/mod.py::C.outer"]
    assert outer.transitively_suspends
    assert ("C", "state") in outer.all_writes
    caller = analysis.summaries["core/mod.py::C.caller"]
    assert ("C", "state") in caller.all_reads
    assert ("C", "other") in caller.all_writes


def test_param_writes_propagate_through_helper_chain():
    analysis = analyze(
        "class C:\n"
        "    def store(self, value):\n"
        "        self.slot = value\n"
        "    def forward(self, item):\n"
        "        self.store(item)\n"
    )
    store = analysis.summaries["core/mod.py::C.store"]
    assert store.param_writes.get(1) == {("C", "slot")}
    forward = analysis.summaries["core/mod.py::C.forward"]
    assert ("C", "slot") in forward.param_writes.get(1, set())


def test_return_cells_through_sync_helper():
    analysis = analyze(
        "class C:\n"
        "    def snapshot(self):\n"
        "        return self.count\n"
        "    def indirect(self):\n"
        "        return self.snapshot()\n"
    )
    indirect = analysis.summaries["core/mod.py::C.indirect"]
    assert ("C", "count") in indirect.return_cells


def test_method_access_is_not_a_cell_read():
    analysis = analyze(
        "class C:\n"
        "    def run(self):\n"
        "        return self.helper()\n"
        "    def helper(self):\n"
        "        return 1\n"
    )
    run = analysis.summaries["core/mod.py::C.run"]
    assert ("C", "helper") not in run.return_cells


def test_global_cells_are_module_scoped():
    analysis = analyze(
        "import asyncio\n"
        "counter = 0\n"
        "async def bump():\n"
        "    global counter\n"
        "    v = counter\n"
        "    await asyncio.sleep(0)\n"
        "    counter = v + 1\n"
    )
    hazards = analysis.stale_write_hazards()
    assert len(hazards) == 1
    assert hazards[0].cell == ("module:core/mod.py", "counter")
    assert format_cell(hazards[0].cell) == "core/mod.py::counter"


def test_hazard_kinds_and_spans():
    analysis = analyze(
        "import asyncio\n"
        "class C:\n"
        "    async def lost_update(self):\n"
        "        v = self.count\n"
        "        await asyncio.sleep(0)\n"
        "        self.count = v + 1\n"
        "    async def via_helper(self):\n"
        "        v = self.count\n"
        "        await asyncio.sleep(0)\n"
        "        self.put(v)\n"
        "    def put(self, value):\n"
        "        self.count = value\n"
        "    async def alias(self):\n"
        "        entry = self.table.get('k')\n"
        "        await asyncio.sleep(0)\n"
        "        entry.field = 1\n"
    )
    kinds = {h.kind: h for h in analysis.stale_write_hazards()}
    assert set(kinds) == {"write", "helper", "alias"}
    write = kinds["write"]
    assert (write.read_line, write.suspend_line, write.write_line) == (4, 5, 6)
    assert kinds["helper"].detail == "put"
    assert kinds["alias"].cell == ("C", "table")


def test_revalidation_clears_the_hazard():
    analysis = analyze(
        "import asyncio\n"
        "class C:\n"
        "    async def guarded(self):\n"
        "        v = self.count\n"
        "        await asyncio.sleep(0)\n"
        "        if v != self.count:\n"
        "            return\n"
        "        self.count = v + 1\n"
    )
    assert analysis.stale_write_hazards() == []


def test_validation_expires_at_the_next_suspension():
    analysis = analyze(
        "import asyncio\n"
        "class C:\n"
        "    async def stale_again(self):\n"
        "        v = self.count\n"
        "        await asyncio.sleep(0)\n"
        "        if v != self.count:\n"
        "            return\n"
        "        await asyncio.sleep(0)\n"
        "        self.count = v + 1\n"
    )
    hazards = analysis.stale_write_hazards()
    assert [h.kind for h in hazards] == ["write"]
    assert hazards[0].suspend_line == 8  # the *second* suspension


def test_loop_carried_staleness_is_detected():
    analysis = analyze(
        "import asyncio\n"
        "class C:\n"
        "    async def pump(self):\n"
        "        v = self.count\n"
        "        while True:\n"
        "            await asyncio.sleep(0)\n"
        "            self.count = v + 1\n"
    )
    assert [h.kind for h in analysis.stale_write_hazards()] == ["write"]


def test_branch_merge_keeps_the_stale_path():
    # One branch suspends, the other does not: the merged state must
    # still treat the capture as stale (the suspension may have run).
    analysis = analyze(
        "import asyncio\n"
        "class C:\n"
        "    async def maybe(self, flag):\n"
        "        v = self.count\n"
        "        if flag:\n"
        "            await asyncio.sleep(0)\n"
        "        self.count = v + 1\n"
    )
    assert [h.kind for h in analysis.stale_write_hazards()] == ["write"]
