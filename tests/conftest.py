"""Shared fixtures: pre-dealt key systems and network builders.

Dealing keys is the expensive part of every protocol test, so dealt
systems are cached per (n, t / structure) at session scope; tests that
mutate nothing share them freely.  Networks and runtimes are cheap and
always built fresh.
"""

from __future__ import annotations

import pathlib
import random
import sys

import pytest

# Make tests/helpers.py importable as `helpers` from any test module.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.adversary import example1_access_formula, example1_structure
from repro.crypto import deal_system, small_group
from repro.crypto.dealer import SystemKeys


@pytest.fixture(scope="session")
def keys_4_1() -> SystemKeys:
    return deal_system(4, random.Random(1001), t=1, group=small_group())


@pytest.fixture(scope="session")
def keys_7_2() -> SystemKeys:
    return deal_system(7, random.Random(1002), t=2, group=small_group())


@pytest.fixture(scope="session")
def keys_example1() -> SystemKeys:
    return deal_system(
        9,
        random.Random(1003),
        structure=example1_structure(),
        access_formula=example1_access_formula(),
        group=small_group(),
    )


@pytest.fixture(scope="session")
def keys_4_1_rsa() -> SystemKeys:
    return deal_system(
        4,
        random.Random(1004),
        t=1,
        group=small_group(),
        signature_backend="rsa",
        rsa_bits=256,
    )
