"""Fair exchange TTP: atomicity of the swap."""

from repro.apps.fair_exchange import FairExchangeService
from repro.smr.state_machine import Request

A, B, EVE = 1000, 2000, 3000


def _req(op, client):
    _req.counter = getattr(_req, "counter", 0) + 1
    return Request(client=client, nonce=_req.counter, operation=op)


def _opened(service=None):
    s = service or FairExchangeService()
    s.apply(_req(("offer", "x1", "item-A", "item-B", B), A))
    return s


def test_offer_and_status():
    s = _opened()
    assert s.apply(_req(("status", "x1"), EVE)) == ("status", "x1", "offered")


def test_complete_exchange_both_collect():
    s = _opened()
    assert s.apply(_req(("accept", "x1", "item-B"), B)) == ("completed", "x1")
    assert s.apply(_req(("collect", "x1"), A)) == ("item", "x1", "item-B")
    assert s.apply(_req(("collect", "x1"), B)) == ("item", "x1", "item-A")


def test_collect_before_completion_denied():
    s = _opened()
    assert s.apply(_req(("collect", "x1"), A))[0] == "denied"
    assert s.apply(_req(("collect", "x1"), B))[0] == "denied"


def test_only_counterparty_may_accept():
    s = _opened()
    assert s.apply(_req(("accept", "x1", "item-B"), EVE))[0] == "denied"


def test_mismatched_item_rejected():
    s = _opened()
    assert s.apply(_req(("accept", "x1", "wrong-item"), B))[0] == "denied"
    # Exchange still open for the right item.
    assert s.apply(_req(("accept", "x1", "item-B"), B))[0] == "completed"


def test_third_party_cannot_collect():
    s = _opened()
    s.apply(_req(("accept", "x1", "item-B"), B))
    assert s.apply(_req(("collect", "x1"), EVE))[0] == "denied"


def test_abort_before_accept():
    s = _opened()
    assert s.apply(_req(("abort", "x1"), A)) == ("aborted", "x1")
    assert s.apply(_req(("accept", "x1", "item-B"), B))[0] == "denied"
    assert s.apply(_req(("collect", "x1"), A))[0] == "denied"


def test_abort_after_accept_denied():
    """Atomicity: once completed, neither side can back out."""
    s = _opened()
    s.apply(_req(("accept", "x1", "item-B"), B))
    assert s.apply(_req(("abort", "x1"), A))[0] == "denied"
    assert s.apply(_req(("collect", "x1"), B)) == ("item", "x1", "item-A")


def test_only_offerer_may_abort():
    s = _opened()
    assert s.apply(_req(("abort", "x1"), B))[0] == "denied"
    assert s.apply(_req(("abort", "x1"), EVE))[0] == "denied"


def test_duplicate_exchange_id_rejected():
    s = _opened()
    assert s.apply(_req(("offer", "x1", "i", "j", B), EVE))[0] == "denied"


def test_unknown_exchange_operations():
    s = FairExchangeService()
    assert s.apply(_req(("accept", "nope", "i"), B))[0] == "denied"
    assert s.apply(_req(("abort", "nope"), A))[0] == "denied"
    assert s.apply(_req(("status", "nope"), A)) == ("status", "nope", "unknown")


def test_malformed_operations():
    s = FairExchangeService()
    assert s.apply(_req((), A))[0] == "error"
    assert s.apply(_req(("offer", "x", "i", "j", "not-int"), A))[0] == "error"
    assert s.apply(_req(("collect",), A))[0] == "error"


def test_snapshot():
    s = _opened()
    snap = s.snapshot()
    assert snap == (("x1", "offered", A, B),)
