"""Hash-linked time-stamping: chain integrity and auditing."""

from repro.apps.timestamping import (
    GENESIS,
    TimestampingService,
    verify_chain_segment,
)
from repro.crypto.hashing import hash_bytes
from repro.smr.state_machine import Request


def _req(op, client=1000):
    _req.counter = getattr(_req, "counter", 0) + 1
    return Request(client=client, nonce=_req.counter, operation=op)


def _digest(text):
    return hash_bytes("timestamp-doc", text.encode())


def _stamped(service, text):
    return service.apply(_req(("stamp", _digest(text))))


class TestStamping:
    def test_sequential_stamps(self):
        s = TimestampingService()
        r1, r2 = _stamped(s, "a"), _stamped(s, "b")
        assert r1[1] == 1 and r2[1] == 2
        assert r1[5] is True and r2[5] is True

    def test_duplicate_returns_original(self):
        s = TimestampingService()
        first = _stamped(s, "doc")
        again = _stamped(s, "doc")
        assert again[1] == first[1]
        assert again[5] is False
        assert s.sequence == 1

    def test_head_advances_with_each_stamp(self):
        s = TimestampingService()
        heads = [s.head]
        for text in ("a", "b", "c"):
            _stamped(s, text)
            heads.append(s.head)
        assert len(set(heads)) == 4

    def test_anchor_and_proof(self):
        s = TimestampingService()
        _stamped(s, "x")
        anchor = s.apply(_req(("anchor",)))
        assert anchor == ("anchor", 1, s.head)
        proof = s.apply(_req(("proof", 1)))
        assert proof[0] == "proof" and proof[1][0] == 1

    def test_proof_out_of_range(self):
        s = TimestampingService()
        assert s.apply(_req(("proof", 1)))[0] == "error"
        assert s.apply(_req(("proof", 0)))[0] == "error"


class TestChainVerification:
    def test_server_side_audit(self):
        s = TimestampingService()
        for text in ("a", "b", "c", "d"):
            _stamped(s, text)
        assert s.apply(_req(("verify_chain", 1, 4))) == ("chain", True, 4)
        assert s.apply(_req(("verify_chain", 2, 2))) == ("chain", True, 2)
        assert s.apply(_req(("verify_chain", 0, 2)))[0] == "error"

    def test_client_side_audit_from_genesis(self):
        s = TimestampingService()
        for text in ("a", "b", "c"):
            _stamped(s, text)
        assert verify_chain_segment(s.records, GENESIS)

    def test_client_side_audit_from_anchor(self):
        s = TimestampingService()
        for text in ("a", "b", "c", "d"):
            _stamped(s, text)
        anchor_head = s.records[1][2]  # head after seq 2
        assert verify_chain_segment(s.records[2:], anchor_head)

    def test_tampered_digest_detected(self):
        s = TimestampingService()
        for text in ("a", "b", "c"):
            _stamped(s, text)
        forged = list(s.records)
        seq, digest, link = forged[1]
        forged[1] = (seq, _digest("evil"), link)
        assert not verify_chain_segment(forged, GENESIS)

    def test_reordering_detected(self):
        s = TimestampingService()
        for text in ("a", "b", "c"):
            _stamped(s, text)
        swapped = [s.records[0], s.records[2], s.records[1]]
        assert not verify_chain_segment(swapped, GENESIS)

    def test_deletion_detected(self):
        s = TimestampingService()
        for text in ("a", "b", "c"):
            _stamped(s, text)
        assert not verify_chain_segment(
            [s.records[0], s.records[2]], GENESIS
        )

    def test_wrong_anchor_detected(self):
        s = TimestampingService()
        _stamped(s, "a")
        assert not verify_chain_segment(s.records, hash_bytes("x", "y"))


def test_end_to_end_with_corruption():
    from repro.net.adversary import SilentNode
    from repro.smr import build_service
    from repro.apps.timestamping import TimestampClient

    dep = build_service(4, TimestampingService, t=1, seed=31)
    dep.controller.corrupt(dep.network, 0, SilentNode())
    client = TimestampClient(dep.new_client())
    dep.network.start()
    n1 = client.stamp(b"contract v1")
    dep.run_until_complete(client.client, [n1])
    n2 = client.stamp(b"contract v2")
    dep.run_until_complete(client.client, [n2])
    n3 = client.verify_chain(1, 2)
    results = dep.run_until_complete(client.client, [n3])
    assert results[n3].result == ("chain", True, 2)
    # Replicated chains identical on all honest servers.
    dep.network.run(max_steps=400_000)
    heads = {r.state_machine.head for r in dep.honest_replicas()}
    assert len(heads) == 1


def test_snapshot_and_determinism():
    a, b = TimestampingService(), TimestampingService()
    for s in (a, b):
        for text in ("x", "y"):
            _stamped(s, text)
    assert a.snapshot() == b.snapshot()
