"""Applications running on the real replicated stack, with corruptions."""

from repro.apps import (
    AuthenticationClient,
    AuthenticationService,
    CaClient,
    CertificationAuthority,
    DirectoryClient,
    DirectoryService,
    FairExchangeClient,
    FairExchangeService,
    NotaryClient,
    NotaryService,
)
from repro.net.adversary import SilentNode
from repro.smr import build_service


def test_ca_issues_verifiable_certificate_with_silent_corruption():
    dep = build_service(4, CertificationAuthority, t=1, seed=21)
    dep.controller.corrupt(dep.network, 1, SilentNode())
    ca = CaClient(dep.new_client())
    dep.network.start()
    nonce = ca.request_certificate("alice", 0xA1, {"name": "A", "email": "a@x"})
    results = dep.run_until_complete(ca.client, [nonce])
    cert = CaClient.parse_certificate(results[nonce])
    assert cert is not None and cert.subject == "alice"
    assert results[nonce].verify(
        dep.keys.public,
        ca.client.client_id,
        ("issue", "alice", 0xA1, (("email", "a@x"), ("name", "A"))),
    )


def test_directory_ownership_enforced_across_clients():
    dep = build_service(4, DirectoryService, t=1, seed=22)
    d1 = DirectoryClient(dep.new_client())
    d2 = DirectoryClient(dep.new_client())
    dep.network.start()
    n1 = d1.bind("name", "v1")
    dep.run_until_complete(d1.client, [n1])
    n2 = d2.rebind("name", "hijack")
    results = dep.run_until_complete(d2.client, [n2])
    assert results[n2].result == ("denied", "not owner")


def test_notary_confidential_registration_end_to_end():
    dep = build_service(4, NotaryService, t=1, causal=True, seed=23)
    notary = NotaryClient(dep.new_client(), confidential=True)
    dep.network.start()
    nonce = notary.register(b"the great invention")
    results = dep.run_until_complete(notary.client, [nonce])
    tag, seq, _digest, registrant, first = results[nonce].result
    assert (tag, seq, first) == ("registered", 1, True)
    assert registrant == notary.client.client_id


def test_authentication_lockout_is_replicated():
    dep = build_service(4, AuthenticationService, t=1, seed=24)
    auth = AuthenticationClient(dep.new_client())
    dep.network.start()
    nonces = [auth.enroll("bob", b"pw")]
    dep.run_until_complete(auth.client, nonces)
    bad = [auth.authenticate("bob", b"wrong") for _ in range(5)]
    dep.run_until_complete(auth.client, bad)
    final = auth.authenticate("bob", b"pw")
    results = dep.run_until_complete(auth.client, [final])
    assert results[final].result == ("denied", "locked")
    dep.network.run(max_steps=400_000)
    snapshots = {r.state_machine.snapshot() for r in dep.honest_replicas()}
    assert len(snapshots) == 1


def test_fair_exchange_end_to_end():
    dep = build_service(4, FairExchangeService, t=1, seed=25)
    a = FairExchangeClient(dep.new_client())
    b = FairExchangeClient(dep.new_client())
    dep.network.start()
    dep.run_until_complete(a.client, [a.offer("x", "A-item", "B-item", b.client.client_id)])
    dep.run_until_complete(b.client, [b.accept("x", "B-item")])
    na, nb = a.collect("x"), b.collect("x")
    ra = dep.run_until_complete(a.client, [na])
    rb = dep.run_until_complete(b.client, [nb])
    assert ra[na].result == ("item", "x", "B-item")
    assert rb[nb].result == ("item", "x", "A-item")


def test_generalized_structure_service_with_class_corruption(keys_example1):
    """Directory on the Example 1 structure, whole class a silenced."""
    import random

    from repro.core.runtime import ProtocolRuntime
    from repro.net.scheduler import RandomScheduler
    from repro.net.simulator import Network
    from repro.smr.client import ServiceClient
    from repro.smr.replica import Replica, service_session

    net = Network(RandomScheduler(), random.Random(5))
    for i in range(4, 9):
        rt = ProtocolRuntime(i, net, keys_example1.public, keys_example1.private[i], seed=2)
        net.attach(i, rt)
        rt.spawn(service_session("service"), Replica(DirectoryService()))
    for bad in range(4):
        net.attach(bad, SilentNode())
    client = ServiceClient(1000, net, keys_example1.public, random.Random(6))
    net.attach(1000, client)
    net.start()
    nonce = client.submit(("bind", "multi-site", "ok"))
    net.run(until=lambda: nonce in client.completed, max_steps=600_000)
    assert client.completed[nonce].result == ("bound", "multi-site", 1)
