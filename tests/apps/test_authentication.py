"""Authentication service: enrollment, verification, lockout."""

from repro.apps.authentication import AuthenticationService, credential_digest
from repro.smr.state_machine import Request


def _req(op, client=1000):
    _req.counter = getattr(_req, "counter", 0) + 1
    return Request(client=client, nonce=_req.counter, operation=op)


def _cred(user, secret):
    return credential_digest(user, secret)


def test_enroll_and_authenticate():
    a = AuthenticationService()
    assert a.apply(_req(("enroll", "alice", _cred("alice", b"pw")))) == (
        "enrolled",
        "alice",
    )
    assert a.apply(_req(("authenticate", "alice", _cred("alice", b"pw")))) == (
        "authenticated",
        "alice",
    )


def test_wrong_credential_denied():
    a = AuthenticationService()
    a.apply(_req(("enroll", "alice", _cred("alice", b"pw"))))
    verdict = a.apply(_req(("authenticate", "alice", _cred("alice", b"wrong"))))
    assert verdict == ("denied", "bad credential")


def test_unknown_principal_denied():
    a = AuthenticationService()
    assert a.apply(_req(("authenticate", "ghost", b"x" * 32)))[0] == "denied"


def test_double_enrollment_denied():
    a = AuthenticationService()
    a.apply(_req(("enroll", "alice", _cred("alice", b"pw"))))
    assert a.apply(_req(("enroll", "alice", _cred("alice", b"pw2"))))[0] == "denied"


def test_lockout_after_max_failures():
    a = AuthenticationService(max_failures=3)
    a.apply(_req(("enroll", "alice", _cred("alice", b"pw"))))
    for _ in range(3):
        a.apply(_req(("authenticate", "alice", _cred("alice", b"bad"))))
    # Even the right credential is now refused.
    assert a.apply(_req(("authenticate", "alice", _cred("alice", b"pw")))) == (
        "denied",
        "locked",
    )
    assert a.apply(_req(("status", "alice"))) == ("status", "alice", "locked")


def test_success_resets_failure_counter():
    a = AuthenticationService(max_failures=3)
    a.apply(_req(("enroll", "alice", _cred("alice", b"pw"))))
    for _ in range(2):
        a.apply(_req(("authenticate", "alice", _cred("alice", b"bad"))))
    a.apply(_req(("authenticate", "alice", _cred("alice", b"pw"))))
    for _ in range(2):
        a.apply(_req(("authenticate", "alice", _cred("alice", b"bad"))))
    # Still not locked: counter was reset after the success.
    assert a.apply(_req(("authenticate", "alice", _cred("alice", b"pw"))))[0] == (
        "authenticated"
    )


def test_change_credential():
    a = AuthenticationService()
    a.apply(_req(("enroll", "alice", _cred("alice", b"old"))))
    result = a.apply(
        _req(("change", "alice", _cred("alice", b"old"), _cred("alice", b"new")))
    )
    assert result == ("changed", "alice")
    assert a.apply(_req(("authenticate", "alice", _cred("alice", b"new"))))[0] == (
        "authenticated"
    )
    assert a.apply(_req(("authenticate", "alice", _cred("alice", b"old"))))[0] == (
        "denied"
    )


def test_change_requires_old_credential():
    a = AuthenticationService()
    a.apply(_req(("enroll", "alice", _cred("alice", b"old"))))
    result = a.apply(
        _req(("change", "alice", _cred("alice", b"guess"), _cred("alice", b"new")))
    )
    assert result[0] == "denied"


def test_status_unknown():
    a = AuthenticationService()
    assert a.apply(_req(("status", "ghost"))) == ("unknown", "ghost")


def test_credential_digest_is_salted_by_principal():
    assert _cred("alice", b"pw") != _cred("bob", b"pw")


def test_malformed_operations():
    a = AuthenticationService()
    assert a.apply(_req(()))[0] == "error"
    assert a.apply(_req(("enroll", 5, b"x")))[0] == "error"
    assert a.apply(_req(("authenticate", "a", "not-bytes")))[0] == "error"
    assert a.apply(_req(("bogus", "a")))[0] == "error"
