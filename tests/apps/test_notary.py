"""Notary: sequence numbers, first-wins registration, audit log."""

from repro.apps.notary import NotaryService, document_digest
from repro.smr.state_machine import Request


def _req(op, client=1000):
    _req.counter = getattr(_req, "counter", 0) + 1
    return Request(client=client, nonce=_req.counter, operation=op)


def _digest(text):
    return document_digest(text.encode())


def test_first_registration_wins():
    n = NotaryService()
    d = _digest("invention")
    first = n.apply(_req(("register", d), client=1000))
    second = n.apply(_req(("register", d), client=2000))
    assert first == ("registered", 1, d, 1000, True)
    assert second == ("registered", 1, d, 1000, False)  # original owner kept


def test_sequence_numbers_are_a_logical_clock():
    n = NotaryService()
    results = [n.apply(_req(("register", _digest(f"doc{i}")))) for i in range(5)]
    assert [r[1] for r in results] == [1, 2, 3, 4, 5]


def test_query():
    n = NotaryService()
    d = _digest("x")
    assert n.apply(_req(("query", d))) == ("unregistered", d)
    n.apply(_req(("register", d), client=1007))
    assert n.apply(_req(("query", d))) == ("registered", 1, d, 1007, False)


def test_history_window():
    n = NotaryService()
    digests = [_digest(f"d{i}") for i in range(4)]
    for d in digests:
        n.apply(_req(("register", d)))
    hist = n.apply(_req(("history", 1, 2)))
    assert hist[0] == "history"
    assert [e[0] for e in hist[1]] == [2, 3]


def test_history_out_of_range():
    n = NotaryService()
    assert n.apply(_req(("history", 100, 10))) == ("history", ())
    assert n.apply(_req(("history", -5, -1))) == ("history", ())


def test_duplicate_registration_not_logged_twice():
    n = NotaryService()
    d = _digest("once")
    n.apply(_req(("register", d)))
    n.apply(_req(("register", d)))
    assert len(n.log) == 1


def test_malformed_operations():
    n = NotaryService()
    assert n.apply(_req(()))[0] == "error"
    assert n.apply(_req(("register", "not-bytes")))[0] == "error"
    assert n.apply(_req(("query", 7)))[0] == "error"
    assert n.apply(_req(("history", "a", 1)))[0] == "error"


def test_digest_is_stable_and_collision_free_in_practice():
    assert document_digest(b"a") == document_digest(b"a")
    assert document_digest(b"a") != document_digest(b"b")


def test_snapshot_reflects_registry():
    a, b = NotaryService(), NotaryService()
    d = _digest("same")
    a.apply(_req(("register", d)))
    b.apply(_req(("register", d)))
    assert a.snapshot() == b.snapshot()
