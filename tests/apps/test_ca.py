"""Certification authority: policy, issuance, revocation (unit-level)."""

from repro.apps.ca import CertificationAuthority
from repro.smr.state_machine import Request


def _req(op, client=1000, nonce=None):
    _req.counter = getattr(_req, "counter", 0) + 1
    return Request(client=client, nonce=nonce or _req.counter, operation=op)


def _creds(**fields):
    return tuple(sorted(fields.items()))


class TestIssuance:
    def test_issue_with_full_credentials(self):
        ca = CertificationAuthority()
        result = ca.apply(_req(("issue", "alice", 111,
                                _creds(name="A", email="a@x"))))
        assert result[0] == "certificate"
        assert result[1] == 1 and result[2] == "alice"

    def test_missing_credentials_denied(self):
        ca = CertificationAuthority()
        result = ca.apply(_req(("issue", "alice", 111, _creds(name="A"))))
        assert result[0] == "denied"
        assert "email" in result[1][1]

    def test_serials_increase(self):
        ca = CertificationAuthority()
        r1 = ca.apply(_req(("issue", "a", 1, _creds(name="x", email="y"))))
        r2 = ca.apply(_req(("issue", "b", 2, _creds(name="x", email="y"))))
        assert (r1[1], r2[1]) == (1, 2)

    def test_duplicate_subject_denied(self):
        ca = CertificationAuthority()
        ca.apply(_req(("issue", "a", 1, _creds(name="x", email="y"))))
        result = ca.apply(_req(("issue", "a", 2, _creds(name="x", email="y"))))
        assert result[0] == "denied"

    def test_reissue_after_revocation(self):
        ca = CertificationAuthority()
        first = ca.apply(_req(("issue", "a", 1, _creds(name="x", email="y"))))
        ca.apply(_req(("revoke", first[1], "compromise")))
        again = ca.apply(_req(("issue", "a", 2, _creds(name="x", email="y"))))
        assert again[0] == "certificate" and again[1] == 2

    def test_malformed_issue(self):
        ca = CertificationAuthority()
        assert ca.apply(_req(("issue", 5, 1, ())))[0] == "error"
        assert ca.apply(_req(("issue", "a", "key", ())))[0] == "error"
        assert ca.apply(_req(("issue", "a", 1, "creds")))[0] == "error"


class TestLookupAndRevocation:
    def test_lookup_unknown(self):
        ca = CertificationAuthority()
        assert ca.apply(_req(("lookup", "ghost"))) == ("unknown", "ghost")

    def test_lookup_valid_then_revoked(self):
        ca = CertificationAuthority()
        issued = ca.apply(_req(("issue", "a", 1, _creds(name="x", email="y"))))
        assert ca.apply(_req(("lookup", "a")))[1] == "valid"
        ca.apply(_req(("revoke", issued[1], "stolen")))
        assert ca.apply(_req(("lookup", "a")))[1] == "revoked"

    def test_revoke_unknown_serial(self):
        ca = CertificationAuthority()
        assert ca.apply(_req(("revoke", 99, "x")))[0] == "error"

    def test_revocation_is_idempotent_first_reason_kept(self):
        ca = CertificationAuthority()
        issued = ca.apply(_req(("issue", "a", 1, _creds(name="x", email="y"))))
        ca.apply(_req(("revoke", issued[1], "first")))
        ca.apply(_req(("revoke", issued[1], "second")))
        assert ca.revoked[issued[1]] == "first"


class TestPolicy:
    def test_policy_change_applies_to_later_requests(self):
        ca = CertificationAuthority()
        ca.apply(_req(("set_policy", "name", "email", "badge")))
        denied = ca.apply(_req(("issue", "a", 1, _creds(name="x", email="y"))))
        assert denied[0] == "denied"
        ok = ca.apply(
            _req(("issue", "a", 1, _creds(name="x", email="y", badge="7")))
        )
        assert ok[0] == "certificate"

    def test_certificates_record_policy_version(self):
        ca = CertificationAuthority()
        before = ca.apply(_req(("issue", "a", 1, _creds(name="x", email="y"))))
        ca.apply(_req(("set_policy", "name")))
        after = ca.apply(_req(("issue", "b", 2, _creds(name="x"))))
        assert before[4] == 1 and after[4] == 2

    def test_get_policy(self):
        ca = CertificationAuthority()
        assert ca.apply(_req(("get_policy",))) == ("policy", 1, ("name", "email"))

    def test_malformed_policy(self):
        ca = CertificationAuthority()
        assert ca.apply(_req(("set_policy", 5)))[0] == "error"


def test_snapshot_determinism():
    def run():
        ca = CertificationAuthority()
        ca.apply(_req(("issue", "a", 1, _creds(name="x", email="y")), nonce=1))
        ca.apply(_req(("set_policy", "name"), nonce=2))
        ca.apply(_req(("issue", "b", 2, _creds(name="x")), nonce=3))
        return ca.snapshot()

    assert run() == run()


def test_unknown_and_empty_operations():
    ca = CertificationAuthority()
    assert ca.apply(_req(("dance",)))[0] == "error"
    assert ca.apply(_req(()))[0] == "error"
