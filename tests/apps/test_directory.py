"""Secure directory: binding, ownership, resolution (unit-level)."""

from repro.apps.directory import DirectoryService
from repro.smr.state_machine import Request


def _req(op, client=1000):
    _req.counter = getattr(_req, "counter", 0) + 1
    return Request(client=client, nonce=_req.counter, operation=op)


def test_bind_and_resolve():
    d = DirectoryService()
    assert d.apply(_req(("bind", "www", "1.2.3.4"))) == ("bound", "www", 1)
    assert d.apply(_req(("resolve", "www"))) == ("entry", "www", "1.2.3.4", 1000, 1)


def test_resolve_unknown():
    d = DirectoryService()
    assert d.apply(_req(("resolve", "nope"))) == ("unknown", "nope")


def test_bind_existing_denied():
    d = DirectoryService()
    d.apply(_req(("bind", "www", "a"), client=1000))
    assert d.apply(_req(("bind", "www", "b"), client=2000))[0] == "denied"


def test_rebind_owner_only():
    d = DirectoryService()
    d.apply(_req(("bind", "www", "a"), client=1000))
    assert d.apply(_req(("rebind", "www", "evil"), client=2000)) == (
        "denied",
        "not owner",
    )
    assert d.apply(_req(("rebind", "www", "b"), client=1000))[0] == "bound"
    assert d.apply(_req(("resolve", "www")))[2] == "b"


def test_rebind_unknown_name():
    d = DirectoryService()
    assert d.apply(_req(("rebind", "ghost", "x")))[0] == "denied"


def test_unbind_owner_only():
    d = DirectoryService()
    d.apply(_req(("bind", "www", "a"), client=1000))
    assert d.apply(_req(("unbind", "www"), client=2000))[0] == "denied"
    assert d.apply(_req(("unbind", "www"), client=1000))[0] == "unbound"
    assert d.apply(_req(("resolve", "www"))) == ("unknown", "www")


def test_name_reusable_after_unbind():
    d = DirectoryService()
    d.apply(_req(("bind", "www", "a"), client=1000))
    d.apply(_req(("unbind", "www"), client=1000))
    assert d.apply(_req(("bind", "www", "b"), client=2000))[0] == "bound"


def test_list_prefix():
    d = DirectoryService()
    for name in ("svc/a", "svc/b", "db/x"):
        d.apply(_req(("bind", name, 1)))
    assert d.apply(_req(("list", "svc/"))) == ("names", ("svc/a", "svc/b"))
    assert d.apply(_req(("list", ""))) == ("names", ("db/x", "svc/a", "svc/b"))


def test_versions_monotone():
    d = DirectoryService()
    d.apply(_req(("bind", "a", 1)))
    d.apply(_req(("bind", "b", 1)))
    d.apply(_req(("rebind", "a", 2)))
    assert d.version == 3
    assert d.apply(_req(("resolve", "a")))[4] == 3


def test_malformed_operations():
    d = DirectoryService()
    assert d.apply(_req(()))[0] == "error"
    assert d.apply(_req(("bind", 5, "v")))[0] == "error"
    assert d.apply(_req(("resolve",)))[0] == "error"
    assert d.apply(_req(("list", 7)))[0] == "error"


def test_snapshot_tracks_entries():
    d = DirectoryService()
    before = d.snapshot()
    d.apply(_req(("bind", "a", 1)))
    assert d.snapshot() != before
