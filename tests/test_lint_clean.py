"""Tier-1 guard: the repository itself stays lint-clean.

Fails when a new RL001-RL009 violation lands outside the committed
baseline, and also when a baseline entry goes stale (the violation was
fixed but the entry kept) — that is the ratchet: the baseline can only
shrink.
"""

from pathlib import Path

from repro.analysis import run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"


def test_repository_is_lint_clean():
    report = run_lint([PACKAGE], baseline_path=BASELINE)
    assert report.ok, "new lint findings (fix or baseline with a reason):\n" + (
        report.format_text()
    )


def test_baseline_has_no_stale_entries():
    report = run_lint([PACKAGE], baseline_path=BASELINE)
    stale = [entry.to_dict() for entry in report.stale_baseline]
    assert not stale, f"stale baseline entries — delete them to ratchet: {stale}"


def test_every_baseline_entry_is_justified():
    from repro.analysis import Baseline

    baseline = Baseline.load(BASELINE)
    unjustified = [e.to_dict() for e in baseline.entries if not e.reason.strip()]
    assert not unjustified, f"baseline entries need a justifying reason: {unjustified}"


def test_interleaving_rules_are_active_in_the_gate():
    """The ratchet covers RL008/RL009: both registered, and the gate
    run above actually executed them (a silently dropped registration
    would let new interleaving races land unnoticed)."""
    from repro.analysis.rules import rules_by_id

    ids = {rule.rule_id for rule in rules_by_id()}
    assert {"RL008", "RL009"} <= ids
    report = run_lint([PACKAGE], baseline_path=BASELINE)
    assert {"RL008", "RL009"} <= set(report.timings)


def test_concurrency_baseline_entries_cite_the_single_writer():
    """RL008/RL009 baseline entries carry real justifications, not
    placeholders: each must explain why the interleaving is benign."""
    from repro.analysis import Baseline

    baseline = Baseline.load(BASELINE)
    entries = [e for e in baseline.entries if e.rule in ("RL008", "RL009")]
    assert entries, "expected at least the justified RL008 start() entry"
    thin = [e.to_dict() for e in entries if len(e.reason.strip()) < 40]
    assert not thin, f"concurrency baseline entries need a real argument: {thin}"
