"""Every example script must run clean end to end (they double as the
repository's acceptance tests)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script.name} failed\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert "OK" in result.stdout or "—" in result.stdout
