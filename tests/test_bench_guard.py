"""The bench regression guard: pure comparisons against committed
artifacts, plus the CLI driver's exit codes."""

import json

from repro.bench import guard_compare, main_guard


def _crypto(multiexp=6.0, coin=5.4, smoke=False) -> dict:
    return {
        "config": {"smoke": smoke},
        "primitives": {
            "multiexp_speedup": multiexp,
            "fixed_base_speedup": 4.0,
            "membership_speedup": 3.0,
        },
        "coin_quorum": {"speedup_batch_vs_legacy": coin},
        "rsa_quorum": {"speedup_batch_vs_per_share": 4.4},
        "dkg": {"n4t1": {"dealer_to_dkg_ratio": 0.015}},
    }


def _e2e(speedup=9.0, smoke=False) -> dict:
    return {
        "config": {"smoke": smoke},
        "speedup_committed_ops_per_s": speedup,
    }


def test_matching_numbers_pass():
    failures, notes = guard_compare("crypto", _crypto(), _crypto())
    assert failures == []
    assert len(notes) == 6  # every catalogued metric compared


def test_regression_beyond_tolerance_fails():
    # 6.0 -> 3.0 is a 50% drop; same-mode floor at 30% tolerance is 4.2.
    failures, _ = guard_compare(
        "crypto", _crypto(multiexp=3.0), _crypto(multiexp=6.0)
    )
    assert len(failures) == 1
    assert "multiexp_speedup" in failures[0]
    assert "floor" in failures[0]


def test_drop_within_tolerance_passes():
    failures, _ = guard_compare(
        "crypto", _crypto(multiexp=4.5), _crypto(multiexp=6.0)
    )
    assert failures == []


def test_smoke_slack_applies_only_across_modes():
    # Smoke quorum ratios sag ~20% below the committed full-mode number;
    # with the 45% smoke slack that is fine...
    fresh = _crypto(coin=4.3, smoke=True)
    committed = _crypto(coin=5.4, smoke=False)
    failures, _ = guard_compare("crypto", fresh, committed)
    assert failures == []
    # ...but the same drop between two smoke runs gets no slack beyond
    # the base tolerance (floor 5.4 * 0.70 = 3.78 — still above 3.5).
    failures, _ = guard_compare(
        "crypto", _crypto(coin=3.5, smoke=True), _crypto(coin=5.4, smoke=True)
    )
    assert len(failures) == 1


def test_disabled_fast_path_is_caught_even_in_smoke_mode():
    # An accidentally disabled batch path reads ~1.0x; even the loosest
    # floor (e2e: 1 - 0.30 - 0.60 = 0.10 of committed) catches it only
    # if committed >> 1 — the crypto quorum floors certainly do.
    failures, _ = guard_compare(
        "crypto", _crypto(coin=1.0, smoke=True), _crypto(coin=5.4)
    )
    assert any("coin_quorum" in f for f in failures)


def test_missing_committed_metric_skips_with_note():
    committed = _crypto()
    del committed["coin_quorum"]
    failures, notes = guard_compare("crypto", _crypto(), committed)
    assert failures == []
    assert any("skipped" in note for note in notes)


def test_missing_fresh_metric_is_a_failure():
    fresh = _e2e()
    del fresh["speedup_committed_ops_per_s"]
    failures, _ = guard_compare("e2e", fresh, _e2e())
    assert failures == ["e2e:speedup_committed_ops_per_s: missing from fresh results"]


def test_tolerance_is_configurable():
    fresh, committed = _e2e(speedup=5.0), _e2e(speedup=9.0)
    assert guard_compare("e2e", fresh, committed, tolerance=0.30)[0] != []
    assert guard_compare("e2e", fresh, committed, tolerance=0.50)[0] == []


def test_unknown_kind_compares_nothing():
    failures, notes = guard_compare("quantum", _crypto(), _crypto())
    assert failures == [] and notes == []


# -- CLI driver ---------------------------------------------------------------------


def _write(path, data) -> str:
    path.write_text(json.dumps(data))
    return str(path)


def test_main_guard_exit_codes(tmp_path, capsys):
    ok_fresh = _write(tmp_path / "fresh.json", _crypto(smoke=True))
    committed = _write(tmp_path / "committed.json", _crypto())
    assert main_guard(ok_fresh, None, crypto_committed=committed) == 0
    assert "bench guard: ok" in capsys.readouterr().out

    bad_fresh = _write(tmp_path / "bad.json", _crypto(multiexp=1.0, smoke=True))
    assert main_guard(bad_fresh, None, crypto_committed=committed) == 1
    assert "REGRESSION" in capsys.readouterr().out

    # Nothing to compare, or files missing: exit 2 (not a regression).
    assert main_guard(None, None) == 2
    assert main_guard(ok_fresh, None,
                      crypto_committed=str(tmp_path / "nope.json")) == 2
