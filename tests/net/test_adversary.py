"""Corruption harness: structure enforcement and malicious behaviors."""

import random

import pytest

from repro.adversary.quorums import GeneralQuorumSystem, ThresholdQuorumSystem
from repro.adversary.attributes import example1_structure
from repro.net.adversary import (
    CorruptionController,
    CrashNode,
    MutatingNode,
    SilentNode,
    SpamNode,
)
from repro.net.scheduler import FifoScheduler
from repro.net.simulator import Network, Node


class Sink(Node):
    def __init__(self):
        self.received = []

    def on_message(self, sender, payload):
        self.received.append((sender, payload))


def _net(n=4):
    net = Network(FifoScheduler(), random.Random(0))
    nodes = {}
    for i in range(n):
        nodes[i] = Sink()
        net.attach(i, nodes[i])
    return net, nodes


def test_controller_allows_admissible_corruption():
    net, _ = _net(4)
    ctrl = CorruptionController(ThresholdQuorumSystem(n=4, t=1))
    ctrl.corrupt(net, 2, SilentNode())
    assert ctrl.corrupted == {2}
    assert ctrl.honest(list(range(4))) == [0, 1, 3]


def test_controller_rejects_excess_corruption():
    net, _ = _net(4)
    ctrl = CorruptionController(ThresholdQuorumSystem(n=4, t=1))
    ctrl.corrupt(net, 2, SilentNode())
    with pytest.raises(ValueError):
        ctrl.corrupt(net, 3, SilentNode())


def test_controller_unchecked_override():
    net, _ = _net(4)
    ctrl = CorruptionController(ThresholdQuorumSystem(n=4, t=1))
    ctrl.corrupt(net, 2, SilentNode())
    ctrl.corrupt(net, 3, SilentNode(), unchecked=True)
    assert ctrl.corrupted == {2, 3}


def test_controller_with_generalized_structure():
    net, _ = _net(9)
    ctrl = CorruptionController(GeneralQuorumSystem(structure=example1_structure()))
    for i in (0, 1, 2, 3):  # whole class a is admissible
        ctrl.corrupt(net, i, SilentNode())
    with pytest.raises(ValueError):
        ctrl.corrupt(net, 4, SilentNode())


def test_silent_node_consumes_without_response():
    net, nodes = _net(2)
    net.nodes[1] = SilentNode()
    net.send(0, 1, "x")
    net.run()
    assert not net.pending


def test_crash_node_stops_after_budget():
    net, _ = _net(2)
    inner = Sink()
    net.nodes[1] = CrashNode(inner, crash_after=2)
    for k in range(5):
        net.send(0, 1, k)
    net.run()
    assert [p for _, p in inner.received] == [0, 1]


def test_spam_node_floods():
    net, nodes = _net(3)
    net.nodes[0] = SpamNode(
        net, 0, payload_factory=lambda rng: "junk", rng=random.Random(1), fanout=2
    )
    net.send(1, 0, "trigger")
    # Each delivery to the spammer creates 2 junk messages; run a few.
    for _ in range(5):
        net.step()
    junk = sum(
        1 for i in (1, 2) for _, p in nodes[i].received if p == "junk"
    )
    assert junk >= 1


def test_mutating_node_equivocates():
    net, nodes = _net(3)

    class Speaker(Node):
        def __init__(self, facade):
            self.facade = facade

        def on_start(self):
            self.facade.broadcast(0, "truth")

        def on_message(self, sender, payload):
            pass

    def two_faced(recipient, payload):
        return "lie-to-2" if recipient == 2 else payload

    net.nodes[0] = MutatingNode(net, 0, lambda facade: Speaker(facade), two_faced)
    net.start()
    net.run()
    assert (0, "truth") in nodes[1].received
    assert (0, "lie-to-2") in nodes[2].received


def test_mutating_node_can_drop():
    net, nodes = _net(3)

    class Speaker(Node):
        def __init__(self, facade):
            self.facade = facade

        def on_start(self):
            self.facade.broadcast(0, "m")

        def on_message(self, sender, payload):
            pass

    net.nodes[0] = MutatingNode(
        net, 0, lambda facade: Speaker(facade),
        lambda r, p: None if r == 1 else [p, p],  # drop to 1, duplicate to 2
    )
    net.start()
    net.run()
    assert nodes[1].received == []
    assert nodes[2].received.count((0, "m")) == 2
