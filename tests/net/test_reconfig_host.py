"""Host-side reconfiguration semantics: deterministic Reconfigure
verdicts (pause/resume around an epoch switch), historically-faithful
journal replay, the flush-watchdog retry ladder, and peer lifecycle on
add-after-remove.

Every asynchronous test runs under ``asyncio.run`` inside a plain
pytest function, mirroring tests/net/test_transport.py.
"""

from __future__ import annotations

import asyncio
import random

from repro.crypto import deal_system, keystore, small_group
from repro.crypto.dealer import CLIENT_BASE
from repro.crypto.schnorr import keygen
from repro.net.runtime import (
    CLUSTER_FILE,
    ClusterConfig,
    ReplicaHost,
    allocate_addresses,
)
from repro.net.transport import TransportNetwork
from repro.smr import reconfig
from repro.smr.client import ServiceClient
from repro.smr.replica import Replica
from repro.smr.state_machine import KeyValueStore, Request


def _deployment(tmp_path, n=4, seed=5):
    keys = deal_system(n, random.Random(seed), t=1, clients=1, group=small_group())
    keystore.write_deployment(keys, tmp_path)
    addresses = allocate_addresses(list(range(n)) + [CLIENT_BASE])
    ClusterConfig(addresses).save(tmp_path / CLUSTER_FILE)
    return keys


def _refresh_op(keys, epoch, signer=0, seed=9):
    return reconfig.reconfigure_operation(
        "refresh", epoch, signer, keys.private[signer].signing_key,
        random.Random(seed),
    )


def _req(client, nonce, operation):
    return Request(client=client, nonce=nonce, operation=operation)


# -- replica pause/resume (deterministic verdicts) ----------------------------------


def test_paused_replica_queues_and_drains_in_delivery_order():
    replica = Replica(KeyValueStore())
    # Replaying entries need no reply context, which keeps this a pure
    # unit test of the queue mechanics.
    replica._replaying = True
    replica.pause_execution()
    for i in range(3):
        replica._execute(None, _req(100, i + 1, ("set", f"k{i}", i)), i)
    assert replica.executed == []
    assert len(replica._pending_execution) == 3

    replica._replaying = False  # the drain restores each entry's own flag
    replica.resume_execution(None)
    assert [r.operation for r, _ in replica.executed] == [
        ("set", "k0", 0), ("set", "k1", 1), ("set", "k2", 2)
    ]
    assert replica._pending_execution == []
    assert not replica._replaying


def test_paused_duplicates_deduplicate_at_drain():
    replica = Replica(KeyValueStore())
    replica._replaying = True
    replica.pause_execution()
    replica._execute(None, _req(100, 1, ("set", "a", 1)), 0)
    replica._execute(None, _req(100, 1, ("set", "a", 1)), 0)
    replica._replaying = False
    replica.resume_execution(None)
    assert len(replica.executed) == 1


def test_drained_reconfigure_repauses_the_remainder():
    """A second Reconfigure sitting in the queue behind the first epoch
    switch must hold everything ordered after it for the *next* switch."""
    replica = Replica(KeyValueStore())

    def intercept(request, rnd, replaying):
        if request.operation == ("reconfig-marker",):
            replica.pause_execution()
            return ("reconfig", "accepted", 2)
        return None

    replica.intercept = intercept
    replica._replaying = True
    replica.pause_execution()
    replica._execute(None, _req(100, 1, ("set", "a", 1)), 0)
    replica._execute(None, _req(100, 2, ("reconfig-marker",)), 1)
    replica._execute(None, _req(100, 3, ("set", "b", 2)), 2)

    replica._replaying = False
    replica.resume_execution(None)
    # The marker executed (its verdict is part of the history) and
    # re-paused; the tail stays queued for the next epoch's resume.
    assert [r.operation for r, _ in replica.executed] == [
        ("set", "a", 1), ("reconfig-marker",)
    ]
    assert len(replica._pending_execution) == 1

    replica.resume_execution(None)
    assert [r.operation for r, _ in replica.executed][-1] == ("set", "b", 2)


def test_results_bounded_per_client():
    replica = Replica(KeyValueStore())
    replica._replaying = True
    for nonce in range(1, 21):
        replica._execute(None, _req(7, nonce, ("set", "x", nonce)), nonce)
    replica._execute(None, _req(8, 1, ("set", "y", 0)), 30)
    # One cached (nonce, result) pair per client, not per request.
    assert set(replica._results) == {7, 8}
    nonce, result = replica._results[7]
    assert nonce == 20 and result == ("ok", 20)


# -- journal replay re-validates against the historic configuration -----------------


def test_replayed_rejection_stays_rejected(tmp_path):
    """An op that was originally rejected (tampered/forged) must replay
    as rejected — not be waved through because its epoch is now old."""
    keys = _deployment(tmp_path)
    host = ReplicaHost(tmp_path, 0)
    host._archive_epoch_public()  # the epoch-0 configuration
    host.epoch = 1  # the keystore has since moved on

    good = _refresh_op(keys, 1)
    tampered = good[:1] + ("remove",) + good[2:]
    outsider = keygen(random.Random(3), keys.public.group)
    forged = reconfig.reconfigure_operation(
        "refresh", 1, 0, outsider, random.Random(4)
    )

    assert host._intercept(_req(900, 1, tampered), 0, True) == (
        "reconfig", "rejected", 0
    )
    assert host._intercept(_req(900, 2, forged), 1, True) == (
        "reconfig", "rejected", 0
    )
    assert host._executed_epoch == 0  # rejections open no epoch
    assert host._intercept(_req(900, 3, good), 2, True) == (
        "reconfig", "accepted", 1
    )
    assert host._executed_epoch == 1


def test_replay_falls_back_to_ordinal_without_archive(tmp_path):
    keys = _deployment(tmp_path)
    host = ReplicaHost(tmp_path, 0)
    host.epoch = 1  # no public-epoch-0.json was ever written
    assert host._intercept(_req(900, 1, _refresh_op(keys, 3)), 0, True) == (
        "reconfig", "rejected", 0
    )
    assert host._intercept(_req(900, 2, _refresh_op(keys, 1)), 1, True) == (
        "reconfig", "accepted", 1
    )


def test_live_rejection_is_pure(tmp_path):
    keys = _deployment(tmp_path)
    host = ReplicaHost(tmp_path, 0)
    good = _refresh_op(keys, 1)
    tampered = good[:1] + ("remove",) + good[2:]
    assert host._intercept(_req(900, 1, tampered), 0, False) == (
        "reconfig", "rejected", 0
    )
    assert host._reshare_target is None


# -- the flush watchdog: scaled deadline, retry ladder ------------------------------


class _StubSession:
    def __init__(self):
        self.flushes = 0

    def flush(self, ctx):
        self.flushes += 1


class _StubRuntime:
    def __init__(self, session, instance):
        self.instances = {session: instance}

    def result(self, session):
        return None


def _watchdog_host(tmp_path, io_timeout):
    _deployment(tmp_path)
    host = ReplicaHost(tmp_path, 0)
    host.io_timeout = io_timeout
    return host


def test_watchdog_deadline_scales_with_io_timeout(tmp_path, monkeypatch):
    """The flush fires at io_timeout/8 — scaled, no hidden 10s cap —
    and a session still unsettled after a full I/O budget is retried."""
    host = _watchdog_host(tmp_path, io_timeout=120.0)
    instance = _StubSession()
    host.runtime = _StubRuntime("s", instance)
    real_sleep = asyncio.sleep
    delays = []

    async def fake_sleep(delay):
        delays.append(delay)
        await real_sleep(0)

    retries = []

    async def scenario():
        monkeypatch.setattr(asyncio, "sleep", fake_sleep)
        host._watch_flush(
            "s", settled=lambda: False, retry=lambda: retries.append(1)
        )
        for _ in range(10):
            await real_sleep(0)

    asyncio.run(scenario())
    assert delays == [15.0, 105.0]
    assert instance.flushes == 1
    assert retries == [1]


def test_watchdog_settled_session_is_left_alone(tmp_path, monkeypatch):
    host = _watchdog_host(tmp_path, io_timeout=1.0)
    instance = _StubSession()
    host.runtime = _StubRuntime("s", instance)
    real_sleep = asyncio.sleep

    async def fake_sleep(delay):
        await real_sleep(0)

    retries = []

    async def scenario():
        monkeypatch.setattr(asyncio, "sleep", fake_sleep)
        host._watch_flush(
            "s", settled=lambda: True, retry=lambda: retries.append(1)
        )
        for _ in range(10):
            await real_sleep(0)

    asyncio.run(scenario())
    assert instance.flushes == 0
    assert retries == []


def test_watchdog_settling_after_flush_stops_the_retry(tmp_path, monkeypatch):
    host = _watchdog_host(tmp_path, io_timeout=1.0)
    instance = _StubSession()
    host.runtime = _StubRuntime("s", instance)
    real_sleep = asyncio.sleep
    state = {"settled": False}

    async def fake_sleep(delay):
        await real_sleep(0)
        # The flush unwedged the session before the second check.
        state["settled"] = instance.flushes > 0

    retries = []

    async def scenario():
        monkeypatch.setattr(asyncio, "sleep", fake_sleep)
        host._watch_flush(
            "s",
            settled=lambda: state["settled"],
            retry=lambda: retries.append(1),
        )
        for _ in range(10):
            await real_sleep(0)

    asyncio.run(scenario())
    assert instance.flushes == 1
    assert retries == []


# -- peer lifecycle: forget on remove, authoritative address on add -----------------


def test_forget_peer_drops_address_key_and_silences_late_sends():
    async def scenario():
        net = TransportNetwork(
            0,
            {0: ("127.0.0.1", 0), 1: ("127.0.0.1", 45001)},
            {1: bytes(range(32))},
        )
        await net.start()
        try:
            net.forget_peer(1)
            assert 1 not in net.addresses
            assert 1 not in net.channel_keys
            assert net.parties == [0]
            # A closed epoch's protocol instance may still address the
            # departed peer: dropped quietly, counted, never an error.
            net.send(0, 1, ("late", "frame"))
            assert net.trace.counters.get("transport.departed_drops") == 1
            # Truly unknown recipients still fail loudly.
            try:
                net.send(0, 9, ("oops",))
            except ValueError:
                pass
            else:
                raise AssertionError("unknown recipient must raise")
        finally:
            await net.close()

    asyncio.run(scenario())


def test_admit_peer_overwrites_stale_address():
    async def scenario():
        stale = ("10.0.0.9", 1)
        net = TransportNetwork(
            0, {0: ("127.0.0.1", 0), 4: stale}, {4: bytes(range(32))}
        )
        await net.start()
        try:
            # The ordered add is authoritative even when a stale entry
            # for a previous holder of the id survived (no setdefault).
            net.admit_peer(4, ("127.0.0.1", 45002), bytes(range(32, 64)))
            assert net.addresses[4] == ("127.0.0.1", 45002)
            assert net.channel_keys[4] == bytes(range(32, 64))
            # And after a remove-then-add cycle the peer is sendable again.
            net.forget_peer(4)
            net.admit_peer(4, ("127.0.0.1", 45003), bytes(range(64, 96)))
            assert 4 not in net._forgotten
            net.send(0, 4, ("hello",))  # queues for dial; must not raise
        finally:
            await net.close()

    asyncio.run(scenario())


# -- end to end: back-to-back reconfigurations over TCP -----------------------------


async def _until(predicate, timeout=30.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never held")
        await asyncio.sleep(0.05)


def test_back_to_back_refreshes_converge(tmp_path):
    """Order a second Reconfigure right behind the first: replicas that
    are still mid-resharing must queue it (not reject it), so every
    honest replica records accepted for both and ends at epoch 2."""

    async def scenario():
        keys = _deployment(tmp_path, seed=31)
        hosts = {party: ReplicaHost(tmp_path, party) for party in range(4)}
        for host in hosts.values():
            await host.start()
        cluster = ClusterConfig.load(tmp_path / CLUSTER_FILE)
        public = keystore.load_public(tmp_path / "public.json")
        cid, channel_keys = keystore.load_client(
            tmp_path / f"client-{CLIENT_BASE}.json"
        )
        net = TransportNetwork(cid, cluster.addresses, channel_keys)
        client = ServiceClient(cid, net, public, random.Random(13))
        net.attach(cid, client)
        await net.start()
        try:
            op1 = _refresh_op(keys, 1, seed=41)
            op2 = _refresh_op(keys, 2, seed=42)
            first = await client.call(op1, timeout=60.0)
            assert first.result == ("reconfig", "accepted", 1)
            # Immediately behind: typically ordered while the epoch-1
            # resharing is still in flight somewhere.
            second = await client.call(op2, timeout=60.0)
            assert second.result == ("reconfig", "accepted", 2)
            after = await client.call(("set", "after", 3), timeout=60.0)
            assert after.result == ("ok", 1)
            await _until(
                lambda: all(h.epoch == 2 for h in hosts.values()), timeout=60
            )
            # Every replica recorded the same verdict sequence.
            histories = {
                tuple(
                    (request.operation, result)
                    for request, result in host.replica.executed
                )
                for host in hosts.values()
            }
            assert len(histories) == 1
            # And the archives for both closed epochs exist for replay.
            for epoch in (0, 1):
                assert (tmp_path / f"public-epoch-{epoch}.json").exists()
        finally:
            await net.close()
            for host in hosts.values():
                await host.close()

    asyncio.run(scenario())
