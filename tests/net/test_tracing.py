"""Trace accounting used by the benchmark harness."""

from dataclasses import dataclass

from repro.net.tracing import Trace, _kind_of


@dataclass(frozen=True)
class FakeMessage:
    value: int


def test_send_and_delivery_counters():
    trace = Trace()
    trace.record_send(0, 1, (("session",), FakeMessage(1)))
    trace.record_send(0, 2, (("session",), FakeMessage(2)))
    trace.record_delivery(object())
    assert trace.sent == 2
    assert trace.delivered == 1


def test_kind_extraction_unwraps_session_tuples():
    assert _kind_of((("rbc", 0, "tag"), FakeMessage(1))) == "FakeMessage"
    assert _kind_of(FakeMessage(1)) == "FakeMessage"
    assert _kind_of("raw") == "str"
    assert _kind_of(()) == "tuple"


def test_by_kind_and_by_party():
    trace = Trace()
    for _ in range(3):
        trace.record_send(7, 1, (("s",), FakeMessage(0)))
    trace.record_send(2, 1, "junk")
    assert trace.sent_by_kind["FakeMessage"] == 3
    assert trace.sent_by_kind["str"] == 1
    assert trace.sent_by_party[7] == 3


def test_custom_counters_and_snapshot():
    trace = Trace()
    trace.bump("aba.rounds")
    trace.bump("aba.rounds", 2)
    snapshot = trace.snapshot()
    assert snapshot["counters"]["aba.rounds"] == 3
    assert set(snapshot) == {"sent", "delivered", "by_kind", "counters"}


def test_byte_accounting_uses_wire_sizes():
    from repro.core.reliable_broadcast import RbcSend
    from repro.net import wire

    trace = Trace()
    trace.enable_byte_accounting()
    payload = (("rbc", 0, "t"), RbcSend("hello"))
    trace.record_send(0, 1, payload)
    assert trace.bytes_sent == len(wire.dumps(payload))
    assert trace.bytes_by_kind["RbcSend"] == trace.bytes_sent


def test_byte_accounting_skips_non_wire_payloads():
    trace = Trace()
    trace.enable_byte_accounting()
    trace.record_send(0, 1, object())
    assert trace.sent == 1
    assert trace.bytes_sent == 0
