"""Sweep harness: grid expansion, the in-process backend, and the
end-to-end campaign driver.

TCP cells are disabled here (``tcp_override=0``) — subprocess clusters
are exercised by the chaos tests and the CI smoke sweep; these tests
keep tier-1 fast and hermetic.
"""

import json

import pytest

from repro.net.chaos import ScenarioError, replay_journal
from repro.net.sweep import (
    ShapeSpec,
    SweepCell,
    SweepSpec,
    aggregate,
    expand_cells,
    nightly_spec,
    run_scenario_sim,
    run_sweep,
    smoke_spec,
    write_markdown,
)

# -- spec parsing and labels --------------------------------------------------------


def test_shape_labels():
    assert ShapeSpec(n=4, t=1).label == "n4t1"
    assert ShapeSpec(n=4, t=1, byzantine=((3, "silent"),)).label == "n4t1+1silent"
    assert (
        ShapeSpec(n=4, t=1, byzantine=((2, "silent"), (3, "silent"))).label
        == "n4t1+2silent"
    )
    assert (
        ShapeSpec(
            n=7, t=2, byzantine=((5, "equivocate"), (6, "silent"))
        ).label
        == "n7t2+2(equivocate+silent)"
    )


def test_sweep_spec_roundtrip():
    spec = smoke_spec()
    again = SweepSpec.from_json(json.loads(json.dumps(spec.to_json())))
    assert again == spec


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda d: d.pop("name"), "missing name"),
        (lambda d: d.update(shapes=[]), "at least one shape"),
        (lambda d: d.update(extra=1), "unknown key"),
        (lambda d: d.update(faults=["volcano"]), "unknown faults template"),
        (lambda d: d.update(latencies=["warp"]), "unknown latencies template"),
        (lambda d: d.update(loads=["crushing"]), "unknown loads template"),
        (lambda d: d.update(faults=[]), "empty faults axis"),
        (lambda d: d.update(seeds=[1, 1]), "duplicate seeds"),
        (lambda d: d.update(tcp_cells=-1), "negative tcp_cells"),
        (lambda d: d["shapes"][0].update(expect="maybe"), "expect"),
        (
            lambda d: d["shapes"][0].update(byzantine=[[9, "silent"]]),
            "outside",
        ),
    ],
)
def test_malformed_sweep_spec_rejected(mutate, message):
    data = smoke_spec().to_json()
    mutate(data)
    with pytest.raises(ScenarioError, match=message):
        SweepSpec.from_json(data)


# -- expansion ----------------------------------------------------------------------


def test_smoke_grid_expands_to_documented_cell_count():
    cells = expand_cells(smoke_spec())
    # 2 pass shapes x 2 faults x 2 latencies x 1 load x 3 seeds = 24,
    # 1 violation shape x (first of each axis) x 3 seeds = 3, + 1 TCP.
    assert len(cells) == 28
    assert sum(1 for c in cells if c.backend == "sim") == 27
    assert sum(1 for c in cells if c.backend == "tcp") == 1
    assert sum(1 for c in cells if c.expected == "violation") == 3
    # Smoke covers at least three axes with >1 value (acceptance floor).
    spec = smoke_spec()
    multi_axes = [
        axis
        for axis in (spec.shapes, spec.faults, spec.latencies, spec.seeds)
        if len(axis) > 1
    ]
    assert len(multi_axes) >= 3


def test_expansion_is_deterministic_and_seeds_innermost():
    spec = smoke_spec()
    a = expand_cells(spec)
    b = expand_cells(spec)
    assert [c.label for c in a] == [c.label for c in b]
    assert [c.scenario for c in a] == [c.scenario for c in b]
    # Same grid point, adjacent seeds: only the seed differs.
    assert a[0].label == "n4t1/clean/none/serial/s101"
    assert a[1].label == "n4t1/clean/none/serial/s102"
    assert a[0].scenario.seed == 101 and a[1].scenario.seed == 102


def test_violation_shapes_do_not_multiply_across_benign_axes():
    spec = SweepSpec(
        name="v",
        shapes=(ShapeSpec(n=4, t=1, byzantine=((2, "silent"), (3, "silent")),
                          expect="violation"),),
        faults=("clean", "duplicating", "partition"),
        latencies=("none", "jitter"),
        seeds=(1, 2),
    )
    cells = expand_cells(spec)
    assert len(cells) == 2  # one grid point per seed, not 3x2x2
    assert all(c.scenario.faults.duplicate_rate == 0 for c in cells)


def test_tcp_cells_sample_only_expected_pass_cells():
    spec = SweepSpec(
        name="t",
        shapes=(
            ShapeSpec(n=4, t=1),
            ShapeSpec(n=4, t=1, byzantine=((2, "silent"), (3, "silent")),
                      expect="violation"),
        ),
        seeds=(1, 2, 3),
        tcp_cells=2,
    )
    cells = expand_cells(spec)
    tcp = [c for c in cells if c.backend == "tcp"]
    assert len(tcp) == 2
    assert all(c.expected == "pass" for c in tcp)
    assert all(c.label.startswith("tcp:") for c in tcp)
    # Evenly sampled: first and last of the pass pool.
    assert tcp[0].label == "tcp:n4t1/clean/none/serial/s1"
    assert tcp[1].label == "tcp:n4t1/clean/none/serial/s3"


def test_nightly_grid_meets_the_floor():
    cells = expand_cells(nightly_spec())
    assert sum(1 for c in cells if c.backend == "sim") >= 100
    assert sum(1 for c in cells if c.backend == "tcp") >= 6


# -- the in-process simulator backend -----------------------------------------------


def _cell(label_prefix: str, **kwargs) -> SweepCell:
    spec = SweepSpec(name="one", shapes=(ShapeSpec(**kwargs),), seeds=(7,))
    return expand_cells(spec)[0]


def test_clean_cell_passes_and_is_deterministic(tmp_path):
    cell = _cell("clean")
    first = run_scenario_sim(cell.scenario)
    second = run_scenario_sim(cell.scenario)
    assert first["ok"] and second["ok"]
    assert first["committed"] == second["committed"] > 0
    assert first["journal_lengths"] == second["journal_lengths"]
    assert first["timeline"] == second["timeline"]
    assert first["backend"] == "sim"
    assert first["latency_unit"] == "steps"
    journal = tmp_path / "journal.json"
    journal.write_text(json.dumps(first))
    assert replay_journal(journal) == 0  # sim journals replay too


def test_admissible_coalition_still_commits():
    cell = _cell("byz", byzantine=((3, "silent"),))
    report = run_scenario_sim(cell.scenario)
    assert report["ok"]
    assert report["committed"] > 0


def test_inadmissible_coalition_trips_the_liveness_oracle():
    cell = _cell(
        "viol",
        byzantine=((2, "silent"), (3, "silent")),
        expect="violation",
    )
    report = run_scenario_sim(cell.scenario)
    assert not report["ok"]
    kinds = set(report["liveness"]["kinds"]) | set(report["safety"]["kinds"])
    assert "liveness.stuck" in kinds


def test_faulty_network_templates_still_pass():
    spec = SweepSpec(
        name="faulty",
        shapes=(ShapeSpec(n=4, t=1),),
        faults=("partition", "churn"),
        latencies=("jitter",),
        seeds=(5,),
    )
    for cell in expand_cells(spec):
        report = run_scenario_sim(cell.scenario)
        assert report["ok"], (cell.label, report["safety"], report["liveness"])


# -- the campaign driver ------------------------------------------------------------


def _tiny_spec() -> SweepSpec:
    return SweepSpec(
        name="tiny",
        shapes=(
            ShapeSpec(n=4, t=1),
            ShapeSpec(n=4, t=1, byzantine=((2, "silent"), (3, "silent")),
                      expect="violation"),
        ),
        seeds=(31, 32),
    )


def test_run_sweep_end_to_end(tmp_path, capsys):
    out = tmp_path / "SWEEP.json"
    md = tmp_path / "SWEEP.md"
    repro = tmp_path / "repro"
    rc = run_sweep(
        _tiny_spec(),
        out=out,
        markdown=md,
        repro_dir=repro,
        workers=1,
        tcp_override=0,
    )
    assert rc == 0  # expected violations firing is a *pass* for the sweep
    payload = json.loads(out.read_text())
    assert payload["schema"] == 1
    totals = payload["totals"]
    assert totals == {
        "runs": 4,
        "sim": 4,
        "tcp": 0,
        "passed": 2,
        "violations": 2,
        "expected_violations": 2,
        "mismatched": 0,
        "by_violation": totals["by_violation"],
    }
    assert totals["by_violation"]  # the oracle named its violation kinds
    # Records are in expansion order and schema-stable.
    record_keys = {
        "cell", "backend", "scenario", "seed", "expected", "outcome",
        "matched", "violations", "summary", "repro",
    }
    assert [set(r) == record_keys for r in payload["runs"]]
    assert [r["cell"] for r in payload["runs"]] == [
        "n4t1/clean/none/serial/s31",
        "n4t1/clean/none/serial/s32",
        "n4t1+2silent/clean/none/serial/s31",
        "n4t1+2silent/clean/none/serial/s32",
    ]
    # Markdown table renders one row per run.
    table_rows = [
        line for line in md.read_text().splitlines()
        if line.startswith("| `")
    ]
    assert len(table_rows) == 4

    # Every violating cell emitted a bundle that the chaos replayer
    # accepts verbatim (the acceptance-criterion loop).
    bundles = sorted(repro.glob("*.json"))
    assert len(bundles) == 2
    for bundle_path in bundles:
        bundle = json.loads(bundle_path.read_text())
        assert bundle["scenario"]["byzantine"]
        assert replay_journal(bundle_path) == 0


def test_run_sweep_flags_expected_violation_that_passes(tmp_path):
    # A shape wrongly marked expect="violation" (coalition within t)
    # must fail the sweep: the oracle self-test is two-sided.
    spec = SweepSpec(
        name="self-test",
        shapes=(ShapeSpec(n=4, t=1, byzantine=((3, "silent"),),
                          expect="violation"),),
        seeds=(41,),
    )
    rc = run_sweep(
        spec, out=tmp_path / "s.json", workers=1, tcp_override=0,
    )
    assert rc == 1
    payload = json.loads((tmp_path / "s.json").read_text())
    assert payload["totals"]["mismatched"] == 1
    assert payload["runs"][0]["outcome"] == "pass"
    assert payload["runs"][0]["repro"] is None


def test_aggregate_and_markdown_handle_empty_violations(tmp_path):
    spec = SweepSpec(name="agg", shapes=(ShapeSpec(),))
    records = [
        {
            "cell": "n4t1/clean/none/serial/s1",
            "backend": "sim",
            "scenario": "sweep-n4t1-clean-none-serial",
            "seed": 1,
            "expected": "pass",
            "outcome": "pass",
            "matched": True,
            "violations": [],
            "summary": {
                "ok": True, "committed": 6, "ops": 6, "probes": 2,
                "latency_unit": "steps", "latency_p50": 120.0,
                "latency_p99": 130.0, "probe_p50": 90.0,
                "ops_per_s": None, "violations": [],
            },
            "repro": None,
        }
    ]
    payload = aggregate(spec, records)
    assert payload["totals"]["by_violation"] == {}
    md = tmp_path / "r.md"
    write_markdown(payload, md)
    text = md.read_text()
    assert "120 steps" in text
    assert "⚠" not in text
