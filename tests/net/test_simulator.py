"""The discrete-event network: delivery, determinism, crash, liveness."""

import random

import pytest

from repro.net.scheduler import FifoScheduler, RandomScheduler
from repro.net.simulator import LivenessError, Network, Node


class Recorder(Node):
    def __init__(self):
        self.received = []
        self.started = False

    def on_start(self):
        self.started = True

    def on_message(self, sender, payload):
        self.received.append((sender, payload))


class Echoer(Node):
    """Replies once to each message — generates follow-up traffic."""

    def __init__(self, network, party):
        self.network = network
        self.party = party
        self.seen = 0

    def on_message(self, sender, payload):
        self.seen += 1
        if payload == "ping":
            self.network.send(self.party, sender, "pong")


def _network(scheduler=None, seed=0, nodes=3, node_factory=None):
    net = Network(scheduler or FifoScheduler(), random.Random(seed))
    out = {}
    for i in range(nodes):
        node = node_factory(net, i) if node_factory else Recorder()
        net.attach(i, node)
        out[i] = node
    return net, out


def test_point_to_point_delivery():
    net, nodes = _network()
    net.send(0, 1, "hello")
    net.run()
    assert nodes[1].received == [(0, "hello")]
    assert nodes[2].received == []


def test_broadcast_includes_sender():
    net, nodes = _network()
    net.broadcast(1, "x")
    net.run()
    for i in range(3):
        assert (1, "x") in nodes[i].received


def test_on_start_called_once():
    net, nodes = _network()
    net.start()
    net.start()
    assert all(n.started for n in nodes.values())


def test_send_to_unknown_party_rejected():
    net, _ = _network()
    with pytest.raises(ValueError):
        net.send(0, 99, "x")


def test_fifo_preserves_order():
    net, nodes = _network()
    for k in range(10):
        net.send(0, 1, k)
    net.run()
    assert [p for _, p in nodes[1].received] == list(range(10))


def test_random_scheduler_is_deterministic_per_seed():
    def run(seed):
        net, nodes = _network(RandomScheduler(), seed=seed)
        for k in range(20):
            net.send(0, 1, k)
            net.send(0, 2, k)
        net.run()
        return [p for _, p in nodes[1].received]

    assert run(5) == run(5)
    assert run(5) != run(6)  # overwhelmingly likely


def test_reply_traffic_is_processed():
    net, nodes = _network(node_factory=Echoer)
    net.send(0, 1, "ping")
    net.run()
    assert nodes[0].seen == 1  # got the pong


def test_crashed_party_receives_nothing():
    net, nodes = _network()
    net.crash(2)
    net.broadcast(0, "x")
    net.run()
    assert nodes[2].received == []
    assert (0, "x") in nodes[1].received


def test_recover_restores_delivery():
    net, nodes = _network()
    net.crash(2)
    net.send(0, 2, "lost")  # dropped while crashed
    net.run()
    net.recover(2)
    net.send(0, 2, "after")
    net.run()
    assert nodes[2].received == [(0, "after")]


def test_recover_with_replacement_node():
    net, nodes = _network()
    net.crash(1)
    fresh = Recorder()
    net.recover(1, fresh)
    net.send(0, 1, "hello-again")
    net.run()
    assert fresh.received == [(0, "hello-again")]
    assert nodes[1].received == []  # the old node is detached


def test_run_until_predicate_counts_steps():
    net, nodes = _network()
    for k in range(10):
        net.send(0, 1, k)
    steps = net.run(until=lambda: len(nodes[1].received) >= 3)
    assert steps == 3
    assert len(net.pending) == 7


def test_liveness_error_on_quiescence():
    net, nodes = _network()
    net.send(0, 1, "only")
    with pytest.raises(LivenessError):
        net.run(until=lambda: False, max_steps=100)


def test_liveness_error_on_budget_exhaustion():
    net, _ = _network(node_factory=Echoer)
    # Echoers generate pongs; predicate never true.
    net.send(0, 1, "ping")
    with pytest.raises(LivenessError):
        net.run(until=lambda: False, max_steps=5)


def test_trace_counts():
    net, _ = _network()
    net.broadcast(0, "m")
    net.run()
    assert net.trace.sent == 3
    assert net.trace.delivered == 3
    assert net.delivered_count == 3


def test_duplicate_attach_rejected():
    net, _ = _network()
    with pytest.raises(ValueError):
        net.attach(0, Recorder())
