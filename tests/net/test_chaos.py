"""The chaos engine: seeded fault plans, scenarios, and Byzantine parties.

Everything here is deterministic and in-process: the full subprocess
orchestration path is exercised by the CI chaos-smoke job
(``python -m repro chaos run``); these tests pin down the properties
the engine's reproducibility guarantee rests on.
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.core.atomic_broadcast import AbcProposal, batch_digest, proposal_statement
from repro.crypto import deal_system, small_group
from repro.crypto.dealer import deal_channel_keys
from repro.net.adversary import MutatingNode, SilentNode, SpamNode
from repro.net.chaos import (
    FaultSpec,
    PartitionSpec,
    Scenario,
    SeededFaultPlan,
    builtin_scenarios,
    byzantine_node,
    corrupt_checkpoint,
    load_fault_plan,
    plan_timeline,
    resolve_scenario,
    save_fault_plan,
)
from repro.net.runtime import load_checkpoint, write_checkpoint
from repro.net.scheduler import FifoScheduler
from repro.net.simulator import Network
from repro.smr.replica import service_session

LINKS = [(0, 1), (1, 0), (0, 2), (3, 0)]

MIXED = FaultSpec(
    reset_rate=0.05,
    corrupt_rate=0.05,
    duplicate_rate=0.1,
    delay_rate=0.2,
    hold_rate=0.3,
)


def _frame_trace(plan: SeededFaultPlan, sender: int, recipient: int, count=50):
    return [
        (fault.action, fault.delay)
        for fault in (plan.frame_fault(sender, recipient) for _ in range(count))
    ]


def _hold_trace(plan: SeededFaultPlan, sender: int, recipient: int, count=50):
    return [plan.send_hold(sender, recipient) for _ in range(count)]


# -- seed reproducibility -----------------------------------------------------------


def test_same_seed_same_fault_streams():
    """Two plans built from the same (spec, seed) — e.g. in different
    replica processes — draw identical per-link decision streams."""
    a = SeededFaultPlan(MIXED, seed=1234)
    b = SeededFaultPlan(MIXED, seed=1234)
    for sender, recipient in LINKS:
        assert _frame_trace(a, sender, recipient) == _frame_trace(b, sender, recipient)
        assert _hold_trace(a, sender, recipient) == _hold_trace(b, sender, recipient)


def test_different_seed_different_fault_streams():
    a = SeededFaultPlan(MIXED, seed=1234)
    b = SeededFaultPlan(MIXED, seed=4321)
    assert _frame_trace(a, 0, 1, count=200) != _frame_trace(b, 0, 1, count=200)


def test_links_draw_from_independent_streams():
    """The (0, 1) link's stream is not the (1, 0) link's stream, and
    interleaving draws on one link does not perturb another."""
    plan = SeededFaultPlan(MIXED, seed=7)
    solo = SeededFaultPlan(MIXED, seed=7)
    interleaved = []
    for _ in range(50):
        interleaved.append(
            (plan.frame_fault(0, 1).action, plan.frame_fault(1, 0).action)
        )
    forward = [action for action, _ in interleaved]
    backward = [action for _, action in interleaved]
    assert forward == [f.action for f in (solo.frame_fault(0, 1) for _ in range(50))]
    assert forward != backward


def test_fault_rates_cascade_and_bound_delays():
    always = {"reset_rate": 0.0, "corrupt_rate": 0.0, "duplicate_rate": 0.0}
    for rate, action in (
        ("reset_rate", "reset"),
        ("corrupt_rate", "corrupt"),
        ("duplicate_rate", "duplicate"),
    ):
        plan = SeededFaultPlan(FaultSpec(**{**always, rate: 1.0}), seed=1)
        assert all(f.action == action for f in (plan.frame_fault(0, 1) for _ in range(20)))
    delayed = SeededFaultPlan(FaultSpec(delay_rate=1.0, max_delay=0.05), seed=1)
    for _ in range(20):
        fault = delayed.frame_fault(0, 1)
        assert fault.action == "pass"
        assert 0.0 <= fault.delay <= 0.05
    held = SeededFaultPlan(FaultSpec(hold_rate=1.0, max_hold=0.2), seed=1)
    assert all(0.0 < held.send_hold(0, 1) <= 0.2 for _ in range(20))


def test_zero_rates_touch_no_rng():
    """A quiet plan must not consume randomness: adding a fault-free
    link must never shift another link's stream."""
    plan = SeededFaultPlan(FaultSpec(), seed=3)
    assert plan.frame_fault(0, 1).action == "pass"
    assert plan.send_hold(0, 1) == 0.0
    assert plan._frame_rngs == {} and plan._hold_rngs == {}


# -- partitions ---------------------------------------------------------------------


def test_partition_window_cuts_both_directions():
    spec = FaultSpec(partitions=(PartitionSpec(start=2.0, stop=4.0, group=(3,)),))
    inside = SeededFaultPlan(spec, seed=0, epoch=time.time() - 3.0)
    assert not inside.link_up(0, 3)
    assert not inside.link_up(3, 0)
    assert inside.link_up(0, 1)  # both outside the cut group
    before = SeededFaultPlan(spec, seed=0, epoch=time.time() - 1.0)
    healed = SeededFaultPlan(spec, seed=0, epoch=time.time() - 10.0)
    assert before.link_up(0, 3) and healed.link_up(0, 3)


def test_start_anchors_epoch_once():
    plan = SeededFaultPlan(FaultSpec(), seed=0)
    assert plan.epoch is None
    plan.start()
    first = plan.epoch
    assert first is not None
    plan.start()
    assert plan.epoch == first
    pinned = SeededFaultPlan(FaultSpec(), seed=0, epoch=123.0)
    pinned.start()
    assert pinned.epoch == 123.0


def test_save_and_load_fault_plan_round_trip(tmp_path):
    spec = MIXED
    epoch = save_fault_plan(tmp_path, spec, seed=77)
    plan = load_fault_plan(tmp_path)
    assert plan is not None
    assert plan.seed == 77
    assert plan.epoch == epoch
    assert plan.spec == spec
    # The loaded plan replays the exact stream of a fresh in-memory one.
    assert _frame_trace(plan, 0, 1) == _frame_trace(SeededFaultPlan(spec, 77), 0, 1)


def test_load_fault_plan_absent_means_no_chaos(tmp_path):
    assert load_fault_plan(tmp_path) is None


# -- scenarios and timelines --------------------------------------------------------


def test_builtin_scenarios_round_trip_through_json():
    for name, scenario in builtin_scenarios().items():
        assert scenario.name == name
        encoded = json.dumps(scenario.to_json())
        assert Scenario.from_json(json.loads(encoded)) == scenario


def test_plan_timeline_is_deterministic_and_json_stable():
    scenario = builtin_scenarios()["torture"]
    timeline = plan_timeline(scenario)
    assert timeline == plan_timeline(scenario)
    # Entries are plain JSON types, so replay's equality check survives
    # a serialization round-trip.
    assert json.loads(json.dumps(timeline)) == timeline
    assert timeline == sorted(timeline, key=lambda e: e["at"])


def test_plan_timeline_covers_every_fault_and_op():
    scenario = builtin_scenarios()["kill-recover"]
    timeline = plan_timeline(scenario)
    kinds = [entry["kind"] for entry in timeline]
    assert kinds.count("op") == scenario.ops
    assert kinds.count("kill") == 1
    assert kinds.count("corrupt-checkpoint") == 1
    assert kinds.count("restart") == 1
    ops = [entry for entry in timeline if entry["kind"] == "op"]
    assert all(entry["at"] >= scenario.workload_start for entry in ops)


def test_plan_timeline_depends_on_seed():
    scenario = builtin_scenarios()["partition-heal"]
    from dataclasses import replace

    reseeded = replace(scenario, seed=scenario.seed + 1)
    a = [e["at"] for e in plan_timeline(scenario) if e["kind"] == "op"]
    b = [e["at"] for e in plan_timeline(reseeded) if e["kind"] == "op"]
    assert a != b


def test_resolve_scenario_builtin_file_and_seed_override(tmp_path):
    assert resolve_scenario("torture").name == "torture"
    assert resolve_scenario("torture", seed=9).seed == 9
    custom = tmp_path / "custom.json"
    custom.write_text(json.dumps(builtin_scenarios()["stall"].to_json()))
    assert resolve_scenario(str(custom)) == builtin_scenarios()["stall"]
    with pytest.raises(SystemExit):
        resolve_scenario("no-such-scenario")


# -- checkpoint corruption ----------------------------------------------------------


def test_corrupt_checkpoint_forces_rejection(tmp_path):
    keys = deal_channel_keys([0, 1, 2, 3], random.Random(5))
    entries = ((("req", 7, 1, ("set", "a", 1)), 1),)
    write_checkpoint(tmp_path, 2, keys[2], entries, round_number=1)
    assert load_checkpoint(tmp_path, 2, keys[2]) == (entries, 1)
    assert corrupt_checkpoint(tmp_path, 2)
    assert load_checkpoint(tmp_path, 2, keys[2]) is None


def test_corrupt_checkpoint_without_checkpoint_is_a_noop(tmp_path):
    assert not corrupt_checkpoint(tmp_path, 0)


def test_checkpoint_is_bound_to_its_party(tmp_path):
    """Party 1 cannot load (or be fed) party 0's checkpoint: the MAC
    key is derived from the party id and its full channel keyring."""
    keys = deal_channel_keys([0, 1], random.Random(6))
    write_checkpoint(tmp_path, 0, keys[0], (), round_number=0)
    source = (tmp_path / "checkpoint-0.json").read_text()
    (tmp_path / "checkpoint-1.json").write_text(
        source.replace('"party": 0', '"party": 1')
    )
    assert load_checkpoint(tmp_path, 0, keys[0]) is not None
    assert load_checkpoint(tmp_path, 1, keys[1]) is None


# -- byzantine parties --------------------------------------------------------------


def _system(seed=7):
    keys = deal_system(4, random.Random(seed), t=1, group=small_group())
    return keys.public, keys.private


def test_byzantine_node_kinds():
    public, private = _system()
    network = Network(FifoScheduler(), random.Random(0))
    node, runtime, replica = byzantine_node("silent", network, 3, public, private[3])
    assert isinstance(node, SilentNode) and runtime is None and replica is None
    node, runtime, replica = byzantine_node("spam", network, 3, public, private[3])
    assert isinstance(node, SpamNode) and runtime is None and replica is None
    node, runtime, replica = byzantine_node(
        "equivocate", network, 3, public, private[3]
    )
    assert isinstance(node, MutatingNode)
    assert runtime is not None and replica is not None
    with pytest.raises(ValueError):
        byzantine_node("helpful", network, 3, public, private[3])


def test_equivocator_resigns_empty_batches_for_odd_peers():
    public, private = _system()
    network = Network(FifoScheduler(), random.Random(0))
    node, _, _ = byzantine_node("equivocate", network, 3, public, private[3])
    session = service_session()
    honest = (session, AbcProposal(2, (("payload", 1),), None))

    mutated = node.mutate(1, honest)
    assert mutated is not honest
    _, proposal = mutated
    assert proposal.round == 2 and proposal.batch == ()
    # The forgery is *validly signed* — allowed adversary behavior the
    # agreement layer must neutralize, not a frame the MAC layer drops.
    statement = proposal_statement(session, 2, batch_digest(()))
    assert public.verify_keys[3].verify(statement, proposal.signature)

    assert node.mutate(2, honest) is honest  # even peers see the truth
    other = (session, ("not", "a proposal"))
    assert node.mutate(1, other) is other
