"""Fuzz / property tests: ``wire.loads`` never crashes on attacker bytes.

The transport feeds every frame body it receives straight into the
codec, so the codec's contract under malice is load-bearing: any byte
string must either decode cleanly or raise :class:`wire.WireError` —
never an ``IndexError``, ``MemoryError``, ``RecursionError``, or any
other exception an adversary could turn into a crash.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.schnorr import Signature
from repro.net import wire

atoms = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**40), 10**40),
    st.text(max_size=20),
    st.binary(max_size=20),
)
values = st.recursive(
    atoms,
    lambda children: st.one_of(
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.integers(0, 9), children, max_size=3),
        st.frozensets(st.integers(0, 50), max_size=4),
    ),
    max_leaves=12,
)

# A fixed corpus of valid frames covering every tag the codec emits.
_CORPUS_VALUES = [
    None,
    True,
    False,
    0,
    -1,
    2**70,
    -(2**70),
    "",
    "hello wörld",
    b"",
    b"\x00\xff" * 10,
    (),
    (1, ("two", (b"three", None))),
    {1: "a", 2: (3, 4)},
    frozenset({1, 2, 3}),
    Signature(commit=123456789, response=987654321),
    (("service", "tag"), (1, 2, {3: b"x"})),
]


def _corpus() -> list[bytes]:
    return [wire.dumps(value) for value in _CORPUS_VALUES]


def _assert_loads_is_total(data: bytes) -> None:
    """The only acceptable failure mode is WireError."""
    try:
        wire.loads(data)
    except wire.WireError:
        pass


@given(values)
@settings(max_examples=100)
def test_random_values_roundtrip(value):
    assert wire.loads(wire.dumps(value)) == value


@given(st.binary(max_size=200))
@settings(max_examples=200)
def test_arbitrary_bytes_never_crash(data):
    _assert_loads_is_total(data)


def test_mutated_valid_frames_never_crash():
    """Randomly flip, insert, and delete bytes in valid encodings."""
    rng = random.Random(0xC0DEC)
    corpus = _corpus()
    for _ in range(3000):
        data = bytearray(rng.choice(corpus))
        for _ in range(rng.randint(1, 4)):
            mutation = rng.randrange(3)
            if mutation == 0 and data:
                data[rng.randrange(len(data))] = rng.randrange(256)
            elif mutation == 1 and data:
                del data[rng.randrange(len(data))]
            else:
                data.insert(rng.randrange(len(data) + 1), rng.randrange(256))
        _assert_loads_is_total(bytes(data))


def test_every_truncation_of_valid_frames_never_crashes():
    for encoded in _corpus():
        for cut in range(len(encoded)):
            _assert_loads_is_total(encoded[:cut])


def test_spliced_frames_never_crash():
    """Concatenations and cross-splices of valid frames."""
    rng = random.Random(0x5EED)
    corpus = _corpus()
    for _ in range(1000):
        a, b = rng.choice(corpus), rng.choice(corpus)
        cut_a, cut_b = rng.randrange(len(a) + 1), rng.randrange(len(b) + 1)
        _assert_loads_is_total(a[:cut_a] + b[cut_b:])


def test_length_field_lies_never_crash():
    """Inflate or deflate internal length fields (any 4-byte window)."""
    rng = random.Random(0xF1E1D)
    corpus = [c for c in _corpus() if len(c) >= 5]
    for _ in range(1500):
        data = bytearray(rng.choice(corpus))
        offset = rng.randrange(len(data) - 3)
        lie = rng.choice([0, 1, 2**16, 2**31 - 1, 2**32 - 1])
        data[offset : offset + 4] = lie.to_bytes(4, "big")
        _assert_loads_is_total(bytes(data))
