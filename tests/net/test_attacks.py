"""The packaged protocol-aware attacks, each defeated by design."""

from helpers import ctx_for, make_network, run_until_outputs

from repro.core.atomic_broadcast import AtomicBroadcast, abc_session
from repro.core.binary_agreement import BinaryAgreement, aba_session
from repro.core.consistent_broadcast import ConsistentBroadcast, cbc_session
from repro.core.reliable_broadcast import ReliableBroadcast, rbc_session
from repro.net.attacks import (
    CoinShareReplayer,
    DivergentAbcProposer,
    EquivocatingCbcSender,
    EquivocatingRbcSender,
    TwoFacedVoter,
)


def test_equivocating_rbc_sender_cannot_split_delivery(keys_4_1):
    for seed in range(4):
        net, rts = make_network(keys_4_1, seed=seed, parties=[1, 2, 3])
        session = rbc_session(0, ("atk", seed))
        net.attach(0, EquivocatingRbcSender(
            net, 0, session, "A", "B", camp_a=[1, 2], camp_b=[3]))
        for p, rt in rts.items():
            rt.spawn(session, ReliableBroadcast(0))
        net.run()
        delivered = {rts[p].result(session) for p in rts} - {None}
        assert len(delivered) <= 1, f"seed {seed}"


def test_equivocating_cbc_sender_cannot_split_delivery(keys_4_1):
    for seed in range(4):
        net, rts = make_network(keys_4_1, seed=seed + 10, parties=[1, 2, 3])
        session = cbc_session(0, ("atk", seed))
        net.attach(0, EquivocatingCbcSender(
            net, 0, session, "A", "B", camp_a=[1, 3], camp_b=[2]))
        for p, rt in rts.items():
            rt.spawn(session, ConsistentBroadcast(0))
        net.run()
        delivered = {
            rts[p].result(session).value
            for p in rts if rts[p].result(session) is not None
        }
        assert len(delivered) <= 1, f"seed {seed}"


def test_two_faced_voter_cannot_break_agreement(keys_4_1):
    for seed in range(4):
        net, rts = make_network(keys_4_1, seed=seed + 20, parties=[0, 1, 2])
        session = aba_session(("atk", seed))
        net.attach(3, TwoFacedVoter(net, 3, session))
        for p, rt in rts.items():
            rt.spawn(session, BinaryAgreement(p % 2))
        outputs = run_until_outputs(net, rts, session)
        assert len(set(outputs.values())) == 1, f"seed {seed}"


def test_coin_replayer_cannot_bias_the_coin(keys_4_1):
    net, rts = make_network(keys_4_1, seed=31, parties=[0, 1, 2])
    session = aba_session("replay")
    net.attach(3, CoinShareReplayer(net, 3, session))
    for p, rt in rts.items():
        rt.spawn(session, BinaryAgreement(p % 2))
    outputs = run_until_outputs(net, rts, session)
    assert len(set(outputs.values())) == 1
    # The replayer's forged shares were never accepted into any coin.
    for p, rt in rts.items():
        inst = rt.instances[session]
        for state in inst.rounds.values():
            assert 3 not in state.coin_shares


def test_divergent_abc_proposer_keeps_total_order(keys_4_1):
    net, rts = make_network(keys_4_1, seed=41, parties=[1, 2, 3])
    session = abc_session("atk")
    logs = {p: [] for p in rts}
    for p, rt in rts.items():
        rt.spawn(session, AtomicBroadcast(
            on_deliver=lambda m, r, pp=p: logs[pp].append(m)))
    net.attach(0, DivergentAbcProposer(
        net, 0, session, keys_4_1.private[0],
        batches={1: (("evil", 1),), 2: (("evil", 2),), 3: ()},
    ))
    net.start()
    for p in rts:
        rts[p].instances[session].submit(ctx_for(rts[p], session), ("req", p))
    net.run(until=lambda: all(len(logs[p]) >= 3 for p in rts), max_steps=900_000)
    net.run(max_steps=900_000)
    assert logs[1] == logs[2] == logs[3]
