"""The asyncio TCP transport: frame codec, delivery, and fault handling.

Every asynchronous test runs under ``asyncio.run`` inside a plain
pytest function (no asyncio plugin), and every network built here is
closed before the loop ends, so the suite leaks no tasks or sockets.
"""

from __future__ import annotations

import asyncio
import random
import time

import pytest

from repro.crypto import deal_system, small_group
from repro.crypto import keystore
from repro.crypto.dealer import CLIENT_BASE, deal_channel_keys
from repro.net import wire
from repro.net.chaos import FaultSpec, PartitionSpec, SeededFaultPlan
from repro.net.runtime import (
    CLUSTER_FILE,
    ClusterConfig,
    ReplicaHost,
    allocate_addresses,
)
from repro.net.simulator import Network
from repro.net.scheduler import FifoScheduler
from repro.net.transport import (
    MAX_FRAME_BODY,
    TransportError,
    TransportNetwork,
    decode_data,
    decode_hello,
    encode_data,
    encode_hello,
)
from repro.smr.client import ServiceClient

KEY_A = bytes(range(32))
KEY_B = bytes(range(32, 64))


# -- frame codec --------------------------------------------------------------------


def test_hello_roundtrip():
    frame = encode_hello(KEY_A, sender=3, recipient=7, incarnation=123)
    body = frame[4:]
    assert int.from_bytes(frame[:4], "big") == len(body)
    sender, incarnation = decode_hello(body, 7, {3: KEY_A}.get)
    assert (sender, incarnation) == (3, 123)


def test_hello_rejects_wrong_key():
    body = encode_hello(KEY_A, 3, 7, 123)[4:]
    with pytest.raises(TransportError):
        decode_hello(body, 7, {3: KEY_B}.get)


def test_hello_rejects_unknown_sender():
    body = encode_hello(KEY_A, 3, 7, 123)[4:]
    with pytest.raises(TransportError):
        decode_hello(body, 7, {5: KEY_A}.get)


def test_hello_rejects_wrong_recipient():
    # A frame for party 7 replayed at party 8 must not authenticate.
    body = encode_hello(KEY_A, 3, 7, 123)[4:]
    with pytest.raises(TransportError):
        decode_hello(body, 8, {3: KEY_A}.get)


def test_data_roundtrip():
    payload = wire.dumps(("session", 42))
    frame = encode_data(KEY_A, 1, 2, incarnation=9, seq=5, payload=payload)
    incarnation, seq, decoded = decode_data(frame[4:], KEY_A, 1, 2)
    assert (incarnation, seq) == (9, 5)
    assert wire.loads(decoded) == ("session", 42)


def test_data_rejects_tampered_payload():
    payload = wire.dumps("hello")
    frame = bytearray(encode_data(KEY_A, 1, 2, 9, 5, payload))
    frame[-1] ^= 0x01
    with pytest.raises(TransportError):
        decode_data(bytes(frame[4:]), KEY_A, 1, 2)


def test_data_rejects_reflected_direction():
    # The MAC binds direction: a (1 -> 2) frame replayed as (2 -> 1) fails.
    payload = wire.dumps("hello")
    body = encode_data(KEY_A, 1, 2, 9, 5, payload)[4:]
    with pytest.raises(TransportError):
        decode_data(body, KEY_A, 2, 1)


def test_encode_rejects_oversized_payload():
    with pytest.raises(TransportError):
        encode_data(KEY_A, 1, 2, 9, 5, b"x" * (wire._MAX_LENGTH + 1))


# -- in-process transport helpers --------------------------------------------------


class Collector:
    """A node that just records what the transport delivers."""

    def __init__(self) -> None:
        self.received: list[tuple[int, object]] = []

    def on_message(self, sender: int, payload: object) -> None:
        self.received.append((sender, payload))


async def _start_nets(parties, seed=0):
    """One TransportNetwork + Collector per party, all ports dynamic."""
    keys = deal_channel_keys(list(parties), random.Random(seed))
    nets: dict[int, TransportNetwork] = {}
    nodes: dict[int, Collector] = {}
    for party in parties:
        net = TransportNetwork(
            party, {party: ("127.0.0.1", 0)}, keys[party],
            rng=random.Random(1000 + party),
        )
        node = Collector()
        net.attach(party, node)
        await net.start()
        nets[party], nodes[party] = net, node
    for party in parties:
        for peer in parties:
            nets[party].addresses[peer] = nets[peer].listen_address
    return nets, nodes


async def _close_all(nets):
    for net in nets.values():
        await net.close()


async def _until(condition, timeout=15.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not condition():
        assert asyncio.get_running_loop().time() < deadline, "condition timed out"
        await asyncio.sleep(0.02)


# -- delivery ----------------------------------------------------------------------


def test_point_to_point_delivery_in_order():
    async def scenario():
        nets, nodes = await _start_nets([0, 1])
        try:
            for i in range(25):
                nets[0].send(0, 1, ("msg", i))
            await nets[1].wait_until(
                lambda: len(nodes[1].received) == 25, timeout=15
            )
            assert nodes[1].received == [(0, ("msg", i)) for i in range(25)]
            assert not nets[0].errors and not nets[1].errors
        finally:
            await _close_all(nets)

    asyncio.run(scenario())


def test_broadcast_reaches_every_party_including_self():
    async def scenario():
        nets, nodes = await _start_nets([0, 1, 2])
        try:
            nets[0].broadcast(0, "ping")
            for party in (0, 1, 2):
                await nets[party].wait_until(
                    lambda p=party: nodes[p].received == [(0, "ping")], timeout=15
                )
        finally:
            await _close_all(nets)

    asyncio.run(scenario())


def test_delivery_survives_connection_churn():
    """Messages sent while the receiver is down arrive after it restarts
    on the same address (reconnect + retransmission of the queue)."""

    async def scenario():
        nets, nodes = await _start_nets([0, 1])
        try:
            for i in range(5):
                nets[0].send(0, 1, ("before", i))
            await nets[1].wait_until(
                lambda: len(nodes[1].received) == 5, timeout=15
            )
            address = nets[1].listen_address
            await nets[1].close()  # crash the receiver

            for i in range(5):  # queued while the peer is down
                nets[0].send(0, 1, ("after", i))
            await asyncio.sleep(0.2)  # let at least one dial fail

            restarted = TransportNetwork(
                1,
                {1: address, 0: nets[0].listen_address},
                nets[1].channel_keys,
                rng=random.Random(2001),
            )
            node = Collector()
            restarted.attach(1, node)
            await restarted.start()
            nets[1] = restarted
            await restarted.wait_until(
                lambda: len(node.received) == 5, timeout=20
            )
            assert node.received == [(0, ("after", i)) for i in range(5)]
            assert nets[0].trace.counters.get("transport.reconnects", 0) >= 1
        finally:
            await _close_all(nets)

    asyncio.run(scenario())


# -- injected faults (the chaos hook surface) ---------------------------------------


def test_partition_blocks_delivery_until_heal():
    """While a FaultPlan partition is active no frame crosses the cut
    in either direction; after the scheduled heal the retransmission
    machinery delivers everything that was queued."""

    async def scenario():
        spec = FaultSpec(
            partitions=(PartitionSpec(start=0.0, stop=1.0, group=(1,)),)
        )
        epoch = time.time()
        keys = deal_channel_keys([0, 1], random.Random(3))
        nets, nodes = {}, {}
        for party in (0, 1):
            net = TransportNetwork(
                party, {party: ("127.0.0.1", 0)}, keys[party],
                rng=random.Random(3000 + party),
                faults=SeededFaultPlan(spec, seed=11, epoch=epoch),
            )
            node = Collector()
            net.attach(party, node)
            await net.start()
            nets[party], nodes[party] = net, node
        for party in (0, 1):
            for peer in (0, 1):
                nets[party].addresses[peer] = nets[peer].listen_address
        try:
            for i in range(5):
                nets[0].send(0, 1, ("cut", i))
                nets[1].send(1, 0, ("cut-back", i))
            await asyncio.sleep(0.3)  # well inside the partition window
            assert nodes[1].received == [] and nodes[0].received == []
            assert nets[0].trace.counters.get("chaos.partitioned", 0) >= 1

            await nets[1].wait_until(
                lambda: len(nodes[1].received) == 5, timeout=30
            )
            await nets[0].wait_until(
                lambda: len(nodes[0].received) == 5, timeout=30
            )
            assert nodes[1].received == [(0, ("cut", i)) for i in range(5)]
            assert nodes[0].received == [(1, ("cut-back", i)) for i in range(5)]
        finally:
            await _close_all(nets)

    asyncio.run(scenario())


# -- misbehaving peers -------------------------------------------------------------


async def _raw_connect(net):
    host, port = net.listen_address
    return await asyncio.open_connection(host, port)


def test_oversized_frame_drops_connection():
    async def scenario():
        nets, nodes = await _start_nets([0])
        try:
            reader, writer = await _raw_connect(nets[0])
            writer.write((MAX_FRAME_BODY + 1).to_bytes(4, "big") + b"x" * 64)
            await writer.drain()
            assert await reader.read() == b""  # server hung up
            writer.close()
            await _until(
                lambda: nets[0].trace.counters.get("transport.rejected", 0) >= 1
            )
            assert nodes[0].received == []
        finally:
            await _close_all(nets)

    asyncio.run(scenario())


def test_garbage_frame_drops_connection():
    async def scenario():
        nets, nodes = await _start_nets([0])
        try:
            reader, writer = await _raw_connect(nets[0])
            writer.write((5).to_bytes(4, "big") + b"\xff\xff\xff\xff\xff")
            await writer.drain()
            assert await reader.read() == b""
            writer.close()
            await _until(
                lambda: nets[0].trace.counters.get("transport.rejected", 0) >= 1
            )
            assert nodes[0].received == []
        finally:
            await _close_all(nets)

    asyncio.run(scenario())


def test_hmac_failure_drops_peer():
    """A dialer without the dealer's channel key authenticates nothing:
    its hello is rejected and nothing it sends is ever delivered."""

    async def scenario():
        nets, nodes = await _start_nets([0, 1])
        try:
            reader, writer = await _raw_connect(nets[0])
            wrong_key = b"\x42" * 32
            writer.write(encode_hello(wrong_key, 1, 0, incarnation=7))
            payload = wire.dumps("forged")
            writer.write(encode_data(wrong_key, 1, 0, 7, 1, payload))
            await writer.drain()
            assert await reader.read() == b""
            writer.close()
            await _until(
                lambda: nets[0].trace.counters.get("transport.rejected", 0) >= 1
            )
            assert nodes[0].received == []
        finally:
            await _close_all(nets)

    asyncio.run(scenario())


def test_bad_data_mac_after_valid_hello_drops_connection():
    async def scenario():
        nets, nodes = await _start_nets([0, 1])
        try:
            key = nets[1].channel_keys[0]  # the real 1 -> 0 channel key
            reader, writer = await _raw_connect(nets[0])
            writer.write(encode_hello(key, 1, 0, incarnation=7))
            good = bytearray(encode_data(key, 1, 0, 7, 1, wire.dumps("x")))
            good[-1] ^= 0x01  # corrupt the payload; the MAC no longer matches
            writer.write(bytes(good))
            await writer.drain()
            assert await reader.read() == b""
            writer.close()
            await _until(
                lambda: nets[0].trace.counters.get("transport.rejected", 0) >= 1
            )
            assert nodes[0].received == []
        finally:
            await _close_all(nets)

    asyncio.run(scenario())


def test_replayed_frames_are_deduplicated():
    """A frame replayed on a second connection (same incarnation and
    sequence number) is counted and discarded, not delivered twice."""

    async def scenario():
        nets, nodes = await _start_nets([0, 1])
        try:
            key = nets[1].channel_keys[0]
            hello = encode_hello(key, 1, 0, incarnation=7)
            frame = encode_data(key, 1, 0, 7, 1, wire.dumps("once"))
            for _ in range(2):
                _, writer = await _raw_connect(nets[0])
                writer.write(hello + frame)
                await writer.drain()
                writer.close()
            await _until(
                lambda: nets[0].trace.counters.get("transport.duplicates", 0) >= 1
            )
            assert nodes[0].received == [(1, "once")]
        finally:
            await _close_all(nets)

    asyncio.run(scenario())


# -- parity with the simulator ------------------------------------------------------


def test_send_to_unknown_recipient_raises():
    async def scenario():
        nets, _ = await _start_nets([0])
        try:
            with pytest.raises(ValueError):
                nets[0].send(0, 99, "hello")
        finally:
            await _close_all(nets)

    asyncio.run(scenario())


def test_wait_until_times_out():
    async def scenario():
        nets, _ = await _start_nets([0])
        try:
            with pytest.raises(asyncio.TimeoutError):
                await nets[0].wait_until(lambda: False, timeout=0.1)
        finally:
            await _close_all(nets)

    asyncio.run(scenario())


def test_bytes_sent_identical_to_simulator():
    """Both backends charge exactly ``len(wire.dumps(payload))`` per
    send, so identical runs report identical ``bytes_sent``."""
    payloads = [("round", 1), "hello", {"k": (1, 2, 3)}, b"\x00" * 50]

    sim = Network(FifoScheduler(), random.Random(0))
    sim.trace.enable_byte_accounting()
    for party in (0, 1):
        sim.attach(party, Collector())
    for payload in payloads:
        sim.send(0, 1, payload)
    sim.broadcast(0, payloads[0])

    async def scenario():
        nets, nodes = await _start_nets([0, 1])
        nets[0].trace.enable_byte_accounting()
        try:
            for payload in payloads:
                nets[0].send(0, 1, payload)
            nets[0].broadcast(0, payloads[0])
            await nets[1].wait_until(
                lambda: len(nodes[1].received) == len(payloads) + 1, timeout=15
            )
            return nets[0].trace.bytes_sent
        finally:
            await _close_all(nets)

    tcp_bytes = asyncio.run(scenario())
    expected = sum(len(wire.dumps(p)) for p in payloads)
    expected += 2 * len(wire.dumps(payloads[0]))  # broadcast: parties 0 and 1
    assert sim.trace.bytes_sent == tcp_bytes == expected


# -- the full replica stack over sockets -------------------------------------------


async def _submit(net, client, operation, timeout=30.0):
    nonce = client.submit(operation)
    await net.wait_until(lambda: nonce in client.completed, timeout=timeout)
    return client.completed[nonce].result


def test_smr_crash_and_reconnect_mid_protocol(tmp_path):
    """Run the real replica stack over TCP, crash a replica between two
    client writes, restart it with Section-6 recovery, and check it
    rebuilds the exact history it missed."""

    async def scenario():
        keys = deal_system(4, random.Random(5), t=1, clients=1, group=small_group())
        keystore.write_deployment(keys, tmp_path)
        addresses = allocate_addresses(list(range(4)) + [CLIENT_BASE])
        ClusterConfig(addresses).save(tmp_path / CLUSTER_FILE)

        hosts = {party: ReplicaHost(tmp_path, party) for party in range(4)}
        for host in hosts.values():
            await host.start()
        public = keystore.load_public(tmp_path / "public.json")
        cid, channel_keys = keystore.load_client(
            tmp_path / f"client-{CLIENT_BASE}.json"
        )
        net = TransportNetwork(cid, addresses, channel_keys)
        client = ServiceClient(cid, net, public, random.Random(9))
        net.attach(cid, client)
        await net.start()
        try:
            assert await _submit(net, client, ("set", "a", 1)) == ("ok", 1)
            await hosts[3].close()  # crash mid-protocol

            assert await _submit(net, client, ("set", "b", 2)) == ("ok", 2)

            hosts[3] = ReplicaHost(tmp_path, 3)  # fresh state, same address
            await hosts[3].start(recover=True)
            assert await _submit(net, client, ("set", "c", 3)) == ("ok", 3)

            await _until(lambda: not hosts[3].replica.recovering, timeout=30)
            await _until(
                lambda: len(hosts[3].replica.executed) == 3, timeout=30
            )
            snapshot = hosts[3].replica.state_machine.snapshot()
            assert dict(snapshot[1]) == {"a": 1, "b": 2, "c": 3}
            for host in hosts.values():
                assert not host.network.errors
        finally:
            await net.close()
            for host in hosts.values():
                await host.close()

    asyncio.run(scenario())


def test_recovery_stalls_behind_partition_then_completes(tmp_path):
    """Restart a crashed replica *while a partition isolates it*: the
    Section-6 state transfer cannot progress until the cut heals (the
    fault plan blocks its frames on both the send and receive side),
    and completes correctly once it does."""

    async def scenario():
        keys = deal_system(4, random.Random(8), t=1, clients=1, group=small_group())
        keystore.write_deployment(keys, tmp_path)
        addresses = allocate_addresses(list(range(4)) + [CLIENT_BASE])
        ClusterConfig(addresses).save(tmp_path / CLUSTER_FILE)

        hosts = {party: ReplicaHost(tmp_path, party) for party in range(4)}
        for host in hosts.values():
            await host.start()
        public = keystore.load_public(tmp_path / "public.json")
        cid, channel_keys = keystore.load_client(
            tmp_path / f"client-{CLIENT_BASE}.json"
        )
        net = TransportNetwork(cid, addresses, channel_keys)
        client = ServiceClient(cid, net, public, random.Random(4))
        net.attach(cid, client)
        await net.start()
        try:
            assert await _submit(net, client, ("set", "a", 1)) == ("ok", 1)
            await hosts[3].close()
            assert await _submit(net, client, ("set", "b", 2)) == ("ok", 2)

            # The restarted replica comes back behind an active cut that
            # heals itself 1.2s in.  Only the rejoining host carries the
            # plan: it enforces the cut on its own writes *and* on every
            # connection it accepts, so no recovery frame crosses.
            plan = SeededFaultPlan(
                FaultSpec(
                    partitions=(PartitionSpec(start=0.0, stop=1.2, group=(3,)),)
                ),
                seed=17,
                epoch=time.time(),
            )
            hosts[3] = ReplicaHost(tmp_path, 3, faults=plan)
            await hosts[3].start(recover=True)

            await asyncio.sleep(0.6)  # well inside the partition window
            assert hosts[3].replica.recovering
            assert hosts[3].replica.executed == []
            assert hosts[3].network.trace.counters.get("chaos.partitioned", 0) >= 1

            await _until(lambda: not hosts[3].replica.recovering, timeout=30)
            assert await _submit(net, client, ("set", "c", 3)) == ("ok", 3)
            await _until(
                lambda: len(hosts[3].replica.executed) == 3, timeout=30
            )
            snapshot = hosts[3].replica.state_machine.snapshot()
            assert dict(snapshot[1]) == {"a": 1, "b": 2, "c": 3}
        finally:
            await net.close()
            for host in hosts.values():
                await host.close()

    asyncio.run(scenario())


def test_pipelined_recovery_over_tcp(tmp_path):
    """Batched + pipelined cluster over real sockets: crash a replica
    under concurrent client load, restart it with recovery while rounds
    are still deciding, and check it converges without double-executing
    anything."""

    async def scenario():
        keys = deal_system(4, random.Random(11), t=1, clients=1, group=small_group())
        keystore.write_deployment(keys, tmp_path)
        addresses = allocate_addresses(list(range(4)) + [CLIENT_BASE])
        ClusterConfig(
            addresses, abc_max_batch=4, abc_pipeline_depth=3
        ).save(tmp_path / CLUSTER_FILE)

        hosts = {party: ReplicaHost(tmp_path, party) for party in range(4)}
        for host in hosts.values():
            await host.start()
        assert hosts[0].replica.abc.config.max_batch == 4
        assert hosts[0].replica.abc.config.pipeline_depth == 3
        public = keystore.load_public(tmp_path / "public.json")
        cid, channel_keys = keystore.load_client(
            tmp_path / f"client-{CLIENT_BASE}.json"
        )
        net = TransportNetwork(cid, addresses, channel_keys)
        client = ServiceClient(cid, net, public, random.Random(12))
        net.attach(cid, client)
        await net.start()
        try:
            assert await _submit(net, client, ("set", "pre", 0)) == ("ok", 1)
            await hosts[3].close()  # crash under load

            # Concurrent submissions keep several rounds in flight.
            nonces = [client.submit(("set", f"k{i}", i)) for i in range(8)]
            hosts[3] = ReplicaHost(tmp_path, 3)
            await hosts[3].start(recover=True)
            await net.wait_until(
                lambda: all(n in client.completed for n in nonces), timeout=30
            )
            await _until(lambda: not hosts[3].replica.recovering, timeout=30)
            assert await _submit(net, client, ("set", "post", 9)) == ("ok", 10)
            await _until(
                lambda: len(hosts[3].replica.executed) == 10, timeout=30
            )
            snapshot = hosts[3].replica.state_machine.snapshot()
            expected = {f"k{i}": i for i in range(8)} | {"pre": 0, "post": 9}
            assert dict(snapshot[1]) == expected
            # Exactly-once delivery survived the crash/recovery.
            for host in hosts.values():
                payloads = [p for p, _r in host.replica.abc.delivered_log]
                assert len(payloads) == len(set(payloads))
        finally:
            await net.close()
            for host in hosts.values():
                await host.close()

    asyncio.run(scenario())


def test_superseded_inbound_connection_is_dropped():
    """Once a restarted peer's fresh connection installs a new inbound
    channel, a frame arriving on the *old* connection must drop that
    connection — not deliver through (or mutate) the orphaned channel's
    replay bookkeeping."""

    async def scenario():
        nets, nodes = await _start_nets([0, 1])
        try:
            key = nets[1].channel_keys[0]
            # Old connection: incarnation 7, one delivered frame.
            _, old_writer = await _raw_connect(nets[0])
            old_writer.write(encode_hello(key, 1, 0, incarnation=7))
            old_writer.write(encode_data(key, 1, 0, 7, 1, wire.dumps("first")))
            await old_writer.drain()
            await _until(lambda: nodes[0].received == [(1, "first")])
            # The peer "restarts": a second connection with a fresh
            # incarnation replaces the inbound channel.
            _, new_writer = await _raw_connect(nets[0])
            new_writer.write(encode_hello(key, 1, 0, incarnation=8))
            await new_writer.drain()
            await _until(
                lambda: nets[0]._inbound.get(1) is not None
                and nets[0]._inbound[1].incarnation == 8
            )
            # A late frame on the superseded connection is rejected.
            before = nets[0].trace.counters.get("transport.disconnects", 0)
            old_writer.write(encode_data(key, 1, 0, 7, 2, wire.dumps("stale")))
            await old_writer.drain()
            await _until(
                lambda: nets[0].trace.counters.get("transport.disconnects", 0)
                > before
            )
            assert nodes[0].received == [(1, "first")]
            # The fresh channel's replay namespace was never touched by
            # the old connection.
            assert nets[0]._inbound[1].incarnation == 8
            assert nets[0]._inbound[1].last_seq == 0
            old_writer.close()
            new_writer.close()
        finally:
            await _close_all(nets)

    asyncio.run(scenario())
