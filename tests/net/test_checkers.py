"""The chaos oracles: prefix-consistency safety and quiescent liveness."""

from __future__ import annotations

import json

from repro.net.checkers import (
    JournalEntry,
    check_liveness,
    check_safety,
    percentile,
    read_journals,
    summarize_run,
    violation_kinds,
)


def entry(nonce: int, op=None, client: int = 100, round: int = -1) -> JournalEntry:
    return JournalEntry(
        client=client, nonce=nonce, op=tuple(op or ("set", "k", nonce)), round=round
    )


# -- safety -------------------------------------------------------------------------


def test_prefixes_of_different_lengths_are_consistent():
    log = [entry(1), entry(2), entry(3)]
    report = check_safety({0: log, 1: log[:2], 2: log, 3: []})
    assert report.ok and report.issues == []
    assert report.longest == 3


def test_divergence_is_a_safety_violation():
    shared = [entry(1)]
    report = check_safety(
        {0: shared + [entry(2)], 1: shared + [entry(9, op=("set", "evil", 9))]}
    )
    assert not report.ok
    assert len(report.issues) == 1
    assert "divergence at position 1" in report.issues[0]


def test_one_divergence_reported_per_pair():
    a = [entry(1), entry(2), entry(3)]
    b = [entry(7), entry(8), entry(9)]
    report = check_safety({0: a, 1: b})
    assert len(report.issues) == 1  # first divergence is evidence enough


def test_committed_op_must_survive_in_the_longest_journal():
    log = [entry(1), entry(2)]
    ok = check_safety({0: log, 1: log}, committed=[entry(2)])
    assert ok.ok
    lost = check_safety({0: log, 1: log[:1]}, committed=[entry(3)])
    assert not lost.ok
    assert "committed operation lost" in lost.issues[0]
    assert "nonce 3" in lost.issues[0]


def test_committed_check_uses_the_longest_journal():
    """A replica that died before executing a committed op is fine as
    long as *some* honest journal (the longest) carries it."""
    full = [entry(1), entry(2), entry(3)]
    report = check_safety({0: full, 1: full[:1]}, committed=[entry(3)])
    assert report.ok


def test_batched_rounds_may_share_a_round_number():
    """Batching puts several executions in one atomic-broadcast round;
    equal consecutive rounds are fine, decreasing ones are not."""
    log = [entry(1, round=1), entry(2, round=1), entry(3, round=2)]
    report = check_safety({0: log, 1: log})
    assert report.ok and report.issues == []


def test_round_regression_is_a_safety_violation():
    log = [entry(1, round=2), entry(2, round=1)]
    report = check_safety({0: log})
    assert not report.ok
    assert "round regression in journal of replica 0" in report.issues[0]
    assert "position 1" in report.issues[0]


def test_legacy_entries_without_rounds_skip_the_round_check():
    log = [entry(1, round=3), entry(2), entry(3, round=4)]
    report = check_safety({0: log})
    assert report.ok


def test_round_regression_reported_once_per_journal():
    log = [entry(1, round=3), entry(2, round=2), entry(3, round=1)]
    report = check_safety({0: log})
    assert len(report.issues) == 1


def test_safety_report_serializes():
    report = check_safety({0: [entry(1)], 1: [entry(1)]}, committed=[entry(1)])
    data = json.loads(json.dumps(report.to_json()))
    assert data == {"ok": True, "issues": [], "longest": 1, "kinds": []}


# -- journal files ------------------------------------------------------------------


def test_read_journals_parses_lines_and_tolerates_absence(tmp_path):
    journal_dir = tmp_path / "journal"
    journal_dir.mkdir()
    lines = [
        {"i": 0, "client": 100, "nonce": 1, "op": ["set", "a", 1]},
        {"i": 1, "client": 100, "nonce": 2, "op": ["set", "b", 2]},
    ]
    (journal_dir / "exec-0.jsonl").write_text(
        "\n".join(json.dumps(line) for line in lines) + "\n"
    )
    journals = read_journals(tmp_path, [0, 3])
    assert journals[0] == [
        entry(1, op=("set", "a", 1)),
        entry(2, op=("set", "b", 2)),
    ]
    assert journals[3] == []  # killed before its first execution
    assert check_safety(journals).ok


def test_journal_entry_key_identifies_the_request():
    one = JournalEntry.from_json({"client": 5, "nonce": 9, "op": ["get", "x"]})
    assert one.key() == (5, 9)
    assert one.op == ("get", "x")


# -- liveness -----------------------------------------------------------------------


def test_probes_within_bound_pass():
    probes = [{"op": ["set", "p", 0], "latency": 0.8}, {"op": ["set", "q", 1], "latency": 2.0}]
    report = check_liveness(probes, bound=5.0)
    assert report.ok and report.issues == []
    assert report.to_json()["bound"] == 5.0


def test_timed_out_probe_fails_liveness():
    report = check_liveness([{"op": ["set", "p", 0], "latency": None}], bound=5.0)
    assert not report.ok
    assert "never completed" in report.issues[0]


def test_slow_probe_fails_liveness():
    report = check_liveness([{"op": ["set", "p", 0], "latency": 9.5}], bound=5.0)
    assert not report.ok
    assert "bound" in report.issues[0]


# -- violation tags -----------------------------------------------------------------


def test_checkers_tag_their_violations():
    divergent = check_safety(
        {0: [entry(1)], 1: [entry(9, op=("set", "evil", 9))]}
    )
    assert divergent.kinds == ["safety.divergence"]
    lost = check_safety({0: [entry(1)]}, committed=[entry(3)])
    assert lost.kinds == ["safety.lost-commit"]
    regressed = check_safety({0: [entry(1, round=2), entry(2, round=1)]})
    assert regressed.kinds == ["safety.round-regression"]
    stuck = check_liveness([{"op": ["get", "x"], "latency": None}], bound=5.0)
    assert stuck.kinds == ["liveness.stuck"]
    slow = check_liveness([{"op": ["get", "x"], "latency": 9.0}], bound=5.0)
    assert slow.kinds == ["liveness.slow"]


def test_violation_kinds_collects_both_checkers():
    report = {
        "safety": {"issues": ["boom"], "kinds": ["safety.divergence"]},
        "liveness": {"issues": ["stuck"], "kinds": ["liveness.stuck"]},
    }
    assert violation_kinds(report) == ["safety.divergence", "liveness.stuck"]
    assert violation_kinds({"safety": {"issues": [], "kinds": []}}) == []


def test_violation_kinds_falls_back_for_legacy_journals():
    # Journals written before `kinds` existed carry only prose issues.
    legacy = {
        "safety": {"issues": ["divergence at position 0: ..."]},
        "liveness": {"issues": []},
    }
    assert violation_kinds(legacy) == ["safety.violation"]


# -- summaries ----------------------------------------------------------------------


def test_percentile_nearest_rank():
    assert percentile([], 0.5) is None
    assert percentile([7.0], 0.5) == 7.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.99) == 4.0
    assert percentile([4.0, 1.0, 3.0, 2.0], 0.25) == 1.0  # sorts first


def test_summarize_run_extracts_latencies_and_throughput():
    report = {
        "ok": True,
        "committed": 4,
        "latency_unit": "seconds",
        "events": [
            {"kind": "op", "latency": 0.1, "at_actual": 0.0},
            {"kind": "op", "latency": 0.3, "at_actual": 1.0},
            {"kind": "op", "latency": None, "at_actual": 2.0},
            {"kind": "partition", "at_actual": 0.5},
        ],
        "safety": {"issues": [], "kinds": []},
        "liveness": {
            "probes": [{"op": ["get", "p"], "latency": 0.2}],
            "issues": [],
            "kinds": [],
        },
    }
    summary = summarize_run(report)
    assert summary["ok"] and summary["committed"] == 4
    assert summary["ops"] == 3 and summary["probes"] == 1
    assert summary["latency_p50"] == 0.1  # None latency excluded
    assert summary["probe_p50"] == 0.2
    assert summary["ops_per_s"] == 2.0  # 4 committed over a 2s span
    assert summary["violations"] == []


def test_summarize_run_skips_throughput_for_step_latencies():
    report = {
        "ok": False,
        "committed": 0,
        "latency_unit": "steps",
        "events": [{"kind": "op", "latency": None}],
        "liveness": {
            "probes": [{"op": ["get", "p"], "latency": None}],
            "issues": ["probe never completed"],
            "kinds": ["liveness.stuck"],
        },
    }
    summary = summarize_run(report)
    assert summary["ops_per_s"] is None
    assert summary["latency_p50"] is None
    assert summary["violations"] == ["liveness.stuck"]
