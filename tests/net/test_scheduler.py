"""Adversarial schedulers: strategies and eventual delivery."""

import random

from repro.net.scheduler import (
    DelayScheduler,
    FifoScheduler,
    PartitionScheduler,
    RandomScheduler,
    ReorderScheduler,
    StarvingScheduler,
)
from repro.net.simulator import Network, Node


class Sink(Node):
    def __init__(self):
        self.received = []

    def on_message(self, sender, payload):
        self.received.append((sender, payload))


def _net(scheduler, n=4, seed=0):
    net = Network(scheduler, random.Random(seed))
    nodes = {}
    for i in range(n):
        nodes[i] = Sink()
        net.attach(i, nodes[i])
    return net, nodes


def test_all_schedulers_eventually_deliver_everything():
    for scheduler in (
        FifoScheduler(),
        RandomScheduler(),
        ReorderScheduler(),
        DelayScheduler({0}),
        PartitionScheduler({0, 1}, duration=10),
    ):
        net, nodes = _net(scheduler)
        for k in range(5):
            for dst in range(4):
                net.send(k % 4, dst, k)
        net.run()
        total = sum(len(nodes[i].received) for i in range(4))
        assert total == 20, type(scheduler).__name__


def test_reorder_is_lifo():
    net, nodes = _net(ReorderScheduler())
    for k in range(5):
        net.send(0, 1, k)
    net.run()
    assert [p for _, p in nodes[1].received] == [4, 3, 2, 1, 0]


def test_delay_scheduler_starves_target_until_last():
    net, nodes = _net(DelayScheduler({3}))
    net.send(0, 3, "to-target")
    for k in range(10):
        net.send(0, 1, k)
    net.run()
    # The target's message must arrive only after all others drained.
    assert nodes[3].received == [(0, "to-target")]
    assert len(nodes[1].received) == 10


def test_delay_scheduler_dynamic_targets():
    current = {"targets": {1}}
    sched = DelayScheduler(lambda: current["targets"])
    net, nodes = _net(sched)
    net.send(0, 1, "a")
    net.send(0, 2, "b")
    net.step()
    assert nodes[2].received  # non-target first
    current["targets"] = {2}
    net.send(0, 2, "c")
    net.step()
    assert nodes[1].received == [(0, "a")]  # 1 no longer delayed


def test_partition_blocks_then_heals():
    net, nodes = _net(PartitionScheduler({0, 1}, duration=3))
    net.send(0, 2, "cross")  # crosses the cut
    net.send(0, 1, "inside")
    net.send(2, 3, "outside")
    net.run()
    assert (0, "cross") in nodes[2].received  # healed eventually
    # While partitioned, the first two deliveries must be the non-cross ones.


def test_starving_scheduler_stalls_then_releases():
    sched = StarvingScheduler({0}, patience=5)
    net, nodes = _net(sched)
    net.send(0, 1, "starved")
    # Only target traffic pending: select() stalls (returns None).
    assert not net.step()
    assert nodes[1].received == []
    # After patience selections, the message is released.
    for _ in range(10):
        if net.step():
            break
    assert nodes[1].received == [(0, "starved")]


def test_starving_scheduler_prefers_fast_traffic():
    sched = StarvingScheduler({0}, patience=1000)
    net, nodes = _net(sched)
    net.send(0, 1, "slow")
    net.send(2, 3, "fast")
    net.step()
    assert nodes[3].received == [(2, "fast")]
    assert nodes[1].received == []
