"""Strict scenario-spec validation and plan_timeline edge cases.

A malformed spec that silently runs a *different* scenario than the one
written would poison every downstream artifact (journals, sweep cells,
repro bundles), so ``from_json`` must reject rather than coerce.
"""

import json

import pytest

from repro.net.chaos import (
    FAULT_TEMPLATES,
    LATENCY_TEMPLATES,
    LOAD_TEMPLATES,
    FaultSpec,
    LifecycleEvent,
    PartitionSpec,
    Scenario,
    ScenarioError,
    builtin_scenarios,
    fault_template,
    latency_template,
    load_template,
    parameterize_scenario,
    plan_timeline,
)


def _valid() -> dict:
    return {"name": "t", "n": 4, "t": 1, "seed": 7}


# -- from_json rejections -----------------------------------------------------------


def test_unknown_scenario_key_rejected():
    spec = _valid()
    spec["opz"] = 6  # typo'd "ops"
    with pytest.raises(ScenarioError, match="unknown key.*opz"):
        Scenario.from_json(spec)


def test_unknown_fault_key_rejected():
    with pytest.raises(ScenarioError, match="unknown key"):
        FaultSpec.from_json({"reset_rte": 0.5})


def test_unknown_partition_key_rejected():
    with pytest.raises(ScenarioError, match="unknown key"):
        PartitionSpec.from_json({"start": 1, "stop": 2, "group": [0], "grp": [1]})


def test_missing_name_rejected():
    with pytest.raises(ScenarioError, match="missing name"):
        Scenario.from_json({"n": 4})


@pytest.mark.parametrize(
    "patch",
    [
        {"ops": -1},
        {"op_concurrency": 0},
        {"io_timeout": 0.0},
        {"op_timeout": -1.0},
        {"liveness_bound": 0.0},
        {"liveness_probes": -1},
        {"checkpoint_every": 0},
        {"workload_start": -0.5},
        {"abc_max_batch": 0},
        {"abc_pipeline_depth": -2},
        {"t": 4},  # t must be < n
        {"t": -1},
        {"n": 0},
    ],
)
def test_out_of_range_scenario_fields_rejected(patch):
    spec = {**_valid(), **patch}
    with pytest.raises(ScenarioError):
        Scenario.from_json(spec)


def test_bad_byzantine_kind_rejected():
    spec = {**_valid(), "byzantine": [[3, "sleepy"]]}
    with pytest.raises(ScenarioError, match="unknown byzantine kind"):
        Scenario.from_json(spec)


def test_byzantine_party_out_of_range_rejected():
    spec = {**_valid(), "byzantine": [[7, "silent"]]}
    with pytest.raises(ScenarioError, match="outside"):
        Scenario.from_json(spec)


def test_party_corrupted_twice_rejected():
    spec = {**_valid(), "byzantine": [[3, "silent"], [3, "spam"]]}
    with pytest.raises(ScenarioError, match="twice"):
        Scenario.from_json(spec)


def test_bad_lifecycle_action_rejected():
    spec = {**_valid(), "events": [{"at": 2.0, "action": "explode", "party": 1}]}
    with pytest.raises(ScenarioError, match="unknown action"):
        Scenario.from_json(spec)


def test_negative_event_time_rejected():
    spec = {**_valid(), "events": [{"at": -1.0, "action": "kill", "party": 1}]}
    with pytest.raises(ScenarioError, match="negative time"):
        Scenario.from_json(spec)


def test_event_party_out_of_range_rejected():
    spec = {**_valid(), "events": [{"at": 2.0, "action": "kill", "party": 9}]}
    with pytest.raises(ScenarioError, match="outside"):
        Scenario.from_json(spec)


def test_partition_stop_before_start_rejected():
    spec = {
        **_valid(),
        "faults": {"partitions": [{"start": 4.0, "stop": 2.0, "group": [3]}]},
    }
    with pytest.raises(ScenarioError, match="stop"):
        Scenario.from_json(spec)


def test_negative_partition_start_rejected():
    spec = {
        **_valid(),
        "faults": {"partitions": [{"start": -1.0, "stop": 2.0, "group": [3]}]},
    }
    with pytest.raises(ScenarioError, match="negative start"):
        Scenario.from_json(spec)


def test_partition_party_out_of_range_rejected():
    spec = {
        **_valid(),
        "faults": {"partitions": [{"start": 1.0, "stop": 2.0, "group": [5]}]},
    }
    with pytest.raises(ScenarioError, match="outside"):
        Scenario.from_json(spec)


@pytest.mark.parametrize("rate_key", [
    "reset_rate", "corrupt_rate", "duplicate_rate", "delay_rate", "hold_rate",
])
@pytest.mark.parametrize("value", [-0.1, 1.5])
def test_fault_rates_must_be_probabilities(rate_key, value):
    with pytest.raises(ScenarioError, match="probability"):
        FaultSpec.from_json({rate_key: value})


def test_non_numeric_field_rejected_as_scenario_error():
    spec = {**_valid(), "ops": "lots"}
    with pytest.raises(ScenarioError):
        Scenario.from_json(spec)


def test_lifecycle_event_unknown_key_rejected():
    with pytest.raises(ScenarioError, match="unknown key"):
        LifecycleEvent.from_json(
            {"at": 1.0, "action": "kill", "party": 0, "extra": 1}
        )


def test_roundtrip_of_every_builtin_survives_strict_parsing():
    for scenario in builtin_scenarios().values():
        again = Scenario.from_json(json.loads(json.dumps(scenario.to_json())))
        assert again == scenario


# -- plan_timeline edge cases -------------------------------------------------------


def test_overlapping_partitions_both_appear_and_sort_stably():
    scenario = Scenario(
        name="overlap",
        seed=3,
        ops=2,
        faults=FaultSpec(
            partitions=(
                PartitionSpec(start=2.0, stop=5.0, group=(3,)),
                PartitionSpec(start=2.0, stop=4.0, group=(1,)),
                PartitionSpec(start=3.0, stop=6.0, group=(2,)),
            )
        ),
    )
    timeline = plan_timeline(scenario)
    cuts = [e for e in timeline if e["kind"] == "partition"]
    assert len(cuts) == 3
    assert [e["at"] for e in timeline] == sorted(e["at"] for e in timeline)
    # Two cuts at the same instant: recorded deterministically, both kept.
    assert [c["group"] for c in cuts[:2]] == [[3], [1]]
    assert plan_timeline(scenario) == timeline  # pure function


def test_events_before_cluster_up_are_scheduled_not_dropped():
    # An event at t=0 (before any replica can be listening) is the
    # spec author's problem; the planner must keep it, in order.
    scenario = Scenario(
        name="early",
        seed=4,
        ops=1,
        workload_start=0.0,
        events=(LifecycleEvent(at=0.0, action="suspend", party=1),),
    )
    timeline = plan_timeline(scenario)
    assert timeline[0] == {"at": 0.0, "kind": "suspend", "party": 1}
    assert all(entry["at"] >= 0.0 for entry in timeline)


def test_same_instant_events_order_by_kind_then_party():
    scenario = Scenario(
        name="tie",
        seed=5,
        ops=0,
        events=(
            LifecycleEvent(at=2.0, action="suspend", party=2),
            LifecycleEvent(at=2.0, action="kill", party=1),
            LifecycleEvent(at=2.0, action="kill", party=0),
        ),
    )
    kinds = [
        (e["kind"], e.get("party")) for e in plan_timeline(scenario)
    ]
    assert kinds == [("kill", 0), ("kill", 1), ("suspend", 2)]


def test_zero_ops_timeline_contains_only_faults():
    scenario = Scenario(name="quiet", seed=6, ops=0)
    assert plan_timeline(scenario) == []


# -- templates ----------------------------------------------------------------------


def test_every_fault_template_instantiates_and_validates():
    for name in FAULT_TEMPLATES:
        faults, events = fault_template(name, n=4)
        scenario = Scenario(name=f"tpl-{name}", faults=faults, events=events)
        scenario.validate()


def test_unknown_templates_rejected():
    with pytest.raises(ScenarioError, match="fault template"):
        fault_template("volcano", n=4)
    with pytest.raises(ScenarioError, match="latency template"):
        latency_template("warp")
    with pytest.raises(ScenarioError, match="load template"):
        load_template("crushing")


def test_partition_template_targets_last_party():
    faults, _ = fault_template("partition", n=7)
    assert faults.partitions[0].group == (6,)


def test_churn_template_needs_two_parties():
    with pytest.raises(ScenarioError, match="n >= 2"):
        fault_template("churn", n=1)


def test_parameterize_composes_latency_overlay_onto_fault_mix():
    scenario = parameterize_scenario(
        "composed", n=4, t=1, seed=9,
        fault="duplicating", latency="heavy", load="pipelined",
    )
    assert scenario.faults.duplicate_rate > 0  # from the fault mix
    assert scenario.faults.delay_rate == latency_template("heavy")["delay_rate"]
    assert scenario.op_concurrency == load_template("pipelined")["op_concurrency"]
    assert scenario.abc_max_batch == load_template("pipelined")["abc_max_batch"]
    # The composition itself is validated.
    with pytest.raises(ScenarioError):
        parameterize_scenario(
            "bad", n=4, t=1, seed=9, byzantine=((9, "silent"),)
        )


def test_parameterize_is_deterministic():
    a = parameterize_scenario("d", n=4, t=1, seed=5, fault="churn",
                              latency="jitter", load="serial")
    b = parameterize_scenario("d", n=4, t=1, seed=5, fault="churn",
                              latency="jitter", load="serial")
    assert a == b
    assert plan_timeline(a) == plan_timeline(b)


def test_template_catalogues_are_exported():
    assert "clean" in FAULT_TEMPLATES
    assert "none" in LATENCY_TEMPLATES
    assert "serial" in LOAD_TEMPLATES
