"""Authenticated channels bootstrapped from the dealer's PKI."""

import random
from dataclasses import replace

import pytest

from repro.crypto.groups import small_group
from repro.crypto.schnorr import keygen
from repro.net.channels import ChannelAuthenticator


@pytest.fixture()
def channel_pair():
    rng = random.Random(1)
    keys = {i: keygen(rng, small_group()) for i in range(3)}
    directory = {i: k.verify_key for i, k in keys.items()}
    alice = ChannelAuthenticator(0, keys[0], directory, random.Random(2))
    bob = ChannelAuthenticator(1, keys[1], directory, random.Random(3))
    mallory = ChannelAuthenticator(2, keys[2], directory, random.Random(4))
    return alice, bob, mallory


def test_roundtrip(channel_pair):
    alice, bob, _ = channel_pair
    signed = alice.wrap(("request", 1))
    assert bob.unwrap(0, signed) == ("request", 1)


def test_sender_mismatch_rejected(channel_pair):
    alice, bob, _ = channel_pair
    signed = alice.wrap("m")
    assert bob.unwrap(2, signed) is None  # claimed sender != origin


def test_forged_origin_rejected(channel_pair):
    alice, bob, mallory = channel_pair
    signed = mallory.wrap("m")
    forged = replace(signed, origin=0)
    assert bob.unwrap(0, forged) is None


def test_tampered_payload_rejected(channel_pair):
    alice, bob, _ = channel_pair
    signed = alice.wrap("m")
    assert bob.unwrap(0, replace(signed, payload="evil")) is None


def test_replay_rejected(channel_pair):
    alice, bob, _ = channel_pair
    signed = alice.wrap("m")
    assert bob.unwrap(0, signed) == "m"
    assert bob.unwrap(0, signed) is None  # second time: replay


def test_unknown_origin_rejected(channel_pair):
    alice, bob, _ = channel_pair
    rng = random.Random(5)
    stranger_key = keygen(rng, small_group())
    stranger = ChannelAuthenticator(9, stranger_key, {9: stranger_key.verify_key}, rng)
    signed = stranger.wrap("m")
    assert bob.unwrap(9, signed) is None


def test_sequences_increase(channel_pair):
    alice, bob, _ = channel_pair
    s1, s2 = alice.wrap("a"), alice.wrap("b")
    assert s2.sequence == s1.sequence + 1
    assert bob.unwrap(0, s2) == "b"
    assert bob.unwrap(0, s1) == "a"  # out-of-order but fresh: accepted
