"""Wire format: roundtrips, safety, and full protocol runs over bytes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import ctx_for, make_network

from repro.core.atomic_broadcast import AtomicBroadcast, abc_session
from repro.core.runtime import ProtocolRuntime
from repro.crypto.schnorr import Signature, keygen
from repro.crypto.groups import small_group
from repro.net import wire
from repro.net.scheduler import RandomScheduler
from repro.net.simulator import Network

atoms = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**40), 10**40),
    st.text(max_size=20),
    st.binary(max_size=20),
)
values = st.recursive(
    atoms,
    lambda children: st.one_of(
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.integers(0, 9), children, max_size=3),
    ),
    max_leaves=10,
)


@given(values)
@settings(max_examples=80)
def test_primitive_roundtrip(value):
    assert wire.loads(wire.dumps(value)) == value


def test_dataclass_roundtrip():
    sig = Signature(commit=5, response=9)
    assert wire.loads(wire.dumps(sig)) == sig


def test_registry_covers_every_message_kind():
    types = wire.registered_types()
    for name in ("RbcSend", "AbaBval", "CksPreVote", "MvbaValue", "AbcProposal",
                 "ScDecryptionShare", "OptOrder", "PrePrepare", "SubmitRequest",
                 "QuorumCertificate", "Ciphertext", "CoinShare"):
        assert name in types, name


def test_unregistered_dataclass_rejected():
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Sneaky:
        x: int

    with pytest.raises(wire.WireError):
        wire.dumps(Sneaky(1))


def test_unknown_type_name_rejected():
    data = b"C" + (6).to_bytes(4, "big") + b"Sneaky" + (1).to_bytes(4, "big") + b"N"
    with pytest.raises(wire.WireError):
        wire.loads(data)


def test_malformed_inputs_rejected():
    for data in (b"", b"Z", b"I\x00\x00\x00\x02x", b"L\x00\x00\x00\x05N",
                 b"B\xff\xff\xff\xff", b"S\x00\x00\x00\x02\xff\xfe"):
        with pytest.raises(wire.WireError):
            wire.loads(data)


def test_field_count_mismatch_rejected():
    good = wire.dumps(Signature(commit=1, response=2))
    # Corrupt the field count (bytes after the class name).
    name_len = int.from_bytes(good[1:5], "big")
    offset = 5 + name_len
    bad = good[:offset] + (9).to_bytes(4, "big") + good[offset + 4 :]
    with pytest.raises(wire.WireError):
        wire.loads(bad)


def test_depth_bound_enforced():
    value = ()
    for _ in range(40):
        value = (value,)
    with pytest.raises(wire.WireError):
        wire.dumps(value)


def test_canonical_dict_and_set_ordering():
    a = wire.dumps({1: "a", 2: "b", 3: "c"})
    b = wire.dumps({3: "c", 1: "a", 2: "b"})
    assert a == b
    assert wire.dumps(frozenset({5, 1, 3})) == wire.dumps(frozenset({3, 5, 1}))


def test_every_live_protocol_message_survives_the_wire(keys_4_1):
    """Run agreement + ABC, capture every real payload sent, and check
    each one roundtrips through the wire format byte-identically."""
    from repro.core.binary_agreement import BinaryAgreement, aba_session

    net, rts = make_network(keys_4_1, RandomScheduler(), seed=1)
    session = aba_session("wire")
    for p, rt in rts.items():
        rt.spawn(session, BinaryAgreement(p % 2))
    captured = []
    original_send = net.send

    def capturing_send(sender, recipient, payload):
        captured.append(payload)
        original_send(sender, recipient, payload)

    net.send = capturing_send
    net.run(
        until=lambda: all(rt.result(session) is not None for rt in rts.values()),
        max_steps=400_000,
    )
    assert captured
    for payload in captured:
        assert wire.loads(wire.dumps(payload)) == payload


class SerializingNetwork(Network):
    """Every payload crosses the wire as real bytes."""

    def send(self, sender, recipient, payload):
        data = wire.dumps(payload)
        super().send(sender, recipient, wire.loads(data))


def test_full_abc_over_serialized_network(keys_4_1):
    """The whole atomic broadcast stack works when every message is
    serialized and re-parsed — no hidden object-identity dependence."""
    net = SerializingNetwork(RandomScheduler(), random.Random(7))
    rts = {}
    for i in range(4):
        rt = ProtocolRuntime(i, net, keys_4_1.public, keys_4_1.private[i], seed=7)
        net.attach(i, rt)
        rts[i] = rt
    session = abc_session("serialized")
    logs = {p: [] for p in rts}
    for p, rt in rts.items():
        rt.spawn(session, AtomicBroadcast(
            on_deliver=lambda m, r, pp=p: logs[pp].append(m)))
    net.start()
    for p in rts:
        rts[p].instances[session].submit(ctx_for(rts[p], session), ("req", p))
    net.run(until=lambda: all(len(logs[p]) >= 4 for p in rts), max_steps=900_000)
    assert all(logs[p] == logs[0] for p in rts)


def test_smr_over_serialized_network():
    """End-to-end service replication over wire bytes, including the
    client's encrypted confidential submissions."""
    from repro.smr import KeyValueStore, build_service

    dep = build_service(4, KeyValueStore, t=1, causal=True, seed=9)
    dep.network.__class__ = SerializingNetwork  # swap in the codec path
    client = dep.new_client()
    dep.network.start()
    n1 = client.submit_confidential(("set", "k", 42))
    dep.run_until_complete(client, [n1], max_steps=900_000)
    n2 = client.submit_confidential(("get", "k"))
    results = dep.run_until_complete(client, [n2], max_steps=900_000)
    assert results[n2].result == ("value", 42)
