"""Monotone threshold-gate formulas."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.formulas import And, Leaf, Or, Threshold, majority


def test_leaf_evaluation():
    leaf = Leaf(3)
    assert leaf.evaluate(frozenset({3}))
    assert not leaf.evaluate(frozenset({1, 2}))
    assert leaf.parties() == frozenset({3})


def test_and_or_shorthands():
    f_and = And(Leaf(0), Leaf(1))
    f_or = Or(Leaf(0), Leaf(1))
    assert f_and.k == 2 and f_or.k == 1
    assert f_and.evaluate(frozenset({0, 1}))
    assert not f_and.evaluate(frozenset({0}))
    assert f_or.evaluate(frozenset({1}))
    assert not f_or.evaluate(frozenset())


def test_threshold_gate_counts_satisfied_children():
    gate = Threshold(k=2, children=(Leaf(0), Leaf(1), Leaf(2)))
    assert gate.evaluate(frozenset({0, 2}))
    assert not gate.evaluate(frozenset({1}))


def test_operator_overloads():
    f = Leaf(0) & Leaf(1) | Leaf(2)
    assert f.evaluate(frozenset({2}))
    assert f.evaluate(frozenset({0, 1}))
    assert not f.evaluate(frozenset({0}))


def test_invalid_gates_rejected():
    with pytest.raises(ValueError):
        Threshold(k=0, children=(Leaf(0),))
    with pytest.raises(ValueError):
        Threshold(k=3, children=(Leaf(0), Leaf(1)))
    with pytest.raises(ValueError):
        Threshold(k=1, children=())


def test_majority_helper():
    f = majority([0, 1, 2, 3], 3)
    assert f.evaluate(frozenset({0, 1, 3}))
    assert not f.evaluate(frozenset({0, 1}))


def test_leaves_enumerates_paths():
    f = Or(And(Leaf(5), Leaf(6)), Leaf(5))
    leaves = list(f.leaves())
    paths = [p for p, _ in leaves]
    parties = [q for _, q in leaves]
    assert len(leaves) == 3
    assert len(set(paths)) == 3  # paths are unique slot ids
    assert parties.count(5) == 2
    assert f.parties() == frozenset({5, 6})


def test_nested_paths_are_prefixed():
    inner = And(Leaf(0), Leaf(1))
    outer = Or(inner, Leaf(2))
    paths = {party: path for path, party in outer.leaves()}
    assert paths[0] == (0, 0)
    assert paths[1] == (0, 1)
    assert paths[2] == (1,)


@given(st.sets(st.integers(0, 5)), st.integers(1, 6))
@settings(max_examples=50)
def test_monotonicity(present, k):
    """Adding parties never turns a satisfied formula unsatisfied."""
    f = Threshold(k=min(k, 6), children=tuple(Leaf(i) for i in range(6)))
    p = frozenset(present)
    if f.evaluate(p):
        assert f.evaluate(p | {0})
        assert f.evaluate(frozenset(range(6)))
