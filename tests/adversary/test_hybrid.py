"""Hybrid failure structures (Section 6): b Byzantine + c crash faults."""

import random

import pytest

from repro.adversary.hybrid import HybridQuorumSystem
from repro.core.binary_agreement import BinaryAgreement, aba_session
from repro.core.runtime import ProtocolRuntime
from repro.crypto import deal_system, small_group
from repro.net.adversary import SilentNode
from repro.net.scheduler import RandomScheduler
from repro.net.simulator import Network


class TestRules:
    def test_reduces_to_threshold_at_c_zero(self):
        hybrid = HybridQuorumSystem(n=7, b=2, c=0)
        from repro.adversary.quorums import ThresholdQuorumSystem

        thresh = ThresholdQuorumSystem(n=7, t=2)
        for size in range(8):
            s = set(range(size))
            assert hybrid.is_quorum(s) == thresh.is_quorum(s)
            assert hybrid.is_strong_quorum(s) == thresh.is_strong_quorum(s)
            assert hybrid.contains_honest(s) == thresh.contains_honest(s)
            assert hybrid.can_be_corrupted(s) == thresh.can_be_corrupted(s)

    def test_admissibility_condition(self):
        assert HybridQuorumSystem(n=10, b=2, c=1).satisfies_q3  # 10 > 8
        assert not HybridQuorumSystem(n=8, b=2, c=1).satisfies_q3  # 8 = 8
        assert HybridQuorumSystem(n=9, b=1, c=2).satisfies_q3  # 9 > 7
        assert HybridQuorumSystem(n=9, b=0, c=4).satisfies_q3  # 9 > 8
        assert not HybridQuorumSystem(n=9, b=0, c=5).satisfies_q3

    def test_crashes_cost_less_than_corruptions(self):
        """n=9 admits (b=1, c=2): three faults; the classical Byzantine
        bound admits only t=2 faults of any kind."""
        assert HybridQuorumSystem(n=9, b=1, c=2).satisfies_q3
        assert not HybridQuorumSystem(n=9, b=3, c=0).satisfies_q3

    def test_quorum_sizes(self):
        q = HybridQuorumSystem(n=9, b=1, c=2)
        assert q.is_quorum(range(6)) and not q.is_quorum(range(5))
        # 2b + c + 1 = 5
        assert q.is_strong_quorum(range(5)) and not q.is_strong_quorum(range(4))
        assert q.contains_honest(range(2)) and not q.contains_honest(range(1))
        # Secrecy: crashed servers do not leak, so only b shares matter.
        assert q.can_be_corrupted({0}) and not q.can_be_corrupted({0, 1})

    def test_nesting(self):
        q = HybridQuorumSystem(n=9, b=1, c=2)
        quorum = set(range(9 - 1 - 2))
        assert q.is_strong_quorum(quorum)
        assert q.contains_honest(quorum)

    def test_fault_pattern_accounting(self):
        q = HybridQuorumSystem(n=9, b=1, c=2)
        assert q.admissible_faults(byzantine={0}, crashed={1, 2})
        assert not q.admissible_faults(byzantine={0, 1}, crashed={2})
        assert not q.admissible_faults(byzantine={0}, crashed={1, 2, 3})
        # A Byzantine server counted once even if listed crashed too.
        assert q.admissible_faults(byzantine={0}, crashed={0, 1, 2})

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            HybridQuorumSystem(n=4, b=-1, c=0)
        with pytest.raises(ValueError):
            HybridQuorumSystem(n=4, b=2, c=2)


class TestDealerIntegration:
    def test_dealer_accepts_hybrid(self):
        keys = deal_system(9, random.Random(1), hybrid=(1, 2), group=small_group())
        assert isinstance(keys.public.quorum, HybridQuorumSystem)
        assert keys.public.quorum.describe().startswith("hybrid")

    def test_dealer_rejects_inadmissible_hybrid(self):
        with pytest.raises(ValueError):
            deal_system(9, random.Random(2), hybrid=(1, 3), group=small_group())

    def test_hybrid_exclusive_with_threshold(self):
        with pytest.raises(ValueError):
            deal_system(9, random.Random(3), t=1, hybrid=(1, 2), group=small_group())

    def test_sharing_threshold_is_b_plus_one(self):
        """Crashed servers keep secrets: one honest share beyond the
        Byzantine budget reconstructs."""
        keys = deal_system(9, random.Random(4), hybrid=(1, 2), group=small_group())
        assert keys.public.access_scheme.is_qualified({0, 1})
        assert not keys.public.access_scheme.is_qualified({0})


class TestProtocolsUnderHybridFaults:
    def test_agreement_with_one_byzantine_and_two_crashes(self):
        """n=9, one silent-Byzantine server plus two crashed servers —
        three faults, beyond the classical t=2 — agreement still holds."""
        keys = deal_system(9, random.Random(5), hybrid=(1, 2), group=small_group())
        net = Network(RandomScheduler(), random.Random(6))
        live = [0, 1, 2, 3, 4, 5]
        rts = {}
        for i in live:
            rt = ProtocolRuntime(i, net, keys.public, keys.private[i], seed=7)
            net.attach(i, rt)
            rts[i] = rt
        net.attach(6, SilentNode())  # Byzantine (silent)
        for crashed in (7, 8):
            net.attach(crashed, SilentNode())
            net.crash(crashed)
        session = aba_session("hybrid")
        for i, rt in rts.items():
            rt.spawn(session, BinaryAgreement(i % 2))
        net.run(
            until=lambda: all(rt.result(session) is not None for rt in rts.values()),
            max_steps=900_000,
        )
        assert len({rt.result(session) for rt in rts.values()}) == 1

    def test_service_with_four_crashes_of_nine(self):
        from repro.apps import DirectoryService
        from repro.smr import build_service

        dep = build_service(9, DirectoryService, hybrid=(0, 4), seed=8)
        for crashed in (5, 6, 7, 8):
            dep.network.attach_crashed = None  # no-op marker
            dep.network.crash(crashed)
        client = dep.new_client()
        dep.network.start()
        nonce = client.submit(("bind", "k", "v"))
        results = dep.run_until_complete(client, [nonce], max_steps=900_000)
        assert results[nonce].result == ("bound", "k", 1)
