"""Attribute classification: the paper's Examples 1 and 2, verbatim."""

import pytest

from repro.adversary.attributes import (
    AttributeAssignment,
    class_presence_formula,
    example1_access_formula,
    example1_assignment,
    example1_structure,
    example2_access_formula,
    example2_assignment,
    example2_structure,
)
from repro.adversary.quorums import access_formula_compatible
from repro.adversary.structures import structure_from_access_formula, threshold_structure


class TestAssignment:
    def test_example1_classes(self):
        a = example1_assignment()
        assert a.parties_with("class", "a") == frozenset({0, 1, 2, 3})
        assert a.parties_with("class", "b") == frozenset({4, 5})
        assert a.parties_with("class", "c") == frozenset({6, 7})
        assert a.parties_with("class", "d") == frozenset({8})
        assert a.values("class") == ["a", "b", "c", "d"]

    def test_example2_grid(self):
        a = example2_assignment()
        assert len(a.parties_with("location", "tokyo")) == 4
        assert len(a.parties_with("os", "linux")) == 4
        cell = a.parties_with_all(location="zurich", os="nt")
        assert len(cell) == 1

    def test_incomplete_assignment_rejected(self):
        with pytest.raises(ValueError):
            AttributeAssignment(n=3, attributes={"x": {0: "a", 1: "b"}})

    def test_class_presence_formula(self):
        a = example1_assignment()
        chi_b = class_presence_formula(a, "class", "b")
        assert chi_b.evaluate(frozenset({4}))
        assert chi_b.evaluate(frozenset({5, 8}))
        assert not chi_b.evaluate(frozenset({0, 8}))
        with pytest.raises(ValueError):
            class_presence_formula(a, "class", "zzz")


class TestExample1:
    """Paper: tolerate any 2 arbitrary servers or all servers of one class."""

    def test_q3(self):
        assert example1_structure().satisfies_q3()

    def test_tolerates_any_two_servers(self):
        s = example1_structure()
        from itertools import combinations

        for pair in combinations(range(9), 2):
            assert s.is_corruptible(set(pair))

    def test_tolerates_all_of_class_a(self):
        assert example1_structure().is_corruptible({0, 1, 2, 3})

    def test_does_not_tolerate_three_spread_servers(self):
        s = example1_structure()
        assert not s.is_corruptible({0, 4, 6})
        assert not s.is_corruptible({4, 5, 6})

    def test_does_not_tolerate_class_a_plus_one(self):
        assert not example1_structure().is_corruptible({0, 1, 2, 3, 4})

    def test_maximal_sets_as_in_paper(self):
        """A1* = {1..4} plus all pairs not both of class a."""
        s = example1_structure()
        sizes = sorted(len(m) for m in s.maximal_sets)
        assert sizes.count(4) == 1
        # 36 pairs total, minus 6 pairs inside class a = 30 maximal pairs.
        assert sizes.count(2) == 30

    def test_access_structure_as_in_paper(self):
        """Reconstruction needs >= 3 servers covering >= 2 classes."""
        f = example1_access_formula()
        assert f.evaluate(frozenset({0, 1, 4}))
        assert not f.evaluate(frozenset({0, 1, 2, 3}))  # one class only
        assert not f.evaluate(frozenset({0, 4}))  # too small

    def test_structure_is_exact_complement_of_formula(self):
        extracted = structure_from_access_formula(9, example1_access_formula())
        assert set(extracted.maximal_sets) == set(example1_structure().maximal_sets)


class TestExample2:
    """Paper: 16 servers, 4 locations x 4 OS; tolerate one full location
    and one full OS simultaneously (7 servers); thresholds manage 5."""

    def test_q3(self):
        assert example2_structure().satisfies_q3()

    def test_sixteen_maximal_sets_of_seven(self):
        s = example2_structure()
        assert len(s.maximal_sets) == 16
        assert all(len(m) == 7 for m in s.maximal_sets)

    def test_tolerates_location_plus_os(self):
        a = example2_assignment()
        s = example2_structure()
        doomed = a.parties_with("location", "haifa") | a.parties_with("os", "aix")
        assert len(doomed) == 7
        assert s.is_corruptible(doomed)

    def test_rejects_two_locations(self):
        a = example2_assignment()
        s = example2_structure()
        two_sites = a.parties_with("location", "tokyo") | a.parties_with(
            "location", "zurich"
        )
        assert not s.is_corruptible(two_sites)

    def test_threshold_tolerates_at_most_five(self):
        """'all solutions based on thresholds can tolerate at most five
        corruptions among the 16 servers' — t=5 is the largest with
        n > 3t, and it cannot cover any 7-server coalition."""
        best = threshold_structure(16, 5)
        assert best.satisfies_q3()
        assert not threshold_structure(16, 6).satisfies_q3()
        doomed = next(iter(example2_structure().maximal_sets))
        assert not best.is_corruptible(doomed)

    def test_formula_compatible_with_structure(self):
        assert access_formula_compatible(example2_structure(), example2_access_formula())

    def test_formula_is_not_the_exact_complement(self):
        """Subtle (documented in DESIGN.md): the sharing formula is
        strictly coarser than the complement of the adversary structure —
        some non-corruptible sets are still unqualified."""
        f = example2_access_formula()
        s = example2_structure()
        a = example2_assignment()
        # One full location + one arbitrary server per other location with
        # pairwise-different OSes: not corruptible, yet not qualified.
        weird = set(a.parties_with("location", "newyork"))
        weird |= a.parties_with_all(location="tokyo", os="aix")
        weird |= a.parties_with_all(location="zurich", os="nt")
        weird |= a.parties_with_all(location="haifa", os="solaris")
        assert not s.is_corruptible(weird)
        assert not f.evaluate(frozenset(weird))

    def test_exact_complement_would_violate_q3(self):
        """The complement structure of the Example 2 formula violates
        Q^3: three non-qualified (hence complement-corruptible) sets can
        cover all sixteen servers — only the coarser row-union-column
        structure satisfies Q^3.  Witness constructed analytically
        (full extraction of the ~500 maximal sets is exponential)."""
        f = example2_access_formula()
        a = example2_assignment()

        def cell(loc, osys):
            return a.parties_with_all(location=loc, os=osys)

        # Two "one full location + one server per other location" sets
        # (each fails the location condition) and one "one full OS + one
        # server per other OS" set (fails the OS condition).
        s1 = set(a.parties_with("location", "newyork"))
        s1 |= cell("tokyo", "aix") | cell("zurich", "linux") | cell("haifa", "nt")
        s2 = set(a.parties_with("location", "tokyo"))
        s2 |= cell("newyork", "nt") | cell("zurich", "solaris") | cell("haifa", "linux")
        s3 = set(a.parties_with("os", "aix"))
        s3 |= cell("zurich", "nt") | cell("haifa", "solaris") | cell("newyork", "linux")
        for s in (s1, s2, s3):
            assert not f.evaluate(frozenset(s)), sorted(s)
        assert s1 | s2 | s3 == set(range(16))

    def test_liveness_sets_are_qualified(self):
        """The complement of every maximal corruptible set (a 3x3
        sub-grid) can reconstruct — the paper's 'three operating systems
        at three locations' survival condition."""
        f = example2_access_formula()
        s = example2_structure()
        for bad in s.maximal_sets:
            assert f.evaluate(s.all_parties - bad)
