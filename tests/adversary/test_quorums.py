"""Generalized quorum systems: the Section 4.2 substitution rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.attributes import (
    example1_access_formula,
    example1_structure,
    example2_structure,
)
from repro.adversary.formulas import majority
from repro.adversary.quorums import (
    GeneralQuorumSystem,
    ThresholdQuorumSystem,
    access_formula_compatible,
    quorum_system_for,
)
from repro.adversary.structures import threshold_structure


class TestThresholdQuorums:
    def test_rules_match_the_paper_counts(self):
        q = ThresholdQuorumSystem(n=7, t=2)
        assert q.is_quorum(range(5)) and not q.is_quorum(range(4))
        assert q.is_strong_quorum(range(5)) and not q.is_strong_quorum(range(4))
        assert q.contains_honest(range(3)) and not q.contains_honest(range(2))
        assert q.can_be_corrupted(range(2)) and not q.can_be_corrupted(range(3))

    def test_q3_flag(self):
        assert ThresholdQuorumSystem(n=4, t=1).satisfies_q3
        assert not ThresholdQuorumSystem(n=6, t=2).satisfies_q3

    def test_sample_quorum(self):
        q = ThresholdQuorumSystem(n=7, t=2)
        assert q.is_quorum(q.sample_quorum())

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ThresholdQuorumSystem(n=3, t=3)


class TestGeneralQuorums:
    def test_agrees_with_threshold_on_threshold_structure(self):
        """The general implementation specializes to the O(1) threshold
        one on the same structure — checked exhaustively for n=5,t=1."""
        thresh = ThresholdQuorumSystem(n=5, t=1)
        general = GeneralQuorumSystem(structure=threshold_structure(5, 1))
        from itertools import chain, combinations

        subsets = chain.from_iterable(combinations(range(5), k) for k in range(6))
        for subset in subsets:
            s = set(subset)
            assert thresh.is_quorum(s) == general.is_quorum(s), s
            assert thresh.is_strong_quorum(s) == general.is_strong_quorum(s), s
            assert thresh.contains_honest(s) == general.contains_honest(s), s
            assert thresh.can_be_corrupted(s) == general.can_be_corrupted(s), s

    def test_example1_quorums(self):
        q = GeneralQuorumSystem(structure=example1_structure())
        # Complement of class a is a quorum.
        assert q.is_quorum({4, 5, 6, 7, 8})
        # Complement of a non-class-a pair is a quorum.
        assert q.is_quorum(set(range(9)) - {4, 6})
        # Missing three spread servers: their absence is not corruptible.
        assert not q.is_quorum(set(range(9)) - {4, 6, 8})

    def test_example1_strong_quorum(self):
        q = GeneralQuorumSystem(structure=example1_structure())
        # All of b, c, d (5 servers): remove any corruptible set and a
        # non-corruptible remainder survives?  Removing pair {4,6} leaves
        # {5,7,8} (non-corruptible, 3 spread) — and removing class a
        # doesn't intersect. Check the predicate holds:
        assert q.is_strong_quorum({4, 5, 6, 7, 8})
        # Class a plus one is NOT strong: removing class a leaves {4}.
        assert not q.is_strong_quorum({0, 1, 2, 3, 4})

    def test_nesting_quorum_implies_strong_implies_honest(self):
        """Under Q^3: is_quorum => is_strong_quorum => contains_honest."""
        for structure in (example1_structure(), example2_structure(),
                          threshold_structure(7, 2)):
            q = GeneralQuorumSystem(structure=structure)
            n = structure.n
            import random

            rng = random.Random(7)
            for _ in range(40):
                s = {p for p in range(n) if rng.random() < 0.6}
                if q.is_quorum(s):
                    assert q.is_strong_quorum(s)
                if q.is_strong_quorum(s):
                    assert q.contains_honest(s)

    def test_two_quorums_intersect_in_honest_party(self):
        """The agreement-critical fact: any two quorums share a
        non-corruptible set."""
        structure = example1_structure()
        q = GeneralQuorumSystem(structure=structure)
        quorums = []
        for bad in structure.maximal_sets:
            quorums.append(structure.all_parties - bad)
        for a in quorums[:8]:
            for b in quorums[:8]:
                assert not structure.is_corruptible(a & b)

    def test_sample_quorum_valid(self):
        q = GeneralQuorumSystem(structure=example2_structure())
        assert q.is_quorum(q.sample_quorum())


class TestFactoryAndCompatibility:
    def test_factory_dispatch(self):
        assert isinstance(quorum_system_for(4, t=1), ThresholdQuorumSystem)
        assert isinstance(
            quorum_system_for(9, structure=example1_structure()), GeneralQuorumSystem
        )

    def test_factory_requires_exactly_one(self):
        with pytest.raises(ValueError):
            quorum_system_for(4)
        with pytest.raises(ValueError):
            quorum_system_for(9, t=1, structure=example1_structure())

    def test_factory_checks_n(self):
        with pytest.raises(ValueError):
            quorum_system_for(8, structure=example1_structure())

    def test_access_formula_compatible_positive(self):
        assert access_formula_compatible(example1_structure(), example1_access_formula())
        assert access_formula_compatible(
            threshold_structure(4, 1), majority(list(range(4)), 2)
        )

    def test_access_formula_compatible_rejects_unsafe(self):
        # 1-of-4 lets a single (corruptible) party reconstruct.
        assert not access_formula_compatible(
            threshold_structure(4, 1), majority(list(range(4)), 1)
        )

    def test_access_formula_compatible_rejects_unlive(self):
        # 4-of-4 cannot be reconstructed once one party is corrupted.
        assert not access_formula_compatible(
            threshold_structure(4, 1), majority(list(range(4)), 4)
        )


@given(st.integers(4, 10), st.data())
@settings(max_examples=40, deadline=None)
def test_threshold_and_general_agree_property(n, data):
    t = data.draw(st.integers(0, (n - 1) // 3))
    subset = data.draw(st.sets(st.integers(0, n - 1), max_size=n))
    thresh = ThresholdQuorumSystem(n=n, t=t)
    general = GeneralQuorumSystem(structure=threshold_structure(n, t))
    assert thresh.is_quorum(subset) == general.is_quorum(subset)
    assert thresh.contains_honest(subset) == general.contains_honest(subset)
    assert thresh.can_be_corrupted(subset) == general.can_be_corrupted(subset)
