"""Adversary structures: membership, Q^3, extraction from formulas."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.attributes import example1_access_formula, example1_structure
from repro.adversary.formulas import majority
from repro.adversary.structures import (
    AdversaryStructure,
    structure_from_access_formula,
    threshold_structure,
)


def test_threshold_structure_membership():
    s = threshold_structure(7, 2)
    assert s.is_corruptible({0, 1})
    assert s.is_corruptible({5})
    assert s.is_corruptible(set())
    assert not s.is_corruptible({0, 1, 2})
    assert s.is_qualified({0, 1, 2})


def test_threshold_structure_t_zero():
    s = threshold_structure(4, 0)
    assert s.is_corruptible(set())
    assert not s.is_corruptible({0})


def test_threshold_q3_boundary():
    assert threshold_structure(4, 1).satisfies_q3()
    assert threshold_structure(7, 2).satisfies_q3()
    assert not threshold_structure(3, 1).satisfies_q3()
    assert not threshold_structure(6, 2).satisfies_q3()
    assert not threshold_structure(9, 3).satisfies_q3()
    assert threshold_structure(10, 3).satisfies_q3()


def test_q2_weaker_than_q3():
    s = threshold_structure(5, 2)  # Q2 (5 > 4) but not Q3 (5 < 7)
    assert s.satisfies_q2()
    assert not s.satisfies_q3()


def test_invalid_threshold_rejected():
    with pytest.raises(ValueError):
        threshold_structure(4, 4)
    with pytest.raises(ValueError):
        threshold_structure(4, -1)


def test_maximal_sets_form_antichain():
    s = AdversaryStructure(
        n=4,
        maximal_sets=(
            frozenset({0}),
            frozenset({0, 1}),  # supersedes {0}
            frozenset({2, 3}),
        ),
    )
    assert frozenset({0}) not in s.maximal_sets
    assert frozenset({0, 1}) in s.maximal_sets
    assert s.is_corruptible({0})  # still corruptible via {0,1}


def test_out_of_range_sets_rejected():
    with pytest.raises(ValueError):
        AdversaryStructure(n=3, maximal_sets=(frozenset({5}),))


def test_structure_from_access_formula_threshold_case():
    extracted = structure_from_access_formula(5, majority(list(range(5)), 3))
    expected = threshold_structure(5, 2)
    assert set(extracted.maximal_sets) == set(expected.maximal_sets)


def test_structure_from_access_formula_matches_example1():
    extracted = structure_from_access_formula(9, example1_access_formula())
    analytic = example1_structure()
    assert set(extracted.maximal_sets) == set(analytic.maximal_sets)


def test_minimal_qualified_sets_threshold():
    s = threshold_structure(4, 1)
    minimal = s.minimal_qualified_sets()
    assert all(len(m) == 2 for m in minimal)
    assert len(minimal) == 6  # all pairs


def test_minimal_qualified_sets_example1():
    s = example1_structure()
    minimal = s.minimal_qualified_sets()
    # Smallest qualified coalitions have size 3 and cover >= 2 classes.
    assert all(len(m) == 3 for m in minimal)
    classes = {0: "a", 1: "a", 2: "a", 3: "a", 4: "b", 5: "b", 6: "c", 7: "c", 8: "d"}
    for m in minimal:
        assert len({classes[i] for i in m}) >= 2


def test_max_corruptible_size():
    assert threshold_structure(7, 2).max_corruptible_size() == 2
    assert example1_structure().max_corruptible_size() == 4


def test_describe_is_readable():
    text = threshold_structure(4, 1).describe()
    assert "n=4" in text


@given(st.sets(st.integers(0, 6), max_size=7), st.integers(0, 2))
@settings(max_examples=50)
def test_monotone_membership(subset, t):
    """Subsets of corruptible sets are corruptible."""
    s = threshold_structure(7, t)
    if s.is_corruptible(subset):
        for drop in list(subset):
            assert s.is_corruptible(subset - {drop})
