"""The command-line interface."""

import json

import pytest

from repro.cli import main


def test_deal_writes_deployment(tmp_path, capsys):
    rc = main(["deal", "--n", "4", "--t", "1", "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "public.json").exists()
    assert (tmp_path / "server-3.json").exists()
    data = json.loads((tmp_path / "public.json").read_text())
    assert data["n"] == 4
    out = capsys.readouterr().out
    assert "threshold(n=4, t=1)" in out


def test_deal_hybrid(tmp_path, capsys):
    rc = main(["deal", "--n", "9", "--hybrid", "1,2", "--out", str(tmp_path)])
    assert rc == 0
    assert "hybrid(n=9" in capsys.readouterr().out


def test_deal_example1(tmp_path, capsys):
    rc = main(["deal", "--structure", "example1", "--out", str(tmp_path)])
    assert rc == 0
    assert json.loads((tmp_path / "public.json").read_text())["n"] == 9


def test_demo_directory(capsys):
    rc = main(["demo", "directory", "--corrupt", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "('bound', 'demo/name', 1)" in out
    assert "honest replicas consistent: True" in out


def test_demo_notary(capsys):
    rc = main(["demo", "notary"])
    assert rc == 0
    assert "registered" in capsys.readouterr().out


def test_structure_inspection(capsys):
    rc = main(["structure", "example2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Q^3: True" in out
    assert "max corruptible coalition: 7" in out


def test_structure_threshold(capsys):
    rc = main(["structure", "threshold", "--n", "7", "--t", "2"])
    assert rc == 0
    assert "Q^3: True" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
