"""Consistent broadcast: uniqueness and transferable commit certificates."""

import pytest

from helpers import make_network, run_until_outputs

from repro.core.consistent_broadcast import (
    CbcDelivery,
    CbcFinal,
    CbcSend,
    ConsistentBroadcast,
    cbc_session,
    verify_commit_certificate,
)
from repro.crypto.threshold_sig import QuorumCertificate
from repro.net.adversary import MutatingNode, SilentNode
from repro.net.scheduler import RandomScheduler, ReorderScheduler


def _spawn(runtimes, session, sender, value, validate=None):
    for party, runtime in runtimes.items():
        runtime.spawn(
            session,
            ConsistentBroadcast(
                sender, value=value if party == sender else None, validate=validate
            ),
        )


@pytest.mark.parametrize("scheduler", [RandomScheduler, ReorderScheduler])
def test_honest_sender_all_deliver(keys_4_1, scheduler):
    net, rts = make_network(keys_4_1, scheduler(), seed=1)
    session = cbc_session(0, "m")
    _spawn(rts, session, 0, b"payload")
    outputs = run_until_outputs(net, rts, session)
    for out in outputs.values():
        assert isinstance(out, CbcDelivery)
        assert out.value == b"payload"
        assert out.sender == 0


def test_certificate_is_transferable(keys_4_1):
    """Any third party can check the certificate against the public keys
    — what MVBA uses to prove a proposal committed."""
    net, rts = make_network(keys_4_1, seed=2)
    session = cbc_session(1, "m")
    _spawn(rts, session, 1, "val")
    outputs = run_until_outputs(net, rts, session)
    delivery = outputs[3]
    assert verify_commit_certificate(
        keys_4_1.public, session, delivery.value, delivery.certificate
    )
    assert not verify_commit_certificate(
        keys_4_1.public, session, "other-value", delivery.certificate
    )
    assert not verify_commit_certificate(
        keys_4_1.public, cbc_session(1, "other"), delivery.value, delivery.certificate
    )


def test_equivocating_sender_uniqueness(keys_4_1):
    """Even an equivocating sender cannot make two different values
    deliverable: quorums intersect in an honest signer."""
    for seed in range(5):
        net, rts = make_network(keys_4_1, seed=seed, parties=[1, 2, 3])
        session = cbc_session(0, "eq")

        class Sender:
            def __init__(self, facade):
                self.facade = facade
                self.shares_a = {}
                self.shares_b = {}

            def on_start(self):
                self.facade.send(0, 1, (session, CbcSend("A")))
                self.facade.send(0, 2, (session, CbcSend("A")))
                self.facade.send(0, 3, (session, CbcSend("B")))

            def on_message(self, sender, payload):
                pass

        net.attach(0, MutatingNode(net, 0, lambda f: Sender(f), lambda r, p: p))
        _spawn(rts, session, 0, None)
        net.run()
        delivered = {
            rts[p].result(session).value
            for p in (1, 2, 3)
            if rts[p].result(session) is not None
        }
        # With signatures split 2-vs-1 no quorum (3) forms for either value.
        assert len(delivered) <= 1, f"seed {seed}"


def test_forged_certificate_rejected(keys_4_1):
    net, rts = make_network(keys_4_1, seed=6)
    session = cbc_session(0, "m")
    _spawn(rts, session, 0, None)
    fake = QuorumCertificate(signatures={})
    net.send(2, 1, (session, CbcFinal("evil", fake)))
    net.run()
    assert rts[1].result(session) is None


def test_validation_gates_signing(keys_4_1):
    net, rts = make_network(keys_4_1, seed=7)
    session = cbc_session(0, "m")
    _spawn(rts, session, 0, ("bad",), validate=lambda v: v[0] == "good")
    net.run()
    assert all(rts[p].result(session) is None for p in rts)


def test_tolerates_silent_party(keys_4_1):
    net, rts = make_network(keys_4_1, seed=8, parties=[0, 1, 2])
    net.attach(3, SilentNode())
    session = cbc_session(0, "m")
    _spawn(rts, session, 0, "v")
    outputs = run_until_outputs(net, rts, session)
    assert all(out.value == "v" for out in outputs.values())


def test_late_final_still_delivers(keys_4_1):
    """Totality is relaxed but anyone who gets the FINAL delivers —
    including a party that saw nothing else (certificate is evidence)."""
    net, rts = make_network(keys_4_1, seed=9)
    session = cbc_session(0, "m")
    _spawn(rts, session, 0, "v")
    outputs = run_until_outputs(net, rts, session)
    delivery = outputs[0]
    # A completely fresh network: deliver only the FINAL at party 2.
    net2, rts2 = make_network(keys_4_1, seed=10, parties=[2])
    rts2[2].spawn(session, ConsistentBroadcast(0))
    net2.send(3, 2, (session, CbcFinal(delivery.value, delivery.certificate)))
    net2.run()
    assert rts2[2].result(session).value == "v"
