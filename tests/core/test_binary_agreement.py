"""Randomized binary Byzantine agreement: validity, agreement,
termination — under benign and adversarial schedules and corruptions."""

import pytest

from helpers import make_network, run_until_outputs

from repro.core.binary_agreement import (
    AbaBval,
    AbaConf,
    AbaCoinShare,
    AbaDone,
    BinaryAgreement,
    aba_session,
)
from repro.net.adversary import SilentNode, SpamNode
from repro.net.scheduler import (
    DelayScheduler,
    FifoScheduler,
    RandomScheduler,
    ReorderScheduler,
)

import random


def _spawn(runtimes, session, proposals):
    for party, runtime in runtimes.items():
        runtime.spawn(session, BinaryAgreement(proposals[party]))


class TestValidity:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_proposals_decide_that_value(self, keys_4_1, value):
        for seed in range(3):
            net, rts = make_network(keys_4_1, seed=seed)
            session = aba_session(("unanimous", value, seed))
            _spawn(rts, session, {p: value for p in rts})
            outputs = run_until_outputs(net, rts, session)
            assert all(v == value for v in outputs.values())

    def test_unanimous_with_silent_corruption(self, keys_4_1):
        net, rts = make_network(keys_4_1, seed=4, parties=[0, 1, 2])
        net.attach(3, SilentNode())
        session = aba_session("silent")
        _spawn(rts, session, {p: 1 for p in rts})
        outputs = run_until_outputs(net, rts, session)
        assert all(v == 1 for v in outputs.values())

    def test_decided_value_was_proposed_by_honest_party(self, keys_4_1):
        """With mixed proposals the decision is one of them (here both
        values are proposed, so this checks the output is a valid bit
        and agreement holds)."""
        for seed in range(4):
            net, rts = make_network(keys_4_1, seed=seed + 10)
            session = aba_session(("mixed", seed))
            _spawn(rts, session, {0: 0, 1: 1, 2: 0, 3: 1})
            outputs = run_until_outputs(net, rts, session)
            assert len(set(outputs.values())) == 1
            assert outputs[0] in (0, 1)


class TestAgreement:
    @pytest.mark.parametrize(
        "scheduler", [FifoScheduler, RandomScheduler, ReorderScheduler]
    )
    def test_agreement_across_schedulers(self, keys_4_1, scheduler):
        net, rts = make_network(keys_4_1, scheduler(), seed=7)
        session = aba_session(("sched", scheduler.__name__))
        _spawn(rts, session, {0: 1, 1: 0, 2: 1, 3: 0})
        outputs = run_until_outputs(net, rts, session)
        assert len(set(outputs.values())) == 1

    def test_agreement_under_targeted_delay(self, keys_4_1):
        net, rts = make_network(keys_4_1, DelayScheduler({0}), seed=8)
        session = aba_session("delayed")
        _spawn(rts, session, {0: 1, 1: 0, 2: 1, 3: 0})
        outputs = run_until_outputs(net, rts, session)
        assert len(set(outputs.values())) == 1

    def test_agreement_with_seven_parties(self, keys_7_2):
        net, rts = make_network(keys_7_2, seed=9)
        session = aba_session("seven")
        _spawn(rts, session, {p: p % 2 for p in rts})
        outputs = run_until_outputs(net, rts, session)
        assert len(set(outputs.values())) == 1

    def test_agreement_with_two_silent_of_seven(self, keys_7_2):
        net, rts = make_network(keys_7_2, seed=10, parties=[0, 1, 2, 3, 4])
        for bad in (5, 6):
            net.attach(bad, SilentNode())
        session = aba_session("seven-silent")
        _spawn(rts, session, {p: p % 2 for p in rts})
        outputs = run_until_outputs(net, rts, session)
        assert len(set(outputs.values())) == 1


class TestByzantine:
    def test_byzantine_voter_cannot_break_agreement(self, keys_4_1):
        """Party 3 sends conflicting BVAL/AUX/CONF and junk coin shares."""
        for seed in range(4):
            net, rts = make_network(keys_4_1, seed=seed + 20, parties=[0, 1, 2])
            session = aba_session(("byz", seed))

            class TwoFaced(SilentNode):
                def __init__(self):
                    self.fired = False

                def on_message(self, inner_sender, payload):
                    if self.fired:
                        return
                    self.fired = True
                    for r in (1, 2):
                        for v in (0, 1):
                            net.broadcast(3, (session, AbaBval(r, v)))
                        net.broadcast(3, (session, AbaConf(r, frozenset({0, 1}))))
                    net.broadcast(3, (session, AbaDone(0)))
                    net.broadcast(3, (session, AbaDone(1)))

            net.attach(3, TwoFaced())
            _spawn(rts, session, {0: 0, 1: 1, 2: 0})
            outputs = run_until_outputs(net, rts, session)
            assert len(set(outputs.values())) == 1, f"seed {seed}"

    def test_forged_coin_shares_rejected(self, keys_4_1):
        """A corrupted party replaying another party's coin share (or
        garbage) must not corrupt the coin."""
        net, rts = make_network(keys_4_1, seed=30, parties=[0, 1, 2])
        session = aba_session("forged-coin")

        class CoinForger(SilentNode):
            def __init__(self):
                self.done = False

            def on_message(self, sender, payload):
                if self.done or not isinstance(payload, tuple):
                    return
                sess, msg = payload
                if isinstance(msg, AbaCoinShare):
                    self.done = True
                    # replay someone else's share under our identity
                    net.broadcast(3, (session, msg))

        net.attach(3, CoinForger())
        _spawn(rts, session, {0: 1, 1: 0, 2: 1})
        outputs = run_until_outputs(net, rts, session)
        assert len(set(outputs.values())) == 1

    def test_spam_does_not_block(self, keys_4_1):
        net, rts = make_network(keys_4_1, seed=31, parties=[0, 1, 2])
        net.attach(
            3,
            SpamNode(
                net,
                3,
                payload_factory=lambda rng: (session_holder[0], AbaBval(rng.randrange(3) + 1, 2)),
                rng=random.Random(32),
                fanout=1,
            ),
        )
        session = aba_session("spam")
        session_holder = [session]
        _spawn(rts, session, {0: 1, 1: 1, 2: 1})
        outputs = run_until_outputs(net, rts, session)
        assert all(v == 1 for v in outputs.values())


class TestTermination:
    def test_rounds_are_bounded_in_practice(self, keys_4_1):
        """Expected constant rounds: over 10 adversarially scheduled
        runs, every run finishes within a small number of coin flips."""
        for seed in range(10):
            net, rts = make_network(keys_4_1, ReorderScheduler(), seed=seed + 40)
            session = aba_session(("rounds", seed))
            _spawn(rts, session, {0: 0, 1: 1, 2: 1, 3: 0})
            run_until_outputs(net, rts, session)
            flips = net.trace.counters.get("aba.coin_flips", 0)
            assert flips <= 40  # 4 parties x <= 10 rounds

    def test_instances_halt_after_decision(self, keys_4_1):
        """The DONE gadget stops the protocol: after everyone decided,
        the network drains to quiescence (no infinite round chatter)."""
        net, rts = make_network(keys_4_1, seed=50)
        session = aba_session("halt")
        _spawn(rts, session, {p: 1 for p in rts})
        run_until_outputs(net, rts, session)
        net.run(max_steps=100_000)  # must reach quiescence
        assert all(rts[p].instances[session].halted for p in rts)

    def test_generalized_structure_agreement(self, keys_example1):
        """Example 1 structure: whole class a silent (4 of 9)."""
        honest = [4, 5, 6, 7, 8]
        net, rts = make_network(keys_example1, seed=51, parties=honest)
        for bad in (0, 1, 2, 3):
            net.attach(bad, SilentNode())
        session = aba_session("gen")
        _spawn(rts, session, {p: p % 2 for p in rts})
        outputs = run_until_outputs(net, rts, session)
        assert len(set(outputs.values())) == 1


class TestInputValidation:
    def test_bad_proposal_rejected(self):
        with pytest.raises(ValueError):
            BinaryAgreement(2)

    def test_far_future_rounds_ignored(self, keys_4_1):
        net, rts = make_network(keys_4_1, seed=60, parties=[0])
        session = aba_session("future")
        inst = rts[0].spawn(session, BinaryAgreement(1))
        net.send(1, 0, (session, AbaBval(999, 1)))
        net.run(max_steps=10)
        assert 999 not in inst.rounds
