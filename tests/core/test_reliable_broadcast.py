"""Reliable broadcast (Bracha): totality, agreement, Byzantine senders."""

import pytest

from helpers import make_network, run_until_outputs

from repro.core.reliable_broadcast import (
    RbcEcho,
    RbcReady,
    RbcSend,
    ReliableBroadcast,
    rbc_session,
)
from repro.net.adversary import MutatingNode, SilentNode
from repro.net.scheduler import RandomScheduler, ReorderScheduler
from repro.core.runtime import ProtocolRuntime


def _spawn_rbc(runtimes, session, sender, value, validate=None):
    for party, runtime in runtimes.items():
        runtime.spawn(
            session,
            ReliableBroadcast(
                sender, value=value if party == sender else None, validate=validate
            ),
        )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("scheduler", [RandomScheduler, ReorderScheduler])
def test_honest_sender_all_deliver(keys_4_1, seed, scheduler):
    net, rts = make_network(keys_4_1, scheduler(), seed=seed)
    session = rbc_session(0, "m")
    _spawn_rbc(rts, session, 0, ("payload", seed))
    outputs = run_until_outputs(net, rts, session)
    assert all(v == ("payload", seed) for v in outputs.values())


def test_silent_sender_nobody_delivers(keys_4_1):
    net, rts = make_network(keys_4_1, seed=3, parties=[1, 2, 3])
    net.attach(0, SilentNode())
    session = rbc_session(0, "m")
    _spawn_rbc(rts, session, 0, None)
    net.run()  # quiescence
    assert all(rts[p].result(session) is None for p in (1, 2, 3))


def test_equivocating_sender_agreement(keys_4_1):
    """A sender that tells half the parties 'A' and half 'B': honest
    parties may deliver nothing, but never different values."""
    for seed in range(6):
        net, rts = make_network(keys_4_1, seed=seed, parties=[1, 2, 3])
        session = rbc_session(0, "eq")

        class Sender:
            def __init__(self, facade):
                self.facade = facade

            def on_start(self):
                for r in (1, 2):
                    self.facade.send(0, r, (session, RbcSend("A")))
                self.facade.send(0, 3, (session, RbcSend("B")))

            def on_message(self, sender, payload):
                pass

        net.attach(
            0,
            MutatingNode(net, 0, lambda facade: Sender(facade), lambda r, p: p),
        )
        _spawn_rbc(rts, session, 0, None)
        net.run()
        delivered = {rts[p].result(session) for p in (1, 2, 3)}
        delivered.discard(None)
        assert len(delivered) <= 1, f"seed {seed}: agreement violated {delivered}"


def test_delivery_with_crashed_receivers(keys_7_2):
    net, rts = make_network(keys_7_2, seed=4, parties=[0, 1, 2, 3, 4])
    for silent in (5, 6):
        net.attach(silent, SilentNode())
    session = rbc_session(0, "m")
    _spawn_rbc(rts, session, 0, "survives")
    outputs = run_until_outputs(net, rts, session)
    assert all(v == "survives" for v in outputs.values())


def test_validation_predicate_blocks_bad_values(keys_4_1):
    net, rts = make_network(keys_4_1, seed=5)
    session = rbc_session(2, "v")
    _spawn_rbc(rts, session, 2, ("bad", 666), validate=lambda v: v[0] == "good")
    net.run()
    assert all(rts[p].result(session) is None for p in rts)


def test_validation_predicate_allows_good_values(keys_4_1):
    net, rts = make_network(keys_4_1, seed=6)
    session = rbc_session(2, "v")
    _spawn_rbc(rts, session, 2, ("good", 1), validate=lambda v: v[0] == "good")
    outputs = run_until_outputs(net, rts, session)
    assert set(outputs.values()) == {("good", 1)}


def test_validation_exception_treated_as_reject(keys_4_1):
    net, rts = make_network(keys_4_1, seed=7)
    session = rbc_session(0, "v")

    def explosive(value):
        raise RuntimeError("boom")

    _spawn_rbc(rts, session, 0, "x", validate=explosive)
    net.run()
    assert all(rts[p].result(session) is None for p in rts)


def test_forged_send_from_non_sender_ignored(keys_4_1):
    net, rts = make_network(keys_4_1, seed=8)
    session = rbc_session(0, "m")
    _spawn_rbc(rts, session, 0, None)  # sender has no input
    # Party 2 forges a SEND claiming to be... itself (channel gives true
    # sender, so the protocol must reject SENDs not from party 0).
    net.send(2, 1, (session, RbcSend("forged")))
    net.run()
    assert all(rts[p].result(session) is None for p in rts)


def test_echo_amplification_via_ready(keys_4_1):
    """A party that missed the SEND+ECHO phase still delivers from
    t+1 READYs (Bracha amplification)."""
    net, rts = make_network(keys_4_1, seed=9)
    session = rbc_session(0, "m")
    # Inject READY messages from 3 parties directly at party 3 only.
    for src in (0, 1, 2):
        net.send(src, 3, (session, RbcReady("amplified")))
    rts[3].spawn(session, ReliableBroadcast(0))
    net.run()
    assert rts[3].result(session) == "amplified"


def test_duplicate_echoes_not_double_counted(keys_4_1):
    net, rts = make_network(keys_4_1, seed=10, parties=[3])
    session = rbc_session(0, "m")
    inst = rts[3].spawn(session, ReliableBroadcast(0))
    # Two echoes from the same party: must count once (quorum is 3).
    for _ in range(5):
        net.send(1, 3, (session, RbcEcho("v")))
    net.run()
    assert inst.echoes["v"] == {1}
    assert not inst.readied


def test_rbc_with_generalized_structure(keys_example1):
    """Nine servers, all of class a silenced: delivery still succeeds."""
    honest = [4, 5, 6, 7, 8]
    net, rts = make_network(keys_example1, seed=11, parties=honest)
    for bad in (0, 1, 2, 3):
        net.attach(bad, SilentNode())
    session = rbc_session(4, "gen")
    _spawn_rbc(rts, session, 4, "resilient")
    outputs = run_until_outputs(net, rts, session)
    assert all(v == "resilient" for v in outputs.values())
