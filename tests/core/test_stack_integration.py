"""Cross-layer integration and fault injection on the full stack."""

import random

import pytest

from helpers import ctx_for, make_network

from repro.core.atomic_broadcast import AbcProposal, AtomicBroadcast, abc_session
from repro.core.consistent_broadcast import CbcSend
from repro.core.multivalued_agreement import MultiValuedAgreement, mvba_session
from repro.core.runtime import ProtocolRuntime
from repro.net.adversary import SilentNode
from repro.net.scheduler import RandomScheduler, ReorderScheduler
from repro.net.simulator import Network


def _abc(rts, session):
    logs = {p: [] for p in rts}
    for p, rt in rts.items():
        rt.spawn(session, AtomicBroadcast(
            on_deliver=lambda m, r, pp=p: logs[pp].append(m)))
    return logs


class TestDeterminism:
    def test_identical_seeds_identical_runs(self, keys_4_1):
        """The whole point of the deterministic simulator: same seed,
        same delivery order, same message count — reproducible science."""

        def run(seed):
            net, rts = make_network(keys_4_1, RandomScheduler(), seed=seed)
            session = abc_session(("det", seed))
            logs = _abc(rts, session)
            net.start()
            for p in rts:
                rts[p].instances[session].submit(
                    ctx_for(rts[p], session), ("req", p)
                )
            net.run(
                until=lambda: all(len(logs[p]) >= 4 for p in rts),
                max_steps=400_000,
            )
            return logs[0], net.delivered_count

        # Note: sessions embed the seed so crypto statements differ —
        # use the same seed twice instead.
        a = run(5)
        b = run(5)
        assert a == b


class TestByzantineInjection:
    def test_equivocating_mvba_proposer(self, keys_4_1):
        """Party 0 consistent-broadcasts different proposals to different
        parties inside MVBA: uniqueness of consistent broadcast prevents
        a split decision."""
        for seed in range(3):
            net, rts = make_network(keys_4_1, seed=seed + 60, parties=[1, 2, 3])
            session = mvba_session(("equiv", seed))

            class EquivocatingProposer(SilentNode):
                def __init__(self):
                    self.fired = False

                def on_message(self, sender, payload):
                    if self.fired:
                        return
                    self.fired = True
                    cbc = ("cbc", 0, session)
                    net.send(0, 1, (cbc, CbcSend(("proposal", "X"))))
                    net.send(0, 2, (cbc, CbcSend(("proposal", "X"))))
                    net.send(0, 3, (cbc, CbcSend(("proposal", "Y"))))

            net.attach(0, EquivocatingProposer())
            for p, rt in rts.items():
                rt.spawn(session, MultiValuedAgreement(("proposal", p)))
            net.send(1, 0, (("poke",), "hi"))
            net.run(
                until=lambda: all(
                    rt.result(session) is not None for rt in rts.values()
                ),
                max_steps=600_000,
            )
            decisions = {
                (rts[p].result(session).proposer, rts[p].result(session).value)
                for p in rts
            }
            assert len(decisions) == 1, f"seed {seed}"

    def test_abc_proposer_sending_divergent_proposals(self, keys_4_1):
        """A corrupted server signs different round-1 batches for
        different peers; external validity accepts either, but total
        order still holds."""
        net, rts = make_network(keys_4_1, seed=70, parties=[1, 2, 3])
        session = abc_session("divergent")
        logs = _abc(rts, session)

        class TwoFacedProposer(SilentNode):
            def __init__(self, keys):
                self.keys = keys
                self.fired = False

            def on_message(self, sender, payload):
                if self.fired:
                    return
                self.fired = True
                rng = random.Random(71)
                for target, batch in ((1, (("evil", 1),)), (2, (("evil", 2),)),
                                      (3, ())):
                    statement = ("abc-proposal", session, 1, batch)
                    sig = self.keys.private[0].signing_key.sign(statement, rng)
                    net.send(0, target, (session, AbcProposal(1, batch, sig)))

        net.attach(0, TwoFacedProposer(keys_4_1))
        net.start()
        for p in rts:
            rts[p].instances[session].submit(ctx_for(rts[p], session), ("req", p))
        net.run(
            until=lambda: all(len(logs[p]) >= 3 for p in rts), max_steps=600_000
        )
        net.run(max_steps=600_000)
        assert logs[1] == logs[2] == logs[3]

    def test_replayed_messages_are_harmless(self, keys_4_1):
        """A man-in-the-middle replaying every protocol message twice
        (possible for the scheduler-adversary) changes nothing."""

        class ReplayingNetwork(Network):
            def send(self, sender, recipient, payload):
                super().send(sender, recipient, payload)
                super().send(sender, recipient, payload)

        net = ReplayingNetwork(RandomScheduler(), random.Random(80))
        rts = {}
        for i in range(4):
            rt = ProtocolRuntime(i, net, keys_4_1.public, keys_4_1.private[i], seed=80)
            net.attach(i, rt)
            rts[i] = rt
        session = abc_session("replay")
        logs = _abc(rts, session)
        net.start()
        for p in rts:
            rts[p].instances[session].submit(ctx_for(rts[p], session), ("req", p))
        net.run(
            until=lambda: all(len(logs[p]) >= 4 for p in rts), max_steps=900_000
        )
        assert all(logs[p] == logs[0] for p in rts)
        assert all(len(set(logs[p])) == len(logs[p]) for p in rts)  # no dupes


class TestThroughputAndStress:
    @pytest.mark.parametrize("scheduler", [RandomScheduler, ReorderScheduler])
    def test_many_payloads_many_rounds(self, keys_4_1, scheduler):
        net, rts = make_network(keys_4_1, scheduler(), seed=90)
        session = abc_session(("stress", scheduler.__name__))
        logs = _abc(rts, session)
        net.start()
        total = 12
        for k in range(total):
            submitter = k % 4
            rts[submitter].instances[session].submit(
                ctx_for(rts[submitter], session), ("req", k)
            )
            # Interleave submissions with network progress.
            for _ in range(50):
                if not net.step():
                    break
        net.run(
            until=lambda: all(len(logs[p]) >= total for p in rts),
            max_steps=2_000_000,
        )
        assert all(logs[p] == logs[0] for p in rts)
        assert len(logs[0]) == total

    def test_two_services_share_one_network(self, keys_4_1):
        """Two independent ABC sessions multiplexed over the same
        runtimes do not interfere."""
        net, rts = make_network(keys_4_1, seed=91)
        sessions = [abc_session("svc-a"), abc_session("svc-b")]
        all_logs = []
        for session in sessions:
            all_logs.append(_abc(rts, session))
        net.start()
        for index, session in enumerate(sessions):
            rts[0].instances[session].submit(
                ctx_for(rts[0], session), ("req", index)
            )
        net.run(
            until=lambda: all(
                len(all_logs[i][p]) >= 1 for i in range(2) for p in rts
            ),
            max_steps=900_000,
        )
        assert all_logs[0][0] == [("req", 0)]
        assert all_logs[1][0] == [("req", 1)]
