"""Multi-valued Byzantine agreement with external validity."""

import pytest

from helpers import make_network, run_until_outputs

from repro.core.multivalued_agreement import (
    MultiValuedAgreement,
    MvbaDecision,
    mvba_session,
)
from repro.net.adversary import SilentNode
from repro.net.scheduler import DelayScheduler, RandomScheduler, ReorderScheduler


def _spawn(runtimes, session, proposals, predicate=None):
    for party, runtime in runtimes.items():
        runtime.spawn(
            session, MultiValuedAgreement(proposals[party], predicate=predicate)
        )


def _valid(v):
    return isinstance(v, tuple) and len(v) == 2 and v[0] == "proposal"


class TestAgreementAndValidity:
    @pytest.mark.parametrize(
        "scheduler", [RandomScheduler, ReorderScheduler]
    )
    def test_all_decide_same_proposed_value(self, keys_4_1, scheduler):
        net, rts = make_network(keys_4_1, scheduler(), seed=1)
        session = mvba_session(("basic", scheduler.__name__))
        proposals = {p: ("proposal", p) for p in rts}
        _spawn(rts, session, proposals, predicate=_valid)
        outputs = run_until_outputs(net, rts, session)
        decisions = {(d.proposer, d.value) for d in outputs.values()}
        assert len(decisions) == 1
        proposer, value = decisions.pop()
        assert value == ("proposal", proposer)

    def test_decision_satisfies_external_predicate(self, keys_4_1):
        for seed in range(3):
            net, rts = make_network(keys_4_1, seed=seed + 5)
            session = mvba_session(("pred", seed))
            _spawn(rts, session, {p: ("proposal", p) for p in rts}, predicate=_valid)
            outputs = run_until_outputs(net, rts, session)
            assert all(_valid(d.value) for d in outputs.values())

    def test_invalid_proposal_never_decided(self, keys_4_1):
        """Party 0 proposes garbage; the predicate blocks certification,
        so the decision must come from one of the others."""
        net, rts = make_network(keys_4_1, seed=9)
        session = mvba_session("invalid")
        proposals = {0: ("garbage!",), 1: ("proposal", 1), 2: ("proposal", 2),
                     3: ("proposal", 3)}
        _spawn(rts, session, proposals, predicate=_valid)
        outputs = run_until_outputs(net, rts, session)
        for d in outputs.values():
            assert d.proposer != 0
            assert _valid(d.value)

    def test_identical_proposals(self, keys_4_1):
        net, rts = make_network(keys_4_1, seed=10)
        session = mvba_session("same")
        _spawn(rts, session, {p: ("proposal", 42) for p in rts}, predicate=_valid)
        outputs = run_until_outputs(net, rts, session)
        assert all(d.value == ("proposal", 42) for d in outputs.values())


class TestFaultTolerance:
    def test_silent_party(self, keys_4_1):
        net, rts = make_network(keys_4_1, seed=11, parties=[0, 1, 2])
        net.attach(3, SilentNode())
        session = mvba_session("silent")
        _spawn(rts, session, {p: ("proposal", p) for p in rts}, predicate=_valid)
        outputs = run_until_outputs(net, rts, session)
        decisions = {(d.proposer, d.value) for d in outputs.values()}
        assert len(decisions) == 1
        # A silent party's proposal cannot win (it never broadcast it).
        assert decisions.pop()[0] != 3

    def test_delayed_party_still_agrees(self, keys_4_1):
        net, rts = make_network(keys_4_1, DelayScheduler({2}), seed=12)
        session = mvba_session("delayed")
        _spawn(rts, session, {p: ("proposal", p) for p in rts}, predicate=_valid)
        outputs = run_until_outputs(net, rts, session)
        assert len({(d.proposer, d.value) for d in outputs.values()}) == 1

    def test_seven_parties_two_silent(self, keys_7_2):
        net, rts = make_network(keys_7_2, seed=13, parties=[0, 1, 2, 3, 4])
        for bad in (5, 6):
            net.attach(bad, SilentNode())
        session = mvba_session("seven")
        _spawn(rts, session, {p: ("proposal", p) for p in rts}, predicate=_valid)
        outputs = run_until_outputs(net, rts, session)
        assert len({(d.proposer, d.value) for d in outputs.values()}) == 1

    def test_generalized_structure(self, keys_example1):
        honest = [4, 5, 6, 7, 8]
        net, rts = make_network(keys_example1, seed=14, parties=honest)
        for bad in (0, 1, 2, 3):
            net.attach(bad, SilentNode())
        session = mvba_session("gen")
        _spawn(rts, session, {p: ("proposal", p) for p in rts}, predicate=_valid)
        outputs = run_until_outputs(net, rts, session)
        decisions = {(d.proposer, d.value) for d in outputs.values()}
        assert len(decisions) == 1
        assert decisions.pop()[0] in honest


class TestDecisionShape:
    def test_output_type(self, keys_4_1):
        net, rts = make_network(keys_4_1, seed=15)
        session = mvba_session("shape")
        _spawn(rts, session, {p: ("proposal", p) for p in rts}, predicate=_valid)
        outputs = run_until_outputs(net, rts, session)
        for d in outputs.values():
            assert isinstance(d, MvbaDecision)
            assert 0 <= d.proposer < 4

    def test_no_predicate_accepts_anything(self, keys_4_1):
        net, rts = make_network(keys_4_1, seed=16)
        session = mvba_session("nopred")
        _spawn(rts, session, {p: ("anything", p) for p in rts})
        outputs = run_until_outputs(net, rts, session)
        assert len({d.value for d in outputs.values()}) == 1
