"""Protocol runtime: session routing, buffering, factories, outputs."""

import pytest

from repro.core.protocol import Context, Protocol
from repro.core.runtime import ProtocolRuntime
from repro.net.scheduler import FifoScheduler
from repro.net.simulator import Network

import random


class Echo(Protocol):
    """Outputs the first message it receives; records everything."""

    def __init__(self):
        self.log = []
        self.started = False

    def on_start(self, ctx):
        self.started = True

    def on_message(self, ctx, sender, message):
        self.log.append((sender, message))
        ctx.output(message)


@pytest.fixture()
def rig(keys_4_1):
    net = Network(FifoScheduler(), random.Random(0))
    runtimes = {}
    for i in range(4):
        rt = ProtocolRuntime(i, net, keys_4_1.public, keys_4_1.private[i], seed=1)
        net.attach(i, rt)
        runtimes[i] = rt
    return net, runtimes


def test_routing_by_session(rig):
    net, rts = rig
    a = rts[1].spawn(("s", "a"), Echo())
    b = rts[1].spawn(("s", "b"), Echo())
    net.send(0, 1, (("s", "a"), "for-a"))
    net.send(0, 1, (("s", "b"), "for-b"))
    net.run()
    assert a.log == [(0, "for-a")]
    assert b.log == [(0, "for-b")]


def test_spawn_is_idempotent(rig):
    _, rts = rig
    first = rts[0].spawn(("s",), Echo())
    second = rts[0].spawn(("s",), Echo())
    assert first is second
    assert first.started


def test_buffering_before_spawn(rig):
    net, rts = rig
    net.send(0, 1, (("late",), "early-bird"))
    net.run()
    inst = rts[1].spawn(("late",), Echo())
    assert inst.log == [(0, "early-bird")]  # replayed on spawn


def test_factory_auto_creates(rig):
    net, rts = rig
    created = []

    def factory(session):
        created.append(session)
        return Echo()

    rts[2].register_factory("auto", factory)
    net.send(0, 2, (("auto", 7), "hi"))
    net.run()
    assert created == [("auto", 7)]
    assert rts[2].instances[("auto", 7)].log == [(0, "hi")]


def test_factory_may_reject(rig):
    net, rts = rig
    rts[2].register_factory("picky", lambda s: Echo() if s[1] == "ok" else None)
    net.send(0, 2, (("picky", "bad"), "x"))
    net.send(0, 2, (("picky", "ok"), "y"))
    net.run()
    assert ("picky", "bad") not in rts[2].instances
    assert rts[2].instances[("picky", "ok")].log == [(0, "y")]


def test_output_callbacks_and_results(rig):
    net, rts = rig
    seen = []
    rts[1].spawn(("s",), Echo(), on_output=seen.append)
    net.send(0, 1, (("s",), "value"))
    net.run()
    assert seen == ["value"]
    assert rts[1].result(("s",)) == "value"


def test_first_output_wins(rig):
    net, rts = rig
    inst = rts[1].spawn(("s",), Echo())
    net.send(0, 1, (("s",), "first"))
    net.send(2, 1, (("s",), "second"))
    net.run()
    assert rts[1].result(("s",)) == "first"
    assert len(inst.log) == 2  # messages still delivered


def test_late_subscriber_gets_existing_output(rig):
    net, rts = rig
    rts[1].spawn(("s",), Echo())
    net.send(0, 1, (("s",), "v"))
    net.run()
    seen = []
    rts[1].subscribe(("s",), seen.append)
    assert seen == ["v"]


def test_junk_payloads_ignored(rig):
    net, rts = rig
    inst = rts[1].spawn(("s",), Echo())
    net.send(0, 1, "not-a-tuple")
    net.send(0, 1, (1, 2, 3))
    net.send(0, 1, ((), "empty-session"))
    net.send(0, 1, ("nontuple-session", "x"))
    net.run()
    assert inst.log == []


def test_buffer_limit_bounds_memory(rig):
    net, rts = rig
    from repro.core import runtime as rt_mod

    for k in range(rt_mod._BUFFER_LIMIT + 50):
        rts[1].on_message(0, (("flood",), k))
    assert len(rts[1]._buffered[("flood",)]) == rt_mod._BUFFER_LIMIT


def test_context_exposes_identity_and_keys(rig):
    _, rts = rig
    ctx = Context(rts[3], ("s",))
    assert ctx.party == 3
    assert ctx.n == 4
    assert ctx.keys.party == 3
    assert ctx.quorum.is_quorum({0, 1, 2})
