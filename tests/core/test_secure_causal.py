"""Secure causal atomic broadcast: order, confidentiality, causality."""

import random

import pytest

from helpers import ctx_for, make_network

from repro.core.secure_causal import (
    ScDecryptionShare,
    SecureCausalBroadcast,
    sc_abc_session,
)
from repro.net.adversary import SilentNode
from repro.net.scheduler import RandomScheduler, ReorderScheduler


def _spawn(runtimes, session):
    logs = {}
    for party, runtime in runtimes.items():
        logs[party] = []
        runtime.spawn(
            session,
            SecureCausalBroadcast(
                on_deliver=lambda m, r, p=party: logs[p].append(m)
            ),
        )
    return logs


def _encrypt(public, message, label, seed):
    return public.encryption.encrypt(message, label, random.Random(seed))


def _submit(runtimes, session, party, ciphertext):
    inst = runtimes[party].instances[session]
    inst.submit(ctx_for(runtimes[party], session), ciphertext)


@pytest.mark.parametrize("scheduler", [RandomScheduler, ReorderScheduler])
def test_same_plaintext_order_everywhere(keys_4_1, scheduler):
    net, rts = make_network(keys_4_1, scheduler(), seed=1)
    session = sc_abc_session(("order", scheduler.__name__))
    logs = _spawn(rts, session)
    net.start()
    for k in range(3):
        ct = _encrypt(keys_4_1.public, f"request-{k}".encode(), b"c", seed=k)
        for p in rts:
            _submit(rts, session, p, ct)
    net.run(until=lambda: all(len(logs[p]) >= 3 for p in rts), max_steps=600_000)
    assert all(logs[p] == logs[0] for p in rts)
    assert sorted(logs[0]) == [b"request-0", b"request-1", b"request-2"]


def test_invalid_ciphertext_refused_at_submission(keys_4_1):
    from dataclasses import replace

    net, rts = make_network(keys_4_1, seed=2)
    session = sc_abc_session("invalid")
    logs = _spawn(rts, session)
    net.start()
    ct = _encrypt(keys_4_1.public, b"m", b"L", seed=3)
    broken = replace(ct, payload=bytes(len(ct.payload)))
    for p in rts:
        _submit(rts, session, p, broken)
    net.run(max_steps=200_000)
    assert all(logs[p] == [] for p in rts)


def test_plaintext_hidden_until_delivery(keys_4_1):
    """Before a-delivery completes, no subset of fewer-than-qualified
    decryption shares exists anywhere: we check that no honest server
    broadcast a share before the ciphertext was a-delivered locally."""
    net, rts = make_network(keys_4_1, seed=4)
    session = sc_abc_session("conf")
    logs = _spawn(rts, session)
    net.start()
    ct = _encrypt(keys_4_1.public, b"secret-bid: 900", b"auction", seed=5)
    for p in rts:
        _submit(rts, session, p, ct)

    violations = []

    original_step = net.step

    def spying_step():
        # Inspect in-flight decryption shares: by protocol design they
        # are only ever sent by a party that already a-delivered, so
        # observing one before ANY delivery would violate causality.
        for env in net.pending:
            payload = env.payload
            if isinstance(payload, tuple) and len(payload) == 2:
                if isinstance(payload[1], ScDecryptionShare):
                    sender_inst = rts[env.sender].instances.get(session)
                    if sender_inst is not None and not sender_inst.abc.delivered:
                        violations.append(env)
        return original_step()

    net.step = spying_step
    net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=400_000)
    assert not violations
    assert all(logs[p] == [b"secret-bid: 900"] for p in rts)


def test_delivery_order_respects_abc_order(keys_4_1):
    """Even when decryption of the first ciphertext lags, the second
    plaintext must not be s-delivered before the first."""
    net, rts = make_network(keys_4_1, seed=6)
    session = sc_abc_session("strict-order")
    logs = _spawn(rts, session)
    net.start()
    ct1 = _encrypt(keys_4_1.public, b"first", b"L", seed=7)
    ct2 = _encrypt(keys_4_1.public, b"second", b"L", seed=8)
    for p in rts:
        _submit(rts, session, p, ct1)
        _submit(rts, session, p, ct2)
    net.run(until=lambda: all(len(logs[p]) >= 2 for p in rts), max_steps=600_000)
    for p in rts:
        first_idx = logs[p].index(b"first")
        second_idx = logs[p].index(b"second")
        # Whatever the agreed order is, it is the same everywhere...
        assert logs[p] == logs[0]
        assert {first_idx, second_idx} == {0, 1}


def test_tolerates_silent_server(keys_4_1):
    net, rts = make_network(keys_4_1, seed=9, parties=[0, 1, 2])
    net.attach(3, SilentNode())
    session = sc_abc_session("silent")
    logs = _spawn(rts, session)
    net.start()
    ct = _encrypt(keys_4_1.public, b"still works", b"L", seed=10)
    for p in rts:
        _submit(rts, session, p, ct)
    net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=400_000)
    assert all(logs[p] == [b"still works"] for p in rts)


def test_junk_decryption_shares_ignored(keys_4_1):
    net, rts = make_network(keys_4_1, seed=11)
    session = sc_abc_session("junk")
    logs = _spawn(rts, session)
    net.start()
    net.send(2, 0, (session, ScDecryptionShare(b"nonsense-digest", "not-a-share")))
    ct = _encrypt(keys_4_1.public, b"payload", b"L", seed=12)
    for p in rts:
        _submit(rts, session, p, ct)
    net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=400_000)
    assert all(logs[p] == [b"payload"] for p in rts)
