"""Property-based protocol invariants: the paper's guarantees hold for
*every* schedule, so we sample many seeds/schedulers with hypothesis.

Runs are bounded (n=4, short workloads) to keep the suite fast while
still exploring genuinely different adversarial delivery orders.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import ctx_for, make_network

from repro.core.atomic_broadcast import AtomicBroadcast, abc_session
from repro.core.binary_agreement import BinaryAgreement, aba_session
from repro.core.cks_agreement import CksBinaryAgreement, cks_session
from repro.core.reliable_broadcast import ReliableBroadcast, rbc_session
from repro.net.scheduler import FifoScheduler, RandomScheduler, ReorderScheduler

SCHEDULERS = [FifoScheduler, RandomScheduler, ReorderScheduler]

_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


@given(
    seed=st.integers(0, 10_000),
    scheduler_index=st.integers(0, len(SCHEDULERS) - 1),
)
@_settings
def test_rbc_totality_and_agreement_property(keys_4_1, seed, scheduler_index):
    """Honest sender => all honest parties deliver the sender's value."""
    net, rts = make_network(keys_4_1, SCHEDULERS[scheduler_index](), seed=seed)
    session = rbc_session(0, ("prop", seed, scheduler_index))
    for p, rt in rts.items():
        rt.spawn(session, ReliableBroadcast(0, value=("v", seed) if p == 0 else None))
    net.run(
        until=lambda: all(rt.result(session) is not None for rt in rts.values()),
        max_steps=400_000,
    )
    assert {rt.result(session) for rt in rts.values()} == {("v", seed)}


@given(
    seed=st.integers(0, 10_000),
    proposals=st.tuples(*[st.integers(0, 1)] * 4),
    scheduler_index=st.integers(0, len(SCHEDULERS) - 1),
)
@_settings
def test_aba_agreement_and_validity_property(keys_4_1, seed, proposals, scheduler_index):
    """For every input vector and schedule: one decision, and if the
    inputs were unanimous it equals them."""
    net, rts = make_network(keys_4_1, SCHEDULERS[scheduler_index](), seed=seed)
    session = aba_session(("prop", seed, proposals, scheduler_index))
    for p, rt in rts.items():
        rt.spawn(session, BinaryAgreement(proposals[p]))
    net.run(
        until=lambda: all(rt.result(session) is not None for rt in rts.values()),
        max_steps=900_000,
    )
    decisions = {rt.result(session) for rt in rts.values()}
    assert len(decisions) == 1
    decision = decisions.pop()
    if len(set(proposals)) == 1:
        assert decision == proposals[0]
    else:
        assert decision in set(proposals)


@given(seed=st.integers(0, 10_000), proposals=st.tuples(*[st.integers(0, 1)] * 4))
@_settings
def test_cks_agreement_property(keys_4_1, seed, proposals):
    net, rts = make_network(keys_4_1, RandomScheduler(), seed=seed)
    session = cks_session(("prop", seed, proposals))
    for p, rt in rts.items():
        rt.spawn(session, CksBinaryAgreement(proposals[p]))
    net.run(
        until=lambda: all(rt.result(session) is not None for rt in rts.values()),
        max_steps=900_000,
    )
    decisions = {rt.result(session) for rt in rts.values()}
    assert len(decisions) == 1
    if len(set(proposals)) == 1:
        assert decisions == {proposals[0]}


@given(seed=st.integers(0, 10_000), payload_count=st.integers(1, 4))
@_settings
def test_abc_total_order_property(keys_4_1, seed, payload_count):
    """Identical delivery sequences at all honest parties, for any
    schedule and any number of concurrent submissions."""
    net, rts = make_network(keys_4_1, RandomScheduler(), seed=seed)
    session = abc_session(("prop", seed, payload_count))
    logs = {p: [] for p in rts}
    for p, rt in rts.items():
        rt.spawn(session, AtomicBroadcast(
            on_deliver=lambda m, r, pp=p: logs[pp].append(m)))
    net.start()
    for k in range(payload_count):
        submitter = (seed + k) % 4
        rts[submitter].instances[session].submit(
            ctx_for(rts[submitter], session), ("req", seed, k)
        )
    net.run(
        until=lambda: all(len(logs[p]) >= payload_count for p in rts),
        max_steps=900_000,
    )
    assert all(logs[p] == logs[0] for p in rts)
    assert len(set(logs[0])) == len(logs[0])
