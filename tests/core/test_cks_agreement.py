"""CKS-style binary agreement with explicit certificate justifications."""

import pytest

from helpers import make_network, run_until_outputs

from repro.core.cks_agreement import (
    ABSTAIN,
    CksBinaryAgreement,
    CksMainVote,
    CksPreVote,
    cks_session,
)
from repro.crypto.schnorr import Signature
from repro.net.adversary import SilentNode
from repro.net.scheduler import DelayScheduler, RandomScheduler, ReorderScheduler


def _spawn(rts, session, proposals):
    for p, rt in rts.items():
        rt.spawn(session, CksBinaryAgreement(proposals[p]))


class TestValidityAndAgreement:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_decides_that_value(self, keys_4_1, value):
        net, rts = make_network(keys_4_1, seed=value)
        session = cks_session(("u", value))
        _spawn(rts, session, {p: value for p in rts})
        outputs = run_until_outputs(net, rts, session)
        assert set(outputs.values()) == {value}

    def test_unanimous_with_silent_corruption(self, keys_4_1):
        net, rts = make_network(keys_4_1, seed=2, parties=[0, 1, 2])
        net.attach(3, SilentNode())
        session = cks_session("silent")
        _spawn(rts, session, {p: 1 for p in rts})
        outputs = run_until_outputs(net, rts, session)
        assert set(outputs.values()) == {1}

    @pytest.mark.parametrize(
        "scheduler", [RandomScheduler, ReorderScheduler]
    )
    def test_split_inputs_agree(self, keys_4_1, scheduler):
        net, rts = make_network(keys_4_1, scheduler(), seed=3)
        session = cks_session(("split", scheduler.__name__))
        _spawn(rts, session, {p: p % 2 for p in rts})
        outputs = run_until_outputs(net, rts, session)
        assert len(set(outputs.values())) == 1
        assert outputs[0] in (0, 1)

    def test_agreement_under_targeted_delay(self, keys_4_1):
        net, rts = make_network(keys_4_1, DelayScheduler({1}), seed=4)
        session = cks_session("delay")
        _spawn(rts, session, {0: 1, 1: 0, 2: 1, 3: 0})
        outputs = run_until_outputs(net, rts, session)
        assert len(set(outputs.values())) == 1

    def test_seven_parties_two_silent(self, keys_7_2):
        net, rts = make_network(keys_7_2, seed=5, parties=[0, 1, 2, 3, 4])
        for bad in (5, 6):
            net.attach(bad, SilentNode())
        session = cks_session("seven")
        _spawn(rts, session, {p: p % 2 for p in rts})
        outputs = run_until_outputs(net, rts, session)
        assert len(set(outputs.values())) == 1

    def test_repeated_runs_terminate_quickly(self, keys_4_1):
        for seed in range(6):
            net, rts = make_network(keys_4_1, ReorderScheduler(), seed=10 + seed)
            session = cks_session(("rounds", seed))
            _spawn(rts, session, {p: p % 2 for p in rts})
            run_until_outputs(net, rts, session)
            max_round = max(rt.instances[session].round for rt in rts.values())
            assert max_round <= 10


class TestJustifications:
    def test_unjustified_later_round_prevote_rejected(self, keys_4_1):
        net, rts = make_network(keys_4_1, seed=20, parties=[1])
        session = cks_session("unjust")
        inst = rts[1].spawn(session, CksBinaryAgreement(1))
        bogus = CksPreVote(2, 0, None, Signature(commit=1, response=1))
        net.send(0, 1, (session, bogus))
        net.run(max_steps=100)
        assert 0 not in inst._state(2).prevotes

    def test_prevote_with_forged_share_rejected(self, keys_4_1):
        net, rts = make_network(keys_4_1, seed=21, parties=[1])
        session = cks_session("forged")
        inst = rts[1].spawn(session, CksBinaryAgreement(1))
        bogus = CksPreVote(1, 0, None, Signature(commit=1, response=1))
        net.send(0, 1, (session, bogus))
        net.run(max_steps=100)
        assert 0 not in inst._state(1).prevotes

    def test_mainvote_without_certificate_rejected(self, keys_4_1):
        net, rts = make_network(keys_4_1, seed=22, parties=[1])
        session = cks_session("nocert")
        inst = rts[1].spawn(session, CksBinaryAgreement(1))
        bogus = CksMainVote(1, 0, ("cert", "not-a-cert"),
                            Signature(commit=1, response=1))
        net.send(2, 1, (session, bogus))
        bogus2 = CksMainVote(1, ABSTAIN, ("conflict", "x", "y"),
                             Signature(commit=1, response=1))
        net.send(3, 1, (session, bogus2))
        net.run(max_steps=100)
        assert inst._state(1).mainvotes == {}

    def test_abstain_requires_genuinely_conflicting_prevotes(self, keys_4_1):
        """An abstain justified by two pre-votes for the same value (or
        wrong rounds) is rejected."""
        net, rts = make_network(keys_4_1, seed=23)
        session = cks_session("conflict")
        _spawn(rts, session, {p: 1 for p in rts})
        net.run(
            until=lambda: all(rt.result(session) is not None for rt in rts.values()),
            max_steps=400_000,
        )
        # Grab two real (justified) prevotes for 1 from the transcript.
        inst = rts[0].instances[session]
        prevotes = list(inst._state(1).prevotes.values())
        same = CksMainVote(
            1, ABSTAIN, ("conflict", prevotes[0], prevotes[1]),
            Signature(commit=1, response=1),
        )
        fresh_net, fresh_rts = make_network(keys_4_1, seed=24, parties=[2])
        fresh = fresh_rts[2].spawn(session, CksBinaryAgreement(1))
        fresh_net.send(0, 2, (session, same))
        fresh_net.run(max_steps=100)
        assert fresh._state(1).mainvotes == {}


class TestHalting:
    def test_instances_halt_and_network_drains(self, keys_4_1):
        net, rts = make_network(keys_4_1, seed=30)
        session = cks_session("halt")
        _spawn(rts, session, {p: 1 for p in rts})
        run_until_outputs(net, rts, session)
        net.run(max_steps=200_000)
        assert all(rts[p].instances[session].halted for p in rts)
