"""Optimistic atomic broadcast (Section 6): fast path, safe fallback."""

from helpers import ctx_for, make_network

from repro.core.optimistic import (
    OptAck,
    OptimisticAtomicBroadcast,
    OptOrder,
    opt_abc_session,
)
from repro.net.adversary import SilentNode
from repro.net.scheduler import FifoScheduler, RandomScheduler, StarvingScheduler

from repro.crypto.schnorr import Signature


def _spawn(rts, session, watchdog_limit=200):
    logs, insts = {}, {}
    for p, rt in rts.items():
        logs[p] = []
        insts[p] = rt.spawn(
            session,
            OptimisticAtomicBroadcast(
                on_deliver=lambda m, o, pp=p: logs[pp].append((m, o)),
                watchdog_limit=watchdog_limit,
            ),
        )
    return logs, insts


def _drive(net, rts, insts, session, done, budget=400_000, tickers=None):
    steps = 0
    while steps < budget and not done():
        progressed = net.step()
        if not progressed:
            for p in tickers if tickers is not None else rts:
                insts[p].tick(ctx_for(rts[p], session))
            if not net.pending and done():
                break
        steps += 1
    return steps


class TestFastPath:
    def test_total_order_and_fast_delivery(self, keys_4_1):
        net, rts = make_network(keys_4_1, RandomScheduler(), seed=1)
        session = opt_abc_session("fp")
        logs, insts = _spawn(rts, session)
        net.start()
        for k in range(4):
            insts[k].submit(ctx_for(rts[k], session), ("req", k))
        net.run(until=lambda: all(len(logs[p]) >= 4 for p in rts), max_steps=400_000)
        assert all(logs[p] == logs[0] for p in rts)
        assert all(origin.startswith("fast") for _, origin in logs[0])

    def test_fast_path_much_cheaper_than_randomized(self, keys_4_1):
        from repro.core.atomic_broadcast import AtomicBroadcast, abc_session

        # Optimistic.
        net, rts = make_network(keys_4_1, FifoScheduler(), seed=2)
        session = opt_abc_session("cost")
        logs, insts = _spawn(rts, session)
        net.start()
        insts[0].submit(ctx_for(rts[0], session), ("req", "x"))
        net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=200_000)
        optimistic_msgs = net.trace.sent

        # Randomized.
        net2, rts2 = make_network(keys_4_1, FifoScheduler(), seed=2)
        session2 = abc_session("cost")
        logs2 = {p: [] for p in rts2}
        for p, rt in rts2.items():
            rt.spawn(session2, AtomicBroadcast(
                on_deliver=lambda m, r, pp=p: logs2[pp].append(m)))
        net2.start()
        rts2[0].instances[session2].submit(ctx_for(rts2[0], session2), ("req", "x"))
        net2.run(until=lambda: all(len(logs2[p]) >= 1 for p in rts2),
                 max_steps=400_000)
        randomized_msgs = net2.trace.sent

        assert optimistic_msgs * 2 < randomized_msgs

    def test_duplicate_submissions_ordered_once(self, keys_4_1):
        net, rts = make_network(keys_4_1, seed=3)
        session = opt_abc_session("dup")
        logs, insts = _spawn(rts, session)
        net.start()
        for p in rts:
            insts[p].submit(ctx_for(rts[p], session), ("req", "same"))
        net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=200_000)
        net.run(max_steps=200_000)
        assert all(len(logs[p]) == 1 for p in rts)

    def test_forged_order_rejected(self, keys_4_1):
        net, rts = make_network(keys_4_1, seed=4, parties=[1])
        session = opt_abc_session("forge")
        logs, insts = _spawn(rts, session)
        net.start()
        fake = OptOrder(1, ("evil",), Signature(commit=1, response=1))
        net.send(0, 1, (session, fake))
        net.run(max_steps=1000)
        assert insts[1].orders == {}

    def test_equivocating_leader_cannot_split_order(self, keys_4_1):
        """A Byzantine leader sending different payloads for seq 1 to
        different servers: at most one digest can gather a strong quorum
        of acks, so no two honest servers deliver differently."""
        net, rts = make_network(keys_4_1, seed=5, parties=[1, 2, 3])
        session = opt_abc_session("equiv")
        logs, insts = _spawn(rts, session)

        class EquivocatingLeader(SilentNode):
            def __init__(self, keys):
                self.keys = keys
                self.fired = False

            def on_message(self, sender, payload):
                if self.fired:
                    return
                self.fired = True
                import random as _r

                rng = _r.Random(9)
                for target, value in ((1, ("A",)), (2, ("A",)), (3, ("B",))):
                    from repro.core.optimistic import _order_statement

                    sig = self.keys.private[0].signing_key.sign(
                        _order_statement(session, 1, value), rng
                    )
                    net.send(0, target, (session, OptOrder(1, value, sig)))

        net.attach(0, EquivocatingLeader(keys_4_1))
        net.start()
        net.send(1, 0, (session, "poke"))
        net.run(max_steps=100_000)
        delivered = {m for p in rts for m, _ in logs[p]}
        assert len(delivered) <= 1


class TestFallback:
    def test_starved_leader_triggers_safe_fallback(self, keys_4_1):
        net, rts = make_network(
            keys_4_1, StarvingScheduler({0}, patience=10_000_000), seed=6,
        )
        session = opt_abc_session("fb")
        logs, insts = _spawn(rts, session, watchdog_limit=30)
        net.start()
        insts[1].submit(ctx_for(rts[1], session), ("req", "A"))
        insts[2].submit(ctx_for(rts[2], session), ("req", "B"))
        honest = [1, 2, 3]
        _drive(
            net, rts, insts, session,
            done=lambda: all(len(logs[p]) >= 2 for p in honest),
            tickers=honest,
        )
        assert all(logs[p] == logs[honest[0]] for p in honest)
        assert all(insts[p].mode == "pessimistic" for p in honest)

    def test_fast_deliveries_preserved_across_fallback(self, keys_4_1):
        """Payloads delivered on the fast path keep their positions: the
        fallback state exchange carries prepare certificates, so the
        decided prefix extends every honest delivery."""
        net, rts = make_network(keys_4_1, FifoScheduler(), seed=7)
        session = opt_abc_session("prefix")
        logs, insts = _spawn(rts, session, watchdog_limit=40)
        net.start()
        insts[0].submit(ctx_for(rts[0], session), ("req", "early"))
        net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=200_000)
        prefix = [m for m, _ in logs[0]]

        # Now starve the leader and push another payload through fallback.
        net.scheduler = StarvingScheduler({0}, patience=10_000_000)
        insts[1].submit(ctx_for(rts[1], session), ("req", "late"))
        honest = [1, 2, 3]
        _drive(
            net, rts, insts, session,
            done=lambda: all(len(logs[p]) >= 2 for p in honest),
            tickers=honest,
        )
        for p in honest:
            assert [m for m, _ in logs[p]][: len(prefix)] == prefix
            assert ("req", "late") in [m for m, _ in logs[p]]
        assert all(logs[p] == logs[1] for p in honest)

    def test_quiet_system_never_falls_back(self, keys_4_1):
        """No pending payloads -> the watchdog stays quiet even when
        ticked heavily (no spurious complaints)."""
        net, rts = make_network(keys_4_1, seed=8)
        session = opt_abc_session("quiet")
        logs, insts = _spawn(rts, session, watchdog_limit=5)
        net.start()
        for _ in range(100):
            for p in rts:
                insts[p].tick(ctx_for(rts[p], session))
        net.run(max_steps=10_000)
        assert all(insts[p].mode == "fast" for p in rts)

    def test_submissions_after_fallback_are_delivered(self, keys_4_1):
        net, rts = make_network(
            keys_4_1, StarvingScheduler({0}, patience=10_000_000), seed=9
        )
        session = opt_abc_session("after")
        logs, insts = _spawn(rts, session, watchdog_limit=30)
        net.start()
        insts[1].submit(ctx_for(rts[1], session), ("req", "first"))
        honest = [1, 2, 3]
        _drive(
            net, rts, insts, session,
            done=lambda: all(len(logs[p]) >= 1 for p in honest),
            tickers=honest,
        )
        assert all(insts[p].mode == "pessimistic" for p in honest)
        insts[2].submit(ctx_for(rts[2], session), ("req", "second"))
        _drive(
            net, rts, insts, session,
            done=lambda: all(len(logs[p]) >= 2 for p in honest),
            tickers=honest,
        )
        assert all(logs[p] == logs[1] for p in honest)
