"""Adversarial inputs to multi-valued agreement: forged values, bogus
coin shares, junk — none may break agreement or external validity."""

from helpers import make_network, run_until_outputs

from repro.core.consistent_broadcast import CbcDelivery
from repro.core.multivalued_agreement import (
    MultiValuedAgreement,
    MvbaPermShare,
    MvbaValue,
    mvba_session,
)
from repro.crypto.coin import CoinShare
from repro.crypto.threshold_sig import QuorumCertificate
from repro.net.adversary import SilentNode


def _valid(v):
    return isinstance(v, tuple) and len(v) == 2 and v[0] == "proposal"


def _spawn(rts, session):
    for p, rt in rts.items():
        rt.spawn(session, MultiValuedAgreement(("proposal", p), predicate=_valid))


def test_forged_mvba_value_rejected(keys_4_1):
    """An MvbaValue with an empty/foreign certificate never becomes the
    decision."""
    net, rts = make_network(keys_4_1, seed=1, parties=[0, 1, 2])

    class Forger(SilentNode):
        def __init__(self):
            self.fired = False

        def on_message(self, sender, payload):
            if self.fired:
                return
            self.fired = True
            fake = MvbaValue(
                3,
                CbcDelivery(
                    sender=3,
                    value=("proposal", "FORGED"),
                    certificate=QuorumCertificate(signatures={}),
                ),
            )
            net.broadcast(3, (session, fake))

    session = mvba_session("forge")
    net.attach(3, Forger())
    _spawn(rts, session)
    outputs = run_until_outputs(net, rts, session)
    for d in outputs.values():
        assert d.value != ("proposal", "FORGED")


def test_bogus_perm_coin_shares_ignored(keys_4_1):
    """Coin shares replayed under the wrong name or wrong claimed party
    cannot poison the candidate permutation."""
    net, rts = make_network(keys_4_1, seed=2, parties=[0, 1, 2])

    class CoinMixer(SilentNode):
        def __init__(self):
            self.count = 0

        def on_message(self, sender, payload):
            if not isinstance(payload, tuple) or len(payload) != 2:
                return
            _sess, msg = payload
            if isinstance(msg, MvbaPermShare) and self.count < 3:
                self.count += 1
                # Replay someone else's share as our own (party mismatch)
                net.broadcast(3, (session, msg))
                # ...and a share for a different coin name.
                wrong = CoinShare(
                    party=3, name=("wrong", "name"),
                    values=msg.share.values, proofs=msg.share.proofs,
                )
                net.broadcast(3, (session, MvbaPermShare(wrong)))

    session = mvba_session("coin-mix")
    net.attach(3, CoinMixer())
    _spawn(rts, session)
    outputs = run_until_outputs(net, rts, session)
    assert len({(d.proposer, d.value) for d in outputs.values()}) == 1


def test_junk_messages_do_not_stall(keys_4_1):
    net, rts = make_network(keys_4_1, seed=3, parties=[0, 1, 2])

    class JunkSprayer(SilentNode):
        def __init__(self):
            self.count = 0

        def on_message(self, sender, payload):
            if self.count > 20:
                return
            self.count += 1
            net.broadcast(3, (session, ("garbage", self.count)))
            net.broadcast(3, (session, MvbaValue("x", "y")))

    session = mvba_session("junk")
    net.attach(3, JunkSprayer())
    _spawn(rts, session)
    outputs = run_until_outputs(net, rts, session)
    decisions = {(d.proposer, d.value) for d in outputs.values()}
    assert len(decisions) == 1
    proposer, value = decisions.pop()
    assert _valid(value) and proposer in (0, 1, 2)
