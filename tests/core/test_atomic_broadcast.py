"""Atomic broadcast: total order, dedup, liveness, fairness."""

import pytest

from helpers import ctx_for, make_network

from repro.core.atomic_broadcast import AbcProposal, AtomicBroadcast, abc_session
from repro.net.adversary import SilentNode
from repro.net.scheduler import DelayScheduler, RandomScheduler, ReorderScheduler


def _spawn(runtimes, session):
    logs = {}
    for party, runtime in runtimes.items():
        logs[party] = []
        runtime.spawn(
            session, AtomicBroadcast(on_deliver=lambda m, r, p=party: logs[p].append(m))
        )
    return logs


def _submit(runtimes, session, party, payload):
    inst = runtimes[party].instances[session]
    inst.submit(ctx_for(runtimes[party], session), payload)


@pytest.mark.parametrize("scheduler", [RandomScheduler, ReorderScheduler])
def test_total_order_identical_at_all_parties(keys_4_1, scheduler):
    net, rts = make_network(keys_4_1, scheduler(), seed=1)
    session = abc_session(("order", scheduler.__name__))
    logs = _spawn(rts, session)
    net.start()
    for p in rts:
        _submit(rts, session, p, ("req", p))
    net.run(until=lambda: all(len(logs[p]) >= 4 for p in rts), max_steps=400_000)
    assert all(logs[p] == logs[0] for p in rts)
    assert set(logs[0]) == {("req", p) for p in rts}


def test_duplicate_submissions_delivered_once(keys_4_1):
    net, rts = make_network(keys_4_1, seed=2)
    session = abc_session("dedup")
    logs = _spawn(rts, session)
    net.start()
    # Same payload submitted at every server (a client broadcast).
    for p in rts:
        _submit(rts, session, p, ("req", "shared"))
    net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=400_000)
    net.run(max_steps=400_000)  # drain
    assert all(logs[p] == [("req", "shared")] for p in rts)


def test_idle_parties_join_rounds(keys_4_1):
    """Only one server has input; the rest must join with empty batches."""
    net, rts = make_network(keys_4_1, seed=3)
    session = abc_session("idle")
    logs = _spawn(rts, session)
    net.start()
    _submit(rts, session, 0, ("req", "solo"))
    net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=400_000)
    assert all(logs[p] == [("req", "solo")] for p in rts)


def test_multiple_rounds_sequential_payloads(keys_4_1):
    net, rts = make_network(keys_4_1, seed=4)
    session = abc_session("rounds")
    logs = _spawn(rts, session)
    net.start()
    _submit(rts, session, 0, ("req", 1))
    net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=400_000)
    _submit(rts, session, 1, ("req", 2))
    net.run(until=lambda: all(len(logs[p]) >= 2 for p in rts), max_steps=400_000)
    assert all(logs[p] == [("req", 1), ("req", 2)] for p in rts)
    assert rts[0].instances[session].round >= 2


def test_liveness_with_silent_party(keys_4_1):
    net, rts = make_network(keys_4_1, seed=5, parties=[0, 1, 2])
    net.attach(3, SilentNode())
    session = abc_session("silent")
    logs = _spawn(rts, session)
    net.start()
    for p in rts:
        _submit(rts, session, p, ("req", p))
    net.run(until=lambda: all(len(logs[p]) >= 3 for p in rts), max_steps=400_000)
    assert all(logs[p] == logs[0] for p in rts)


def test_fairness_request_held_by_honest_quorum_is_delivered(keys_4_1):
    """The paper's fairness: once an honest-containing set holds m, any
    decided list's proposals intersect the holders, so m is delivered in
    the next round — even under targeted delays."""
    net, rts = make_network(keys_4_1, DelayScheduler({0}), seed=6)
    session = abc_session("fair")
    logs = _spawn(rts, session)
    net.start()
    # m is submitted at parties 0 and 1 (t+1 = 2 holders).
    for holder in (0, 1):
        _submit(rts, session, holder, ("req", "held"))
    # Other traffic floods from everyone.
    for p in rts:
        _submit(rts, session, p, ("noise", p))
    net.run(
        until=lambda: all(("req", "held") in logs[p] for p in rts),
        max_steps=400_000,
    )
    rounds = rts[2].instances[session].round
    assert rounds <= 3  # delivered promptly, not starved


def test_unsigned_proposals_rejected(keys_4_1):
    net, rts = make_network(keys_4_1, seed=7, parties=[1])
    session = abc_session("forge")
    _spawn(rts, session)
    net.start()
    from repro.crypto.schnorr import Signature

    fake = AbcProposal(1, (("req", "evil"),), Signature(commit=1, response=1))
    net.send(0, 1, (session, fake))
    net.run(max_steps=1000)
    inst = rts[1].instances[session]
    assert 1 not in inst.proposals or 0 not in inst.proposals.get(1, {})


def test_delivered_log_records_rounds(keys_4_1):
    net, rts = make_network(keys_4_1, seed=8)
    session = abc_session("log")
    logs = _spawn(rts, session)
    net.start()
    _submit(rts, session, 2, ("req", "x"))
    net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=400_000)
    entry = rts[0].instances[session].delivered_log[0]
    assert entry[0] == ("req", "x") and entry[1] >= 1


def test_seven_party_broadcast_with_mixed_inputs(keys_7_2):
    net, rts = make_network(keys_7_2, seed=9, parties=[0, 1, 2, 3, 4])
    for bad in (5, 6):
        net.attach(bad, SilentNode())
    session = abc_session("seven")
    logs = _spawn(rts, session)
    net.start()
    for p in rts:
        _submit(rts, session, p, ("req", p))
    net.run(until=lambda: all(len(logs[p]) >= 5 for p in rts), max_steps=600_000)
    assert all(logs[p] == logs[0] for p in rts)
