"""Atomic broadcast: total order, dedup, batching, pipelining, liveness."""

import random

import pytest

from helpers import ctx_for, make_network

from repro.core.atomic_broadcast import (
    AbcBatch,
    AbcConfig,
    AbcProposal,
    AtomicBroadcast,
    abc_session,
    batch_digest,
    proposal_statement,
)
from repro.core.multivalued_agreement import MvbaDecision
from repro.net.adversary import SilentNode
from repro.net.scheduler import DelayScheduler, RandomScheduler, ReorderScheduler


def _spawn(runtimes, session, config=None):
    logs = {}
    for party, runtime in runtimes.items():
        logs[party] = []
        runtime.spawn(
            session,
            AtomicBroadcast(
                on_deliver=lambda m, r, p=party: logs[p].append(m),
                config=config,
            ),
        )
    return logs


def _submit(runtimes, session, party, payload):
    inst = runtimes[party].instances[session]
    inst.submit(ctx_for(runtimes[party], session), payload)


@pytest.mark.parametrize("scheduler", [RandomScheduler, ReorderScheduler])
def test_total_order_identical_at_all_parties(keys_4_1, scheduler):
    net, rts = make_network(keys_4_1, scheduler(), seed=1)
    session = abc_session(("order", scheduler.__name__))
    logs = _spawn(rts, session)
    net.start()
    for p in rts:
        _submit(rts, session, p, ("req", p))
    net.run(until=lambda: all(len(logs[p]) >= 4 for p in rts), max_steps=400_000)
    assert all(logs[p] == logs[0] for p in rts)
    assert set(logs[0]) == {("req", p) for p in rts}


def test_duplicate_submissions_delivered_once(keys_4_1):
    net, rts = make_network(keys_4_1, seed=2)
    session = abc_session("dedup")
    logs = _spawn(rts, session)
    net.start()
    # Same payload submitted at every server (a client broadcast).
    for p in rts:
        _submit(rts, session, p, ("req", "shared"))
    net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=400_000)
    net.run(max_steps=400_000)  # drain
    assert all(logs[p] == [("req", "shared")] for p in rts)


def test_idle_parties_join_rounds(keys_4_1):
    """Only one server has input; the rest must join with empty batches."""
    net, rts = make_network(keys_4_1, seed=3)
    session = abc_session("idle")
    logs = _spawn(rts, session)
    net.start()
    _submit(rts, session, 0, ("req", "solo"))
    net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=400_000)
    assert all(logs[p] == [("req", "solo")] for p in rts)


def test_multiple_rounds_sequential_payloads(keys_4_1):
    net, rts = make_network(keys_4_1, seed=4)
    session = abc_session("rounds")
    logs = _spawn(rts, session)
    net.start()
    _submit(rts, session, 0, ("req", 1))
    net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=400_000)
    _submit(rts, session, 1, ("req", 2))
    net.run(until=lambda: all(len(logs[p]) >= 2 for p in rts), max_steps=400_000)
    assert all(logs[p] == [("req", 1), ("req", 2)] for p in rts)
    assert rts[0].instances[session].round >= 2


def test_liveness_with_silent_party(keys_4_1):
    net, rts = make_network(keys_4_1, seed=5, parties=[0, 1, 2])
    net.attach(3, SilentNode())
    session = abc_session("silent")
    logs = _spawn(rts, session)
    net.start()
    for p in rts:
        _submit(rts, session, p, ("req", p))
    net.run(until=lambda: all(len(logs[p]) >= 3 for p in rts), max_steps=400_000)
    assert all(logs[p] == logs[0] for p in rts)


def test_fairness_request_held_by_honest_quorum_is_delivered(keys_4_1):
    """The paper's fairness: once an honest-containing set holds m, any
    decided list's proposals intersect the holders, so m is delivered in
    the next round — even under targeted delays."""
    net, rts = make_network(keys_4_1, DelayScheduler({0}), seed=6)
    session = abc_session("fair")
    logs = _spawn(rts, session)
    net.start()
    # m is submitted at parties 0 and 1 (t+1 = 2 holders).
    for holder in (0, 1):
        _submit(rts, session, holder, ("req", "held"))
    # Other traffic floods from everyone.
    for p in rts:
        _submit(rts, session, p, ("noise", p))
    net.run(
        until=lambda: all(("req", "held") in logs[p] for p in rts),
        max_steps=400_000,
    )
    rounds = rts[2].instances[session].round
    assert rounds <= 3  # delivered promptly, not starved


def test_unsigned_proposals_rejected(keys_4_1):
    net, rts = make_network(keys_4_1, seed=7, parties=[1])
    session = abc_session("forge")
    _spawn(rts, session)
    net.start()
    from repro.crypto.schnorr import Signature

    fake = AbcProposal(1, (("req", "evil"),), Signature(commit=1, response=1))
    net.send(0, 1, (session, fake))
    net.run(max_steps=1000)
    inst = rts[1].instances[session]
    assert 1 not in inst.proposals or 0 not in inst.proposals.get(1, {})


def test_delivered_log_records_rounds(keys_4_1):
    net, rts = make_network(keys_4_1, seed=8)
    session = abc_session("log")
    logs = _spawn(rts, session)
    net.start()
    _submit(rts, session, 2, ("req", "x"))
    net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=400_000)
    entry = rts[0].instances[session].delivered_log[0]
    assert entry[0] == ("req", "x") and entry[1] >= 1


def test_batching_delivers_many_payloads_in_few_rounds(keys_4_1):
    net, rts = make_network(keys_4_1, seed=20)
    session = abc_session("batch")
    logs = _spawn(rts, session)
    net.start()
    for i in range(10):
        _submit(rts, session, 0, ("req", i))
    net.run(until=lambda: all(len(logs[p]) >= 10 for p in rts), max_steps=600_000)
    inst = rts[0].instances[session]
    # Round 1 starts on the first submit; everything else rides one
    # follow-up batch — nowhere near ten rounds.
    assert inst.round <= 3
    assert inst.stats()["mean_batch"] >= 2.0
    assert all(logs[p] == logs[0] for p in rts)


def test_byte_budget_caps_batches(keys_4_1):
    config = AbcConfig(max_batch=64, max_batch_bytes=1)
    net, rts = make_network(keys_4_1, seed=21)
    session = abc_session("budget")
    logs = _spawn(rts, session, config=config)
    net.start()
    for i in range(3):
        _submit(rts, session, 0, ("req", i))
    net.run(until=lambda: all(len(logs[p]) >= 3 for p in rts), max_steps=600_000)
    inst = rts[0].instances[session]
    # Every payload overflows a 1-byte budget, so each ships alone
    # (the first payload always fits) — one payload per round.
    rounds = [r for _payload, r in inst.delivered_log]
    assert len(set(rounds)) == 3
    assert inst.stats()["mean_batch"] == 1.0


def test_submit_dedups_against_in_flight_rounds(keys_4_1):
    net, rts = make_network(keys_4_1, seed=22, parties=[0])
    session = abc_session("inflight")
    _spawn(rts, session)
    net.start()
    inst = rts[0].instances[session]
    ctx = ctx_for(rts[0], session)
    inst.submit(ctx, ("req", "x"))
    assert ("req", "x") in inst.in_flight  # proposed in round 1 already
    inst.submit(ctx, ("req", "x"))
    assert inst.queue == [("req", "x")]  # queued once, not twice
    assert inst._select_batch() == ()  # and never re-proposed while in flight


def test_pipelined_rounds_deliver_in_order(keys_4_1):
    config = AbcConfig(max_batch=1, pipeline_depth=3)
    net, rts = make_network(keys_4_1, seed=23)
    session = abc_session("pipeline")
    logs = _spawn(rts, session, config=config)
    net.start()
    for i in range(6):
        _submit(rts, session, 0, ("req", i))
    net.run(until=lambda: all(len(logs[p]) >= 6 for p in rts), max_steps=900_000)
    assert all(logs[p] == logs[0] for p in rts)
    assert set(logs[0]) == {("req", i) for i in range(6)}
    inst = rts[0].instances[session]
    rounds = [r for _payload, r in inst.delivered_log]
    assert rounds == sorted(rounds)  # strictly in round order
    assert inst.stats()["pipeline_occupancy"] >= 1.0


def test_out_of_order_decisions_buffered_until_gap_closes(keys_4_1):
    net, rts = make_network(keys_4_1, seed=24, parties=[0])
    session = abc_session("buffered")
    logs = _spawn(rts, session, config=AbcConfig(pipeline_depth=2))
    net.start()
    inst = rts[0].instances[session]
    ctx = ctx_for(rts[0], session)
    batch2 = (("req", "second"),)
    digest2 = batch_digest(batch2)
    inst.batches[digest2] = batch2
    inst._on_decision(ctx, 2, MvbaDecision(proposer=0, value=((0, digest2, None),)))
    assert inst.round == 0 and logs[0] == []  # round 2 waits for round 1
    assert 2 in inst.decisions
    batch1 = (("req", "first"),)
    digest1 = batch_digest(batch1)
    inst.batches[digest1] = batch1
    inst._on_decision(ctx, 1, MvbaDecision(proposer=1, value=((1, digest1, None),)))
    assert logs[0] == [("req", "first"), ("req", "second")]
    assert inst.round == 2 and not inst.decisions


def test_missing_batch_fetched_before_delivery(keys_4_1):
    net, rts = make_network(keys_4_1, seed=25, parties=[0])
    session = abc_session("fetch")
    logs = _spawn(rts, session)
    net.start()
    inst = rts[0].instances[session]
    ctx = ctx_for(rts[0], session)
    batch = (("req", "remote"),)
    digest = batch_digest(batch)
    # A decision referencing bytes this party never saw: delivery must
    # stall on a fetch, not crash or skip.
    inst._on_decision(ctx, 1, MvbaDecision(proposer=2, value=((2, digest, None),)))
    assert inst.round == 0 and logs[0] == []
    assert digest in inst.requested  # AbcBatchRequest went out
    inst.on_message(ctx, 2, AbcBatch(digest, batch))
    assert logs[0] == [("req", "remote")] and inst.round == 1


def test_unsolicited_batches_ignored(keys_4_1):
    net, rts = make_network(keys_4_1, seed=26, parties=[0])
    session = abc_session("unsolicited")
    _spawn(rts, session)
    net.start()
    inst = rts[0].instances[session]
    ctx = ctx_for(rts[0], session)
    batch = (("req", "spam"),)
    inst.on_message(ctx, 3, AbcBatch(batch_digest(batch), batch))
    assert batch_digest(batch) not in inst.batches  # never asked for it


def test_far_future_proposals_dropped_as_lag_evidence(keys_4_1):
    net, rts = make_network(keys_4_1, seed=27, parties=[1])
    session = abc_session("lag")
    _spawn(rts, session)
    net.start()
    inst = rts[1].instances[session]
    fired = []
    inst.on_lag = lambda: fired.append(True)
    rng = random.Random(31)
    far = 500  # far beyond pipeline_depth + buffer_slack
    for signer in (0, 2):
        statement = proposal_statement(session, far, batch_digest(()))
        signature = keys_4_1.private[signer].signing_key.sign(statement, rng)
        net.send(signer, 1, (session, AbcProposal(far, (), signature)))
        net.run(max_steps=1000)
    # Bounded buffering: the proposals were NOT stored...
    assert far not in inst.proposals
    # ...but each counted as lag evidence, and once an honest-containing
    # set (t+1 = 2 distinct signers) vouched, the lag hook fired once.
    assert inst.lag_reports == {0: far, 2: far}
    assert fired == [True]


def test_proposal_with_mismatched_batch_rejected(keys_4_1):
    net, rts = make_network(keys_4_1, seed=28, parties=[1])
    session = abc_session("mismatch")
    _spawn(rts, session)
    net.start()
    rng = random.Random(32)
    # Signature covers the digest of one batch; the message carries
    # different bytes — the recomputed digest must not verify.
    statement = proposal_statement(session, 1, batch_digest((("req", "a"),)))
    signature = keys_4_1.private[0].signing_key.sign(statement, rng)
    net.send(0, 1, (session, AbcProposal(1, (("req", "b"),), signature)))
    net.run(max_steps=1000)
    inst = rts[1].instances[session]
    assert 0 not in inst.proposals.get(1, {})


def test_seven_party_broadcast_with_mixed_inputs(keys_7_2):
    net, rts = make_network(keys_7_2, seed=9, parties=[0, 1, 2, 3, 4])
    for bad in (5, 6):
        net.attach(bad, SilentNode())
    session = abc_session("seven")
    logs = _spawn(rts, session)
    net.start()
    for p in rts:
        _submit(rts, session, p, ("req", p))
    net.run(until=lambda: all(len(logs[p]) >= 5 for p in rts), max_steps=600_000)
    assert all(logs[p] == logs[0] for p in rts)


def test_rebase_carries_in_flight_payloads_to_new_session(keys_4_1):
    """Epoch switch: the hosting session closes while a round is in
    flight.  Without rebase the broadcast wedges — highest_started sits
    above the delivered round, so no new round ever starts and the
    abandoned payload is stuck in the queue forever."""
    net, rts = make_network(keys_4_1, seed=33)
    old = abc_session("rebase-old")
    logs = _spawn(rts, old)
    net.start()
    _submit(rts, old, 0, ("req", "before"))
    net.run(until=lambda: all(len(logs[p]) >= 1 for p in rts), max_steps=400_000)
    # A payload enters ordering, but the session closes before the
    # round decides: its proposals now land on a closed session.
    for p in rts:
        _submit(rts, old, p, ("req", "racing"))
    new = abc_session("rebase-new")
    for p in rts:
        inst = rts[p].instances.pop(old)
        rts[p].spawn(new, inst)
        inst.rebase(ctx_for(rts[p], new))
    net.run(until=lambda: all(len(logs[p]) >= 2 for p in rts), max_steps=400_000)
    assert all(logs[p] == [("req", "before"), ("req", "racing")] for p in rts)
    # Round numbering continued across the switch (journal monotone).
    inst = rts[0].instances[new]
    rounds = [r for _payload, r in inst.delivered_log]
    assert rounds == sorted(rounds)
    # And fresh traffic on the new session still orders.
    _submit(rts, new, 1, ("req", "after"))
    net.run(until=lambda: all(len(logs[p]) >= 3 for p in rts), max_steps=400_000)
    assert all(logs[p] == logs[0] for p in rts)


def test_rebase_discards_stale_generation_decision(keys_4_1):
    """A straggler agreement of the closed session that completes after
    the switch must not race the round restarted under the new one."""
    net, rts = make_network(keys_4_1, seed=34, parties=[0])
    session = abc_session("rebase-gen")
    logs = _spawn(rts, session)
    net.start()
    inst = rts[0].instances[session]
    ctx = ctx_for(rts[0], session)
    generation = inst.generation
    inst.rebase(ctx)
    assert inst.generation == generation + 1
    batch = (("req", "stale"),)
    digest = batch_digest(batch)
    inst.batches[digest] = batch
    decision = MvbaDecision(proposer=0, value=((0, digest, None),))
    inst._on_decision(ctx, 1, decision, generation)
    assert logs[0] == [] and not inst.decisions  # old generation: dropped
    inst._on_decision(ctx, 1, decision, inst.generation)
    assert logs[0] == [("req", "stale")]  # current generation: delivered
