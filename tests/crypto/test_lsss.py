"""Generalized linear secret sharing (Benaloh-Leichter)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.formulas import And, Leaf, Or, Threshold, majority
from repro.adversary.attributes import (
    example1_access_formula,
    example2_access_formula,
    example2_structure,
)
from repro.crypto.groups import small_group
from repro.crypto.lsss import LsssScheme, threshold_scheme
from repro.crypto.shamir import reconstruct, share_secret

Q = small_group().q


def test_threshold_scheme_matches_shamir_semantics():
    rng = random.Random(1)
    scheme = threshold_scheme(5, 2, Q)
    sharing = scheme.deal(4242, rng)
    assert scheme.reconstruct(sharing, {0, 2, 4}) == 4242
    assert scheme.recombination({0, 2}) is None


def test_and_gate_requires_everyone():
    rng = random.Random(2)
    scheme = LsssScheme(formula=And(Leaf(0), Leaf(1), Leaf(2)), modulus=Q)
    sharing = scheme.deal(7, rng)
    assert scheme.reconstruct(sharing, {0, 1, 2}) == 7
    assert scheme.recombination({0, 1}) is None
    assert scheme.recombination({1, 2}) is None


def test_or_gate_any_single_party():
    rng = random.Random(3)
    scheme = LsssScheme(formula=Or(Leaf(0), Leaf(1)), modulus=Q)
    sharing = scheme.deal(55, rng)
    assert scheme.reconstruct(sharing, {0}) == 55
    assert scheme.reconstruct(sharing, {1}) == 55


def test_nested_formula():
    # (P0 AND P1) OR (P2 AND P3)
    rng = random.Random(4)
    formula = Or(And(Leaf(0), Leaf(1)), And(Leaf(2), Leaf(3)))
    scheme = LsssScheme(formula=formula, modulus=Q)
    sharing = scheme.deal(31337, rng)
    assert scheme.reconstruct(sharing, {0, 1}) == 31337
    assert scheme.reconstruct(sharing, {2, 3}) == 31337
    assert scheme.recombination({0, 2}) is None
    assert scheme.recombination({1, 3}) is None


def test_party_appearing_in_multiple_leaves_gets_multiple_slots():
    formula = Or(And(Leaf(0), Leaf(1)), And(Leaf(0), Leaf(2)))
    scheme = LsssScheme(formula=formula, modulus=Q)
    assert len(scheme.slots_of_party(0)) == 2
    rng = random.Random(5)
    sharing = scheme.deal(9, rng)
    assert scheme.reconstruct(sharing, {0, 2}) == 9


def test_example1_access_structure_semantics():
    rng = random.Random(6)
    scheme = LsssScheme(formula=example1_access_formula(), modulus=Q)
    sharing = scheme.deal(777, rng)
    # Qualified: >= 3 servers covering >= 2 classes.
    assert scheme.reconstruct(sharing, {0, 1, 4}) == 777
    assert scheme.reconstruct(sharing, {4, 6, 8}) == 777
    # All of class a (4 servers, one class): not qualified.
    assert scheme.recombination({0, 1, 2, 3}) is None
    # Two servers of two classes: size too small.
    assert scheme.recombination({4, 6}) is None


def test_example2_access_structure_semantics():
    rng = random.Random(7)
    scheme = LsssScheme(formula=example2_access_formula(), modulus=Q)
    sharing = scheme.deal(2001, rng)
    structure = example2_structure()
    # The complement of any maximal corruptible set reconstructs.
    worst = max(structure.maximal_sets, key=len)
    rest = set(range(16)) - worst
    assert scheme.reconstruct(sharing, rest) == 2001
    # No corruptible coalition reconstructs.
    for bad in structure.maximal_sets[:4]:
        assert scheme.recombination(set(bad)) is None


def test_recombination_is_linear():
    """secret = Σ λ_slot · subshare_slot with public λ — the property
    the coin and the cryptosystem rely on to combine in the exponent."""
    rng = random.Random(8)
    scheme = LsssScheme(formula=example1_access_formula(), modulus=Q)
    s1 = scheme.deal(100, rng)
    s2 = scheme.deal(23, rng)
    lam = scheme.recombination({0, 4, 6})
    flat1, flat2 = s1.all_slots(), s2.all_slots()
    combined = sum(c * ((flat1[s] + flat2[s]) % Q) for s, c in lam.items()) % Q
    assert combined == (100 + 23) % Q


def test_unqualified_reconstruct_raises():
    rng = random.Random(9)
    scheme = threshold_scheme(4, 1, Q)
    sharing = scheme.deal(5, rng)
    with pytest.raises(ValueError):
        scheme.reconstruct(sharing, {2})


def test_slot_owner_lookup():
    scheme = threshold_scheme(3, 1, Q)
    for slot, party in scheme.slots():
        assert scheme.slot_owner(slot) == party
    with pytest.raises(KeyError):
        scheme.slot_owner((99, 99))


@given(st.integers(0, Q - 1), st.integers(1, 4), st.integers(0, 2))
@settings(max_examples=25, deadline=None)
def test_threshold_lsss_agrees_with_direct_shamir(secret, k, extra):
    """The single-gate LSSS is literally Shamir: same access semantics."""
    n = k + 1 + extra
    rng = random.Random(secret % 100000 + n * 131 + k)
    scheme = threshold_scheme(n, k, Q)
    sharing = scheme.deal(secret, rng)
    qualified = set(rng.sample(range(n), k + 1))
    assert scheme.reconstruct(sharing, qualified) == secret
    small = set(rng.sample(range(n), k))
    assert scheme.recombination(small) is None
    shares, _ = share_secret(secret, n, k, Q, random.Random(0))
    assert reconstruct(shares[: k + 1], Q) == secret


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_random_formula_access_semantics(data):
    """For random small formulas: a set reconstructs iff it satisfies
    the formula — dealing and recombination agree with evaluation."""
    n = data.draw(st.integers(2, 5))
    leaf = st.integers(0, n - 1).map(Leaf)
    formula_strategy = st.recursive(
        leaf,
        lambda children: st.lists(children, min_size=2, max_size=3).flatmap(
            lambda cs: st.integers(1, len(cs)).map(
                lambda k: Threshold(k=k, children=tuple(cs))
            )
        ),
        max_leaves=6,
    )
    formula = data.draw(formula_strategy)
    secret = data.draw(st.integers(0, Q - 1))
    scheme = LsssScheme(formula=formula, modulus=Q)
    rng = random.Random(42)
    sharing = scheme.deal(secret, rng)
    present = frozenset(data.draw(st.sets(st.integers(0, n - 1), max_size=n)))
    if formula.evaluate(present):
        assert scheme.reconstruct(sharing, present) == secret
    else:
        assert scheme.recombination(present) is None
