"""Schnorr group laws and membership."""

import random

import pytest

from repro.crypto.groups import (
    SchnorrGroup,
    default_group,
    generate_group,
    small_group,
)
from repro.crypto.numtheory import is_probable_prime


@pytest.fixture(scope="module", params=["small", "default"])
def group(request):
    return small_group() if request.param == "small" else default_group()


def test_parameters_are_safe_prime_groups(group):
    assert group.p == 2 * group.q + 1
    assert is_probable_prime(group.p)
    assert is_probable_prime(group.q)


def test_generator_has_order_q(group):
    assert group.exp(group.g, group.q) == 1
    assert group.g != 1


def test_group_closure_and_associativity(group):
    rng = random.Random(7)
    a, b, c = (group.random_element(rng) for _ in range(3))
    assert group.is_member(group.mul(a, b))
    assert group.mul(group.mul(a, b), c) == group.mul(a, group.mul(b, c))


def test_inverse(group):
    rng = random.Random(8)
    a = group.random_element(rng)
    assert group.mul(a, group.inv(a)) == 1


def test_exponent_arithmetic_mod_q(group):
    rng = random.Random(9)
    x = group.random_exponent(rng)
    assert group.power_of_g(x) == group.power_of_g(x + group.q)
    assert group.exp(group.g, -1) == group.inv(group.g)


def test_membership_rejects_non_residues(group):
    # -1 is a quadratic non-residue mod a safe prime p > 3.
    assert not group.is_member(group.p - 1)
    assert not group.is_member(0)
    assert not group.is_member(group.p)


def test_element_from_bytes_lands_in_subgroup(group):
    for i in range(20):
        assert group.is_member(group.element_from_bytes(i * 7919 + 3))


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        SchnorrGroup(p=23, q=7, g=2)  # p != 2q+1
    good = small_group()
    with pytest.raises(ValueError):
        SchnorrGroup(p=good.p, q=good.q, g=1)  # trivial generator


def test_generate_group_produces_valid_group():
    grp = generate_group(32, random.Random(5))
    assert grp.p == 2 * grp.q + 1
    assert grp.is_member(grp.g)
    rng = random.Random(6)
    x = grp.random_exponent(rng)
    assert grp.is_member(grp.power_of_g(x))


def test_random_element_uses_full_subgroup():
    grp = small_group()
    rng = random.Random(10)
    seen = {grp.random_element(rng) for _ in range(50)}
    assert len(seen) == 50  # collisions in a 2^63 group would be a bug
