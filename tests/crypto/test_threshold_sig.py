"""Threshold signatures: Shoup RSA and quorum certificates."""

import random
from dataclasses import replace

import pytest

from repro.adversary.quorums import ThresholdQuorumSystem
from repro.crypto.groups import small_group
from repro.crypto.rsa import choose_public_exponent, generate_rsa_modulus
from repro.crypto.schnorr import keygen
from repro.crypto.threshold_sig import (
    deal_quorum_certs,
    deal_shoup_rsa,
)


@pytest.fixture(scope="module")
def rsa_4_2():
    return deal_shoup_rsa(4, 2, random.Random(61), bits=256)


class TestShoupRsa:
    def test_share_sign_verify(self, rsa_4_2):
        public, holders = rsa_4_2
        rng = random.Random(62)
        for i in (1, 2, 3, 4):
            share = holders[i].sign_share("msg", rng)
            assert public.verify_share("msg", share)

    def test_combine_and_verify(self, rsa_4_2):
        public, holders = rsa_4_2
        rng = random.Random(63)
        shares = {i: holders[i].sign_share("hello", rng) for i in (1, 3)}
        signature = public.combine("hello", shares)
        assert public.verify("hello", signature)
        assert not public.verify("other", signature)

    def test_any_k_subset_combines_to_same_signature(self, rsa_4_2):
        """RSA signatures are deterministic: every qualified subset must
        produce the unique y with y^e = H(m)."""
        public, holders = rsa_4_2
        rng = random.Random(64)
        shares = {i: holders[i].sign_share("det", rng) for i in range(1, 5)}
        sigs = {
            public.combine("det", {i: shares[i] for i in subset}).value
            for subset in ([1, 2], [3, 4], [2, 4], [1, 4])
        }
        assert len(sigs) == 1

    def test_share_for_other_message_rejected(self, rsa_4_2):
        public, holders = rsa_4_2
        share = holders[1].sign_share("A", random.Random(65))
        assert not public.verify_share("B", share)

    def test_forged_share_value_rejected(self, rsa_4_2):
        public, holders = rsa_4_2
        share = holders[2].sign_share("m", random.Random(66))
        forged = replace(share, value=(share.value * 2) % public.n_modulus)
        assert not public.verify_share("m", forged)

    def test_unknown_party_rejected(self, rsa_4_2):
        public, holders = rsa_4_2
        share = holders[1].sign_share("m", random.Random(67))
        assert not public.verify_share("m", replace(share, party=9))

    def test_combine_with_too_few_shares_raises(self, rsa_4_2):
        public, holders = rsa_4_2
        shares = {1: holders[1].sign_share("m", random.Random(68))}
        with pytest.raises(ValueError):
            public.combine("m", shares)

    def test_combine_with_corrupted_share_fails_loudly(self, rsa_4_2):
        public, holders = rsa_4_2
        rng = random.Random(69)
        good = holders[1].sign_share("m", rng)
        bad = replace(
            holders[2].sign_share("m", rng),
            value=pow(3, 5, public.n_modulus),
        )
        with pytest.raises(ValueError):
            public.combine("m", {1: good, 2: bad})

    def test_exponent_is_prime_and_large_enough(self, rsa_4_2):
        public, _ = rsa_4_2
        assert public.e > public.n_parties

    def test_modulus_generation(self):
        mod = generate_rsa_modulus(128, random.Random(70))
        assert mod.n_modulus == mod.p * mod.q
        assert mod.p != mod.q
        e = choose_public_exponent(mod, 10)
        assert e > 10

    def test_dealer_rejects_bad_k(self):
        with pytest.raises(ValueError):
            deal_shoup_rsa(3, 4, random.Random(71), bits=128)


class TestQuorumCerts:
    @pytest.fixture(scope="class")
    def certs(self):
        rng = random.Random(72)
        keys = {i: keygen(rng, small_group()) for i in range(4)}
        quorum = ThresholdQuorumSystem(n=4, t=1)
        return deal_quorum_certs(keys, qualifier=quorum.is_quorum, tag="test")

    def test_combine_and_verify(self, certs):
        public, holders = certs
        rng = random.Random(73)
        shares = {i: holders[i].sign_share("stmt", rng) for i in (0, 1, 2)}
        cert = public.combine("stmt", shares)
        assert public.verify("stmt", cert)
        assert not public.verify("other", cert)

    def test_unqualified_set_rejected(self, certs):
        public, holders = certs
        rng = random.Random(74)
        shares = {i: holders[i].sign_share("stmt", rng) for i in (0, 1)}
        with pytest.raises(ValueError):
            public.combine("stmt", shares)

    def test_bad_share_rejected_by_combine(self, certs):
        public, holders = certs
        rng = random.Random(75)
        shares = {i: holders[i].sign_share("stmt", rng) for i in (0, 1, 2)}
        shares[2] = holders[2].sign_share("different", rng)
        with pytest.raises(ValueError):
            public.combine("stmt", shares)

    def test_verify_share(self, certs):
        public, holders = certs
        rng = random.Random(76)
        share = holders[3].sign_share("s", rng)
        assert public.verify_share("s", (3, share))
        assert not public.verify_share("s", (2, share))
        assert not public.verify_share("s", (9, share))

    def test_certificate_with_unqualified_signers_fails_verify(self, certs):
        public, holders = certs
        rng = random.Random(77)
        shares = {i: holders[i].sign_share("s", rng) for i in (0, 1, 2)}
        cert = public.combine("s", shares)
        pruned = replace(
            cert, signatures={k: v for k, v in cert.signatures.items() if k < 2}
        )
        assert not public.verify("s", pruned)

    def test_tag_separation(self):
        """Shares under one scheme tag must not validate under another —
        the reason cert_quorum and cert_honest use distinct tags."""
        rng = random.Random(78)
        keys = {i: keygen(rng, small_group()) for i in range(4)}
        quorum = ThresholdQuorumSystem(n=4, t=1)
        pub_a, hold_a = deal_quorum_certs(keys, quorum.is_quorum, tag="A")
        pub_b, _ = deal_quorum_certs(keys, quorum.is_quorum, tag="B")
        share = hold_a[0].sign_share("stmt", rng)
        assert pub_a.verify_share("stmt", (0, share))
        assert not pub_b.verify_share("stmt", (0, share))
