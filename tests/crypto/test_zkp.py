"""Chaum-Pedersen DLEQ and Schnorr proofs of knowledge."""

import random
from dataclasses import replace

from repro.crypto.groups import small_group
from repro.crypto.zkp import prove_dleq, prove_dlog, verify_dleq, verify_dlog

GROUP = small_group()


def _setup(seed):
    rng = random.Random(seed)
    x = GROUP.random_exponent(rng)
    u = GROUP.random_element(rng)
    return rng, x, u


def test_dleq_roundtrip():
    rng, x, u = _setup(1)
    proof = prove_dleq(GROUP, GROUP.g, u, x, rng)
    h1, h2 = GROUP.power_of_g(x), GROUP.exp(u, x)
    assert verify_dleq(GROUP, GROUP.g, h1, u, h2, proof)


def test_dleq_context_binding():
    rng, x, u = _setup(2)
    proof = prove_dleq(GROUP, GROUP.g, u, x, rng, context="session-1")
    h1, h2 = GROUP.power_of_g(x), GROUP.exp(u, x)
    assert verify_dleq(GROUP, GROUP.g, h1, u, h2, proof, context="session-1")
    assert not verify_dleq(GROUP, GROUP.g, h1, u, h2, proof, context="session-2")
    assert not verify_dleq(GROUP, GROUP.g, h1, u, h2, proof)


def test_dleq_rejects_wrong_statement():
    rng, x, u = _setup(3)
    proof = prove_dleq(GROUP, GROUP.g, u, x, rng)
    h1 = GROUP.power_of_g(x)
    wrong_h2 = GROUP.mul(GROUP.exp(u, x), GROUP.g)
    assert not verify_dleq(GROUP, GROUP.g, h1, u, wrong_h2, proof)


def test_dleq_rejects_unequal_exponents():
    """The core soundness property: h1 = g^x, h2 = u^y with x != y has
    no accepting proof (we check an honestly-generated proof for x
    fails against h2 = u^y)."""
    rng, x, u = _setup(4)
    y = (x + 1) % GROUP.q
    proof = prove_dleq(GROUP, GROUP.g, u, x, rng)
    assert not verify_dleq(
        GROUP, GROUP.g, GROUP.power_of_g(x), u, GROUP.exp(u, y), proof
    )


def test_dleq_rejects_tampered_proof():
    rng, x, u = _setup(5)
    proof = prove_dleq(GROUP, GROUP.g, u, x, rng)
    h1, h2 = GROUP.power_of_g(x), GROUP.exp(u, x)
    assert not verify_dleq(
        GROUP, GROUP.g, h1, u, h2, replace(proof, response=(proof.response + 1) % GROUP.q)
    )
    assert not verify_dleq(
        GROUP, GROUP.g, h1, u, h2,
        replace(proof, commit1=GROUP.mul(proof.commit1, GROUP.g)),
    )
    assert not verify_dleq(
        GROUP, GROUP.g, h1, u, h2,
        replace(proof, commit2=GROUP.mul(proof.commit2, GROUP.g)),
    )


def test_dleq_rejects_non_members():
    rng, x, u = _setup(6)
    proof = prove_dleq(GROUP, GROUP.g, u, x, rng)
    h2 = GROUP.exp(u, x)
    assert not verify_dleq(GROUP, GROUP.g, GROUP.p - 1, u, h2, proof)


def test_dlog_roundtrip():
    rng = random.Random(7)
    x = GROUP.random_exponent(rng)
    proof = prove_dlog(GROUP, x, rng)
    assert verify_dlog(GROUP, GROUP.power_of_g(x), proof)


def test_dlog_rejects_wrong_key():
    rng = random.Random(8)
    x = GROUP.random_exponent(rng)
    proof = prove_dlog(GROUP, x, rng)
    assert not verify_dlog(GROUP, GROUP.power_of_g((x + 1) % GROUP.q), proof)


def test_dlog_context_binding():
    rng = random.Random(9)
    x = GROUP.random_exponent(rng)
    proof = prove_dlog(GROUP, x, rng, context="enroll")
    h = GROUP.power_of_g(x)
    assert verify_dlog(GROUP, h, proof, context="enroll")
    assert not verify_dlog(GROUP, h, proof, context="other")
