"""The trusted dealer: completeness and admissibility checks."""

import random

import pytest

from repro.adversary import (
    And,
    Leaf,
    example1_access_formula,
    example1_structure,
    majority,
    threshold_structure,
)
from repro.crypto import deal_system, small_group
from repro.crypto.dealer import CLIENT_BASE, deal_channel_keys
from repro.crypto.threshold_sig import QuorumCertScheme, ShoupRsaScheme


def test_bundles_complete(keys_4_1):
    public = keys_4_1.public
    assert public.n == 4
    assert public.threshold() == 1
    assert set(keys_4_1.private) == {0, 1, 2, 3}
    for i in range(4):
        pk = keys_4_1.private[i]
        assert pk.party == i
        assert pk.coin.subshares  # everyone holds coin material
        assert pk.decryption.subshares
    assert set(public.verify_keys) == {0, 1, 2, 3}


def test_q3_violation_rejected():
    with pytest.raises(ValueError):
        deal_system(3, random.Random(1), t=1, group=small_group())
    with pytest.raises(ValueError):
        deal_system(6, random.Random(2), t=2, group=small_group())


def test_q3_violation_allowed_when_disabled():
    keys = deal_system(
        3, random.Random(3), t=1, group=small_group(), require_q3=False
    )
    assert keys.public.n == 3


def test_generalized_structure_needs_formula():
    with pytest.raises(ValueError):
        deal_system(
            9, random.Random(4), structure=example1_structure(), group=small_group()
        )


def test_incompatible_formula_rejected():
    # An AND over two class-a servers is reconstructible by a corruptible
    # coalition — must be refused.
    bad = And(Leaf(0), Leaf(1))
    with pytest.raises(ValueError):
        deal_system(
            9,
            random.Random(5),
            structure=example1_structure(),
            access_formula=bad,
            group=small_group(),
        )


def test_threshold_with_wrong_majority_formula_rejected():
    # t=1 but a 2-of-4 access formula lets a single corrupted pair...
    # actually a t-sized set must never be qualified: 2-of-4 with t=1 is
    # fine; 1-of-4 is not.
    with pytest.raises(ValueError):
        deal_system(
            4,
            random.Random(6),
            t=1,
            access_formula=majority(list(range(4)), 1),
            group=small_group(),
        )


def test_example1_system_deals(keys_example1):
    public = keys_example1.public
    assert public.n == 9
    assert public.threshold() is None
    assert public.quorum.can_be_corrupted({0, 1, 2, 3})
    assert public.quorum.can_be_corrupted({0, 4})  # a pair, not both class a
    assert not public.quorum.can_be_corrupted({0, 4, 6})


def test_certs_backend_default(keys_4_1):
    assert isinstance(keys_4_1.public.service_signature, QuorumCertScheme)


def test_rsa_backend(keys_4_1_rsa):
    public = keys_4_1_rsa.public
    assert isinstance(public.service_signature, ShoupRsaScheme)
    assert public.service_signature.k == 2  # t + 1
    rng = random.Random(7)
    shares = {}
    for i in (0, 2):
        holder = keys_4_1_rsa.private[i].service_signer
        shares[holder.party] = holder.sign_share("answer", rng)
    sig = public.service_signature.combine("answer", shares)
    assert public.service_signature.verify("answer", sig)


def test_rsa_backend_requires_threshold():
    with pytest.raises(ValueError):
        deal_system(
            9,
            random.Random(8),
            structure=example1_structure(),
            access_formula=example1_access_formula(),
            group=small_group(),
            signature_backend="rsa",
        )


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        deal_system(
            4, random.Random(9), t=1, group=small_group(), signature_backend="pq"
        )


def test_structure_mismatched_n_rejected():
    with pytest.raises(ValueError):
        deal_system(
            8,
            random.Random(10),
            structure=threshold_structure(9, 2),
            access_formula=majority(list(range(9)), 3),
            group=small_group(),
        )


def test_dealing_is_deterministic_given_seed():
    a = deal_system(4, random.Random(99), t=1, group=small_group())
    b = deal_system(4, random.Random(99), t=1, group=small_group())
    assert a.public.encryption.h == b.public.encryption.h
    assert a.private[2].signing_key.x == b.private[2].signing_key.x


def test_channel_keyring_pairwise_and_unique():
    keyring = deal_channel_keys([0, 1, 2, CLIENT_BASE], random.Random(17))
    parties = [0, 1, 2, CLIENT_BASE]
    for a in parties:
        assert set(keyring[a]) == set(parties) - {a}  # no self-channel
        for b in keyring[a]:
            assert keyring[a][b] == keyring[b][a]
            assert len(keyring[a][b]) == 32
    # Every unordered pair gets a distinct key.
    all_keys = {keyring[a][b] for a in parties for b in keyring[a]}
    assert len(all_keys) == len(parties) * (len(parties) - 1) // 2


def test_deal_system_provisions_client_channels():
    keys = deal_system(
        4, random.Random(21), t=1, group=small_group(), clients=2
    )
    assert set(keys.client_channels) == {CLIENT_BASE, CLIENT_BASE + 1}
    for client, channels in keys.client_channels.items():
        # A client talks to servers (and other dealt clients), and each
        # server's bundle holds the matching half of the pair key.
        for i in range(4):
            assert channels[i] == keys.private[i].channel_keys[client]


def test_no_clients_means_no_client_channels(keys_4_1):
    assert keys_4_1.client_channels == {}
    # Servers still get pairwise keys among themselves.
    for i in range(4):
        assert set(keys_4_1.private[i].channel_keys) == set(range(4)) - {i}
