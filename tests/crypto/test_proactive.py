"""Proactive share refresh (Section 6 extension)."""

import random
from dataclasses import replace

import pytest

from repro.adversary.attributes import example1_access_formula
from repro.crypto.groups import small_group
from repro.crypto.lsss import LsssScheme, threshold_scheme
from repro.crypto.proactive import (
    apply_refresh,
    deal_zero_sharing,
    refresh_lsss,
    verify_zero_sharing,
)
from repro.crypto.shamir import reconstruct, share_secret

GROUP = small_group()


def test_zero_sharing_verifies():
    rng = random.Random(1)
    sharing = deal_zero_sharing(GROUP, 5, 2, dealer=0, rng=rng)
    for point in range(1, 6):
        assert verify_zero_sharing(GROUP, sharing, point)


def test_zero_sharing_with_nonzero_constant_rejected():
    rng = random.Random(2)
    sharing = deal_zero_sharing(GROUP, 4, 1, dealer=1, rng=rng)
    forged = replace(sharing, commitments=[GROUP.g] + sharing.commitments[1:])
    assert not verify_zero_sharing(GROUP, forged, 1)


def test_tampered_subshare_rejected():
    rng = random.Random(3)
    sharing = deal_zero_sharing(GROUP, 4, 1, dealer=0, rng=rng)
    bad_subshares = dict(sharing.subshares)
    bad_subshares[2] = (bad_subshares[2] + 1) % GROUP.q
    assert not verify_zero_sharing(GROUP, replace(sharing, subshares=bad_subshares), 2)


def test_refresh_preserves_secret_and_rerandomizes():
    rng = random.Random(4)
    n, t, secret = 5, 2, 31337
    shares, _ = share_secret(secret, n, t, GROUP.q, rng)
    updates = [deal_zero_sharing(GROUP, n, t, dealer=d, rng=rng) for d in range(3)]
    refreshed = [apply_refresh(GROUP, s, updates) for s in shares]
    # Secret unchanged...
    assert reconstruct(refreshed[:3], GROUP.q) == secret
    # ...but every share differs (old epoch's exposures are useless).
    assert all(old.value != new.value for old, new in zip(shares, refreshed))


def test_mixing_epochs_breaks_reconstruction():
    """Shares from different epochs must not interpolate to the secret —
    the property that invalidates a mobile adversary's stale captures."""
    rng = random.Random(5)
    secret = 777
    shares, _ = share_secret(secret, 5, 2, GROUP.q, rng)
    updates = [deal_zero_sharing(GROUP, 5, 2, dealer=0, rng=rng)]
    refreshed = [apply_refresh(GROUP, s, updates) for s in shares]
    mixed = [shares[0], refreshed[1], refreshed[2]]
    assert reconstruct(mixed, GROUP.q) != secret


def test_apply_refresh_rejects_invalid_update():
    rng = random.Random(6)
    shares, _ = share_secret(1, 4, 1, GROUP.q, rng)
    update = deal_zero_sharing(GROUP, 4, 1, dealer=0, rng=rng)
    forged = replace(update, commitments=[GROUP.g] + update.commitments[1:])
    with pytest.raises(ValueError):
        apply_refresh(GROUP, shares[0], [forged])


def test_lsss_refresh_threshold_case():
    rng = random.Random(7)
    scheme = threshold_scheme(4, 1, GROUP.q)
    sharing = scheme.deal(4242, rng)
    refreshed = refresh_lsss(scheme, sharing, rng)
    assert scheme.reconstruct(refreshed, {0, 2}) == 4242
    assert sharing.all_slots() != refreshed.all_slots()


def test_lsss_refresh_generalized_case():
    rng = random.Random(8)
    scheme = LsssScheme(formula=example1_access_formula(), modulus=GROUP.q)
    sharing = scheme.deal(99, rng)
    refreshed = refresh_lsss(scheme, sharing, rng)
    assert scheme.reconstruct(refreshed, {0, 4, 6}) == 99
    assert scheme.reconstruct(refreshed, {5, 7, 8}) == 99
    changed = sum(
        1
        for slot, value in sharing.all_slots().items()
        if refreshed.all_slots()[slot] != value
    )
    assert changed > 0
