"""Keystore: dealer output round-trips through JSON files."""

import json
import random

import pytest

from repro.adversary import example1_access_formula, example1_structure
from repro.crypto import deal_system, small_group
from repro.crypto.dealer import CLIENT_BASE
from repro.crypto.keystore import (
    KeystoreError,
    load_client,
    load_party,
    load_public,
    party_from_dict,
    party_to_dict,
    public_from_dict,
    public_to_dict,
    write_deployment,
)


def _roundtrip_and_sign(keys, tmp_path):
    """Write to disk, reload, and exercise every reloaded capability."""
    paths = write_deployment(keys, tmp_path)
    public = load_public(tmp_path / "public.json")
    rng = random.Random(9)

    # Coin: shares from reloaded bundles combine and verify.
    holders = {
        i: load_party(tmp_path / f"server-{i}.json", public).coin
        for i in range(public.n)
    }
    shares = {i: holders[i].share_for("reloaded", rng) for i in (0, 1)}
    assert all(public.coin.verify_share(s) for s in shares.values())
    original_shares = {
        i: keys.private[i].coin.share_for("reloaded", rng) for i in (2, 3)
    }
    assert public.coin.combine("reloaded", shares) == keys.public.coin.combine(
        "reloaded", original_shares
    )

    # Encryption: a ciphertext made with the original public key decrypts
    # with reloaded shares.
    ct = keys.public.encryption.encrypt(b"persisted", b"L", rng)
    dec = {
        i: load_party(tmp_path / f"server-{i}.json", public).decryption
        for i in (0, 2)
    }
    dshares = {i: dec[i].decryption_share(ct, rng) for i in dec}
    assert public.encryption.combine(ct, dshares) == b"persisted"

    # Channel signatures verify across the reload boundary.
    party0 = load_party(tmp_path / "server-0.json", public)
    sig = party0.signing_key.sign("hello", rng)
    assert public.verify_keys[0].verify("hello", sig)
    return paths


def test_threshold_deployment_roundtrip(tmp_path):
    keys = deal_system(4, random.Random(1), t=1, group=small_group())
    paths = _roundtrip_and_sign(keys, tmp_path)
    assert len(paths) == 5  # public + 4 servers


def test_generalized_deployment_roundtrip(tmp_path):
    keys = deal_system(
        9,
        random.Random(2),
        structure=example1_structure(),
        access_formula=example1_access_formula(),
        group=small_group(),
    )
    write_deployment(keys, tmp_path)
    public = load_public(tmp_path / "public.json")
    # The generalized quorum semantics survive the round-trip.
    assert public.quorum.can_be_corrupted({0, 1, 2, 3})
    assert not public.quorum.can_be_corrupted({0, 4, 6})
    assert public.access_scheme.is_qualified({0, 4, 6})
    assert not public.access_scheme.is_qualified({0, 1, 2, 3})


def test_hybrid_deployment_roundtrip(tmp_path):
    keys = deal_system(9, random.Random(3), hybrid=(1, 2), group=small_group())
    write_deployment(keys, tmp_path)
    public = load_public(tmp_path / "public.json")
    assert public.quorum.describe() == keys.public.quorum.describe()


def test_rsa_backend_roundtrip(tmp_path, keys_4_1_rsa):
    write_deployment(keys_4_1_rsa, tmp_path)
    public = load_public(tmp_path / "public.json")
    rng = random.Random(4)
    holders = {
        i: load_party(tmp_path / f"server-{i}.json", public).service_signer
        for i in (0, 1)
    }
    shares = {h.party: h.sign_share("msg", rng) for h in holders.values()}
    signature = public.service_signature.combine("msg", shares)
    assert public.service_signature.verify("msg", signature)
    # ...and verifies under the ORIGINAL public bundle too.
    assert keys_4_1_rsa.public.service_signature.verify("msg", signature)


def test_reloaded_system_runs_the_protocols(tmp_path):
    """End-to-end: a service built entirely from reloaded key files."""
    import random as _r

    from repro.core.runtime import ProtocolRuntime
    from repro.net.scheduler import RandomScheduler
    from repro.net.simulator import Network
    from repro.smr import KeyValueStore
    from repro.smr.client import ServiceClient
    from repro.smr.replica import Replica, service_session

    keys = deal_system(4, random.Random(5), t=1, group=small_group())
    write_deployment(keys, tmp_path)
    public = load_public(tmp_path / "public.json")
    net = Network(RandomScheduler(), _r.Random(6))
    for i in range(4):
        bundle = load_party(tmp_path / f"server-{i}.json", public)
        rt = ProtocolRuntime(i, net, public, bundle, seed=6)
        net.attach(i, rt)
        rt.spawn(service_session("service"), Replica(KeyValueStore()))
    client = ServiceClient(1000, net, public, _r.Random(7))
    net.attach(1000, client)
    net.start()
    nonce = client.submit(("set", "persisted", True))
    net.run(until=lambda: nonce in client.completed, max_steps=600_000)
    assert client.completed[nonce].result == ("ok", 1)


class TestValidation:
    def test_version_check(self):
        keys = deal_system(4, random.Random(7), t=1, group=small_group())
        data = public_to_dict(keys.public)
        data["version"] = 99
        with pytest.raises(KeystoreError):
            public_from_dict(data)

    def test_party_version_check(self):
        keys = deal_system(4, random.Random(8), t=1, group=small_group())
        data = party_to_dict(keys.private[0])
        data["version"] = 0
        with pytest.raises(KeystoreError):
            party_from_dict(data, keys.public)

    def test_backend_mismatch_detected(self, keys_4_1_rsa):
        certs_keys = deal_system(4, random.Random(9), t=1, group=small_group())
        rsa_party = party_to_dict(keys_4_1_rsa.private[0])
        with pytest.raises(KeystoreError):
            party_from_dict(rsa_party, certs_keys.public)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "public.json"
        path.write_text("{not json")
        with pytest.raises(KeystoreError):
            load_public(path)

    def test_json_is_pure_text(self, tmp_path):
        keys = deal_system(4, random.Random(10), t=1, group=small_group())
        write_deployment(keys, tmp_path)
        data = json.loads((tmp_path / "public.json").read_text())
        assert data["version"] == 1  # plain JSON, no binary blobs


class TestChannelKeys:
    def test_server_channel_keys_roundtrip(self, tmp_path):
        keys = deal_system(
            4, random.Random(11), t=1, group=small_group(), clients=1
        )
        write_deployment(keys, tmp_path)
        public = load_public(tmp_path / "public.json")
        bundles = {
            i: load_party(tmp_path / f"server-{i}.json", public)
            for i in range(4)
        }
        for i in range(4):
            assert bundles[i].channel_keys == keys.private[i].channel_keys
        # Pairwise agreement across the reload boundary.
        for a in range(4):
            for b in range(4):
                if a != b:
                    key = bundles[a].channel_keys[b]
                    assert bundles[b].channel_keys[a] == key
                    assert len(key) == 32

    def test_client_file_roundtrip(self, tmp_path):
        keys = deal_system(
            4, random.Random(12), t=1, group=small_group(), clients=2
        )
        write_deployment(keys, tmp_path)
        public = load_public(tmp_path / "public.json")
        for client_id in (CLIENT_BASE, CLIENT_BASE + 1):
            loaded, channel_keys = load_client(
                tmp_path / f"client-{client_id}.json"
            )
            assert loaded == client_id
            assert channel_keys == keys.client_channels[client_id]
            # The client shares each server's key for this client id.
            for i in range(4):
                server = load_party(tmp_path / f"server-{i}.json", public)
                assert server.channel_keys[client_id] == channel_keys[i]

    def test_party_file_without_channel_keys_still_loads(self):
        # Key files written before channel keys existed omit the field;
        # loading must not break, just yield an empty keyring.
        keys = deal_system(4, random.Random(13), t=1, group=small_group())
        data = party_to_dict(keys.private[0])
        del data["channel_keys"]
        bundle = party_from_dict(data, keys.public)
        assert bundle.channel_keys == {}

    def test_channel_keys_are_hex_text_in_json(self, tmp_path):
        keys = deal_system(
            4, random.Random(14), t=1, group=small_group(), clients=1
        )
        write_deployment(keys, tmp_path)
        data = json.loads((tmp_path / "server-0.json").read_text())
        assert set(data["channel_keys"]) == {"1", "2", "3", str(CLIENT_BASE)}
        for value in data["channel_keys"].values():
            assert bytes.fromhex(value)  # plain hex strings, 32 bytes
            assert len(value) == 64


class TestAtomicWrites:
    """Crash-safe key file writes: a kill at any instant leaves either
    the complete old file or the complete new one, never a prefix."""

    def test_atomic_write_roundtrip(self, tmp_path):
        from repro.crypto.keystore import atomic_write_text

        target = tmp_path / "public.json"
        atomic_write_text(target, '{"v": 1}')
        assert json.loads(target.read_text()) == {"v": 1}
        atomic_write_text(target, '{"v": 2}')
        assert json.loads(target.read_text()) == {"v": 2}
        # No temp litter after a clean write.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_kill_during_write_preserves_old_file(self, tmp_path, monkeypatch):
        """Simulate SIGKILL mid-write (the chaos engine does this for
        real): fsync raises, the target must still hold the old epoch's
        complete keys and the temp file must be cleaned up."""
        import os as os_module

        from repro.crypto import keystore as ks

        target = tmp_path / "server-0.json"
        ks.atomic_write_text(target, '{"epoch": 0, "complete": true}')

        def exploding_fsync(fd):
            raise OSError("killed mid-write")

        monkeypatch.setattr(os_module, "fsync", exploding_fsync)
        with pytest.raises(OSError):
            ks.atomic_write_text(target, '{"epoch": 1, "truncat')
        monkeypatch.undo()
        assert json.loads(target.read_text()) == {"epoch": 0, "complete": True}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_kill_before_rename_preserves_old_file(self, tmp_path, monkeypatch):
        import os as os_module

        from repro.crypto import keystore as ks

        target = tmp_path / "server-1.json"
        ks.atomic_write_text(target, '{"epoch": 0}')

        def exploding_replace(src, dst):
            raise OSError("killed before rename")

        monkeypatch.setattr(os_module, "replace", exploding_replace)
        with pytest.raises(OSError):
            ks.atomic_write_text(target, '{"epoch": 1}')
        monkeypatch.undo()
        assert json.loads(target.read_text()) == {"epoch": 0}

    def test_leftover_temp_does_not_confuse_loads(self, tmp_path):
        """A temp file orphaned by a true SIGKILL (no cleanup ran) must
        not shadow the real key files."""
        keys = deal_system(4, random.Random(41), t=1, group=small_group())
        write_deployment(keys, tmp_path)
        (tmp_path / "public.json.12345.tmp").write_text('{"garbage": tru')
        public = load_public(tmp_path / "public.json")
        assert public.n == 4

    def test_write_deployment_is_atomic(self, tmp_path, monkeypatch):
        """write_deployment goes through the atomic path for every file."""
        import os as os_module

        keys = deal_system(4, random.Random(42), t=1, group=small_group())
        write_deployment(keys, tmp_path)
        before = {p.name: p.read_text() for p in tmp_path.glob("*.json")}

        calls = {"n": 0}
        real_replace = os_module.replace

        def counting_replace(src, dst):
            calls["n"] += 1
            return real_replace(src, dst)

        monkeypatch.setattr(os_module, "replace", counting_replace)
        keys2 = deal_system(4, random.Random(43), t=1, group=small_group())
        write_deployment(keys2, tmp_path)
        assert calls["n"] >= len(before)
