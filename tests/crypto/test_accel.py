"""Acceleration primitives agree exactly with the naive computations."""

import random

from repro.crypto.accel import (
    FixedBaseTable,
    accel_for,
    batch_coefficients,
    multiexp,
    verify_product_equations,
)
from repro.crypto.groups import small_group

GROUP = small_group()


def test_multiexp_matches_naive_product():
    rng = random.Random(1)
    p, q = GROUP.p, GROUP.q
    for size in (0, 1, 2, 3, 8, 17):
        pairs = [
            (GROUP.random_element(rng), rng.randrange(q)) for _ in range(size)
        ]
        naive = 1
        for base, exponent in pairs:
            naive = naive * pow(base, exponent, p) % p
        assert multiexp(p, pairs) == naive


def test_multiexp_handles_zero_and_large_exponents():
    p = GROUP.p
    pairs = [(GROUP.g, 0), (GROUP.g, 2 * GROUP.q + 3), (5, 1)]
    naive = pow(GROUP.g, 2 * GROUP.q + 3, p) * 5 % p
    assert multiexp(p, pairs) == naive


def test_fixed_base_table_matches_pow():
    rng = random.Random(2)
    table = FixedBaseTable(GROUP.g, GROUP.p, bits=GROUP.q.bit_length())
    for _ in range(25):
        e = rng.randrange(GROUP.q)
        assert table.pow(e) == pow(GROUP.g, e, GROUP.p)
    for e in (0, 1, GROUP.q - 1):
        assert table.pow(e) == pow(GROUP.g, e, GROUP.p)


def test_fixed_base_table_falls_back_beyond_capacity():
    table = FixedBaseTable(GROUP.g, GROUP.p, bits=16)
    huge = GROUP.q + 12345
    assert table.pow(huge) == pow(GROUP.g, huge, GROUP.p)


def test_accel_exp_and_auto_tabling_match_pow():
    rng = random.Random(3)
    accel = accel_for(GROUP)
    base = GROUP.random_element(rng)
    for _ in range(40):  # crosses the auto-tabling threshold mid-loop
        e = rng.randrange(GROUP.q)
        assert accel.exp(base, e) == pow(base, e, GROUP.p)


def test_accel_membership_matches_exponent_test():
    rng = random.Random(4)
    accel = accel_for(GROUP)
    for _ in range(20):
        member = GROUP.random_element(rng)
        assert accel.is_member(member)
        assert pow(member, GROUP.q, GROUP.p) == 1
    # A quadratic non-residue is outside the order-q subgroup.
    non_member = GROUP.p - 1
    assert not accel.is_member(non_member)
    assert pow(non_member, GROUP.q, GROUP.p) != 1
    assert not accel.is_member(0)
    assert not accel.is_member(GROUP.p)


def test_batch_coefficients_deterministic_and_nonzero():
    transcript = [GROUP.p, GROUP.g, 123, 456]
    a = batch_coefficients("test-domain", transcript, 5)
    b = batch_coefficients("test-domain", transcript, 5)
    assert a == b
    assert len(a) == 5
    assert all(0 < c < (1 << 64) for c in a)
    assert batch_coefficients("other-domain", transcript, 5) != a
    assert batch_coefficients("test-domain", [GROUP.p, GROUP.g, 123, 457], 5) != a


def test_verify_product_equations_true_and_false():
    rng = random.Random(5)
    p, q, g = GROUP.p, GROUP.q, GROUP.g
    x = rng.randrange(1, q)
    h = pow(g, x, p)
    # Two true Schnorr-style equations g^z = a * h^c.
    equations = []
    for _ in range(2):
        r, c = rng.randrange(1, q), rng.randrange(1, q)
        a = pow(g, r, p)
        z = (r + c * x) % q
        equations.append((((g, z),), ((a, 1), (h, c))))
    coefficients = [3, 5]
    assert verify_product_equations(p, equations, coefficients, order=q)
    lhs, rhs = equations[0]
    broken = [(lhs, ((rhs[0][0] * g % p, 1), rhs[1])), equations[1]]
    assert not verify_product_equations(p, broken, coefficients, order=q)
