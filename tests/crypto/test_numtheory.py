"""Number theory: primality, safe primes, egcd/modinv, CRT."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.numtheory import (
    crt,
    egcd,
    is_probable_prime,
    modinv,
    random_prime,
    random_safe_prime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 104729, 2**61 - 1, 2**89 - 1]
KNOWN_COMPOSITES = [1, 4, 9, 15, 341, 561, 1105, 2821, 6601, 104729 * 3]


@pytest.mark.parametrize("p", KNOWN_PRIMES)
def test_known_primes(p):
    assert is_probable_prime(p)


@pytest.mark.parametrize("c", KNOWN_COMPOSITES)
def test_known_composites_including_carmichael(c):
    # 561, 1105, 2821, 6601 are Carmichael numbers: Fermat-liar heavy.
    assert not is_probable_prime(c)


def test_negative_and_zero_not_prime():
    assert not is_probable_prime(0)
    assert not is_probable_prime(-7)


def test_random_prime_has_exact_bit_length():
    rng = random.Random(1)
    for bits in (8, 16, 32, 64):
        p = random_prime(bits, rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p)


def test_random_prime_rejects_tiny_bits():
    with pytest.raises(ValueError):
        random_prime(1, random.Random(0))


def test_safe_prime_structure():
    rng = random.Random(2)
    sp = random_safe_prime(32, rng)
    assert sp.p == 2 * sp.q + 1
    assert is_probable_prime(sp.p)
    assert is_probable_prime(sp.q)
    assert sp.p.bit_length() == 32


def test_safe_prime_rejects_tiny_bits():
    with pytest.raises(ValueError):
        random_safe_prime(3, random.Random(0))


@given(st.integers(1, 10**9), st.integers(1, 10**9))
def test_egcd_bezout_identity(a, b):
    g, x, y = egcd(a, b)
    assert a * x + b * y == g
    assert a % g == 0 and b % g == 0


def test_modinv_roundtrip():
    m = 104729
    for a in (1, 2, 17, 104728, 55):
        inv = modinv(a, m)
        assert (a * inv) % m == 1


def test_modinv_noninvertible_raises():
    with pytest.raises(ValueError):
        modinv(6, 9)


def test_modinv_of_negative_value():
    m = 101
    assert ((-3) * modinv(-3, m)) % m == 1


@given(st.integers(0, 10**6))
@settings(max_examples=50)
def test_crt_reconstructs_value(x):
    moduli = [101, 103, 107, 109]
    residues = [x % m for m in moduli]
    product = 101 * 103 * 107 * 109
    assert crt(residues, moduli) == x % product


def test_crt_length_mismatch():
    with pytest.raises(ValueError):
        crt([1, 2], [3])
