"""Batched share verification: adversarial cases and batched ≡ unbatched.

The batch paths (one multi-exponentiation per quorum, random linear
combination with 64-bit Fiat-Shamir coefficients) must return *exactly*
the shares the per-share checks accept — a forged share in the set must
be rejected with the culprit pinpointed, and on randomized share sets
(honest, forged, replayed, truncated) the batched verdict must match
the unbatched one share for share, across threshold and generalized
access structures.
"""

import random
from dataclasses import replace

import pytest

from repro.adversary.attributes import (
    example1_access_formula,
    example2_access_formula,
)
from repro.crypto.coin import deal_coin
from repro.crypto.groups import small_group
from repro.crypto.lsss import LsssScheme, threshold_scheme
from repro.crypto.schnorr import keygen
from repro.crypto.threshold_enc import deal_encryption
from repro.crypto.threshold_sig import deal_quorum_certs, deal_shoup_rsa

GROUP = small_group()


def _forge_value(group, share):
    """Tamper one slot value (and nothing else) of a DLEQ-proved share."""
    slot = sorted(share.values)[0]
    values = dict(share.values)
    values[slot] = group.mul(values[slot], group.g)
    return replace(share, values=values)


def _forge_proof(group, share):
    """Tamper one proof commitment, leaving the values intact."""
    slot = sorted(share.proofs)[0]
    proofs = dict(share.proofs)
    proofs[slot] = replace(
        proofs[slot], commit1=group.mul(proofs[slot].commit1, group.g)
    )
    return replace(share, proofs=proofs)


# -- coin shares -----------------------------------------------------------------


@pytest.fixture(scope="module")
def coin_7_2():
    rng = random.Random(101)
    return deal_coin(GROUP, threshold_scheme(7, 2, GROUP.q), rng)


def test_coin_batch_rejects_single_forgery_and_names_culprit(coin_7_2):
    public, holders = coin_7_2
    rng = random.Random(102)
    shares = {i: holders[i].share_for("forge", rng) for i in range(5)}
    shares[3] = _forge_value(GROUP, shares[3])
    valid = public.verify_shares("forge", shares.values())
    assert set(valid) == {0, 1, 2, 4}  # culprit 3 pinpointed, rest kept
    for party, share in valid.items():
        assert share == shares[party]


def test_coin_batch_rejects_forged_proof_commitment(coin_7_2):
    public, holders = coin_7_2
    rng = random.Random(103)
    shares = {i: holders[i].share_for("forge2", rng) for i in range(4)}
    shares[0] = _forge_proof(GROUP, shares[0])
    assert set(public.verify_shares("forge2", shares.values())) == {1, 2, 3}


def test_coin_batch_rejects_replayed_name_and_duplicates(coin_7_2):
    public, holders = coin_7_2
    rng = random.Random(104)
    good = [holders[i].share_for("A", rng) for i in (0, 1, 2)]
    replayed = replace(holders[3].share_for("B", rng), name="A")
    duplicate = holders[0].share_for("A", rng)
    valid = public.verify_shares("A", [*good, replayed, duplicate])
    assert set(valid) == {0, 1, 2}
    # The replayed share also fails the per-share check (proof context
    # binds the name), so batched and unbatched verdicts agree.
    assert not public.verify_share(replayed)


def test_coin_all_honest_batch_accepts_everything(coin_7_2):
    public, holders = coin_7_2
    rng = random.Random(105)
    shares = [holders[i].share_for("honest", rng) for i in range(7)]
    assert set(public.verify_shares("honest", shares)) == set(range(7))


def _random_tamper(group, rng, share):
    """Return (possibly) tampered share; None marks 'leave honest'."""
    kind = rng.randrange(4)
    if kind == 0:
        return _forge_value(group, share)
    if kind == 1:
        return _forge_proof(group, share)
    if kind == 2:
        slot = sorted(share.values)[0]
        values = {k: v for k, v in share.values.items() if k != slot}
        return replace(share, values=values)  # structurally malformed
    return share


@pytest.mark.parametrize(
    "structure",
    ["t4", "t7", "t16", "example1", "example2"],
)
def test_coin_batched_equals_unbatched_randomized(structure):
    rng = random.Random(sum(structure.encode()))
    if structure == "t4":
        scheme = threshold_scheme(4, 1, GROUP.q)
    elif structure == "t7":
        scheme = threshold_scheme(7, 2, GROUP.q)
    elif structure == "t16":
        scheme = threshold_scheme(16, 5, GROUP.q)
    elif structure == "example1":
        scheme = LsssScheme(formula=example1_access_formula(), modulus=GROUP.q)
    else:
        scheme = LsssScheme(formula=example2_access_formula(), modulus=GROUP.q)
    public, holders = deal_coin(GROUP, scheme, rng)
    parties = sorted(holders)
    for trial in range(3):
        name = ("rand", structure, trial)
        subset = rng.sample(parties, k=rng.randrange(2, len(parties) + 1))
        shares = []
        for party in subset:
            share = holders[party].share_for(name, rng)
            if rng.random() < 0.4:
                share = _random_tamper(GROUP, rng, share)
            shares.append(share)
        batched = public.verify_shares(name, shares)
        unbatched = {
            s.party: s for s in shares if public.verify_share(s)
        }
        assert batched == unbatched


# -- TDH2 decryption shares ------------------------------------------------------


def test_decryption_batch_rejects_single_forgery():
    rng = random.Random(110)
    scheme = threshold_scheme(5, 1, GROUP.q)
    public, holders = deal_encryption(GROUP, scheme, rng)
    ct = public.encrypt(b"secret", b"label", rng)
    shares = {i: holders[i].decryption_share(ct, rng) for i in range(4)}
    shares[2] = _forge_value(GROUP, shares[2])
    valid = public.verify_shares(ct, shares.values())
    assert set(valid) == {0, 1, 3}
    # The surviving set still decrypts correctly.
    assert public.combine(ct, valid) == b"secret"


def test_decryption_batched_equals_unbatched_randomized():
    rng = random.Random(111)
    scheme = threshold_scheme(6, 2, GROUP.q)
    public, holders = deal_encryption(GROUP, scheme, rng)
    for trial in range(3):
        ct = public.encrypt(bytes([trial]) * 4, b"l", rng)
        shares = []
        for party in rng.sample(sorted(holders), k=5):
            share = holders[party].decryption_share(ct, rng)
            if rng.random() < 0.4:
                share = _random_tamper(GROUP, rng, share)
            shares.append(share)
        batched = public.verify_shares(ct, shares)
        unbatched = {
            s.party: s for s in shares if public.verify_share(ct, s)
        }
        assert batched == unbatched


# -- Shoup RSA signature shares --------------------------------------------------


@pytest.fixture(scope="module")
def shoup_5_3():
    rng = random.Random(120)
    return deal_shoup_rsa(5, 3, rng, bits=256)


def test_rsa_batch_rejects_single_forgery(shoup_5_3):
    public, holders = shoup_5_3
    rng = random.Random(121)
    message = ("m", 1)
    # Shoup shareholders are indexed 1..n (nonzero Shamir points).
    shares = {i: holders[i].sign_share(message, rng) for i in range(1, 5)}
    N = public.n_modulus
    shares[2] = replace(shares[2], value=shares[2].value * 3 % N)
    valid = public.verify_shares(message, shares.values())
    assert set(valid) == {1, 3, 4}
    # The survivors form a qualified set and combine to a valid signature.
    sig = public.combine(message, valid)
    assert public.verify(message, sig)


def test_rsa_negated_share_passes_both_paths(shoup_5_3):
    """Share values live in the quotient by {±1}: negation is harmless
    (combine uses only even powers), so both the per-share check and the
    batch accept ``N - value`` — the verdicts must agree exactly."""
    public, holders = shoup_5_3
    rng = random.Random(122)
    message = ("m", 2)
    share = holders[1].sign_share(message, rng)
    negated = replace(share, value=public.n_modulus - share.value)
    assert public.verify_share(message, negated)
    assert set(public.verify_shares(message, [negated])) == {1}


def test_rsa_batched_equals_unbatched_randomized(shoup_5_3):
    public, holders = shoup_5_3
    rng = random.Random(123)
    N = public.n_modulus
    for trial in range(3):
        message = ("m", 10 + trial)
        shares = []
        for party in rng.sample(sorted(holders), k=4):
            share = holders[party].sign_share(message, rng)
            kind = rng.randrange(4)
            if kind == 0:
                share = replace(share, value=share.value * 2 % N)
            elif kind == 1:
                share = replace(share, commit_v=share.commit_v * 2 % N)
            elif kind == 2:
                share = replace(share, response=share.response + 1)
            shares.append(share)
        batched = public.verify_shares(message, shares)
        unbatched = {
            s.party: s
            for s in shares
            if public.verify_share(message, s)
        }
        assert batched == unbatched


# -- quorum certificates ---------------------------------------------------------


def test_cert_batch_rejects_single_forgery():
    rng = random.Random(130)
    keys = {party: keygen(rng, GROUP) for party in range(5)}
    public, holders = deal_quorum_certs(
        keys, qualifier=lambda signers: len(signers) >= 3
    )
    message = ("stmt", 1)
    shares = {party: holders[party].sign_share(message, rng) for party in range(4)}
    shares[2] = replace(shares[2], commit=GROUP.mul(shares[2].commit, GROUP.g))
    valid = public.verify_shares(message, shares)
    assert set(valid) == {0, 1, 3}
    cert = public.combine(message, valid)
    assert public.verify(message, cert)


def test_cert_batched_equals_unbatched_randomized():
    rng = random.Random(131)
    keys = {party: keygen(rng, GROUP) for party in range(6)}
    public, holders = deal_quorum_certs(
        keys, qualifier=lambda signers: len(signers) >= 4
    )
    for trial in range(3):
        message = ("stmt", 10 + trial)
        shares = {}
        for party in rng.sample(sorted(holders), k=5):
            sig = holders[party].sign_share(message, rng)
            kind = rng.randrange(3)
            if kind == 0:
                sig = replace(sig, commit=GROUP.mul(sig.commit, GROUP.g))
            elif kind == 1:
                sig = replace(sig, response=(sig.response + 1) % GROUP.q)
            shares[party] = sig
        batched = public.verify_shares(message, shares)
        unbatched = {
            party: sig
            for party, sig in shares.items()
            if public.verify_share(message, (party, sig))
        }
        assert batched == unbatched
