"""Property-based tests over the threshold-cryptography schemes."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.coin import deal_coin
from repro.crypto.groups import small_group
from repro.crypto.lsss import threshold_scheme
from repro.crypto.schnorr import keygen
from repro.crypto.threshold_enc import deal_encryption

GROUP = small_group()

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Module-level fixtures (dealt once; hypothesis examples reuse them).
_SCHEME = threshold_scheme(4, 1, GROUP.q)
_COIN_PUB, _COIN_HOLDERS = deal_coin(GROUP, _SCHEME, random.Random(1))
_ENC_PUB, _ENC_HOLDERS = deal_encryption(GROUP, _SCHEME, random.Random(2))


@given(
    message=st.binary(min_size=0, max_size=200),
    label=st.binary(max_size=30),
    subset=st.sets(st.integers(0, 3), min_size=2, max_size=4),
    seed=st.integers(0, 10**6),
)
@_settings
def test_tdh2_roundtrip_property(message, label, subset, seed):
    """Every message/label/qualified-subset combination decrypts."""
    rng = random.Random(seed)
    ct = _ENC_PUB.encrypt(message, label, rng)
    assert _ENC_PUB.check_ciphertext(ct)
    shares = {i: _ENC_HOLDERS[i].decryption_share(ct, rng) for i in subset}
    assert _ENC_PUB.combine(ct, shares) == message


@given(
    name=st.tuples(st.text(max_size=10), st.integers(0, 10**9)),
    subset_a=st.sets(st.integers(0, 3), min_size=2, max_size=4),
    subset_b=st.sets(st.integers(0, 3), min_size=2, max_size=4),
    seed=st.integers(0, 10**6),
)
@_settings
def test_coin_consistency_property(name, subset_a, subset_b, seed):
    """Any two qualified subsets open the same value for any coin name."""
    rng = random.Random(seed)
    shares_a = {i: _COIN_HOLDERS[i].share_for(name, rng) for i in subset_a}
    shares_b = {i: _COIN_HOLDERS[i].share_for(name, rng) for i in subset_b}
    assert all(_COIN_PUB.verify_share(s) for s in shares_a.values())
    value_a = _COIN_PUB.combine(name, shares_a)
    value_b = _COIN_PUB.combine(name, shares_b)
    assert value_a == value_b
    assert value_a in (0, 1)


@given(
    message=st.one_of(
        st.text(max_size=50),
        st.binary(max_size=50),
        st.tuples(st.integers(), st.text(max_size=10)),
    ),
    other=st.text(min_size=1, max_size=20),
    seed=st.integers(0, 10**6),
)
@_settings
def test_schnorr_signature_property(message, other, seed):
    """Signatures verify on the signed message and on nothing else."""
    rng = random.Random(seed)
    key = keygen(rng, GROUP)
    sig = key.sign(message, rng)
    assert key.verify_key.verify(message, sig)
    if other != message:
        assert not key.verify_key.verify(other, sig)


@given(
    secret=st.integers(0, GROUP.q - 1),
    subset=st.sets(st.integers(0, 3), min_size=2, max_size=4),
    small=st.sets(st.integers(0, 3), min_size=0, max_size=1),
    seed=st.integers(0, 10**6),
)
@_settings
def test_lsss_access_boundary_property(secret, subset, small, seed):
    """Qualified sets reconstruct; corruptible sets get nothing."""
    rng = random.Random(seed)
    sharing = _SCHEME.deal(secret, rng)
    assert _SCHEME.reconstruct(sharing, subset) == secret
    assert _SCHEME.recombination(small) is None
