"""Schnorr signatures: correctness and rejection of forgeries."""

import random
from dataclasses import replace

import pytest

from repro.crypto.groups import small_group
from repro.crypto.schnorr import Signature, keygen


@pytest.fixture()
def key():
    return keygen(random.Random(3), small_group())


def test_sign_verify_roundtrip(key):
    rng = random.Random(4)
    for message in ("hello", ("tuple", 1), b"bytes", 42):
        sig = key.sign(message, rng)
        assert key.verify_key.verify(message, sig)


def test_wrong_message_rejected(key):
    sig = key.sign("msg", random.Random(5))
    assert not key.verify_key.verify("other", sig)


def test_wrong_key_rejected(key):
    other = keygen(random.Random(6), small_group())
    sig = key.sign("msg", random.Random(7))
    assert not other.verify_key.verify("msg", sig)


def test_tampered_signature_rejected(key):
    sig = key.sign("msg", random.Random(8))
    grp = key.group
    assert not key.verify_key.verify(
        "msg", replace(sig, response=(sig.response + 1) % grp.q)
    )
    assert not key.verify_key.verify(
        "msg", replace(sig, commit=grp.mul(sig.commit, grp.g))
    )


def test_malformed_values_rejected(key):
    grp = key.group
    assert not key.verify_key.verify("msg", Signature(commit=0, response=5))
    assert not key.verify_key.verify("msg", Signature(commit=grp.p, response=5))
    assert not key.verify_key.verify("msg", Signature(commit=5, response=grp.q))


def test_signatures_are_randomized(key):
    a = key.sign("msg", random.Random(9))
    b = key.sign("msg", random.Random(10))
    assert a != b  # fresh nonce per signature
    assert key.verify_key.verify("msg", a) and key.verify_key.verify("msg", b)


def test_distinct_keys_distinct_verify_keys():
    rng = random.Random(11)
    keys = [keygen(rng, small_group()) for _ in range(10)]
    assert len({k.verify_key.h for k in keys}) == 10
