"""Dealerless key generation and verifiable resharing.

The headline properties: a cluster that never had a dealer ends up with
key material indistinguishable (API-wise) from a dealt one; bad dealers
are expelled rather than aborting the run; and resharing to a new
membership preserves the public keys while making every old share
useless.
"""

import random
from dataclasses import replace

import pytest

from repro.adversary.attributes import example1_access_formula
from repro.adversary.quorums import quorum_system_for
from repro.core.protocol import Context
from repro.core.runtime import ProtocolRuntime
from repro.crypto.coin import CoinShareholder
from repro.crypto.dkg import (
    BootstrapPublic,
    DistributedKeyGeneration,
    FeldmanTree,
    VerifiableResharing,
    build_party_keys,
    build_public_keys,
    deal_verifiable,
    dkg_session,
    provision_bootstrap,
    reshare_session,
    secret_commitment,
    slot_commitment,
    tree_commitments,
    tree_consistent,
)
from repro.crypto.groups import small_group
from repro.crypto.keystore import (
    party_from_dict,
    party_to_dict,
    public_from_dict,
    public_to_dict,
)
from repro.crypto.lsss import LsssScheme, threshold_scheme
from repro.net.scheduler import RandomScheduler
from repro.net.simulator import Network

from ..helpers import run_until_outputs

GROUP = small_group()

# One 5-party PKI for the whole module: the n=4 epochs simply use the
# first four bundles, so signing keys stay stable across epochs.
BUNDLES = provision_bootstrap(list(range(5)), random.Random(0xB007), GROUP)


def _network(parties, quorum, seed):
    network = Network(RandomScheduler(), random.Random(seed))
    public = BootstrapPublic(n=len(parties), quorum=quorum)
    runtimes = {}
    for party in parties:
        runtime = ProtocolRuntime(party, network, public, BUNDLES[party], seed=seed)
        network.attach(party, runtime)
        runtimes[party] = runtime
    return network, runtimes


def _run_dkg(n=4, t=1, seed=7, factory=None, spawn_on=None):
    scheme = threshold_scheme(n, t, GROUP.q)
    quorum = quorum_system_for(n, t=t)
    network, runtimes = _network(list(range(n)), quorum, seed)
    session = dkg_session("test")
    make = factory or (lambda party: DistributedKeyGeneration(GROUP, scheme))
    for party in spawn_on if spawn_on is not None else range(n):
        runtimes[party].spawn(session, make(party))
    return scheme, quorum, network, runtimes, session


@pytest.fixture(scope="module")
def dkg_4():
    """A completed 4-party DKG plus assembled dealer-compatible keys."""
    scheme, quorum, network, runtimes, session = _run_dkg()
    outputs = run_until_outputs(network, runtimes, session)
    public = build_public_keys(GROUP, scheme, quorum, 4, outputs[0])
    party_keys = {
        p: build_party_keys(p, public, BUNDLES[p].signing_key, outputs[p])
        for p in range(4)
    }
    return scheme, quorum, outputs, public, party_keys


# ===========================================================================
# Feldman tree primitives
# ===========================================================================


def test_deal_verifiable_matches_plain_deal():
    scheme = threshold_scheme(4, 1, GROUP.q)
    secret = 1234567
    sharing, _ = deal_verifiable(GROUP, scheme, secret, random.Random(3))
    plain = scheme.deal(secret, random.Random(3))
    assert sharing.shares == plain.shares


@pytest.mark.parametrize(
    "scheme",
    [
        threshold_scheme(4, 1, GROUP.q),
        LsssScheme(formula=example1_access_formula(), modulus=GROUP.q),
    ],
    ids=["threshold", "example1"],
)
def test_every_subshare_verifies_against_tree(scheme):
    rng = random.Random(5)
    secret = rng.randrange(GROUP.q)
    sharing, tree = deal_verifiable(GROUP, scheme, secret, rng)
    assert tree_consistent(GROUP, scheme, tree)
    assert tree_consistent(GROUP, scheme, tree, root=GROUP.power_of_g(secret))
    assert secret_commitment(tree) == GROUP.power_of_g(secret)
    commitments = tree_commitments(tree)
    for slot, value in sharing.all_slots().items():
        assert GROUP.power_of_g(value) == slot_commitment(GROUP, commitments, slot)


def test_tree_consistent_rejects_tampering():
    scheme = threshold_scheme(4, 1, GROUP.q)
    rng = random.Random(6)
    _, tree = deal_verifiable(GROUP, scheme, 99, rng)
    # wrong root pin
    assert not tree_consistent(GROUP, scheme, tree, root=GROUP.power_of_g(98))
    # a tampered coefficient on a single-gate tree stays internally
    # consistent (it commits to a different polynomial) — it is caught
    # by the root pin or by subshare verification, not by chaining
    path, commitments = tree.nodes[0]
    bad = (GROUP.mul(commitments[0], GROUP.g), *commitments[1:])
    tampered = FeldmanTree(nodes=((path, bad),))
    assert tree_consistent(GROUP, scheme, tampered)
    assert not tree_consistent(
        GROUP, scheme, tampered, root=GROUP.power_of_g(99)
    )
    sharing, _ = deal_verifiable(GROUP, scheme, 99, random.Random(6))
    slot, value = sorted(sharing.all_slots().items())[0]
    assert GROUP.power_of_g(value) != slot_commitment(
        GROUP, tree_commitments(tampered), slot
    )
    # missing / duplicated gates and junk values
    assert not tree_consistent(GROUP, scheme, FeldmanTree(nodes=()))
    assert not tree_consistent(GROUP, scheme, FeldmanTree(nodes=tree.nodes * 2))
    assert not tree_consistent(GROUP, scheme, "not a tree")
    # wrong polynomial degree for the gate
    short = ((path, commitments[:1]),)
    assert not tree_consistent(GROUP, scheme, FeldmanTree(nodes=short))
    # nested formula: break the parent-child chaining
    nested = LsssScheme(formula=example1_access_formula(), modulus=GROUP.q)
    _, ntree = deal_verifiable(GROUP, nested, 7, random.Random(7))
    assert tree_consistent(GROUP, nested, ntree)
    nodes = dict(ntree.nodes)
    child = next(p for p in nodes if p != ())
    nodes[child] = (GROUP.mul(nodes[child][0], GROUP.g), *nodes[child][1:])
    broken = FeldmanTree(nodes=tuple(sorted(nodes.items())))
    assert not tree_consistent(GROUP, nested, broken)


# ===========================================================================
# DKG happy path: dealer-equivalent key material
# ===========================================================================


def test_dkg_outputs_agree(dkg_4):
    _, quorum, outputs, public, _ = dkg_4
    digests = {out.digest for out in outputs.values()}
    assert len(digests) == 1
    for out in outputs.values():
        assert out.qualified == (0, 1, 2, 3)
        assert quorum.is_quorum(frozenset(p for p, _ in out.certificate))
        assert out.encryption_h == outputs[0].encryption_h
        assert out.coin_verification == outputs[0].coin_verification
    for party in range(4):
        assert (
            public.verify_keys[party].h == BUNDLES[party].signing_key.verify_key.h
        )


def test_dkg_coin_is_drop_in(dkg_4):
    _, _, _, public, party_keys = dkg_4
    rng = random.Random(11)
    values = set()
    for subset in ([0, 1], [2, 3], [1, 3]):
        shares = {
            p: party_keys[p].coin.share_for("dkg-coin", rng) for p in subset
        }
        for share in shares.values():
            assert public.coin.verify_share(share)
        values.add(public.coin.combine("dkg-coin", shares))
    assert len(values) == 1


def test_dkg_encryption_is_drop_in(dkg_4):
    _, _, _, public, party_keys = dkg_4
    rng = random.Random(12)
    ct = public.encryption.encrypt(b"no dealer was harmed", b"L", rng)
    shares = {
        p: party_keys[p].decryption.decryption_share(ct, rng) for p in (0, 3)
    }
    assert public.encryption.combine(ct, shares) == b"no dealer was harmed"


def test_dkg_service_certificates_work(dkg_4):
    _, _, _, public, party_keys = dkg_4
    rng = random.Random(13)
    statement = ("service-reply", b"digest", ("ok", 1))
    shares = {
        p: party_keys[p].service_signer.sign_share(statement, rng) for p in (1, 2)
    }
    certificate = public.service_signature.combine(statement, shares)
    assert public.service_signature.verify(statement, certificate)
    assert not public.service_signature.verify(("other",), certificate)


def test_dkg_keys_roundtrip_through_keystore(dkg_4):
    _, _, _, public, party_keys = dkg_4
    reloaded = public_from_dict(public_to_dict(public))
    assert reloaded.encryption.h == public.encryption.h
    assert reloaded.coin.verification == public.coin.verification
    rng = random.Random(14)
    share = party_keys[2].coin.share_for("persisted", rng)
    assert reloaded.coin.verify_share(share)
    party = party_from_dict(party_to_dict(party_keys[2]), reloaded)
    assert reloaded.coin.verify_share(party.coin.share_for("again", rng))


# ===========================================================================
# Complaints, defenses, expulsion, crash-tolerance
# ===========================================================================


def _corrupt_victim_table(commit, scheme, victim):
    """Corrupt the masked coin subshare destined for ``victim``."""
    slot = next(s for s, owner in scheme.slots() if owner == victim)
    masked = tuple(
        (s, v if s != slot else (v + 1) % GROUP.q) for s, v in commit.masked_coin
    )
    return replace(commit, masked_coin=masked)


def test_complaint_resolved_by_valid_defense():
    """A garbled subshare triggers a complaint; the (honest) dealer's
    public defense re-supplies the victim and nobody is expelled."""

    class GarbledSend(DistributedKeyGeneration):
        def _make_commit(self, ctx):
            return _corrupt_victim_table(
                super()._make_commit(ctx), self.scheme, victim=1
            )

    scheme, quorum, network, runtimes, session = _run_dkg(
        seed=21,
        factory=lambda p: (GarbledSend if p == 0 else DistributedKeyGeneration)(
            GROUP, scheme_
        ),
    )
    outputs = run_until_outputs(network, runtimes, session)
    assert {out.digest for out in outputs.values()} == {outputs[0].digest}
    assert outputs[0].qualified == (0, 1, 2, 3)
    public = build_public_keys(GROUP, scheme, quorum, 4, outputs[0])
    party_keys = {
        p: build_party_keys(p, public, BUNDLES[p].signing_key, outputs[p])
        for p in range(4)
    }
    rng = random.Random(22)
    # The victim's repaired share is as good as anyone's.
    a = public.coin.combine(
        "after-defense",
        {p: party_keys[p].coin.share_for("after-defense", rng) for p in (0, 1)},
    )
    b = public.coin.combine(
        "after-defense",
        {p: party_keys[p].coin.share_for("after-defense", rng) for p in (2, 3)},
    )
    assert a == b


# The factory closure needs the scheme before _run_dkg constructs it.
scheme_ = threshold_scheme(4, 1, GROUP.q)


def test_invalid_defense_expels_dealer():
    """A dealer whose defense also fails verification is expelled; the
    run completes with the remaining contributors (graceful
    degradation, not abort)."""

    class LyingDealer(DistributedKeyGeneration):
        def _make_commit(self, ctx):
            return _corrupt_victim_table(
                super()._make_commit(ctx), self.scheme, victim=1
            )

        def _defense_payload(self, ctx, accuser):
            honest = super()._defense_payload(ctx, accuser)
            return replace(
                honest,
                coin_values=tuple(
                    (s, (v + 1) % GROUP.q) for s, v in honest.coin_values
                ),
            )

    scheme, quorum, network, runtimes, session = _run_dkg(
        seed=23,
        factory=lambda p: (LyingDealer if p == 0 else DistributedKeyGeneration)(
            GROUP, scheme_
        ),
    )
    outputs = run_until_outputs(network, runtimes, session)
    assert {out.digest for out in outputs.values()} == {outputs[0].digest}
    assert outputs[0].qualified == (1, 2, 3)
    public = build_public_keys(GROUP, scheme, quorum, 4, outputs[0])
    assert 0 not in public.verify_keys
    party_keys = {
        p: build_party_keys(p, public, BUNDLES[p].signing_key, outputs[p])
        for p in (1, 2, 3)
    }
    rng = random.Random(24)
    a = public.coin.combine(
        "expelled",
        {p: party_keys[p].coin.share_for("expelled", rng) for p in (1, 2)},
    )
    b = public.coin.combine(
        "expelled",
        {p: party_keys[p].coin.share_for("expelled", rng) for p in (2, 3)},
    )
    assert a == b


def test_flush_drops_crashed_dealer():
    """A dealer that never shows up stalls settlement only until the
    hosts flush; then the session completes without it."""
    scheme, quorum, network, runtimes, session = _run_dkg(
        seed=25, spawn_on=(0, 1, 2)
    )
    network.run()  # quiesce: everyone still waits on dealer 3
    assert all(runtimes[p].result(session) is None for p in (0, 1, 2))
    for party in (0, 1, 2):
        runtimes[party].instances[session].flush(
            Context(runtimes[party], session)
        )
    outputs = run_until_outputs(network, runtimes, session, parties=(0, 1, 2))
    assert outputs[0].qualified == (0, 1, 2)
    assert {out.digest for out in outputs.values()} == {outputs[0].digest}


# ===========================================================================
# Verifiable resharing: membership change, key preservation
# ===========================================================================


def _run_reshare(
    old_scheme,
    old_outputs,
    old_quorum,
    new_members,
    new_t,
    seed,
    all_parties,
):
    new_scheme = threshold_scheme(len(new_members), new_t, GROUP.q)
    new_quorum = quorum_system_for(len(new_members), t=new_t)
    new_verify_keys = {
        p: BUNDLES[p].signing_key.verify_key.h for p in new_members
    }
    network, runtimes = _network(all_parties, old_quorum, seed)
    session = reshare_session(1, "test")
    reference = old_outputs[min(old_outputs)]
    for party in all_parties:
        old_out = old_outputs.get(party)
        runtimes[party].spawn(
            session,
            VerifiableResharing(
                GROUP,
                old_scheme,
                new_scheme,
                reference.coin_verification,
                reference.enc_verification,
                new_members=tuple(new_members),
                new_quorum=new_quorum,
                new_verify_keys=new_verify_keys,
                old_coin_subshares=old_out.coin_subshares if old_out else None,
                old_enc_subshares=old_out.enc_subshares if old_out else None,
            ),
        )
    outputs = run_until_outputs(network, runtimes, session, parties=new_members)
    return new_scheme, new_quorum, outputs


@pytest.fixture(scope="module")
def reshared_4_to_5(dkg_4):
    old_scheme, old_quorum, old_outputs, old_public, old_party_keys = dkg_4
    new_scheme, new_quorum, outputs = _run_reshare(
        old_scheme,
        old_outputs,
        old_quorum,
        new_members=[0, 1, 2, 3, 4],
        new_t=1,
        seed=31,
        all_parties=[0, 1, 2, 3, 4],
    )
    public = build_public_keys(GROUP, new_scheme, new_quorum, 5, outputs[0])
    party_keys = {
        p: build_party_keys(p, public, BUNDLES[p].signing_key, outputs[p])
        for p in range(5)
    }
    return new_scheme, outputs, public, party_keys


def test_reshare_preserves_public_keys(dkg_4, reshared_4_to_5):
    _, _, old_outputs, old_public, old_party_keys = dkg_4
    _, outputs, public, party_keys = reshared_4_to_5
    assert {out.digest for out in outputs.values()} == {outputs[0].digest}
    assert public.encryption.h == old_public.encryption.h
    rng = random.Random(32)
    # Same coin secret: old epoch and new epoch toss identical coins.
    old_value = old_public.coin.combine(
        "cross-epoch",
        {p: old_party_keys[p].coin.share_for("cross-epoch", rng) for p in (0, 1)},
    )
    new_value = public.coin.combine(
        "cross-epoch",
        {p: party_keys[p].coin.share_for("cross-epoch", rng) for p in (3, 4)},
    )
    assert old_value == new_value
    # A ciphertext from the old epoch decrypts with new-epoch shares.
    ct = old_public.encryption.encrypt(b"across the epoch", b"L", rng)
    shares = {
        p: party_keys[p].decryption.decryption_share(ct, rng) for p in (2, 4)
    }
    assert public.encryption.combine(ct, shares) == b"across the epoch"


def test_reshare_randomizes_verification(dkg_4, reshared_4_to_5):
    _, _, old_outputs, _, _ = dkg_4
    _, outputs, _, _ = reshared_4_to_5
    old = old_outputs[0].coin_verification
    new = outputs[0].coin_verification
    # Shared slot paths exist in both formulas but their values are
    # freshly randomized — this is what retires old shares.
    common = set(old) & set(new)
    assert common
    assert all(old[slot] != new[slot] for slot in common)


def test_old_shares_useless_in_new_epoch(dkg_4, reshared_4_to_5):
    _, _, old_outputs, _, _ = dkg_4
    _, _, public, _ = reshared_4_to_5
    rng = random.Random(33)
    stale = CoinShareholder(
        party=1, public=public.coin, subshares=dict(old_outputs[1].coin_subshares)
    )
    assert not public.coin.verify_share(stale.share_for("stale", rng))


def test_reshare_back_to_4_expels_departed_member(dkg_4, reshared_4_to_5):
    _, _, _, old_public, _ = dkg_4
    mid_scheme, mid_outputs, mid_public, _ = reshared_4_to_5
    new_scheme, new_quorum, outputs = _run_reshare(
        mid_scheme,
        mid_outputs,
        mid_public.quorum,
        new_members=[0, 1, 2, 3],
        new_t=1,
        seed=34,
        all_parties=[0, 1, 2, 3, 4],
    )
    public = build_public_keys(GROUP, new_scheme, new_quorum, 4, outputs[0])
    party_keys = {
        p: build_party_keys(p, public, BUNDLES[p].signing_key, outputs[p])
        for p in range(4)
    }
    # Still the original dealerless key, two reconfigurations later.
    assert public.encryption.h == old_public.encryption.h
    rng = random.Random(35)
    ct = old_public.encryption.encrypt(b"still here", b"L", rng)
    shares = {
        p: party_keys[p].decryption.decryption_share(ct, rng) for p in (1, 3)
    }
    assert public.encryption.combine(ct, shares) == b"still here"
    # The departed member's epoch-1 shares fail against epoch-2 keys.
    stale = CoinShareholder(
        party=4, public=public.coin, subshares=dict(mid_outputs[4].coin_subshares)
    )
    share = stale.share_for("departed", rng)
    assert not public.coin.verify_share(share)


def test_reshare_tolerates_crashed_old_dealer(dkg_4):
    """One old shareholder crashes mid-resharing: the rest form a
    qualified set and the new epoch still opens with the same key."""
    old_scheme, old_quorum, old_outputs, old_public, _ = dkg_4
    new_scheme = threshold_scheme(5, 1, GROUP.q)
    new_quorum = quorum_system_for(5, t=1)
    new_verify_keys = {p: BUNDLES[p].signing_key.verify_key.h for p in range(5)}
    network, runtimes = _network([0, 1, 2, 3, 4], old_quorum, seed=36)
    session = reshare_session(1, "crash")
    reference = old_outputs[0]
    for party in (0, 1, 2, 4):  # party 3 never starts resharing
        old_out = old_outputs.get(party) if party != 4 else None
        runtimes[party].spawn(
            session,
            VerifiableResharing(
                GROUP,
                old_scheme,
                new_scheme,
                reference.coin_verification,
                reference.enc_verification,
                new_members=(0, 1, 2, 3, 4),
                new_quorum=new_quorum,
                new_verify_keys=new_verify_keys,
                old_coin_subshares=old_out.coin_subshares if old_out else None,
                old_enc_subshares=old_out.enc_subshares if old_out else None,
            ),
        )
    network.run()  # quiesce: dealer 3's resharing never arrives
    for party in (0, 1, 2, 4):
        runtimes[party].instances[session].flush(
            Context(runtimes[party], session)
        )
    # Party 3 still counts toward the NEW quorum's readies, but it is
    # down — completion must come from the other four (n-t of 5).
    outputs = run_until_outputs(
        network, runtimes, session, parties=(0, 1, 2, 4)
    )
    assert outputs[0].qualified == (0, 1, 2)
    assert outputs[0].encryption_h == old_public.encryption.h
