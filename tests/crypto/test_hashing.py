"""Random-oracle helpers: unambiguous encoding and domain separation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.groups import small_group
from repro.crypto.hashing import (
    encode,
    hash_bytes,
    hash_to_exponent,
    hash_to_group,
    hash_to_int,
    mgf1,
    xor_bytes,
)
from repro.crypto.schnorr import Signature

# Values the protocols actually hash: nested tuples of primitives.
atoms = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**12), 10**12),
    st.text(max_size=20),
    st.binary(max_size=20),
)
values = st.recursive(atoms, lambda c: st.tuples(c, c) | st.lists(c, max_size=3), max_leaves=8)


@given(values, values)
def test_encode_injective_on_distinct_values(a, b):
    # Lists and tuples encode identically by design; normalize first.
    # The encoding is type-tagged (encode(True) != encode(1)), and plain
    # == would conflate bool with int, so compare (type, value) pairs.
    def norm(v):
        if isinstance(v, (list, tuple)):
            return tuple(norm(x) for x in v)
        return (type(v).__name__, v)

    if norm(a) != norm(b):
        assert encode(a) != encode(b)
    else:
        assert encode(a) == encode(b)


def test_encode_distinguishes_adjacent_strings():
    # The classic concatenation pitfall: ("ab","c") vs ("a","bc").
    assert encode("ab", "c") != encode("a", "bc")
    assert encode(b"ab", b"c") != encode(b"a", b"bc")
    assert encode(12, 3) != encode(1, 23)


def test_encode_distinguishes_types():
    assert encode(1) != encode("1")
    assert encode(b"1") != encode("1")
    assert encode(True) != encode(1)
    assert encode(None) != encode("")


def test_encode_handles_dataclasses_and_dicts():
    sig = Signature(commit=5, response=9)
    assert encode(sig) == encode(Signature(commit=5, response=9))
    assert encode(sig) != encode(Signature(commit=5, response=10))
    assert encode({1: "a", 2: "b"}) == encode({2: "b", 1: "a"})


def test_encode_rejects_unknown_types():
    with pytest.raises(TypeError):
        encode(object())


def test_domain_separation():
    assert hash_bytes("a", "x") != hash_bytes("b", "x")
    assert hash_to_int("a", "x") != hash_to_int("b", "x")


def test_hash_to_int_respects_bit_bound():
    for bits in (8, 64, 256, 300):
        v = hash_to_int("t", "data", bits=bits)
        assert 0 <= v < (1 << bits)


def test_hash_to_exponent_in_range():
    grp = small_group()
    for i in range(50):
        e = hash_to_exponent(grp, "t", i)
        assert 0 < e < grp.q


def test_hash_to_group_members():
    grp = small_group()
    seen = set()
    for i in range(30):
        h = hash_to_group(grp, "t", i)
        assert grp.is_member(h)
        seen.add(h)
    assert len(seen) == 30


def test_xor_bytes():
    assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"
    with pytest.raises(ValueError):
        xor_bytes(b"a", b"ab")


def test_mgf1_lengths_and_prefix_freeness():
    short = mgf1(b"seed", 10)
    long = mgf1(b"seed", 100)
    assert len(short) == 10 and len(long) == 100
    assert long.startswith(short)  # counter-mode expansion
    assert mgf1(b"seed2", 10) != short
