"""Threshold coin-tossing: consistency, robustness, unpredictability."""

import random
from dataclasses import replace

import pytest

from repro.adversary.attributes import example1_access_formula
from repro.crypto.coin import deal_coin
from repro.crypto.groups import small_group
from repro.crypto.lsss import LsssScheme, threshold_scheme

GROUP = small_group()


@pytest.fixture(scope="module")
def coin_5_2():
    rng = random.Random(21)
    scheme = threshold_scheme(5, 2, GROUP.q)
    return deal_coin(GROUP, scheme, rng)


def test_all_qualified_sets_agree(coin_5_2):
    public, holders = coin_5_2
    rng = random.Random(22)
    values = set()
    for subset in ([0, 1, 2], [2, 3, 4], [0, 2, 4], [1, 3, 4], [0, 1, 2, 3, 4]):
        shares = {i: holders[i].share_for("coin-X", rng) for i in subset}
        values.add(public.combine("coin-X", shares))
    assert len(values) == 1
    assert values.pop() in (0, 1)


def test_different_names_give_independent_coins(coin_5_2):
    public, holders = coin_5_2
    rng = random.Random(23)
    outcomes = []
    for name in range(40):
        shares = {i: holders[i].share_for(("c", name), rng) for i in (0, 1, 2)}
        outcomes.append(public.combine(("c", name), shares))
    # Statistically both values must appear across 40 coins
    # (probability of a constant sequence is 2^-39).
    assert set(outcomes) == {0, 1}


def test_share_verification_accepts_honest(coin_5_2):
    public, holders = coin_5_2
    rng = random.Random(24)
    for i in range(5):
        assert public.verify_share(holders[i].share_for("v", rng))


def test_share_verification_rejects_wrong_value(coin_5_2):
    public, holders = coin_5_2
    rng = random.Random(25)
    share = holders[0].share_for("w", rng)
    slot = next(iter(share.values))
    forged_values = dict(share.values)
    forged_values[slot] = GROUP.mul(forged_values[slot], GROUP.g)
    assert not public.verify_share(replace(share, values=forged_values))


def test_share_verification_rejects_replayed_name(coin_5_2):
    """A share (with proof) for coin A must not pass as a share for B."""
    public, holders = coin_5_2
    rng = random.Random(26)
    share = holders[1].share_for("A", rng)
    assert not public.verify_share(replace(share, name="B"))


def test_share_verification_rejects_missing_slots(coin_5_2):
    public, holders = coin_5_2
    rng = random.Random(27)
    share = holders[2].share_for("m", rng)
    assert not public.verify_share(replace(share, values={}))


def test_combine_requires_qualified_set(coin_5_2):
    public, holders = coin_5_2
    rng = random.Random(28)
    shares = {i: holders[i].share_for("q", rng) for i in (0, 1)}
    with pytest.raises(ValueError):
        public.combine("q", shares)


def test_unqualified_shares_do_not_determine_coin(coin_5_2):
    """Unpredictability proxy: the value a corruptible coalition could
    compute from its own shares (by trying both completions) is not
    fixed — over many coins the true value disagrees with any guess
    based on two shares about half the time.  Here we just check the
    honest-combined coins are not a constant function of the first two
    shares' bits."""
    public, holders = coin_5_2
    rng = random.Random(29)
    disagreements = 0
    for name in range(30):
        shares3 = {i: holders[i].share_for(("u", name), rng) for i in (0, 1, 2)}
        true_value = public.combine(("u", name), shares3)
        other = {i: holders[i].share_for(("u", name), rng) for i in (2, 3, 4)}
        assert public.combine(("u", name), other) == true_value
        disagreements += true_value
    assert 0 < disagreements < 30


def test_coin_over_generalized_structure():
    rng = random.Random(30)
    scheme = LsssScheme(formula=example1_access_formula(), modulus=GROUP.q)
    public, holders = deal_coin(GROUP, scheme, rng)
    qualified = [{0, 4, 6}, {1, 5, 7, 8}, {4, 5, 6, 7, 8}]
    values = set()
    for subset in qualified:
        shares = {i: holders[i].share_for("gen", rng) for i in subset}
        assert all(public.verify_share(s) for s in shares.values())
        values.add(public.combine("gen", shares))
    assert len(values) == 1
    # All of class a together cannot open the coin.
    shares = {i: holders[i].share_for("gen", rng) for i in (0, 1, 2, 3)}
    with pytest.raises(ValueError):
        public.combine("gen", shares)


def test_many_bits_extraction(coin_5_2):
    public, holders = coin_5_2
    rng = random.Random(31)
    shares = {i: holders[i].share_for("bits", rng) for i in (0, 3, 4)}
    v63 = public.combine_many_bits("bits", shares, bits=63)
    assert 0 <= v63 < (1 << 63)
    other = {i: holders[i].share_for("bits", rng) for i in (1, 2, 3)}
    assert public.combine_many_bits("bits", other, bits=63) == v63


def test_dealer_rejects_mismatched_modulus():
    rng = random.Random(32)
    scheme = threshold_scheme(4, 1, GROUP.q + 2)
    with pytest.raises(ValueError):
        deal_coin(GROUP, scheme, rng)
