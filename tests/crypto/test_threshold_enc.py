"""TDH2 threshold encryption: robustness and CCA2-style rejection."""

import random
from dataclasses import replace

import pytest

from repro.adversary.attributes import example1_access_formula
from repro.crypto.groups import small_group
from repro.crypto.lsss import LsssScheme, threshold_scheme
from repro.crypto.threshold_enc import deal_encryption

GROUP = small_group()


@pytest.fixture(scope="module")
def enc_4_1():
    rng = random.Random(41)
    scheme = threshold_scheme(4, 1, GROUP.q)
    return deal_encryption(GROUP, scheme, rng)


def _decrypt(public, holders, ct, subset, rng):
    shares = {i: holders[i].decryption_share(ct, rng) for i in subset}
    assert all(s is not None for s in shares.values())
    return public.combine(ct, shares)


def test_encrypt_decrypt_roundtrip(enc_4_1):
    public, holders = enc_4_1
    rng = random.Random(42)
    for message in (b"", b"x", b"a longer secret message!", bytes(100)):
        ct = public.encrypt(message, b"label", rng)
        assert public.check_ciphertext(ct)
        assert _decrypt(public, holders, ct, [0, 1], rng) == message


def test_different_qualified_sets_agree(enc_4_1):
    public, holders = enc_4_1
    rng = random.Random(43)
    ct = public.encrypt(b"secret", b"L", rng)
    for subset in ([0, 1], [2, 3], [1, 3], [0, 1, 2, 3]):
        assert _decrypt(public, holders, ct, subset, rng) == b"secret"


def test_tampered_payload_rejected(enc_4_1):
    public, holders = enc_4_1
    rng = random.Random(44)
    ct = public.encrypt(b"secret", b"L", rng)
    bad = replace(ct, payload=bytes(len(ct.payload)))
    assert not public.check_ciphertext(bad)
    assert holders[0].decryption_share(bad, rng) is None


def test_tampered_label_rejected(enc_4_1):
    """The label is bound into the validity proof: swapping it breaks
    the ciphertext (no re-labeling of observed requests)."""
    public, holders = enc_4_1
    rng = random.Random(45)
    ct = public.encrypt(b"secret", b"alice", rng)
    assert not public.check_ciphertext(replace(ct, label=b"mallory"))


def test_tampered_group_elements_rejected(enc_4_1):
    public, holders = enc_4_1
    rng = random.Random(46)
    ct = public.encrypt(b"secret", b"L", rng)
    assert not public.check_ciphertext(replace(ct, u=GROUP.mul(ct.u, GROUP.g)))
    assert not public.check_ciphertext(replace(ct, u_bar=GROUP.mul(ct.u_bar, GROUP.g)))
    assert not public.check_ciphertext(replace(ct, f=(ct.f + 1) % GROUP.q))
    assert not public.check_ciphertext(replace(ct, e=(ct.e + 1) % GROUP.q))


def test_mauling_payload_yields_invalid_ciphertext(enc_4_1):
    """CCA2 in action: XOR-mauling the payload (which would flip bits of
    the plaintext under the one-time pad) invalidates the proof, so no
    honest party will produce a decryption share for it."""
    public, holders = enc_4_1
    rng = random.Random(47)
    ct = public.encrypt(b"patent: gadget", b"L", rng)
    mauled_payload = bytes(b ^ 1 for b in ct.payload)
    mauled = replace(ct, payload=mauled_payload)
    assert not public.check_ciphertext(mauled)
    assert all(holders[i].decryption_share(mauled, rng) is None for i in range(4))


def test_share_verification_rejects_forgery(enc_4_1):
    public, holders = enc_4_1
    rng = random.Random(48)
    ct = public.encrypt(b"m", b"L", rng)
    share = holders[2].decryption_share(ct, rng)
    slot = next(iter(share.values))
    forged = dict(share.values)
    forged[slot] = GROUP.mul(forged[slot], GROUP.g)
    assert not public.verify_share(ct, replace(share, values=forged))


def test_share_for_other_ciphertext_rejected(enc_4_1):
    public, holders = enc_4_1
    rng = random.Random(49)
    ct1 = public.encrypt(b"m1", b"L", rng)
    ct2 = public.encrypt(b"m2", b"L", rng)
    share1 = holders[0].decryption_share(ct1, rng)
    assert not public.verify_share(ct2, share1)


def test_combine_requires_qualified_set(enc_4_1):
    public, holders = enc_4_1
    rng = random.Random(50)
    ct = public.encrypt(b"m", b"L", rng)
    shares = {0: holders[0].decryption_share(ct, rng)}
    with pytest.raises(ValueError):
        public.combine(ct, shares)


def test_combine_rejects_invalid_ciphertext(enc_4_1):
    public, holders = enc_4_1
    rng = random.Random(51)
    ct = public.encrypt(b"m", b"L", rng)
    shares = {i: holders[i].decryption_share(ct, rng) for i in (0, 1)}
    bad = replace(ct, payload=ct.payload + b"!")
    with pytest.raises(ValueError):
        public.combine(bad, shares)


def test_ciphertexts_are_randomized(enc_4_1):
    public, _ = enc_4_1
    ct1 = public.encrypt(b"same", b"L", random.Random(52))
    ct2 = public.encrypt(b"same", b"L", random.Random(53))
    assert ct1.payload != ct2.payload and ct1.u != ct2.u


def test_encryption_over_generalized_structure():
    rng = random.Random(54)
    scheme = LsssScheme(formula=example1_access_formula(), modulus=GROUP.q)
    public, holders = deal_encryption(GROUP, scheme, rng)
    ct = public.encrypt(b"multi-site secret", b"L", rng)
    shares = {i: holders[i].decryption_share(ct, rng) for i in (0, 4, 6)}
    assert public.combine(ct, shares) == b"multi-site secret"
    # class-a coalition alone cannot decrypt
    shares_a = {i: holders[i].decryption_share(ct, rng) for i in (0, 1, 2, 3)}
    with pytest.raises(ValueError):
        public.combine(ct, shares_a)
