"""Shamir secret sharing over Z_q."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.groups import small_group
from repro.crypto.shamir import (
    Share,
    evaluate_polynomial,
    lagrange_coefficients,
    reconstruct,
    share_secret,
)

Q = small_group().q


def test_any_t_plus_1_shares_reconstruct():
    rng = random.Random(1)
    shares, _ = share_secret(123456, 7, 2, Q, rng)
    for subset in ([0, 1, 2], [4, 5, 6], [0, 3, 6], [2, 3, 5]):
        assert reconstruct([shares[i] for i in subset], Q) == 123456


def test_more_than_t_plus_1_shares_also_reconstruct():
    rng = random.Random(2)
    shares, _ = share_secret(99, 5, 1, Q, rng)
    assert reconstruct(shares, Q) == 99


def test_t_shares_are_independent_of_secret():
    """Information-theoretic hiding: for any t shares there exists a
    consistent polynomial for *every* candidate secret."""
    rng = random.Random(3)
    shares, _ = share_secret(5, 4, 2, Q, rng)
    two = shares[:2]
    # Interpolating points {(0, s'), (1, y1), (2, y2)} is always possible:
    # degree-2 polynomial through any 3 points. So two shares + any
    # claimed secret are consistent — verify by explicit interpolation.
    for claimed in (5, 6, 12345):
        pts = [Share(index=0, value=claimed % Q)] + two
        lam = lagrange_coefficients([p.index for p in pts], Q, at=3)
        poly_at_3 = sum(lam[p.index] * p.value for p in pts) % Q
        lam0 = lagrange_coefficients([p.index for p in pts], Q, at=0)
        back = sum(lam0[p.index] * p.value for p in pts) % Q
        assert back == claimed % Q
        assert 0 <= poly_at_3 < Q


@given(st.integers(0, Q - 1), st.integers(0, 4), st.integers(2, 8))
@settings(max_examples=40)
def test_share_reconstruct_roundtrip_property(secret, t, extra):
    n = t + extra
    rng = random.Random(secret ^ (t << 10) ^ (n << 20))
    shares, _ = share_secret(secret, n, t, Q, rng)
    chosen = rng.sample(shares, t + 1)
    assert reconstruct(chosen, Q) == secret


def test_invalid_threshold_rejected():
    rng = random.Random(5)
    with pytest.raises(ValueError):
        share_secret(1, 3, 3, Q, rng)  # t must be < n
    with pytest.raises(ValueError):
        share_secret(1, 3, -1, Q, rng)


def test_lagrange_at_arbitrary_point_interpolates():
    coeffs = [7, 3, 11]  # f(x) = 7 + 3x + 11x^2
    points = [1, 2, 5]
    values = {x: evaluate_polynomial(coeffs, x, Q) for x in points}
    lam = lagrange_coefficients(points, Q, at=9)
    expected = evaluate_polynomial(coeffs, 9, Q)
    assert sum(lam[x] * values[x] for x in points) % Q == expected


def test_lagrange_rejects_duplicate_indices():
    with pytest.raises(ValueError):
        lagrange_coefficients([1, 1, 2], Q)


def test_lagrange_coefficients_sum_to_one_at_zero():
    lam = lagrange_coefficients([2, 5, 9], Q, at=0)
    # Interpolating the constant polynomial 1 must give 1.
    assert sum(lam.values()) % Q == 1


def test_evaluate_polynomial_horner():
    assert evaluate_polynomial([1, 2, 3], 10, 10**9) == 1 + 20 + 300
    assert evaluate_polynomial([], 5, 97) == 0
