"""Proactive refresh under partial participation and non-threshold
structures — the edge cases a live reconfiguring cluster actually hits."""

import random

from repro.adversary.attributes import (
    example1_access_formula,
    example2_access_formula,
    example2_structure,
)
from repro.crypto.groups import small_group
from repro.crypto.lsss import LsssScheme, threshold_scheme
from repro.crypto.proactive import (
    apply_refresh,
    deal_zero_sharing,
    refresh_lsss,
    verify_zero_sharing,
)
from repro.crypto.shamir import reconstruct, share_secret

GROUP = small_group()


def test_refresh_survives_crashed_dealer():
    """A party that crashes before dealing its zero-sharing simply
    drops out of the update set; the others' updates still refresh."""
    rng = random.Random(31)
    n, t, secret = 5, 2, 424242
    shares, _ = share_secret(secret, n, t, GROUP.q, rng)
    # Parties 0..3 deal; party 4 crashed mid-round and dealt nothing.
    updates = [deal_zero_sharing(GROUP, n, t, dealer=d, rng=rng) for d in range(4)]
    refreshed = [apply_refresh(GROUP, s, updates) for s in shares]
    assert reconstruct(refreshed[:3], GROUP.q) == secret
    assert all(old.value != new.value for old, new in zip(shares, refreshed))


def test_crashed_receiver_catches_up_from_stored_updates():
    """A party that crashes *during* the update round holds a stale
    share: it no longer interpolates with the new epoch, but replaying
    the (verifiable, hence storable) updates on restart repairs it."""
    rng = random.Random(32)
    n, t, secret = 5, 2, 31337
    shares, _ = share_secret(secret, n, t, GROUP.q, rng)
    updates = [deal_zero_sharing(GROUP, n, t, dealer=d, rng=rng) for d in range(3)]
    refreshed = [apply_refresh(GROUP, s, updates) for s in shares]
    # Party 0 crashed before applying: its stale share poisons any
    # reconstruction attempt with new-epoch shares.
    assert reconstruct([shares[0], refreshed[1], refreshed[2]], GROUP.q) != secret
    # On restart it verifies and applies the same updates — catch-up
    # needs no extra protocol round, just the stored zero-sharings.
    repaired = apply_refresh(GROUP, shares[0], updates)
    assert repaired.value == refreshed[0].value
    assert reconstruct([repaired, refreshed[1], refreshed[2]], GROUP.q) == secret


def test_zero_sharing_missing_point_rejected():
    rng = random.Random(33)
    sharing = deal_zero_sharing(GROUP, 4, 1, dealer=0, rng=rng)
    # A point outside the dealt set (e.g. a joiner probing an old
    # epoch's update) has no subshare and must not verify.
    assert not verify_zero_sharing(GROUP, sharing, 9)
    from dataclasses import replace

    assert not verify_zero_sharing(GROUP, replace(sharing, commitments=[]), 1)


def test_refresh_lsss_example2_structure():
    """Refresh along the paper's Example 2 formula (two-attribute grid,
    16 parties): every qualified set still reconstructs, no corruptible
    coalition gains anything."""
    rng = random.Random(34)
    scheme = LsssScheme(formula=example2_access_formula(), modulus=GROUP.q)
    sharing = scheme.deal(2001, rng)
    refreshed = refresh_lsss(scheme, sharing, rng)
    structure = example2_structure()
    worst = max(structure.maximal_sets, key=len)
    rest = set(range(16)) - worst
    assert scheme.reconstruct(refreshed, rest) == 2001
    for bad in structure.maximal_sets[:4]:
        assert scheme.recombination(set(bad)) is None
    # The refresh rerandomized at least part of the sharing.
    before, after = sharing.all_slots(), refreshed.all_slots()
    assert any(after[slot] != value for slot, value in before.items())


def test_refresh_lsss_nested_formula_slots_stable():
    """The refresh must preserve the slot *structure* (same leaves, same
    parties) for Example 1's nested formula — only values change."""
    rng = random.Random(35)
    scheme = LsssScheme(formula=example1_access_formula(), modulus=GROUP.q)
    sharing = scheme.deal(99, rng)
    refreshed = refresh_lsss(scheme, sharing, rng)
    assert set(sharing.all_slots()) == set(refreshed.all_slots())
    assert set(sharing.shares) == set(refreshed.shares)
    assert scheme.reconstruct(refreshed, {0, 4, 6}) == 99


def test_refreshed_key_keeps_public_key():
    """The epoch's defining property: shares change, the public key
    (g^secret — what clients pin) does not."""
    rng = random.Random(36)
    scheme = threshold_scheme(4, 1, GROUP.q)
    secret = rng.randrange(GROUP.q)
    public_key = GROUP.power_of_g(secret)
    sharing = scheme.deal(secret, rng)
    refreshed = refresh_lsss(scheme, sharing, rng)
    recovered = scheme.reconstruct(refreshed, {0, 2})
    assert GROUP.power_of_g(recovered) == public_key
    assert sharing.all_slots() != refreshed.all_slots()
