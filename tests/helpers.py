"""Test utilities: building networks of runtimes around dealt keys."""

from __future__ import annotations

import random

from repro.core.protocol import Context, SessionId
from repro.core.runtime import ProtocolRuntime
from repro.crypto.dealer import SystemKeys
from repro.net.scheduler import RandomScheduler, Scheduler
from repro.net.simulator import Network

__all__ = ["make_network", "spawn_all", "run_until_outputs", "ctx_for"]


def make_network(
    keys: SystemKeys,
    scheduler: Scheduler | None = None,
    seed: int = 0,
    parties: list[int] | None = None,
) -> tuple[Network, dict[int, ProtocolRuntime]]:
    """A fresh network with one runtime per server (or per listed party)."""
    network = Network(scheduler or RandomScheduler(), random.Random(seed))
    runtimes: dict[int, ProtocolRuntime] = {}
    for party in parties if parties is not None else range(keys.public.n):
        runtime = ProtocolRuntime(
            party, network, keys.public, keys.private[party], seed=seed
        )
        network.attach(party, runtime)
        runtimes[party] = runtime
    return network, runtimes


def spawn_all(runtimes, session: SessionId, factory) -> None:
    """Spawn ``factory(party)`` at the session on every runtime."""
    for party, runtime in runtimes.items():
        runtime.spawn(session, factory(party))


def run_until_outputs(
    network: Network,
    runtimes,
    session: SessionId,
    parties=None,
    max_steps: int = 300_000,
) -> dict[int, object]:
    """Run until every listed party has an output for the session."""
    waiting = list(parties) if parties is not None else list(runtimes)
    network.run(
        max_steps=max_steps,
        until=lambda: all(runtimes[p].result(session) is not None for p in waiting),
    )
    return {p: runtimes[p].result(session) for p in waiting}


def ctx_for(runtime: ProtocolRuntime, session: SessionId) -> Context:
    return Context(runtime, session)
