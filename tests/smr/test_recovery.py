"""Crash-recovery (Section 6): a restarted replica rebuilds its state."""

import pytest

from repro.core.atomic_broadcast import AbcConfig
from repro.core.protocol import Context
from repro.core.runtime import ProtocolRuntime
from repro.net.scheduler import PartitionScheduler
from repro.smr import KeyValueStore, build_service
from repro.smr.replica import RecoverLog, Replica, service_session


def _deploy(seed=51, abc_config=None):
    dep = build_service(4, KeyValueStore, t=1, seed=seed, abc_config=abc_config)
    client = dep.new_client()
    dep.network.start()
    return dep, client


def _drain(dep):
    dep.network.run(max_steps=600_000)


def _fresh_rejoin(dep, party, seed=99, abc_config=None):
    """Replace a crashed server with a fresh (state-less) replica."""
    runtime = ProtocolRuntime(
        party, dep.network, dep.keys.public, dep.keys.private[party], seed=seed
    )
    replica = Replica(KeyValueStore(), abc_config=abc_config)
    runtime.spawn(service_session("service"), replica)
    dep.network.recover(party, runtime)
    replica.begin_recovery(Context(runtime, service_session("service")))
    dep.replicas[party] = replica
    return replica


def test_recovered_replica_matches_peers():
    dep, client = _deploy()
    nonces = [client.submit(("set", f"k{i}", i)) for i in range(3)]
    dep.run_until_complete(client, nonces)
    _drain(dep)

    dep.network.crash(2)
    n4 = client.submit(("set", "during-crash", 1))
    dep.run_until_complete(client, [n4])
    _drain(dep)

    fresh = _fresh_rejoin(dep, 2)
    _drain(dep)
    assert fresh.state_machine.snapshot() == dep.replicas[0].state_machine.snapshot()
    assert fresh.abc.round == dep.replicas[0].abc.round
    assert not fresh.recovering


def test_recovered_replica_participates_again():
    dep, client = _deploy(seed=52)
    dep.run_until_complete(client, [client.submit(("set", "a", 1))])
    _drain(dep)
    dep.network.crash(1)
    dep.run_until_complete(client, [client.submit(("set", "b", 2))])
    _drain(dep)
    fresh = _fresh_rejoin(dep, 1)
    _drain(dep)
    # New request processed by everyone, including the rejoined replica.
    dep.run_until_complete(client, [client.submit(("set", "c", 3))])
    _drain(dep)
    snapshots = {r.state_machine.snapshot() for r in dep.replicas.values()}
    assert len(snapshots) == 1
    assert fresh.state_machine.data == {"a": 1, "b": 2, "c": 3}


def test_recovery_does_not_resend_client_replies():
    dep, client = _deploy(seed=53)
    nonce = client.submit(("set", "x", 1))
    dep.run_until_complete(client, [nonce])
    _drain(dep)
    dep.network.crash(3)
    _drain(dep)
    replies_before = dict(client.completed)
    fresh = _fresh_rejoin(dep, 3)
    _drain(dep)
    assert fresh.executed  # replayed
    assert client.completed == replies_before  # no duplicate answers


def test_lying_peer_cannot_poison_recovery():
    """A single (corruptible) peer reporting a forged log is ignored:
    adoption needs an honest-containing set reporting identically."""
    dep, client = _deploy(seed=54)
    dep.run_until_complete(client, [client.submit(("set", "real", 1))])
    _drain(dep)
    dep.network.crash(2)
    _drain(dep)
    fresh = _fresh_rejoin(dep, 2)
    # Inject a forged log from a single (corrupt) sender alongside the
    # genuine responses.
    forged = RecoverLog(entries=((("req", 9999, 1, ("set", "fake", 666)), 1),), round=9)
    dep.network.send(0, 2, (service_session("service"), forged))
    _drain(dep)
    assert "fake" not in fresh.state_machine.data
    assert fresh.state_machine.data.get("real") == 1


def test_recovery_under_active_partition_completes_after_heal():
    """A replica rejoining *behind a partition* still recovers: the
    scheduler postpones every message crossing the cut until the
    partition heals, and the Section 6 state transfer — which promises
    nothing about timing — completes correctly afterwards."""
    dep, client = _deploy(seed=56)
    dep.run_until_complete(client, [client.submit(("set", "a", 1))])
    _drain(dep)
    dep.network.crash(2)
    dep.run_until_complete(client, [client.submit(("set", "b", 2))])
    _drain(dep)

    # Partition the rejoining replica for the next 50 deliveries.  A
    # concurrent client operation keeps non-crossing traffic pending, so
    # the scheduler genuinely defers the RecoverRequest broadcast and the
    # peers' RecoverLog answers until the cut heals (the scheduler's
    # eventual-delivery fallback only fires when *nothing else* exists).
    dep.network.scheduler = PartitionScheduler({2}, duration=50)
    fresh = _fresh_rejoin(dep, 2)
    nonce = client.submit(("set", "c", 3))
    dep.run_until_complete(client, [nonce])
    _drain(dep)

    assert not fresh.recovering
    assert fresh.state_machine.snapshot() == dep.replicas[0].state_machine.snapshot()
    # The rejoined replica holds the pre-crash history, the operation it
    # missed while down, and the one ordered while it was partitioned.
    assert fresh.state_machine.data == {"a": 1, "b": 2, "c": 3}
    # The partition really was in force while recovery ran.
    assert dep.network.scheduler._delivered > 50


def test_recovery_while_pipelined_rounds_in_flight():
    """Crash and rejoin *mid-stream* under batching + pipelining: the
    rejoined replica must adopt a vouched prefix, resume at the right
    round, and converge — no double delivery, no stuck slot."""
    config = AbcConfig(max_batch=2, pipeline_depth=3)
    dep, client = _deploy(seed=57, abc_config=config)
    prefix = [client.submit(("set", f"k{i}", i)) for i in range(2)]
    dep.run_until_complete(client, prefix)
    _drain(dep)

    dep.network.crash(2)
    # Enough load that several rounds overlap; run only partially so
    # rounds are genuinely still in flight when the replica rejoins.
    pending = [client.submit(("set", f"m{i}", i)) for i in range(6)]
    dep.network.run(max_steps=3_000)
    fresh = _fresh_rejoin(dep, 2, abc_config=config)
    dep.run_until_complete(client, pending)
    _drain(dep)
    dep.run_until_complete(client, [client.submit(("set", "after", 1))])
    _drain(dep)

    assert not fresh.recovering
    snapshots = {r.state_machine.snapshot() for r in dep.replicas.values()}
    assert len(snapshots) == 1
    assert fresh.state_machine.data.get("after") == 1
    for replica in dep.replicas.values():
        payloads = [p for p, _r in replica.abc.delivered_log]
        assert len(payloads) == len(set(payloads))  # delivered exactly once
    assert fresh.abc.round == dep.replicas[0].abc.round


def test_inflated_round_claim_cannot_stall_recovery():
    """A corrupt responder claiming a far-future round (with an empty
    log) finds no honest-containing set of supporters, so the rejoiner
    neither adopts it nor fast-forwards past live rounds."""
    dep, client = _deploy(seed=58)
    dep.run_until_complete(client, [client.submit(("set", "real", 1))])
    _drain(dep)
    dep.network.crash(2)
    _drain(dep)
    fresh = _fresh_rejoin(dep, 2)
    forged = RecoverLog(entries=(), round=50)
    dep.network.send(0, 2, (service_session("service"), forged))
    _drain(dep)
    # The claim was ignored: the rejoiner sits at the peers' true round
    # and keeps executing new operations (no skipped-slot deadlock).
    assert fresh.abc.round == dep.replicas[0].abc.round
    dep.run_until_complete(client, [client.submit(("set", "post", 2))])
    _drain(dep)
    snapshots = {r.state_machine.snapshot() for r in dep.replicas.values()}
    assert len(snapshots) == 1
    assert fresh.state_machine.data == {"real": 1, "post": 2}


def test_causal_replica_refuses_recovery():
    dep = build_service(4, KeyValueStore, t=1, causal=True, seed=55)
    replica = dep.replicas[0]
    with pytest.raises(ValueError):
        replica.begin_recovery(
            Context(dep.runtimes[0], service_session("service"))
        )
