"""ServiceClient.call(): the completion-vs-deadline interleaving.

Regression for the RL008-class race this PR fixed: a signed answer that
lands during the *final* suspension (while ``wait_until`` is timing
out) must be returned, not misreported as a timeout — a false timeout
makes the caller retry a possibly state-mutating operation under a new
nonce, defeating the at-most-once argument.
"""

import asyncio
import random
from types import SimpleNamespace

import pytest

from repro.smr.client import CompletedRequest, ServiceClient


def _client(network):
    return ServiceClient(
        client_id=0,
        network=network,
        public=SimpleNamespace(n=4),
        rng=random.Random(7),
    )


class _RacyNetwork:
    """wait_until consumes its full budget, then the reply lands *and*
    the TimeoutError fires — the losing side of the race."""

    def __init__(self) -> None:
        self.client: ServiceClient | None = None

    def send(self, sender, recipient, payload) -> None:
        pass

    async def wait_until(self, condition, timeout: float):
        await asyncio.sleep(timeout)
        nonce = next(iter(self.client._operations))
        self.client.completed[nonce] = CompletedRequest(
            nonce=nonce, result="done", signature=None
        )
        raise asyncio.TimeoutError


class _DeadNetwork:
    def send(self, sender, recipient, payload) -> None:
        pass

    async def wait_until(self, condition, timeout: float):
        await asyncio.sleep(timeout)
        raise asyncio.TimeoutError


def test_reply_landing_during_final_suspension_is_returned():
    async def scenario():
        network = _RacyNetwork()
        client = _client(network)
        network.client = client
        result = await client.call(
            ("put", "k", "v"), timeout=0.05, attempt_timeout=1.0, servers=[1, 2]
        )
        assert result.result == "done"

    asyncio.run(scenario())


def test_genuine_timeout_still_raises():
    async def scenario():
        client = _client(_DeadNetwork())
        with pytest.raises(asyncio.TimeoutError):
            await client.call(
                ("put", "k", "v"), timeout=0.05, attempt_timeout=0.02, servers=[1]
            )

    asyncio.run(scenario())


def test_resubmissions_and_counters_survive_the_race():
    async def scenario():
        network = _RacyNetwork()
        client = _client(network)
        network.client = client
        await client.call(
            ("put", "k", "v"), timeout=0.2, attempt_timeout=0.3, servers=[1]
        )
        # The single wait consumed the whole window: no resubmission
        # happened before the completion was honoured.
        assert client.resubmissions == 0

    asyncio.run(scenario())
