"""Request/Reply encoding and the key-value state machine."""

from repro.smr.state_machine import KeyValueStore, Request


def _req(op, client=1000, nonce=1):
    return Request(client=client, nonce=nonce, operation=op)


class TestRequestCodec:
    def test_roundtrip(self):
        r = _req(("set", "k", "v"))
        assert Request.decode(r.encode()) == r

    def test_decode_rejects_malformed(self):
        assert Request.decode("nope") is None
        assert Request.decode(("req", 1, 2)) is None
        assert Request.decode(("req", "x", 2, ())) is None
        assert Request.decode(("req", 1, 2, "not-a-tuple")) is None
        assert Request.decode(("other", 1, 2, ())) is None


class TestKeyValueStore:
    def test_set_then_get(self):
        kv = KeyValueStore()
        assert kv.apply(_req(("set", "a", 1))) == ("ok", 1)
        assert kv.apply(_req(("get", "a"))) == ("value", 1)

    def test_get_missing(self):
        kv = KeyValueStore()
        assert kv.apply(_req(("get", "nope"))) == ("value", None)

    def test_version_increments_only_on_writes(self):
        kv = KeyValueStore()
        kv.apply(_req(("set", "a", 1)))
        kv.apply(_req(("get", "a")))
        kv.apply(_req(("set", "a", 2)))
        assert kv.version == 2
        assert kv.apply(_req(("get", "a"))) == ("value", 2)

    def test_unknown_operation(self):
        kv = KeyValueStore()
        assert kv.apply(_req(("frobnicate",)))[0] == "error"
        assert kv.apply(_req(("set", 5, 1)))[0] == "error"  # non-str key

    def test_snapshot_reflects_state(self):
        a, b = KeyValueStore(), KeyValueStore()
        for kv in (a, b):
            kv.apply(_req(("set", "x", 1)))
            kv.apply(_req(("set", "y", 2)))
        assert a.snapshot() == b.snapshot()
        b.apply(_req(("set", "y", 3)))
        assert a.snapshot() != b.snapshot()

    def test_determinism(self):
        """Same request sequence -> same results and state, always."""
        ops = [("set", "a", 1), ("get", "a"), ("set", "b", 2), ("get", "z")]
        runs = []
        for _ in range(2):
            kv = KeyValueStore()
            runs.append([kv.apply(_req(op, nonce=i)) for i, op in enumerate(ops)])
        assert runs[0] == runs[1]
