"""End-to-end state machine replication: clients, replicas, signatures."""

import pytest

from repro.net.adversary import SilentNode
from repro.net.scheduler import DelayScheduler, ReorderScheduler
from repro.smr import KeyValueStore, build_service


def test_basic_request_reply():
    dep = build_service(4, KeyValueStore, t=1, seed=1)
    client = dep.new_client()
    dep.network.start()
    n1 = client.submit(("set", "k", "v"))
    n2 = client.submit(("get", "k"))
    results = dep.run_until_complete(client, [n1, n2])
    assert results[n1].result == ("ok", 1)
    assert results[n2].result == ("value", "v")


def test_reply_signature_verifies():
    dep = build_service(4, KeyValueStore, t=1, seed=2)
    client = dep.new_client()
    dep.network.start()
    nonce = client.submit(("set", "a", 7))
    results = dep.run_until_complete(client, [nonce])
    assert results[nonce].verify(dep.keys.public, client.client_id, ("set", "a", 7))
    # Signature does not verify for a different operation.
    assert not results[nonce].verify(dep.keys.public, client.client_id, ("set", "a", 8))


def test_replicas_stay_consistent():
    dep = build_service(4, KeyValueStore, t=1, seed=3)
    client = dep.new_client()
    dep.network.start()
    nonces = [client.submit(("set", f"k{i}", i)) for i in range(5)]
    dep.run_until_complete(client, nonces)
    dep.network.run(max_steps=400_000)  # drain
    snapshots = {r.state_machine.snapshot() for r in dep.honest_replicas()}
    assert len(snapshots) == 1


def test_tolerates_silent_replica():
    dep = build_service(4, KeyValueStore, t=1, seed=4)
    dep.controller.corrupt(dep.network, 2, SilentNode())
    client = dep.new_client()
    dep.network.start()
    nonce = client.submit(("set", "x", 1))
    results = dep.run_until_complete(client, [nonce])
    assert results[nonce].result == ("ok", 1)


def test_submission_to_partial_server_set():
    """The paper: the client must contact more than t servers.  Sending
    to t+1 honest servers suffices for delivery."""
    dep = build_service(4, KeyValueStore, t=1, seed=5)
    client = dep.new_client()
    dep.network.start()
    nonce = client.submit(("set", "x", 1), servers=[0, 1])
    results = dep.run_until_complete(client, [nonce])
    assert results[nonce].result == ("ok", 1)


def test_adversarial_scheduler_end_to_end():
    dep = build_service(4, KeyValueStore, t=1, scheduler=ReorderScheduler(), seed=6)
    client = dep.new_client()
    dep.network.start()
    nonces = [client.submit(("set", f"k{i}", i)) for i in range(3)]
    results = dep.run_until_complete(client, nonces)
    assert all(results[n].result[0] == "ok" for n in nonces)


def test_delayed_server_end_to_end():
    dep = build_service(4, KeyValueStore, t=1, scheduler=DelayScheduler({0}), seed=7)
    client = dep.new_client()
    dep.network.start()
    nonce = client.submit(("get", "whatever"))
    results = dep.run_until_complete(client, [nonce])
    assert results[nonce].result == ("value", None)


def test_multiple_clients_interleave():
    dep = build_service(4, KeyValueStore, t=1, seed=8)
    c1, c2 = dep.new_client(), dep.new_client()
    dep.network.start()
    n1 = c1.submit(("set", "owner", "c1"))
    n2 = c2.submit(("set", "owner", "c2"))
    dep.run_until_complete(c1, [n1])
    dep.run_until_complete(c2, [n2])
    # Both writes applied in some agreed order; versions distinct.
    assert {c1.completed[n1].result[1], c2.completed[n2].result[1]} == {1, 2}


def test_duplicate_nonce_executes_once():
    """A request submitted to all servers is delivered exactly once
    despite reaching the queue at four places."""
    dep = build_service(4, KeyValueStore, t=1, seed=9)
    client = dep.new_client()
    dep.network.start()
    nonce = client.submit(("set", "ctr", 1))
    dep.run_until_complete(client, [nonce])
    dep.network.run(max_steps=400_000)
    replica = dep.honest_replicas()[0]
    executions = [r for r, _ in replica.executed if r.nonce == nonce]
    assert len(executions) == 1


def test_causal_mode_end_to_end():
    dep = build_service(4, KeyValueStore, t=1, causal=True, seed=10)
    client = dep.new_client()
    dep.network.start()
    n1 = client.submit_confidential(("set", "secret", 42))
    dep.run_until_complete(client, [n1])  # sequence the dependent read
    n2 = client.submit_confidential(("get", "secret"))
    results = dep.run_until_complete(client, [n2])
    assert client.completed[n1].result == ("ok", 1)
    assert results[n2].result == ("value", 42)


def test_causal_mode_refuses_plaintext():
    dep = build_service(4, KeyValueStore, t=1, causal=True, seed=11)
    client = dep.new_client()
    dep.network.start()
    client.submit(("set", "leak", 1))
    dep.network.run(max_steps=200_000)
    assert all(not r.executed for r in dep.honest_replicas())


def test_rsa_service_signature_backend(keys_4_1_rsa):
    """Replies signed with Shoup RSA threshold signatures combine into a
    standard RSA signature the client verifies."""
    import random

    from repro.core.runtime import ProtocolRuntime
    from repro.net.scheduler import RandomScheduler
    from repro.net.simulator import Network
    from repro.smr.client import ServiceClient
    from repro.smr.replica import Replica, service_session

    net = Network(RandomScheduler(), random.Random(1))
    for i in range(4):
        rt = ProtocolRuntime(i, net, keys_4_1_rsa.public, keys_4_1_rsa.private[i], seed=1)
        net.attach(i, rt)
        rt.spawn(service_session("service"), Replica(KeyValueStore()))
    client = ServiceClient(1000, net, keys_4_1_rsa.public, random.Random(2))
    net.attach(1000, client)
    net.start()
    nonce = client.submit(("set", "k", 1))
    net.run(until=lambda: nonce in client.completed, max_steps=400_000)
    completed = client.completed[nonce]
    assert completed.result == ("ok", 1)
    assert completed.verify(keys_4_1_rsa.public, 1000, ("set", "k", 1))
