"""Canonical request codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.smr import codec

atoms = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**30), 10**30),
    st.text(max_size=30),
    st.binary(max_size=30),
)
values = st.recursive(atoms, lambda c: st.lists(c, max_size=4).map(tuple), max_leaves=12)


@given(values)
def test_roundtrip(value):
    assert codec.loads(codec.dumps(value)) == value


def _same_canonical_value(a, b):
    """Equality under the codec's notion of identity: Python's ``==``
    conflates ``False == 0`` and ``True == 1``, but the canonical
    encoding (by design — see ``test_bool_int_distinction``) does not."""
    if type(a) is not type(b):
        return False
    if isinstance(a, tuple):
        return len(a) == len(b) and all(
            _same_canonical_value(x, y) for x, y in zip(a, b)
        )
    return a == b


@given(values, values)
def test_canonical_encoding(a, b):
    if _same_canonical_value(a, b):
        assert codec.dumps(a) == codec.dumps(b)
    else:
        assert codec.dumps(a) != codec.dumps(b)


def test_bool_int_distinction():
    assert codec.loads(codec.dumps(True)) is True
    assert codec.loads(codec.dumps(1)) == 1
    assert codec.dumps(True) != codec.dumps(1)


def test_unsupported_types_rejected():
    with pytest.raises(codec.CodecError):
        codec.dumps([1, 2])  # lists are not canonical; tuples only
    with pytest.raises(codec.CodecError):
        codec.dumps({"a": 1})


def test_malformed_inputs_rejected():
    for data in (b"", b"Z", b"I\x00\x00\x00\x02x", b"S\x00\x00\x00\x05ab",
                 b"L\x00\x00\x00\x01", b"B\xff\xff\xff\xff", b"Nx"):
        with pytest.raises(codec.CodecError):
            codec.loads(data)


def test_non_utf8_string_rejected():
    data = b"S" + (2).to_bytes(4, "big") + b"\xff\xfe"
    with pytest.raises(codec.CodecError):
        codec.loads(data)


def test_nested_structure():
    value = ("req", 1000, 7, ("register", b"\x00digest\xff", None, True))
    assert codec.loads(codec.dumps(value)) == value
