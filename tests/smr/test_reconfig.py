"""Epoch-based reconfiguration: the Reconfigure operation, the closed
epoch's tombstone, and the client's membership refresh."""

import random

import pytest

from repro.crypto import keystore
from repro.crypto.dealer import deal_system
from repro.crypto.groups import small_group
from repro.crypto.schnorr import keygen
from repro.smr import KeyValueStore, build_service, reconfig
from repro.smr.replica import SubmitRequest, service_session
from repro.smr.state_machine import Request


@pytest.fixture(scope="module")
def keys_4_1():
    return deal_system(4, random.Random(11), t=1, group=small_group())


def _signed(keys, action, epoch, signer=0, **kwargs):
    return reconfig.reconfigure_operation(
        action, epoch, signer, keys.private[signer].signing_key,
        random.Random(5), **kwargs,
    )


def _joiner_key(keys):
    return keygen(random.Random(77), keys.public.group).verify_key.h


# -- operation format ---------------------------------------------------------


def test_reconfigure_roundtrip(keys_4_1):
    op = _signed(keys_4_1, "refresh", 1)
    parsed = reconfig.parse_reconfigure(op)
    assert parsed is not None
    request, _ = parsed
    assert request.action == "refresh"
    assert request.epoch == 1
    assert request.signer == 0


def test_parse_ignores_application_ops(keys_4_1):
    assert reconfig.parse_reconfigure(("set", "k", 1)) is None
    assert reconfig.parse_reconfigure("reconfig") is None
    assert reconfig.parse_reconfigure(None) is None
    # Right kind, wrong arity.
    assert reconfig.parse_reconfigure((reconfig.RECONFIG_KIND, "add")) is None


def test_unknown_action_rejected(keys_4_1):
    with pytest.raises(ValueError):
        _signed(keys_4_1, "merge", 1)


def test_validate_accepts_refresh(keys_4_1):
    op = _signed(keys_4_1, "refresh", 1)
    request = reconfig.validate_reconfigure(op, keys_4_1.public, 0)
    assert request is not None
    assert reconfig.new_member_count(keys_4_1.public, request) == 4


def test_validate_rejects_wrong_epoch(keys_4_1):
    op = _signed(keys_4_1, "refresh", 2)  # skips epoch 1
    assert reconfig.validate_reconfigure(op, keys_4_1.public, 0) is None
    # The same op becomes valid once epoch 1 has passed.
    assert reconfig.validate_reconfigure(op, keys_4_1.public, 1) is not None


def test_validate_rejects_non_member_signer(keys_4_1):
    outsider = keygen(random.Random(3), keys_4_1.public.group)
    op = reconfig.reconfigure_operation(
        "refresh", 1, 0, outsider, random.Random(4)
    )
    assert reconfig.validate_reconfigure(op, keys_4_1.public, 0) is None


def test_validate_rejects_tampered_fields(keys_4_1):
    op = _signed(keys_4_1, "refresh", 1)
    tampered = op[:1] + ("remove",) + op[2:]
    assert reconfig.validate_reconfigure(tampered, keys_4_1.public, 0) is None


def test_validate_add(keys_4_1):
    joiner = _joiner_key(keys_4_1)
    good = _signed(keys_4_1, "add", 1, party=4, verify_key=joiner,
                   host="127.0.0.1", port=9000)
    assert reconfig.validate_reconfigure(good, keys_4_1.public, 0) is not None
    # Membership must stay the contiguous range 0..n.
    gap = _signed(keys_4_1, "add", 1, party=7, verify_key=joiner,
                  host="127.0.0.1", port=9000)
    assert reconfig.validate_reconfigure(gap, keys_4_1.public, 0) is None
    # A joiner needs a dialable address.
    unreachable = _signed(keys_4_1, "add", 1, party=4, verify_key=joiner)
    assert reconfig.validate_reconfigure(unreachable, keys_4_1.public, 0) is None


def test_validate_remove_respects_quorum_bound(keys_4_1):
    # n=4, t=1: removing anyone would leave n < 3t+1.
    op = _signed(keys_4_1, "remove", 1, party=3)
    assert reconfig.validate_reconfigure(op, keys_4_1.public, 0) is None
    # n=5, t=1 has slack; only the highest id may retire.
    keys_5 = deal_system(5, random.Random(12), t=1, group=small_group())
    ok = reconfig.reconfigure_operation(
        "remove", 1, 0, keys_5.private[0].signing_key, random.Random(5), party=4
    )
    assert reconfig.validate_reconfigure(ok, keys_5.public, 0) is not None
    middle = reconfig.reconfigure_operation(
        "remove", 1, 0, keys_5.private[0].signing_key, random.Random(5), party=2
    )
    assert reconfig.validate_reconfigure(middle, keys_5.public, 0) is None


# -- sessions and membership records ------------------------------------------


def test_epoch_zero_keeps_legacy_session():
    assert reconfig.epoch_service_session(0) == service_session("service")
    assert reconfig.epoch_service_session(1) != service_session("service")
    assert (reconfig.epoch_service_session(1)
            != reconfig.epoch_service_session(2))


def test_membership_info_verifies(keys_4_1):
    info = reconfig.signed_membership_info(
        2, 1, keystore.public_to_dict(keys_4_1.public),
        keys_4_1.private[2].signing_key, random.Random(6),
    )
    assert reconfig.verify_membership_info(info, keys_4_1.public)
    # A statement signed by a non-member (or the wrong member) fails.
    forged = reconfig.MembershipInfo(
        replica=3, epoch=info.epoch,
        public_json=info.public_json, signature=info.signature,
    )
    assert not reconfig.verify_membership_info(forged, keys_4_1.public)
    assert not reconfig.verify_membership_info("junk", keys_4_1.public)


# -- the tombstone ------------------------------------------------------------


class _StubCtx:
    party = 0

    def __init__(self):
        self.sent = []

    def send(self, recipient, message):
        self.sent.append((recipient, message))


def test_tombstone_redirects_submissions(keys_4_1):
    info = reconfig.signed_membership_info(
        0, 3, keystore.public_to_dict(keys_4_1.public),
        keys_4_1.private[0].signing_key, random.Random(7),
    )
    stone = reconfig.EpochTombstone(info)
    ctx = _StubCtx()
    request = Request(client=1000, nonce=1, operation=("set", "k", 1))
    stone.on_message(ctx, 1000, SubmitRequest(request.encode()))
    assert ctx.sent == [(1000, reconfig.EpochError(replica=0, epoch=3))]
    stone.on_message(ctx, 1000, reconfig.MembershipQuery(known_epoch=0))
    assert ctx.sent[-1] == (1000, info)
    # Byzantine junk is ignored, not answered.
    stone.on_message(ctx, 1000, ("garbage",))
    assert len(ctx.sent) == 2


# -- client epoch refresh (simulator, end to end) -----------------------------


def _switch_epoch(dep, epoch, seed=0):
    """Move every replica to the epoch's session, leaving a tombstone
    at the old one — the simulator's stand-in for a committed
    Reconfigure(refresh)."""
    old = reconfig.epoch_service_session(epoch - 1, dep.session_tag)
    new = reconfig.epoch_service_session(epoch, dep.session_tag)
    public_dict = keystore.public_to_dict(dep.keys.public)
    for party, runtime in dep.runtimes.items():
        info = reconfig.signed_membership_info(
            party, epoch, public_dict,
            dep.keys.private[party].signing_key, random.Random(seed + party),
        )
        replica = runtime.instances.pop(old)
        runtime.spawn(old, reconfig.EpochTombstone(info))
        runtime.spawn(new, replica)


def test_client_follows_epoch_change():
    """A client provisioned at epoch 0 hits the tombstones, fetches the
    signed membership, and resubmits under the SAME nonce at epoch 1."""
    dep = build_service(4, KeyValueStore, t=1, seed=21)
    client = dep.new_client()
    dep.network.start()
    n0 = client.submit(("set", "before", 1))
    dep.run_until_complete(client, [n0])

    _switch_epoch(dep, 1)
    nonce = client.submit(("set", "after", 2))
    results = dep.run_until_complete(client, [nonce])

    assert results[nonce].result == ("ok", 2)
    assert client.epoch == 1
    assert client.epoch_refreshes == 1
    assert client.resubmissions >= 1
    # Same nonce end to end: the epoch hop did not re-number the op.
    assert client.operation(nonce) == ("set", "after", 2)
    dep.network.run(max_steps=400_000)  # drain the laggards
    snapshots = {r.state_machine.snapshot() for r in dep.honest_replicas()}
    assert len(snapshots) == 1


def test_client_steps_through_two_epochs():
    dep = build_service(4, KeyValueStore, t=1, seed=22)
    client = dep.new_client()
    dep.network.start()
    _switch_epoch(dep, 1)
    _switch_epoch(dep, 2, seed=50)
    nonce = client.submit(("set", "k", 9))
    results = dep.run_until_complete(client, [nonce])
    assert results[nonce].result == ("ok", 1)
    assert client.epoch == 2
    assert client.epoch_refreshes >= 1


def test_stale_epoch_error_is_ignored():
    """An EpochError claiming an *older* epoch (a laggard or a liar)
    must not roll the client back or trigger queries."""
    dep = build_service(4, KeyValueStore, t=1, seed=23)
    client = dep.new_client()
    dep.network.start()
    client.epoch = 2
    client.session = reconfig.epoch_service_session(2, dep.session_tag)
    sent = []
    client.network = type("Net", (), {"send": lambda self, s, r, p: sent.append(p)})()
    client._on_epoch_error(0, reconfig.EpochError(replica=0, epoch=1))
    assert client.epoch == 2
    assert sent == []


def test_forged_membership_not_adopted():
    """Votes signed by keys outside the trusted set never reach the
    honest-containing threshold."""
    dep = build_service(4, KeyValueStore, t=1, seed=24)
    client = dep.new_client()
    dep.network.start()
    rogue_keys = deal_system(4, random.Random(99), t=1, group=small_group())
    public_dict = keystore.public_to_dict(rogue_keys.public)
    for party in range(4):
        info = reconfig.signed_membership_info(
            party, 5, public_dict,
            rogue_keys.private[party].signing_key, random.Random(party),
        )
        client._on_membership_info(party, info)
    assert client.epoch == 0
    assert client.epoch_refreshes == 0


def test_single_replica_cannot_move_client():
    """One (possibly departed/corrupt) replica's vote is below the
    honest-containing threshold."""
    dep = build_service(4, KeyValueStore, t=1, seed=25)
    client = dep.new_client()
    dep.network.start()
    info = reconfig.signed_membership_info(
        0, 1, keystore.public_to_dict(dep.keys.public),
        dep.keys.private[0].signing_key, random.Random(1),
    )
    client._on_membership_info(0, info)
    assert client.epoch == 0 and client.epoch_refreshes == 0
