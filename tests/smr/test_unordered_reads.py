"""Commuting (read-only) requests over the fast unordered path."""

from repro.net.adversary import SilentNode
from repro.smr import KeyValueStore, build_service


def _deploy(seed=71, factory=KeyValueStore):
    dep = build_service(4, factory, t=1, seed=seed)
    client = dep.new_client()
    dep.network.start()
    return dep, client


def test_unordered_read_returns_current_value():
    dep, client = _deploy()
    dep.run_until_complete(client, [client.submit(("set", "k", "v"))])
    dep.network.run(max_steps=400_000)  # settle all replicas
    before = dep.network.delivered_count
    nonce = client.submit_unordered(("get", "k"))
    results = dep.run_until_complete(client, [nonce])
    assert results[nonce].result == ("value", "v")
    # The fast path costs a handful of messages — no agreement round.
    assert dep.network.delivered_count - before < 20


def test_unordered_read_is_far_cheaper_than_ordered():
    dep, client = _deploy(seed=72)
    dep.run_until_complete(client, [client.submit(("set", "k", 1))])
    dep.network.run(max_steps=400_000)
    base = dep.network.delivered_count
    dep.run_until_complete(client, [client.submit_unordered(("get", "k"))])
    fast = dep.network.delivered_count - base
    base = dep.network.delivered_count
    dep.run_until_complete(client, [client.submit(("get", "k"))])
    dep.network.run(max_steps=400_000)
    ordered = dep.network.delivered_count - base
    assert fast * 5 < ordered


def test_unordered_write_is_refused():
    dep, client = _deploy(seed=73)
    nonce = client.submit_unordered(("set", "sneaky", 1))
    dep.network.run(max_steps=200_000)
    assert nonce not in client.completed
    # And no replica mutated state.
    assert all(r.state_machine.data == {} for r in dep.honest_replicas())


def test_unordered_read_signature_verifies():
    dep, client = _deploy(seed=74)
    dep.run_until_complete(client, [client.submit(("set", "a", 9))])
    dep.network.run(max_steps=400_000)
    nonce = client.submit_unordered(("get", "a"))
    results = dep.run_until_complete(client, [nonce])
    assert results[nonce].verify(dep.keys.public, client.client_id, ("get", "a"))


def test_unordered_read_with_silent_corruption():
    dep, client = _deploy(seed=75)
    dep.controller.corrupt(dep.network, 3, SilentNode())
    dep.run_until_complete(client, [client.submit(("set", "x", 1))])
    dep.network.run(max_steps=400_000)
    nonce = client.submit_unordered(("get", "x"))
    results = dep.run_until_complete(client, [nonce])
    assert results[nonce].result == ("value", 1)


def test_directory_resolve_supports_unordered():
    from repro.apps import DirectoryService

    dep, client = _deploy(seed=76, factory=DirectoryService)
    dep.run_until_complete(client, [client.submit(("bind", "n", "v"))])
    dep.network.run(max_steps=400_000)
    nonce = client.submit_unordered(("resolve", "n"))
    results = dep.run_until_complete(client, [nonce])
    assert results[nonce].result[2] == "v"
