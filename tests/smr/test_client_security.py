"""Client-side verification: corrupted replicas cannot forge answers."""

import random

from repro.crypto.schnorr import Signature
from repro.smr import KeyValueStore, build_service
from repro.smr.replica import service_session
from repro.smr.state_machine import Reply


def _deploy(seed):
    dep = build_service(4, KeyValueStore, t=1, seed=seed)
    client = dep.new_client()
    dep.network.start()
    return dep, client


def test_forged_result_from_single_replica_ignored():
    """One corrupted replica sends a wrong result with a junk share;
    the client completes with the honest majority's answer."""
    dep, client = _deploy(61)
    nonce = client.submit(("get", "missing"))
    # Corrupt reply raced in from "server 3".
    forged = Reply(
        replica=3,
        client=client.client_id,
        nonce=nonce,
        result=("value", "EVIL"),
        signature_share=Signature(commit=1, response=1),
    )
    dep.network.send(3, client.client_id, (service_session("service"), forged))
    results = dep.run_until_complete(client, [nonce])
    assert results[nonce].result == ("value", None)


def test_matching_lies_without_valid_shares_never_complete():
    """Even t+1 *claimed* identical wrong answers cannot complete the
    request when their signature shares do not verify."""
    dep, client = _deploy(62)
    nonce = client.submit(("get", "x"))
    for replica in (2, 3):
        forged = Reply(
            replica=replica,
            client=client.client_id,
            nonce=nonce,
            result=("value", "EVIL"),
            signature_share=Signature(commit=1, response=1),
        )
        dep.network.send(replica, client.client_id,
                         (service_session("service"), forged))
    results = dep.run_until_complete(client, [nonce])
    assert results[nonce].result == ("value", None)


def test_reply_claiming_wrong_replica_id_ignored():
    """A reply whose channel sender and claimed replica differ is junk."""
    dep, client = _deploy(63)
    nonce = client.submit(("set", "k", 1))
    real_share_holder = dep.keys.private[0].service_signer
    rng = random.Random(1)
    # Build a *valid* share from replica 0 but deliver it as if from 2.
    from repro.smr.replica import reply_statement

    digest = ("request", client.client_id, nonce, ("set", "k", 1))
    share = real_share_holder.sign_share(
        reply_statement(digest, ("ok", 1)), rng
    )
    spoofed = Reply(
        replica=0,
        client=client.client_id,
        nonce=nonce,
        result=("ok", 1),
        signature_share=share,
    )
    dep.network.send(2, client.client_id, (service_session("service"), spoofed))
    results = dep.run_until_complete(client, [nonce])
    # The genuine flow still completes; the spoof contributed nothing
    # (sender mismatch is rejected before share verification).
    assert results[nonce].result == ("ok", 1)
    assert 2 not in client._replies.get(nonce, {})


def test_replies_for_foreign_nonces_ignored():
    dep, client = _deploy(64)
    stray = Reply(
        replica=1,
        client=client.client_id,
        nonce=999,  # never submitted
        result=("ok", 1),
        signature_share=Signature(commit=1, response=1),
    )
    dep.network.send(1, client.client_id, (service_session("service"), stray))
    dep.network.run(max_steps=10_000)
    assert 999 not in client.completed


def test_completed_answer_is_externally_verifiable():
    """The combined service signature convinces any third party holding
    only the public bundle — and fails for any altered result."""
    dep, client = _deploy(65)
    nonce = client.submit(("set", "audited", 7))
    results = dep.run_until_complete(client, [nonce])
    completed = results[nonce]
    assert completed.verify(dep.keys.public, client.client_id, ("set", "audited", 7))
    # Tampered operation or result: verification fails.
    assert not completed.verify(dep.keys.public, client.client_id, ("set", "audited", 8))
    from dataclasses import replace

    tampered = replace(completed, result=("ok", 99))
    assert not tampered.verify(dep.keys.public, client.client_id, ("set", "audited", 7))
