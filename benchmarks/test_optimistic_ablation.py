"""E11 — ablation: the "optimistic protocols" extension (Section 6).

The paper closes with the most promising optimization: protocols that
"run very fast if no corruptions occur but may fall back to a slower
mode if necessary", citing Kursawe-Shoup [23].  This benchmark measures
the implemented optimistic atomic broadcast against the randomized one:

* **friendly network**: messages per delivered payload — the fast path
  is a small multiple of n^2 with no agreement at all;
* **under a leader-starving adversary**: the optimistic protocol
  detects the stall, falls back safely, and completes via the
  randomized mode; delivered prefixes are preserved.
"""

from conftest import dealt, emit, make_network

from repro.core.atomic_broadcast import AtomicBroadcast, abc_session
from repro.core.optimistic import OptimisticAtomicBroadcast, opt_abc_session
from repro.core.protocol import Context
from repro.net.scheduler import FifoScheduler, StarvingScheduler


def _run_fast_path(keys, payloads=5, seed=41):
    net, rts = make_network(keys, FifoScheduler(), seed=seed)
    session = opt_abc_session(("e11", seed))
    logs, insts = {}, {}
    for p, rt in rts.items():
        logs[p] = []
        insts[p] = rt.spawn(session, OptimisticAtomicBroadcast(
            on_deliver=lambda m, o, pp=p: logs[pp].append(m)))
    net.start()
    for k in range(payloads):
        insts[0].submit(Context(rts[0], session), ("req", k))
    net.run(until=lambda: all(len(logs[p]) >= payloads for p in rts),
            max_steps=400_000)
    return net.trace.sent / payloads


def _run_randomized(keys, payloads=5, seed=42):
    net, rts = make_network(keys, FifoScheduler(), seed=seed)
    session = abc_session(("e11", seed))
    logs = {p: [] for p in rts}
    for p, rt in rts.items():
        rt.spawn(session, AtomicBroadcast(
            on_deliver=lambda m, r, pp=p: logs[pp].append(m)))
    net.start()
    for k in range(payloads):
        rts[0].instances[session].submit(Context(rts[0], session), ("req", k))
    net.run(until=lambda: all(len(logs[p]) >= payloads for p in rts),
            max_steps=900_000)
    return net.trace.sent / payloads


def _run_fallback(keys, seed=43):
    net, rts = make_network(
        keys, StarvingScheduler({0}, patience=10_000_000), seed=seed
    )
    session = opt_abc_session(("e11-fb", seed))
    logs, insts = {}, {}
    for p, rt in rts.items():
        logs[p] = []
        insts[p] = rt.spawn(session, OptimisticAtomicBroadcast(
            on_deliver=lambda m, o, pp=p: logs[pp].append((m, o)),
            watchdog_limit=30))
    net.start()
    insts[1].submit(Context(rts[1], session), ("req", "A"))
    insts[2].submit(Context(rts[2], session), ("req", "B"))
    honest = [1, 2, 3]
    steps = 0
    while steps < 400_000 and not all(len(logs[p]) >= 2 for p in honest):
        if not net.step():
            for p in honest:
                insts[p].tick(Context(rts[p], session))
        steps += 1
    consistent = all(logs[p] == logs[honest[0]] for p in honest)
    modes = {insts[p].mode for p in honest}
    return steps, consistent, modes


def test_optimistic_vs_randomized(benchmark):
    keys = dealt(4, 1)
    fast = benchmark.pedantic(
        lambda: _run_fast_path(keys), rounds=1, iterations=1
    )
    randomized = _run_randomized(keys)
    steps, consistent, modes = _run_fallback(keys)
    emit(
        "Optimistic atomic broadcast (Section 6 extension), n=4 t=1",
        [
            f"messages per payload, friendly network:",
            f"  optimistic fast path : {fast:8.1f}",
            f"  randomized protocol  : {randomized:8.1f}  "
            f"({randomized / fast:.1f}x the fast path)",
            f"leader starved by the scheduler:",
            f"  optimistic fell back and delivered in {steps} scheduling "
            f"rounds, modes={modes}, orders consistent: {consistent}",
        ],
    )
    assert fast * 2 < randomized  # the point of the optimization
    assert consistent
    assert modes == {"pessimistic"}
