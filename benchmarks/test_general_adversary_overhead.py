"""E10 — what generalized adversary structures cost (Section 4.2).

The substitution rules replace O(1) threshold checks by subset tests
against the maximal adversary sets, and the single-gate Shamir LSSS by
the Benaloh-Leichter tree.  This benchmark compares, at identical n:

* reliable broadcast and binary agreement message counts and wall time
  under the threshold structure vs the generalized structure;
* secret-sharing slot counts (shares per party) for both.

The paper's implicit claim — generality costs structure-size factors,
not protocol redesign — shows as identical message counts and a modest
constant-factor slowdown from the richer quorum checks.
"""

from conftest import dealt, emit, make_network

from repro.adversary import example1_access_formula, example2_access_formula
from repro.core.binary_agreement import BinaryAgreement, aba_session
from repro.core.reliable_broadcast import ReliableBroadcast, rbc_session
from repro.crypto.groups import small_group
from repro.crypto.lsss import LsssScheme, threshold_scheme


def _rbc_cost(keys, seed):
    net, rts = make_network(keys, seed=seed)
    session = rbc_session(0, ("e10", seed))
    for p, rt in rts.items():
        rt.spawn(session, ReliableBroadcast(0, value="m" if p == 0 else None))
    net.run(until=lambda: all(rt.result(session) is not None for rt in rts.values()))
    return net.trace.sent


def _aba_cost(keys, seed):
    net, rts = make_network(keys, seed=seed)
    session = aba_session(("e10", seed))
    for p, rt in rts.items():
        rt.spawn(session, BinaryAgreement(p % 2))
    net.run(
        until=lambda: all(rt.result(session) is not None for rt in rts.values()),
        max_steps=900_000,
    )
    return net.trace.sent


def _slot_stats(scheme):
    per_party = {}
    for slot, party in scheme.slots():
        per_party[party] = per_party.get(party, 0) + 1
    return sum(per_party.values()), max(per_party.values())


def test_generalized_vs_threshold_overhead(benchmark):
    results = {}

    def run():
        results.clear()
        for label, keys in (
            ("threshold n=9 t=2", dealt(9, 2)),
            ("Example 1 structure", dealt(9, which="example1")),
        ):
            results[label] = (_rbc_cost(keys, 31), _aba_cost(keys, 32))
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    q = small_group().q
    slot_rows = []
    for label, scheme in (
        ("Shamir 3-of-9", threshold_scheme(9, 2, q)),
        ("Example 1 LSSS", LsssScheme(formula=example1_access_formula(), modulus=q)),
        ("Shamir 6-of-16", threshold_scheme(16, 5, q)),
        ("Example 2 LSSS", LsssScheme(formula=example2_access_formula(), modulus=q)),
    ):
        total, biggest = _slot_stats(scheme)
        slot_rows.append(f"{label:22} {total:>12} {biggest:>15}")

    emit(
        "Generalized adversary structures: protocol overhead at n=9",
        [f"{'configuration':22} {'RBC msgs':>10} {'ABA msgs':>10}"]
        + [
            f"{label:22} {rbc:>10} {aba:>10}"
            for label, (rbc, aba) in results.items()
        ]
        + ["", f"{'sharing scheme':22} {'total slots':>12} {'max per party':>15}"]
        + slot_rows,
    )
    thr_rbc, thr_aba = results["threshold n=9 t=2"]
    gen_rbc, gen_aba = results["Example 1 structure"]
    # Identical protocol structure: RBC message counts match exactly
    # (same three phases, same all-to-all pattern).
    assert gen_rbc == thr_rbc
    # Agreement costs stay within a small factor (round counts are
    # randomized; the structure does not change the message pattern).
    assert gen_aba <= 4 * thr_aba
