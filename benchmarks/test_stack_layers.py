"""E2 — the protocol stack figure (Section 3), measured layer by layer.

Runs each layer of

    secure causal atomic broadcast
      > atomic broadcast
        > multi-valued Byzantine agreement
          > binary agreement | broadcast primitives

on the same 4-server network and reports messages sent per layer,
averaged over several schedules — the composition cost profile the
paper's modular design implies.  Structural assertions check the
*composition* itself: the atomic broadcast traffic contains the signed
proposal exchange plus an embedded agreement, and the secure causal
run adds exactly the n^2 decryption-share exchange on top.

A second table scales binary agreement across n ∈ {4, 7, 10, 13}.
"""

import random

from conftest import dealt, emit, make_network

from repro.core.atomic_broadcast import AtomicBroadcast, abc_session
from repro.core.binary_agreement import BinaryAgreement, aba_session
from repro.core.consistent_broadcast import ConsistentBroadcast, cbc_session
from repro.core.multivalued_agreement import MultiValuedAgreement, mvba_session
from repro.core.protocol import Context
from repro.core.reliable_broadcast import ReliableBroadcast, rbc_session
from repro.core.secure_causal import SecureCausalBroadcast, sc_abc_session

SEEDS = range(5)


def _measure_rbc(keys, seed):
    net, rts = make_network(keys, seed=seed)
    net.trace.enable_byte_accounting()
    session = rbc_session(0, ("bench", seed))
    for p, rt in rts.items():
        rt.spawn(session, ReliableBroadcast(0, value="m" if p == 0 else None))
    net.run(until=lambda: all(rt.result(session) is not None for rt in rts.values()))
    return net.trace


def _measure_cbc(keys, seed):
    net, rts = make_network(keys, seed=seed)
    net.trace.enable_byte_accounting()
    session = cbc_session(0, ("bench", seed))
    for p, rt in rts.items():
        rt.spawn(session, ConsistentBroadcast(0, value="m" if p == 0 else None))
    net.run(until=lambda: all(rt.result(session) is not None for rt in rts.values()))
    return net.trace


def _measure_aba(keys, seed):
    net, rts = make_network(keys, seed=seed)
    net.trace.enable_byte_accounting()
    session = aba_session(("bench", seed))
    for p, rt in rts.items():
        rt.spawn(session, BinaryAgreement(p % 2))
    net.run(
        until=lambda: all(rt.result(session) is not None for rt in rts.values()),
        max_steps=900_000,
    )
    return net.trace


def _measure_mvba(keys, seed):
    net, rts = make_network(keys, seed=seed)
    net.trace.enable_byte_accounting()
    session = mvba_session(("bench", seed))
    for p, rt in rts.items():
        rt.spawn(session, MultiValuedAgreement(("v", p)))
    net.run(
        until=lambda: all(rt.result(session) is not None for rt in rts.values()),
        max_steps=900_000,
    )
    return net.trace


def _measure_abc(keys, seed):
    net, rts = make_network(keys, seed=seed)
    net.trace.enable_byte_accounting()
    session = abc_session(("bench", seed))
    delivered = {p: [] for p in rts}
    for p, rt in rts.items():
        rt.spawn(session, AtomicBroadcast(
            on_deliver=lambda m, r, pp=p: delivered[pp].append(m)))
    net.start()
    for p, rt in rts.items():
        rt.instances[session].submit(Context(rt, session), ("req", "one"))
    net.run(until=lambda: all(len(delivered[p]) >= 1 for p in rts),
            max_steps=900_000)
    return net.trace


def _measure_sc_abc(keys, seed):
    net, rts = make_network(keys, seed=seed)
    net.trace.enable_byte_accounting()
    session = sc_abc_session(("bench", seed))
    delivered = {p: [] for p in rts}
    for p, rt in rts.items():
        rt.spawn(session, SecureCausalBroadcast(
            on_deliver=lambda m, r, pp=p: delivered[pp].append(m)))
    net.start()
    rng = random.Random(700 + seed)
    ct = keys.public.encryption.encrypt(b"confidential request", b"bench", rng)
    for p, rt in rts.items():
        rt.instances[session].submit(Context(rt, session), ct)
    net.run(until=lambda: all(len(delivered[p]) >= 1 for p in rts),
            max_steps=900_000)
    return net.trace


def test_stack_layer_costs(benchmark):
    keys = dealt(4, 1)
    n = keys.public.n
    layers = {
        "reliable broadcast": _measure_rbc,
        "consistent broadcast": _measure_cbc,
        "binary agreement": _measure_aba,
        "multi-valued agreement": _measure_mvba,
        "atomic broadcast": _measure_abc,
        "secure causal ABC": _measure_sc_abc,
    }
    means: dict[str, float] = {}
    traces: dict[str, list] = {}

    byte_means: dict[str, float] = {}

    def run_all():
        for layer, measure in layers.items():
            traces[layer] = [measure(keys, seed) for seed in SEEDS]
            means[layer] = sum(t.sent for t in traces[layer]) / len(SEEDS)
            byte_means[layer] = sum(t.bytes_sent for t in traces[layer]) / len(SEEDS)
        return means

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "Protocol stack (Section 3), n=4 t=1: one instance per layer, "
        f"mean over {len(SEEDS)} schedules",
        [f"{'layer':26} {'msgs (mean)':>12} {'wire bytes (mean)':>18}"]
        + [
            f"{layer:26} {means[layer]:>12.0f} {byte_means[layer]:>18.0f}"
            for layer in means
        ],
    )

    # Cheap primitives vs agreement (holds with wide margins).
    assert means["consistent broadcast"] < means["reliable broadcast"]
    assert means["binary agreement"] > means["reliable broadcast"]
    assert means["multi-valued agreement"] > means["binary agreement"]

    # Composition, structurally: the ABC runs contain the signed proposal
    # exchange (n per party) AND an embedded MVBA (consistent broadcasts,
    # coin shares) — the stack figure in executable form.
    for trace in traces["atomic broadcast"]:
        kinds = trace.sent_by_kind
        assert kinds.get("AbcProposal", 0) >= n * n
        assert kinds.get("CbcSend", 0) >= n
        assert kinds.get("AbaCoinShare", 0) >= n

    # Secure causal ABC = atomic broadcast + exactly one decryption-share
    # exchange (n broadcasts of n messages) for the single payload.
    for trace in traces["secure causal ABC"]:
        kinds = trace.sent_by_kind
        assert kinds.get("ScDecryptionShare", 0) == n * n
        assert kinds.get("AbcProposal", 0) >= n * n


def test_binary_agreement_scaling(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for n, t in ((4, 1), (7, 2), (10, 3), (13, 4)):
            keys = dealt(n, t)
            sent = [
                _measure_aba(keys, seed=100 * n + s).sent for s in range(3)
            ]
            rows.append((n, t, sum(sent) / len(sent)))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "Binary agreement message cost vs n (split inputs, mean of 3 schedules)",
        [f"{'n':>3} {'t':>3} {'msgs sent':>10} {'per-party':>10}"]
        + [
            f"{n:>3} {t:>3} {sent:>10.0f} {sent / n:>10.0f}"
            for n, t, sent in rows
        ],
    )
    # Quadratic growth: per-party message count grows with n.
    per_party = [sent / n for n, _, sent in rows]
    assert per_party[-1] > per_party[0]
