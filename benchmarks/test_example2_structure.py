"""E4 — Example 2 (Section 4.3): sixteen servers, locations x OS.

The paper's quantitative headline: the two-attribute structure
tolerates the *simultaneous* corruption of one full location and one
full operating system — seven servers — while every threshold scheme
on sixteen servers tolerates at most five.  Regenerated here:

* the structure's sixteen maximal coalitions all have size 7 and Q^3
  holds;
* a directory service keeps operating with Tokyo + all Linux machines
  silenced (7 corruptions);
* the best admissible threshold (t=5) cannot even model that coalition.
"""

from conftest import dealt, emit

from repro.adversary import (
    example2_access_formula,
    example2_assignment,
    example2_structure,
    threshold_structure,
)
from repro.adversary.quorums import access_formula_compatible
from repro.apps import DirectoryService
from repro.net.adversary import SilentNode
from repro.smr import build_service


def _service_survives_seven_corruptions():
    assignment = example2_assignment()
    dep = build_service(
        16,
        DirectoryService,
        structure=example2_structure(),
        access_formula=example2_access_formula(),
        seed=9100,
    )
    doomed = sorted(
        assignment.parties_with("location", "tokyo")
        | assignment.parties_with("os", "linux")
    )
    for server in doomed:
        dep.controller.corrupt(dep.network, server, SilentNode())
    client = dep.new_client()
    dep.network.start()
    n1 = client.submit(("bind", "payroll", "db7"))
    n2 = client.submit(("resolve", "payroll"))
    results = dep.run_until_complete(client, [n1, n2], max_steps=1_500_000)
    dep.network.run(max_steps=2_000_000)  # drain so every replica executed
    consistent = len({r.state_machine.snapshot() for r in dep.honest_replicas()}) == 1
    return len(doomed), results[n2].result, consistent, dep.network.delivered_count


def test_example2_structure(benchmark):
    structure = example2_structure()
    corrupted, resolve_result, consistent, delivered = benchmark.pedantic(
        _service_survives_seven_corruptions, rounds=1, iterations=1
    )
    best = threshold_structure(16, 5)
    doomed_example = next(iter(structure.maximal_sets))

    emit(
        "Example 2 (16 servers: 4 locations x 4 operating systems)",
        [
            f"Q^3 condition holds:                          {structure.satisfies_q3()}",
            f"maximal corruptible coalitions:               "
            f"{len(structure.maximal_sets)} (all size "
            f"{len(doomed_example)})",
            f"sharing formula compatible (safety+liveness): "
            f"{access_formula_compatible(structure, example2_access_formula())}",
            f"directory ran with {corrupted} servers corrupted -> "
            f"resolve = {resolve_result}",
            f"surviving replicas consistent:                {consistent}",
            f"messages delivered:                           {delivered}",
            f"best threshold for n=16 is t=5 (n>3t);        tolerates the same "
            f"coalition: {best.is_corruptible(doomed_example)}",
            f"t=6 admissible?                               "
            f"{threshold_structure(16, 6).satisfies_q3()}",
        ],
    )
    assert structure.satisfies_q3()
    assert len(structure.maximal_sets) == 16
    assert all(len(m) == 7 for m in structure.maximal_sets)
    assert corrupted == 7
    assert resolve_result[2] == "db7"
    assert consistent
    assert not best.is_corruptible(doomed_example)  # thresholds cap at 5
    assert not threshold_structure(16, 6).satisfies_q3()
