"""E3 — Example 1 (Section 4.3): nine servers, classes a-d.

Regenerates the example's claims as measurements:

* the adversary structure A1 tolerates any two arbitrary servers OR all
  servers of any one class (including all four of class a), and
  satisfies Q^3;
* secrets are reconstructible exactly by coalitions of size >= 3
  covering >= 2 classes (exhaustively verified over all 512 subsets);
* the full protocol stack stays live and safe with all of class a
  corrupted — a corruption no 9-server threshold system tolerates
  (t=2 maximum, here 4 corruptions).
"""

from itertools import combinations

import random

from conftest import dealt, emit, make_network

from repro.adversary import (
    example1_access_formula,
    example1_assignment,
    example1_structure,
    threshold_structure,
)
from repro.core.binary_agreement import BinaryAgreement, aba_session
from repro.crypto.groups import small_group
from repro.crypto.lsss import LsssScheme
from repro.net.adversary import SilentNode


def _exhaustive_access_check():
    """Sharing/reconstruction agrees with the paper's access rule on all
    2^9 subsets; returns (qualified_count, corruptible_count)."""
    scheme = LsssScheme(formula=example1_access_formula(), modulus=small_group().q)
    rng = random.Random(1)
    sharing = scheme.deal(123456789, rng)
    classes = example1_assignment().attributes["class"]
    qualified = corruptible = 0
    for mask in range(1 << 9):
        subset = {i for i in range(9) if mask >> i & 1}
        rule = len(subset) >= 3 and len({classes[i] for i in subset}) >= 2
        lam = scheme.recombination(subset)
        if rule:
            qualified += 1
            assert lam is not None
            assert scheme.reconstruct(sharing, subset) == 123456789
        else:
            corruptible += 1
            assert lam is None
    return qualified, corruptible


def _agreement_with_class_a_corrupted():
    keys = dealt(9, which="example1")
    honest = [4, 5, 6, 7, 8]
    net, rts = make_network(keys, seed=3, parties=honest)
    for bad in (0, 1, 2, 3):
        net.attach(bad, SilentNode())
    session = aba_session("e3")
    for p, rt in rts.items():
        rt.spawn(session, BinaryAgreement(p % 2))
    net.run(
        until=lambda: all(rt.result(session) is not None for rt in rts.values()),
        max_steps=600_000,
    )
    return {rt.result(session) for rt in rts.values()}


def test_example1_structure(benchmark):
    structure = example1_structure()
    qualified, corruptible = benchmark.pedantic(
        _exhaustive_access_check, rounds=1, iterations=1
    )
    decisions = _agreement_with_class_a_corrupted()
    best_threshold = threshold_structure(9, 2)

    pair_count = sum(
        1 for pair in combinations(range(9), 2) if structure.is_corruptible(set(pair))
    )
    emit(
        "Example 1 (9 servers, classes a,a,a,a,b,b,c,c,d)",
        [
            f"Q^3 condition holds:                        {structure.satisfies_q3()}",
            f"corruptible pairs (paper: all 36):          {pair_count}",
            f"all of class a corruptible (4 servers):     "
            f"{structure.is_corruptible({0, 1, 2, 3})}",
            f"class a + one more corruptible:             "
            f"{structure.is_corruptible({0, 1, 2, 3, 4})}",
            f"subsets qualified to reconstruct (of 512):  {qualified}",
            f"subsets the adversary may hold:             {corruptible}",
            f"agreement with class a (4/9) silenced:      decided {decisions}",
            f"best threshold t for n=9 (n>3t):            t=2 "
            f"(cannot tolerate 4: {not best_threshold.is_corruptible(range(4))})",
        ],
    )
    assert structure.satisfies_q3()
    assert pair_count == 36
    assert structure.is_corruptible({0, 1, 2, 3})
    assert not structure.is_corruptible({0, 1, 2, 3, 4})
    assert len(decisions) == 1
    assert not best_threshold.is_corruptible({0, 1, 2, 3})
