"""E7 — input causality: the patent-race attack (Section 5.2).

A corrupted server observes pending notary submissions and front-runs
them for a competitor while the adversary starves the victim's traffic.
Measured across both configurations:

* plain atomic broadcast  -> digests leak, the competitor wins;
* secure causal broadcast -> nothing leaks, the inventor wins.

This is the paper's argument for combining atomic broadcast with a
CCA2-secure threshold cryptosystem, executed.
"""

from conftest import emit

from repro.apps import NotaryClient, NotaryService
from repro.core.runtime import ProtocolRuntime
from repro.net.scheduler import Scheduler
from repro.smr import Replica, build_service, service_session
from repro.smr.replica import SubmitEncrypted, SubmitRequest
from repro.smr.state_machine import Request

CORRUPT = 3


class _FrontRunScheduler(Scheduler):
    def __init__(self, inventor_id):
        self.inventor_id = inventor_id
        self.block_inventor = False

    def select(self, pending, rng):
        if not pending:
            return None
        for i, env in enumerate(pending):
            if env.sender == self.inventor_id and env.recipient == CORRUPT:
                return i
        if self.block_inventor:
            fast = [i for i, e in enumerate(pending) if e.sender != self.inventor_id]
            pool = fast if fast else list(range(len(pending)))
        else:
            pool = list(range(len(pending)))
        return pool[rng.randrange(len(pool))]


class _WithholdingRuntime(ProtocolRuntime):
    def __init__(self, *args, spy, inventor_id, **kwargs):
        super().__init__(*args, **kwargs)
        self.spy = spy
        self.inventor_id = inventor_id

    def on_message(self, sender, payload):
        if isinstance(payload, tuple) and len(payload) == 2:
            message = payload[1]
            if isinstance(message, SubmitRequest):
                request = Request.decode(message.request)
                if request is not None and request.operation[0] == "register":
                    digest = request.operation[1]
                    if isinstance(digest, bytes) and digest not in self.spy:
                        self.spy.append(digest)
                    if request.client == self.inventor_id:
                        return
            if isinstance(message, SubmitEncrypted) and sender == self.inventor_id:
                return
        super().on_message(sender, payload)


def _race(confidential: bool):
    dep = build_service(
        4, NotaryService, t=1, causal=confidential, seed=9300 + int(confidential)
    )
    network = dep.network
    spy: list[bytes] = []
    inventor = NotaryClient(dep.new_client(), confidential=confidential)
    competitor = NotaryClient(dep.new_client(), confidential=confidential)
    scheduler = _FrontRunScheduler(inventor.client.client_id)
    network.scheduler = scheduler
    tapped = _WithholdingRuntime(
        CORRUPT,
        network,
        dep.keys.public,
        dep.keys.private[CORRUPT],
        seed=99,
        spy=spy,
        inventor_id=inventor.client.client_id,
    )
    tapped.spawn(service_session("service"), Replica(NotaryService(), causal=confidential))
    dep.controller.corrupt(network, CORRUPT, tapped)

    network.start()
    nonce = inventor.register(b"the invention")
    stolen = None
    for _ in range(50):
        network.step()
        if spy and stolen is None:
            scheduler.block_inventor = True
            op = ("register", spy[0])
            stolen = (
                competitor.client.submit_confidential(op)
                if confidential
                else competitor.client.submit(op)
            )
            break
    if stolen is not None:
        network.run(
            until=lambda: stolen in competitor.client.completed, max_steps=800_000
        )
        scheduler.block_inventor = False
    network.run(until=lambda: nonce in inventor.client.completed, max_steps=800_000)
    result = inventor.client.completed[nonce].result
    registrant = result[3]
    winner = "inventor" if registrant == inventor.client.client_id else "competitor"
    return winner, len(spy)


def test_front_running_attack(benchmark):
    winner_causal, leaks_causal = benchmark.pedantic(
        lambda: _race(confidential=True), rounds=1, iterations=1
    )
    winner_plain, leaks_plain = _race(confidential=False)
    emit(
        "Input causality (Section 5.2): the patent race",
        [
            f"{'configuration':28} {'digests leaked':>15} {'winner':>12}",
            f"{'plain atomic broadcast':28} {leaks_plain:>15} {winner_plain:>12}",
            f"{'secure causal broadcast':28} {leaks_causal:>15} {winner_causal:>12}",
        ],
    )
    assert winner_plain == "competitor" and leaks_plain >= 1
    assert winner_causal == "inventor" and leaks_causal == 0
