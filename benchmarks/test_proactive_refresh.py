"""E14 — ablation: proactive share refresh (Section 6).

The paper's first extension: reshare key material between epochs so
that everything a mobile adversary captured in past epochs becomes
useless.  Measured: refresh cost per epoch across n, and the security
property itself — after a refresh, the union of (t old shares + t new
shares) still reveals nothing, while t+1 new shares reconstruct.
"""

import random

from conftest import emit

from repro.crypto.groups import small_group
from repro.crypto.proactive import (
    apply_refresh,
    deal_zero_sharing,
    verify_zero_sharing,
)
from repro.crypto.shamir import Share, lagrange_coefficients, reconstruct, share_secret

GROUP = small_group()


def _epoch(n, t, shares, rng):
    """One proactive epoch: t+1 parties deal zero-sharings; all verify
    and apply.  Returns the refreshed shares."""
    updates = [deal_zero_sharing(GROUP, n, t, dealer=d, rng=rng) for d in range(t + 1)]
    for update in updates:
        for point in range(1, n + 1):
            assert verify_zero_sharing(GROUP, update, point)
    return [apply_refresh(GROUP, s, updates) for s in shares]


def _stale_mix_useless(secret, old, new, t):
    """Interpolating t old + (t+1 - t) new shares misses the secret."""
    mixed = old[:t] + new[t : t + 1]
    return reconstruct(mixed, GROUP.q) != secret


def test_proactive_refresh(benchmark):
    rows = []

    def run():
        rows.clear()
        rng = random.Random(60)
        for n, t in ((4, 1), (7, 2), (16, 5)):
            secret = rng.randrange(GROUP.q)
            shares, _ = share_secret(secret, n, t, GROUP.q, rng)
            epochs = 3
            current = shares
            history = [shares]
            for _ in range(epochs):
                current = _epoch(n, t, current, rng)
                history.append(current)
            # Secret invariant across epochs.
            assert reconstruct(current[: t + 1], GROUP.q) == secret
            # Every share changed every epoch.
            changed = all(
                a.value != b.value
                for before, after in zip(history, history[1:])
                for a, b in zip(before, after)
            )
            # Mobile adversary: t shares from epoch 0 plus one from the
            # final epoch do not reconstruct.
            stale = _stale_mix_useless(secret, history[0], current, t)
            rows.append((n, t, epochs, changed, stale))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Proactive refresh (Section 6): epochs of verifiable zero-resharing",
        [f"{'n':>3} {'t':>3} {'epochs':>7} {'shares rotate':>14} "
         f"{'stale mix useless':>18}"]
        + [
            f"{n:>3} {t:>3} {e:>7} {str(ch):>14} {str(stale):>18}"
            for n, t, e, ch, stale in rows
        ],
    )
    assert all(ch and stale for _, _, _, ch, stale in rows)
