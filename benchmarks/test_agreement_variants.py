"""E13 — ablation: two realizations of the binary agreement primitive.

The architecture needs *one* randomized agreement primitive; this
repository provides two faithful realizations (DESIGN.md):

* the default **binding-gate** protocol (BVAL/AUX/CONF structure) —
  three vote phases, no per-message certificates;
* the explicit **CKS-style** protocol — two vote phases whose messages
  carry transferable certificate justifications, exactly the [8]
  message pattern.

Measured at identical n, inputs and schedules: messages per decision,
rounds, and decisions always agreeing within each protocol.  The CKS
variant sends fewer, larger messages (certificates inside); the
binding-gate variant sends more, smaller ones — the trade the paper's
remark on threshold signatures (E12) is about.
"""

from conftest import dealt, emit, make_network

from repro.core.binary_agreement import BinaryAgreement, aba_session
from repro.core.cks_agreement import CksBinaryAgreement, cks_session
from repro.crypto.hashing import encode
from repro.net.scheduler import RandomScheduler, ReorderScheduler


def _run(keys, factory, session, seed, scheduler):
    net, rts = make_network(keys, scheduler(), seed=seed)
    for p, rt in rts.items():
        rt.spawn(session, factory(p % 2))
    net.run(
        until=lambda: all(rt.result(session) is not None for rt in rts.values()),
        max_steps=900_000,
    )
    decisions = {rt.result(session) for rt in rts.values()}
    assert len(decisions) == 1
    # Approximate bytes on the wire via the canonical encoding of the
    # biggest message kind tallies (sampled from the trace counters).
    return net.trace.sent


def test_agreement_variants(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for n, t in ((4, 1), (7, 2)):
            keys = dealt(n, t)
            for seed_base, scheduler in ((500, RandomScheduler), (600, ReorderScheduler)):
                gate = sum(
                    _run(keys, BinaryAgreement, aba_session(("e13", n, s)),
                         seed_base + s, scheduler)
                    for s in range(3)
                ) / 3
                cks = sum(
                    _run(keys, CksBinaryAgreement, cks_session(("e13", n, s)),
                         seed_base + s, scheduler)
                    for s in range(3)
                ) / 3
                rows.append((n, scheduler.__name__, gate, cks))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "Binary agreement realizations: binding-gate vs CKS certificates "
        "(split inputs, mean of 3 runs)",
        [f"{'n':>3} {'scheduler':>18} {'gate msgs':>10} {'CKS msgs':>10}"]
        + [
            f"{n:>3} {sched:>18} {gate:>10.0f} {cks:>10.0f}"
            for n, sched, gate, cks in rows
        ],
    )
    # The certificate-based variant needs fewer messages (two phases vs
    # three, and justifications travel inside votes); under the most
    # favorable schedule both can hit the single-round floor.
    for n, _sched, gate, cks in rows:
        assert cks <= gate
    assert any(cks < gate for _n, _sched, gate, cks in rows)


def test_cks_message_sizes(benchmark):
    """Certificates inside CKS votes make them larger per message —
    quantified here, complementing E12's constant-size observation."""
    keys = dealt(4, 1)

    def capture():
        import random as _r

        from repro.core.runtime import ProtocolRuntime
        from repro.net.simulator import Network

        net = Network(RandomScheduler(), _r.Random(1))
        rts = {}
        session = cks_session("sizes")
        for i in range(4):
            rt = ProtocolRuntime(i, net, keys.public, keys.private[i], seed=1)
            net.attach(i, rt)
            rts[i] = rt
        sizes = {"CksPreVote": [], "CksMainVote": []}
        original_send = net.send

        def sniffing_send(sender, recipient, payload):
            message = payload[1] if isinstance(payload, tuple) else None
            name = type(message).__name__
            if name in sizes:
                try:
                    sizes[name].append(len(encode(message)))
                except TypeError:
                    pass
            original_send(sender, recipient, payload)

        net.send = sniffing_send
        for p, rt in rts.items():
            rt.spawn(session, CksBinaryAgreement(p % 2))
        net.run(
            until=lambda: all(rt.result(session) is not None for rt in rts.values()),
            max_steps=400_000,
        )
        return {k: (min(v), max(v)) for k, v in sizes.items() if v}

    spans = benchmark.pedantic(capture, rounds=1, iterations=1)
    emit(
        "CKS vote sizes (bytes, canonical encoding; certificates inside)",
        [f"{kind:14} min={lo:>6}  max={hi:>6}" for kind, (lo, hi) in spans.items()],
    )
    # Later-round pre-votes carry certificates: visibly larger than the
    # bare round-1 votes.
    lo, hi = spans["CksPreVote"]
    assert hi > 2 * lo
