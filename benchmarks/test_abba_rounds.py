"""E5 — expected-constant-round termination of binary agreement.

The CKS protocol (Section 2/3) terminates "within an expected constant
number of asynchronous rounds", independent of n.  Measured: the
distribution of coin-flip rounds until all honest parties decide, over
repeated adversarially-scheduled runs with split inputs, for
n ∈ {4, 7, 10, 13}.  The paper's claim shows up as a mean round count
that stays flat (well under a small constant) as n grows.
"""

from conftest import dealt, emit, make_network

from repro.core.binary_agreement import BinaryAgreement, aba_session
from repro.net.scheduler import RandomScheduler, ReorderScheduler

RUNS_PER_N = 12
SIZES = ((4, 1), (7, 2), (10, 3), (13, 4))


def _rounds_until_decision(keys, seed, scheduler_cls):
    net, rts = make_network(keys, scheduler_cls(), seed=seed)
    session = aba_session(("e5", seed))
    for p, rt in rts.items():
        rt.spawn(session, BinaryAgreement(p % 2))
    net.run(
        until=lambda: all(rt.result(session) is not None for rt in rts.values()),
        max_steps=900_000,
    )
    # Rounds completed by the slowest decider (coin flips / parties).
    max_round = max(
        max(rt.instances[session].rounds) for rt in rts.values()
    )
    return max_round


def _histogram():
    table = {}
    for n, t in SIZES:
        keys = dealt(n, t)
        rounds = []
        for seed in range(RUNS_PER_N):
            scheduler = RandomScheduler if seed % 2 == 0 else ReorderScheduler
            rounds.append(_rounds_until_decision(keys, 100 + seed, scheduler))
        table[n] = rounds
    return table


def test_expected_constant_rounds(benchmark):
    table = benchmark.pedantic(_histogram, rounds=1, iterations=1)
    rows = [f"{'n':>3} {'mean':>6} {'max':>4}  round histogram"]
    for n, rounds in table.items():
        mean = sum(rounds) / len(rounds)
        hist = {}
        for r in rounds:
            hist[r] = hist.get(r, 0) + 1
        hist_text = "  ".join(f"{r}r:{c}" for r, c in sorted(hist.items()))
        rows.append(f"{n:>3} {mean:>6.2f} {max(rounds):>4}  {hist_text}")
    emit(
        f"Binary agreement rounds to decision ({RUNS_PER_N} adversarially "
        "scheduled runs per n, split inputs)",
        rows,
    )
    means = {n: sum(rs) / len(rs) for n, rs in table.items()}
    # Expected-constant: termination time is geometric (coin agreement
    # each round has constant probability), so means stay small and flat
    # in n while the max carries a geometric tail.
    assert all(mean <= 5 for mean in means.values())
    assert all(max(rs) <= 16 for rs in table.values())
    # No systematic growth: largest n's mean within 2 rounds of smallest's.
    assert abs(means[13] - means[4]) <= 2
