"""E15 — ablation: statistical quality of the threshold coin.

The agreement protocol's expected-constant-round termination (E5)
rests on the coin being an unbiased common coin: each named coin must
look like an independent fair bit to everyone — including coalitions
inside the adversary structure.  Measured:

* empirical bias over many coin names (binomial concentration);
* serial independence (adjacent-coin correlation);
* cross-quorum consistency (every qualified set opens the same value);
* a corruptible coalition's shares alone never determine the value.
"""

import random

from conftest import emit

from repro.crypto.coin import deal_coin
from repro.crypto.groups import small_group
from repro.crypto.lsss import threshold_scheme

GROUP = small_group()
FLIPS = 400


def _flip_many(public, holders, t, count, rng):
    values = []
    for name in range(count):
        shares = {i: holders[i].share_for(("q", name), rng) for i in range(t + 1)}
        values.append(public.combine(("q", name), shares))
    return values


def test_coin_quality(benchmark):
    rng = random.Random(71)
    scheme = threshold_scheme(4, 1, GROUP.q)
    public, holders = deal_coin(GROUP, scheme, rng)

    values = benchmark.pedantic(
        lambda: _flip_many(public, holders, 1, FLIPS, rng), rounds=1, iterations=1
    )
    ones = sum(values)
    # Serial correlation: fraction of adjacent equal pairs (expect ~1/2).
    equal_adjacent = sum(
        1 for a, b in zip(values, values[1:]) if a == b
    ) / (len(values) - 1)

    # Cross-quorum consistency on a sample of names.
    consistent = all(
        public.combine(("q", name), {
            i: holders[i].share_for(("q", name), rng) for i in (2, 3)
        }) == values[name]
        for name in range(0, FLIPS, 37)
    )

    emit(
        f"Threshold coin quality over {FLIPS} named coins (n=4, t=1)",
        [
            f"ones / total:            {ones}/{FLIPS} "
            f"(bias {abs(ones / FLIPS - 0.5):.3f})",
            f"adjacent-equal fraction: {equal_adjacent:.3f} (expect ~0.5)",
            f"cross-quorum consistent: {consistent}",
        ],
    )
    # Binomial(400, 1/2): 6 sigma ≈ 60.
    assert abs(ones - FLIPS / 2) < 60
    assert abs(equal_adjacent - 0.5) < 0.15
    assert consistent
