"""E6 — atomic broadcast: liveness, total order, and fairness.

Section 3: the protocol "guarantees liveness and fairness, i.e., a
message broadcast by an honest party cannot be delayed arbitrarily by
the adversary once it is known to at least t+1 honest parties."

Measured: (a) identical delivery order across honest parties for a
burst of client payloads under an adversarial scheduler; (b) the
number of rounds a payload held by t+1 honest parties waits before
delivery, while the adversary starves one holder and floods noise —
the paper's bound shows up as delivery within the next round or two.
"""

from conftest import dealt, emit, make_network

from repro.core.atomic_broadcast import AtomicBroadcast, abc_session
from repro.core.protocol import Context
from repro.net.adversary import SilentNode
from repro.net.scheduler import DelayScheduler, ReorderScheduler


def _spawn(rts, session):
    logs = {p: [] for p in rts}
    for p, rt in rts.items():
        rt.spawn(
            session, AtomicBroadcast(on_deliver=lambda m, r, pp=p: logs[pp].append((m, r)))
        )
    return logs


def _submit(rts, session, party, payload):
    inst = rts[party].instances[session]
    inst.submit(Context(rts[party], session), payload)


def _burst_total_order(keys, burst=8, seed=11):
    net, rts = make_network(keys, ReorderScheduler(), seed=seed)
    session = abc_session(("e6", seed))
    logs = _spawn(rts, session)
    net.start()
    for k in range(burst):
        _submit(rts, session, k % keys.public.n, ("req", k))
    n = keys.public.n
    net.run(
        until=lambda: all(len(logs[p]) >= burst for p in rts), max_steps=1_200_000
    )
    orders = [[m for m, _ in logs[p]] for p in rts]
    return orders, net.delivered_count


def _fairness_under_attack(keys, seed=12):
    """Payload held by exactly t+1 honest parties; one of them starved."""
    net, rts = make_network(keys, DelayScheduler({1}), seed=seed, parties=[0, 1, 2])
    net.attach(3, SilentNode())  # t=1 corruption on top
    session = abc_session(("e6-fair", seed))
    logs = _spawn(rts, session)
    net.start()
    for holder in (0, 1):  # t+1 = 2 holders
        _submit(rts, session, holder, ("held", "payload"))
    for p in rts:
        for k in range(3):
            _submit(rts, session, p, ("noise", p, k))
    net.run(
        until=lambda: all(any(m == ("held", "payload") for m, _ in logs[p]) for p in rts),
        max_steps=1_200_000,
    )
    delivery_round = next(
        r for m, r in logs[0] if m == ("held", "payload")
    )
    return delivery_round


def test_abc_order_and_fairness(benchmark):
    keys = dealt(4, 1)
    (orders, delivered) = benchmark.pedantic(
        lambda: _burst_total_order(keys), rounds=1, iterations=1
    )
    fairness_round = _fairness_under_attack(keys)

    emit(
        "Atomic broadcast: total order + fairness (n=4, t=1)",
        [
            f"burst of 8 payloads, adversarial (LIFO) scheduling:",
            f"  identical order at all parties: {all(o == orders[0] for o in orders)}",
            f"  delivery order: {orders[0]}",
            f"  messages delivered: {delivered}",
            f"payload held by t+1 honest parties, one holder starved, "
            f"noise flooding:",
            f"  delivered in global round {fairness_round} "
            f"(paper: cannot be delayed arbitrarily)",
        ],
    )
    assert all(order == orders[0] for order in orders)
    assert len(set(orders[0])) == 8
    assert fairness_round <= 3


def test_abc_throughput_vs_n(benchmark):
    rows = []

    def run():
        rows.clear()
        for n, t in ((4, 1), (7, 2), (10, 3)):
            keys = dealt(n, t)
            net, rts = make_network(keys, seed=20 + n)
            session = abc_session(("e6-scale", n))
            logs = _spawn(rts, session)
            net.start()
            for p in rts:
                _submit(rts, session, p, ("req", p))
            net.run(
                until=lambda: all(len(logs[p]) >= n for p in rts),
                max_steps=2_000_000,
            )
            rounds = rts[0].instances[session].round
            rows.append((n, t, net.trace.sent, rounds))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Atomic broadcast cost vs n (n concurrent client payloads)",
        [f"{'n':>3} {'t':>3} {'msgs sent':>10} {'rounds':>7}"]
        + [f"{n:>3} {t:>3} {sent:>10} {rounds:>7}" for n, t, sent, rounds in rows],
    )
    # All payloads land within a handful of global rounds regardless of
    # n (payloads arriving while a round is in flight wait one round).
    assert all(rounds <= 6 for _, _, _, rounds in rows)
