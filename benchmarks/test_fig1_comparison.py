"""E1 — Figure 1: systems for secure state machine replication.

The paper's comparison table is qualitative; this benchmark makes each
row's decisive property *measurable* on the same simulated network:

* **this paper** (randomized BA, static group): decides under the
  leader/party starvation attack — liveness AND safety;
* **CL99-style deterministic leader protocol**: safety holds, liveness
  lost under the starvation attack (endless view changes);
* **failure-detector membership (Rampart/SecureRing style)**: the
  timeout detector makes unbounded wrong suspicions of honest parties,
  and view-based expulsion hands the group to the corrupted minority.

Reproduced output: one row per system with the measured verdicts.
"""

from conftest import dealt, emit, make_network

from repro.baselines.failure_detector import TimeoutFailureDetector, ViewBasedGroup
from repro.baselines.leader_based import LeaderConsensus, leader_session, ViewChange
from repro.core.binary_agreement import BinaryAgreement, aba_session
from repro.core.protocol import Context
from repro.net.scheduler import StarvingScheduler


class _LeaderStarver(StarvingScheduler):
    """Content-aware starvation: view changes pass, leader traffic stalls."""

    def select(self, pending, rng):
        self.clock += 1
        if not pending:
            return None
        for env in pending:
            self._birth.setdefault(env.seq, self.clock)
        targets = self.targets()

        def starved(env):
            message = (
                env.payload[1]
                if isinstance(env.payload, tuple) and len(env.payload) == 2
                else None
            )
            if isinstance(message, ViewChange):
                return False
            return env.sender in targets or env.recipient in targets

        fast = [i for i, env in enumerate(pending) if not starved(env)]
        if fast:
            return fast[rng.randrange(len(fast))]
        overdue = [
            i
            for i, env in enumerate(pending)
            if self.clock - self._birth[env.seq] > self.patience
        ]
        return overdue[0] if overdue else None


def _run_randomized_under_attack(budget=300_000):
    keys = dealt(4, 1)
    network, runtimes = make_network(keys, StarvingScheduler({0}, patience=2000), seed=1)
    session = aba_session("fig1")
    for party, runtime in runtimes.items():
        runtime.spawn(session, BinaryAgreement(party % 2))
    network.start()
    steps = 0
    while steps < budget and not all(
        r.result(session) is not None for r in runtimes.values()
    ):
        network.step()
        steps += 1
    decisions = {r.result(session) for r in runtimes.values()}
    return decisions, steps


def _run_deterministic_under_attack(budget=20_000):
    keys = dealt(4, 1)
    instances = {}

    def leaders():
        return {inst.view % 4 for inst in instances.values()} or {0}

    network, runtimes = make_network(
        keys, _LeaderStarver(leaders, patience=2000), seed=2
    )
    session = leader_session("fig1")
    for party, runtime in runtimes.items():
        instances[party] = runtime.spawn(
            session, LeaderConsensus(("v", party), timeout=40)
        )
    network.start()
    for _ in range(budget):
        network.step()
        for party, runtime in runtimes.items():
            instances[party].tick(Context(runtime, session))
    deciders = sum(1 for r in runtimes.values() if r.result(session) is not None)
    max_view = max(inst.view for inst in instances.values())
    return deciders, max_view


def _run_failure_detector_attack(cycles=25):
    fd = TimeoutFailureDetector(parties=[0], timeout=5, honest=frozenset({0}))
    for _ in range(cycles):
        for _ in range(6):
            fd.tick()
        fd.heard(0)
    group = ViewBasedGroup(members=list(range(7)), corrupted=frozenset({5, 6}))
    for victim in (0, 1, 2):
        for voter in [m for m in group.members if m != victim]:
            if group.vote_expel(voter, victim):
                break
    return fd.wrong_suspicions, group.integrity_lost


def test_fig1_comparison(benchmark):
    decisions, steps = benchmark.pedantic(
        _run_randomized_under_attack, rounds=1, iterations=1
    )
    det_deciders, det_views = _run_deterministic_under_attack()
    wrong, integrity_lost = _run_failure_detector_attack()

    emit(
        "Figure 1 (measured): secure state machine replication under a "
        "scheduling adversary",
        [
            f"{'system':34} {'timing':8} {'servers':8} {'BA?':4} verdict",
            f"{'this paper (randomized BA)':34} {'async':8} {'static':8} "
            f"{'yes':4} decided {decisions} in {steps} deliveries "
            f"(liveness+safety)",
            f"{'CL99 / PBFT-style (determ.)':34} {'async*':8} {'static':8} "
            f"{'no':4} {det_deciders}/4 decided after 20000 rounds, "
            f"{det_views} view changes (liveness LOST, safety held)",
            f"{'Rampart/SecureRing (FD+views)':34} {'async*':8} {'dynamic':8} "
            f"{'no':4} {wrong} wrong suspicions of one honest server; "
            f"membership integrity lost: {integrity_lost}",
            "(*) relies on timing assumptions for liveness",
        ],
    )

    # The paper's claims, as assertions:
    assert len(decisions) == 1 and None not in decisions  # we decide, and agree
    assert det_deciders == 0  # deterministic baseline blocked
    assert det_views >= 3  # ... while churning through views
    assert wrong >= 25  # unbounded wrong suspicions (grows with cycles)
    assert integrity_lost  # dynamic membership handed over the group
