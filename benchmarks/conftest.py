"""Benchmark fixtures: dealt systems and network builders.

Each benchmark regenerates one artifact of the paper (see DESIGN.md's
experiment index) and prints the reproduced table/series; run with

    pytest benchmarks/ --benchmark-only -s

to see the tables alongside pytest-benchmark's timing output.
"""

from __future__ import annotations

import pathlib
import random
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.adversary import (
    example1_access_formula,
    example1_structure,
    example2_access_formula,
    example2_structure,
)
from repro.core.runtime import ProtocolRuntime
from repro.crypto import deal_system, small_group
from repro.net.scheduler import RandomScheduler
from repro.net.simulator import Network

_DEALT_CACHE: dict = {}


def dealt(n: int, t: int | None = None, which: str | None = None, seed: int = 9000):
    """Session-cached dealt systems (dealing dominates setup time)."""
    key = (n, t, which, seed)
    if key not in _DEALT_CACHE:
        rng = random.Random(seed)
        if which == "example1":
            _DEALT_CACHE[key] = deal_system(
                9,
                rng,
                structure=example1_structure(),
                access_formula=example1_access_formula(),
                group=small_group(),
            )
        elif which == "example2":
            _DEALT_CACHE[key] = deal_system(
                16,
                rng,
                structure=example2_structure(),
                access_formula=example2_access_formula(),
                group=small_group(),
            )
        else:
            _DEALT_CACHE[key] = deal_system(n, rng, t=t, group=small_group())
    return _DEALT_CACHE[key]


def make_network(keys, scheduler=None, seed=0, parties=None):
    network = Network(scheduler or RandomScheduler(), random.Random(seed))
    runtimes = {}
    for party in parties if parties is not None else range(keys.public.n):
        runtime = ProtocolRuntime(
            party, network, keys.public, keys.private[party], seed=seed
        )
        network.attach(party, runtime)
        runtimes[party] = runtime
    return network, runtimes


@pytest.fixture(scope="session")
def report():
    """Collects printable result rows across benchmarks in one run."""
    lines: list[str] = []
    yield lines
    if lines:
        print("\n".join(lines))


def emit(title: str, rows: list[str]) -> None:
    """Print a reproduced table under a clear banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}")
    for row in rows:
        print(row)
