"""E16 — ablation: hybrid failure structures (Section 6).

"Crashes are more likely to occur than intrusions and they are much
easier to handle than Byzantine corruptions."  Quantified: for n = 9
servers, the classical Byzantine threshold admits 2 faults of any kind,
while hybrid budgets admit up to 4 (b=0, c=4).  The same protocol stack
runs unmodified in each regime; measured here with real fault
injection on the agreement layer.
"""

import random

from conftest import emit

from repro.adversary.hybrid import HybridQuorumSystem
from repro.core.binary_agreement import BinaryAgreement, aba_session
from repro.core.runtime import ProtocolRuntime
from repro.crypto import deal_system, small_group
from repro.net.adversary import SilentNode
from repro.net.scheduler import RandomScheduler
from repro.net.simulator import Network

N = 9
BUDGETS = [
    (2, 0),  # classical t=2 expressed as hybrid
    (1, 2),  # one intrusion + two crashes = 3 faults
    (0, 4),  # four crashes
]


def _run_agreement(b, c, seed):
    keys = deal_system(N, random.Random(seed), hybrid=(b, c), group=small_group())
    net = Network(RandomScheduler(), random.Random(seed + 1))
    byzantine = list(range(N - b, N))
    crashed = list(range(N - b - c, N - b))
    live = [p for p in range(N) if p not in byzantine and p not in crashed]
    rts = {}
    for p in live:
        rt = ProtocolRuntime(p, net, keys.public, keys.private[p], seed=seed)
        net.attach(p, rt)
        rts[p] = rt
    for p in byzantine:
        net.attach(p, SilentNode())
    for p in crashed:
        net.attach(p, SilentNode())
        net.crash(p)
    session = aba_session(("e16", b, c))
    for p, rt in rts.items():
        rt.spawn(session, BinaryAgreement(p % 2))
    net.run(
        until=lambda: all(rt.result(session) is not None for rt in rts.values()),
        max_steps=900_000,
    )
    decisions = {rt.result(session) for rt in rts.values()}
    return len(byzantine) + len(crashed), decisions, net.delivered_count


def test_hybrid_failure_budgets(benchmark):
    rows = []

    def run():
        rows.clear()
        for b, c in BUDGETS:
            quorum = HybridQuorumSystem(n=N, b=b, c=c)
            faults, decisions, delivered = _run_agreement(b, c, 9500 + 10 * b + c)
            rows.append((b, c, quorum.satisfies_q3, faults, decisions, delivered))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"Hybrid failure budgets on n={N} servers (agreement with injected faults)",
        [f"{'b':>3} {'c':>3} {'n>3b+2c':>8} {'faults':>7} {'decided':>9} "
         f"{'messages':>9}"]
        + [
            f"{b:>3} {c:>3} {str(ok):>8} {faults:>7} {str(dec):>9} {msgs:>9}"
            for b, c, ok, faults, dec, msgs in rows
        ]
        + [
            "classical Byzantine threshold on n=9: t=2 -> at most 2 faults;",
            "hybrid budgets reach 3 (1 intrusion + 2 crashes) or 4 (crashes only).",
        ],
    )
    for b, c, ok, faults, decisions, _msgs in rows:
        assert ok
        assert len(decisions) == 1
        assert faults == b + c
    assert rows[-1][3] == 4  # four tolerated faults, double the classical bound