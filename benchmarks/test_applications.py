"""E9 — the trusted services of Section 5, measured end to end.

For each application (CA, directory, notary): requests completed,
messages per request, and client-side verification of the threshold-
signed answer — with one server Byzantine-silent throughout, since
tolerating that is the entire point.
"""

from conftest import emit

from repro.apps import (
    CaClient,
    CertificationAuthority,
    DirectoryClient,
    DirectoryService,
    NotaryClient,
    NotaryService,
)
from repro.net.adversary import SilentNode
from repro.smr import build_service


def _run_ca():
    dep = build_service(4, CertificationAuthority, t=1, seed=9400)
    dep.controller.corrupt(dep.network, 3, SilentNode())
    ca = CaClient(dep.new_client())
    dep.network.start()
    nonces = [
        ca.request_certificate(f"user{i}", 0x1000 + i, {"name": f"U{i}", "email": "e"})
        for i in range(3)
    ]
    results = dep.run_until_complete(ca.client, nonces, max_steps=1_500_000)
    certs = [CaClient.parse_certificate(results[n]) for n in nonces]
    dep.network.run(max_steps=1_500_000)  # drain so every replica executed
    return dep, len([c for c in certs if c]), dep.network.delivered_count


def _run_directory():
    dep = build_service(4, DirectoryService, t=1, seed=9401)
    dep.controller.corrupt(dep.network, 3, SilentNode())
    d = DirectoryClient(dep.new_client())
    dep.network.start()
    nonces = [d.bind(f"name{i}", f"value{i}") for i in range(3)]
    dep.run_until_complete(d.client, nonces, max_steps=1_500_000)
    nonces.append(d.resolve("name1"))  # sequenced after the binds
    results = dep.run_until_complete(d.client, nonces, max_steps=1_500_000)
    ok = sum(1 for n in nonces if results[n].result[0] in ("bound", "entry"))
    return dep, ok, dep.network.delivered_count


def _run_notary():
    dep = build_service(4, NotaryService, t=1, causal=True, seed=9402)
    dep.controller.corrupt(dep.network, 3, SilentNode())
    notary = NotaryClient(dep.new_client(), confidential=True)
    dep.network.start()
    nonces = [notary.register(f"document-{i}".encode()) for i in range(3)]
    results = dep.run_until_complete(notary.client, nonces, max_steps=1_500_000)
    seqs = [results[n].result[1] for n in nonces]
    return dep, sorted(seqs), dep.network.delivered_count


def test_certification_authority(benchmark):
    dep, issued, delivered = benchmark.pedantic(_run_ca, rounds=1, iterations=1)
    emit(
        "Application: distributed CA (n=4, one server silent)",
        [
            f"certificates issued:    {issued}/3",
            f"messages delivered:     {delivered} ({delivered // 3} per request)",
            f"replicas consistent:    "
            f"{len({r.state_machine.snapshot() for r in dep.honest_replicas()}) == 1}",
        ],
    )
    assert issued == 3


def test_directory_service(benchmark):
    dep, ok, delivered = benchmark.pedantic(_run_directory, rounds=1, iterations=1)
    emit(
        "Application: secure directory (n=4, one server silent)",
        [
            f"operations completed:   {ok}/4",
            f"messages delivered:     {delivered}",
        ],
    )
    assert ok == 4


def test_notary_service(benchmark):
    dep, seqs, delivered = benchmark.pedantic(_run_notary, rounds=1, iterations=1)
    emit(
        "Application: confidential notary (n=4, one server silent, "
        "secure causal broadcast)",
        [
            f"sequence numbers issued: {seqs} (a logical clock)",
            f"messages delivered:      {delivered}",
        ],
    )
    assert seqs == [1, 2, 3]
