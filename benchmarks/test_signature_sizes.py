"""E12 — ablation: "threshold signatures are further employed to
decrease all messages to a constant size" (Section 3, on [8]).

The certificates that justify protocol steps can be realized two ways
(DESIGN.md substitution table):

* a **quorum certificate** — a set of individual Schnorr signatures
  from a qualified set: works for *any* Q^3 structure, but its size
  grows linearly with the quorum;
* a **Shoup RSA threshold signature** — combines the shares into one
  ordinary RSA signature: constant size, independent of n.

Measured: the canonical encoded size of both objects as n grows, and
the verification cost trade-off (one RSA exponentiation vs n-t Schnorr
verifications).
"""

import random
import time

from conftest import emit

from repro.adversary.quorums import ThresholdQuorumSystem
from repro.crypto.groups import default_group
from repro.crypto.hashing import encode
from repro.crypto.schnorr import keygen
from repro.crypto.threshold_sig import deal_quorum_certs, deal_shoup_rsa

SIZES = ((4, 1), (7, 2), (10, 3), (16, 5))


def _quorum_cert_size(n, t, rng):
    keys = {i: keygen(rng, default_group()) for i in range(n)}
    quorum = ThresholdQuorumSystem(n=n, t=t)
    public, holders = deal_quorum_certs(keys, qualifier=quorum.is_quorum)
    shares = {
        i: holders[i].sign_share("statement", rng) for i in range(n - t)
    }
    certificate = public.combine("statement", shares)
    t0 = time.perf_counter()
    assert public.verify("statement", certificate)
    verify_ms = 1000 * (time.perf_counter() - t0)
    return len(encode(certificate)), verify_ms


def _rsa_signature_size(n, k, rng, bits=512):
    public, holders = deal_shoup_rsa(n, k, rng, bits=bits)
    shares = {i: holders[i].sign_share("statement", rng) for i in range(1, k + 1)}
    signature = public.combine("statement", shares)
    t0 = time.perf_counter()
    assert public.verify("statement", signature)
    verify_ms = 1000 * (time.perf_counter() - t0)
    return len(encode(signature)), verify_ms


def test_certificate_vs_threshold_signature_size(benchmark):
    rows = []

    def run():
        rows.clear()
        rng = random.Random(50)
        for n, t in SIZES:
            cert_size, cert_ms = _quorum_cert_size(n, t, rng)
            rsa_size, rsa_ms = _rsa_signature_size(n, t + 1, rng)
            rows.append((n, t, cert_size, cert_ms, rsa_size, rsa_ms))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Justification size: quorum certificates vs Shoup RSA threshold "
        "signatures (512-bit modulus)",
        [
            f"{'n':>3} {'t':>3} {'cert bytes':>11} {'verify ms':>10} "
            f"{'rsa bytes':>10} {'verify ms':>10}"
        ]
        + [
            f"{n:>3} {t:>3} {cs:>11} {cms:>10.2f} {rs:>10} {rms:>10.2f}"
            for n, t, cs, cms, rs, rms in rows
        ],
    )
    cert_sizes = [cs for _, _, cs, _, _, _ in rows]
    rsa_sizes = [rs for _, _, _, _, rs, _ in rows]
    # Quorum certificates grow with n...
    assert cert_sizes[-1] > 2 * cert_sizes[0]
    # ...threshold signatures stay constant-size (paper's claim).
    assert max(rsa_sizes) - min(rsa_sizes) <= 8
    assert rsa_sizes[-1] < cert_sizes[-1]
