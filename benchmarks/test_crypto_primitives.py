"""E8 — threshold-cryptography primitive costs.

The paper argues the randomized protocols are "quite practical given
current processor speed" (Section 2).  This benchmark measures the
primitive operations everything else is built from, across group sizes
and party counts: coin share/verify/combine, TDH2 encrypt/share/
combine, Shoup RSA sign-share/verify/combine, and Schnorr signatures.
"""

import random

import pytest

from conftest import emit

from repro.crypto.coin import deal_coin
from repro.crypto.groups import default_group, small_group
from repro.crypto.lsss import threshold_scheme
from repro.crypto.schnorr import keygen
from repro.crypto.threshold_enc import deal_encryption
from repro.crypto.threshold_sig import deal_shoup_rsa

_RSA_CACHE = {}
_COIN_CACHE = {}
_ENC_CACHE = {}


def _coin(n, t, group):
    key = (n, t, group.p)
    if key not in _COIN_CACHE:
        scheme = threshold_scheme(n, t, group.q)
        _COIN_CACHE[key] = deal_coin(group, scheme, random.Random(1))
    return _COIN_CACHE[key]


def _enc(n, t, group):
    key = (n, t, group.p)
    if key not in _ENC_CACHE:
        scheme = threshold_scheme(n, t, group.q)
        _ENC_CACHE[key] = deal_encryption(group, scheme, random.Random(2))
    return _ENC_CACHE[key]


def _rsa(n, k, bits):
    key = (n, k, bits)
    if key not in _RSA_CACHE:
        _RSA_CACHE[key] = deal_shoup_rsa(n, k, random.Random(3), bits=bits)
    return _RSA_CACHE[key]


@pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (16, 5)])
def test_coin_combine(benchmark, n, t):
    group = default_group()
    public, holders = _coin(n, t, group)
    rng = random.Random(4)
    shares = {i: holders[i].share_for("bench", rng) for i in range(t + 1)}
    value = benchmark(lambda: public.combine("bench", shares))
    assert value in (0, 1)


@pytest.mark.parametrize("n,t", [(4, 1), (16, 5)])
def test_coin_share_and_verify(benchmark, n, t):
    group = default_group()
    public, holders = _coin(n, t, group)
    rng = random.Random(5)

    def share_and_verify():
        share = holders[0].share_for("bench2", rng)
        assert public.verify_share(share)
        return share

    benchmark(share_and_verify)


@pytest.mark.parametrize("n,t", [(4, 1), (16, 5)])
def test_tdh2_roundtrip(benchmark, n, t):
    group = default_group()
    public, holders = _enc(n, t, group)
    rng = random.Random(6)
    message = b"a confidential service request"

    def roundtrip():
        ct = public.encrypt(message, b"label", rng)
        shares = {i: holders[i].decryption_share(ct, rng) for i in range(t + 1)}
        return public.combine(ct, shares)

    assert benchmark(roundtrip) == message


@pytest.mark.parametrize("bits", [256, 512])
def test_shoup_rsa_sign_and_combine(benchmark, bits):
    public, holders = _rsa(4, 2, bits)
    rng = random.Random(7)

    def sign_combine():
        shares = {i: holders[i].sign_share("msg", rng) for i in (1, 2)}
        assert all(public.verify_share("msg", s) for s in shares.values())
        return public.combine("msg", shares)

    signature = benchmark(sign_combine)
    assert public.verify("msg", signature)


def test_schnorr_sign_verify(benchmark):
    key = keygen(random.Random(8), default_group())
    rng = random.Random(9)

    def sign_verify():
        sig = key.sign("channel message", rng)
        assert key.verify_key.verify("channel message", sig)

    benchmark(sign_verify)


def test_primitive_cost_summary(benchmark):
    """One-shot summary table (the per-op timings live in the
    pytest-benchmark output above)."""
    import time

    group = default_group()
    rows = []

    def measure():
        rows.clear()
        _collect()
        return rows

    def _collect():
        for n, t in ((4, 1), (7, 2), (16, 5)):
            public, holders = _coin(n, t, group)
            rng = random.Random(10)
            t0 = time.perf_counter()
            shares = {i: holders[i].share_for("x", rng) for i in range(t + 1)}
            t1 = time.perf_counter()
            ok = all(public.verify_share(s) for s in shares.values())
            t2 = time.perf_counter()
            public.combine("x", shares)
            t3 = time.perf_counter()
            rows.append(
                f"{n:>3} {t:>3}   {1000 * (t1 - t0) / (t + 1):8.2f} "
                f"{1000 * (t2 - t1) / (t + 1):8.2f} {1000 * (t3 - t2):8.2f}"
            )
            assert ok

    benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "Threshold coin (256-bit group): per-op cost in ms",
        [f"{'n':>3} {'t':>3}   {'share':>8} {'verify':>8} {'combine':>8}"] + rows,
    )
