"""Discrete-event simulation of an asynchronous message-passing network.

Section 2 of the paper: *"all parties are linked by asynchronous
point-to-point communication channels ... the adversary controls the
communication links ... in short, the network is the adversary."*

This module is that model, executable:

* every sent message enters a pending pool;
* a :class:`~repro.net.scheduler.Scheduler` — the adversary — picks
  which pending message is delivered next, with no fairness or timing
  obligations beyond *eventual delivery* of messages between honest
  parties (the standard asynchronous liveness assumption);
* channels are authenticated: a delivered message carries its true
  sender (the model's secure point-to-point links, bootstrapped from
  the dealer/PKI);
* runs are fully deterministic given the scheduler's seed, which is
  what makes the agreement experiments reproducible.

Time in an asynchronous system is not wall-clock; the simulator counts
*delivery steps*, and protocols report their own round numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from .tracing import Trace

__all__ = ["Envelope", "Node", "Network", "LivenessError"]


@dataclass(frozen=True)
class Envelope:
    """A message in flight.

    Attributes:
        seq: global send sequence number (unique, for determinism).
        sender: authenticated origin party id.
        recipient: destination party id.
        payload: opaque protocol payload.
    """

    seq: int
    sender: int
    recipient: int
    payload: object


class Node:
    """Interface of a party attached to the network.

    Subclasses implement the honest protocol stack or an adversarial
    behavior.  Nodes interact with the world only through the
    :class:`Network` handle given at attach time.
    """

    def on_start(self) -> None:
        """Called once before any message is delivered."""

    def on_message(self, sender: int, payload: object) -> None:
        """Called for each delivered message."""
        raise NotImplementedError


class LivenessError(AssertionError):
    """The protocol failed to make progress under the chosen schedule."""


class Network:
    """The asynchronous network and its adversarial message scheduler."""

    def __init__(self, scheduler, rng: random.Random | None = None) -> None:
        self.scheduler = scheduler
        self.rng = rng or random.Random(0)
        self.nodes: dict[int, Node] = {}
        self.pending: list[Envelope] = []
        self.delivered_count = 0
        self.trace = Trace()
        self.crashed: set[int] = set()
        self._seq = 0
        self._started: set[int] = set()

    # -- topology ----------------------------------------------------------

    def attach(self, party: int, node: Node) -> None:
        if party in self.nodes:
            raise ValueError(f"party {party} already attached")
        self.nodes[party] = node

    @property
    def parties(self) -> list[int]:
        return sorted(self.nodes)

    # -- sending -----------------------------------------------------------

    def send(self, sender: int, recipient: int, payload: object) -> None:
        """Queue a point-to-point message (authenticated by construction)."""
        if recipient not in self.nodes:
            raise ValueError(f"unknown recipient {recipient}")
        self._seq += 1
        self.pending.append(
            Envelope(seq=self._seq, sender=sender, recipient=recipient, payload=payload)
        )
        self.trace.record_send(sender, recipient, payload)

    def broadcast(self, sender: int, payload: object) -> None:
        """Send to every attached party, including the sender itself.

        Self-delivery goes through the pool too: a party's own message
        is just another asynchronous event (keeps protocols honest about
        not assuming instantaneous local delivery).
        """
        for recipient in self.parties:
            self.send(sender, recipient, payload)

    # -- fault injection -----------------------------------------------------

    def crash(self, party: int) -> None:
        """Crash a party: it stops receiving (its outbound in-flight
        messages may still be delivered, as in the crash model)."""
        self.crashed.add(party)

    def recover(self, party: int, node: Node | None = None) -> None:
        """Crash-recovery (Section 6): the party comes back — typically
        with a *fresh* node whose volatile state is gone, which then
        runs the application-level state transfer."""
        self.crashed.discard(party)
        if node is not None:
            self.nodes[party] = node

    # -- the run loop --------------------------------------------------------

    def start(self) -> None:
        """Run every node's ``on_start`` hook exactly once."""
        for party in self.parties:
            if party not in self._started:
                self._started.add(party)
                self.nodes[party].on_start()

    def step(self) -> bool:
        """Deliver one message chosen by the adversary; False if none left."""
        while True:
            index = self.scheduler.select(self.pending, self.rng)
            if index is None:
                return False
            envelope = self.pending.pop(index)
            if envelope.recipient in self.crashed:
                continue  # dropped silently
            break
        self.delivered_count += 1
        self.trace.record_delivery(envelope)
        self.nodes[envelope.recipient].on_message(envelope.sender, envelope.payload)
        return True

    def run(
        self,
        max_steps: int = 1_000_000,
        until: Callable[[], bool] | None = None,
    ) -> int:
        """Deliver messages until quiescence, a predicate, or a step cap.

        Returns the number of delivery steps taken.  Raises
        :class:`LivenessError` if ``until`` was given but never became
        true — the caller asserted liveness and the schedule defeated
        it (this is how the liveness experiments detect a blocked
        protocol, e.g. the deterministic baseline under attack).
        """
        self.start()
        steps = 0
        while steps < max_steps:
            if until is not None and until():
                return steps
            if not self.step():
                if until is None or until():
                    return steps
                raise LivenessError(
                    f"network quiescent after {steps} steps but goal not reached"
                )
            steps += 1
        if until is not None and not until():
            raise LivenessError(f"goal not reached within {max_steps} steps")
        return steps
