"""Seeded chaos engine for the TCP replica stack.

The simulator already subjects the protocol stack to an adversarial
scheduler; this module does the same to the *deployed* stack — real
processes, real sockets — while keeping the one property that makes
chaos testing usable: **the fault schedule is a deterministic function
of a seed**.  A scenario is a declarative spec (``Scenario``): cluster
shape, seed, a fault plan for the transport, a process-lifecycle event
schedule, which parties run Byzantine, and a client workload.  Running
it produces a *journal* (the planned timeline plus observed results)
and a verdict from the continuously applicable checkers in
:mod:`repro.net.checkers`:

* safety — honest replicas' executed-op logs stay prefix-consistent
  and no client-committed operation is lost, even across SIGKILL,
  restart-with-recovery and corrupted-checkpoint restarts;
* liveness — operations submitted in quiescent windows (all partitions
  healed, no pending lifecycle fault) complete within a bound.

Three fault layers compose:

1. **Network** — :class:`SeededFaultPlan` plugs into the transport's
   :class:`~repro.net.transport.FaultPlan` hook surface: partitions
   with scheduled heal, per-link loss/corruption (realized as
   connection resets so the retransmit machinery is exercised),
   duplication, and reordering via pre-sequencing holds.  Per-link
   decision streams are seeded from ``(seed, salt, sender, recipient)``
   so every process derives the same plan from ``faults.json``.
2. **Process lifecycle** — SIGKILL, SIGSTOP/SIGCONT, restart with
   ``--recover``, and corrupted-snapshot restarts (the authenticated
   checkpoint must be *rejected* and recovery must fall back to peer
   state transfer).
3. **Byzantine parties** — :func:`byzantine_node` ports the
   simulator's adversary chassis (:class:`~repro.net.adversary
   .MutatingNode` and friends) onto the :class:`~repro.net.base
   .NetworkBackend` surface, so a replica process can be *started*
   corrupted (``run-replica --byzantine equivocate``).

Entry points: ``python -m repro chaos run --scenario <name|file>`` and
``python -m repro chaos replay --journal <file>`` (which re-derives the
timeline from the recorded spec and checks it is identical — seed
reproducibility is itself an invariant under test).
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, replace

from ..core.atomic_broadcast import AbcProposal, batch_digest, proposal_statement
from ..core.runtime import ProtocolRuntime
from ..crypto import keystore
from ..crypto.dealer import CLIENT_BASE, PartyKeys, PublicKeys, deal_system
from ..crypto.groups import small_group
from ..smr import reconfig
from ..smr.client import ServiceClient
from ..smr.replica import Replica, service_session
from ..smr.state_machine import KeyValueStore, StateMachine
from .adversary import MutatingNode, SilentNode, SpamNode
from .base import NetworkBackend
from .checkers import (
    JournalEntry,
    check_liveness,
    check_safety,
    read_journals,
    violation_kinds,
)
from .runtime import (
    CLUSTER_FILE,
    ClusterConfig,
    _spawn_replica,
    allocate_addresses,
    checkpoint_path,
    load_epoch,
)
from .simulator import Node
from .transport import FaultPlan, FrameFault, TransportNetwork

__all__ = [
    "FAULTS_FILE",
    "FAULT_TEMPLATES",
    "LATENCY_TEMPLATES",
    "LIFECYCLE_ACTIONS",
    "LOAD_TEMPLATES",
    "PartitionSpec",
    "FaultSpec",
    "ScenarioError",
    "SeededFaultPlan",
    "save_fault_plan",
    "load_fault_plan",
    "byzantine_node",
    "LifecycleEvent",
    "Scenario",
    "builtin_scenarios",
    "failure_record",
    "fault_template",
    "latency_template",
    "load_template",
    "parameterize_scenario",
    "plan_timeline",
    "corrupt_checkpoint",
    "run_scenario",
    "replay_journal",
]

FAULTS_FILE = "faults.json"
DEFAULT_JOURNAL = "chaos-journal.json"

LIFECYCLE_ACTIONS = ("kill", "restart", "suspend", "resume", "corrupt-checkpoint")


class ScenarioError(ValueError):
    """A declarative spec (scenario, fault plan, sweep grid) is malformed."""


def _reject_unknown_keys(data: dict, allowed: set[str], what: str) -> None:
    """Specs gate CI runs, so a typo must fail loudly instead of
    silently running a different scenario than the one written."""
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ScenarioError(
            f"{what}: unknown key(s) {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioError(message)


# -- declarative fault plans --------------------------------------------------------


@dataclass(frozen=True)
class PartitionSpec:
    """A bidirectional cut between ``group`` and everyone else, active
    on ``[start, stop)`` seconds after the run epoch, healing itself."""

    start: float
    stop: float
    group: tuple[int, ...]

    def to_json(self) -> dict:
        return {"start": self.start, "stop": self.stop, "group": list(self.group)}

    @classmethod
    def from_json(cls, data: dict) -> "PartitionSpec":
        _reject_unknown_keys(data, {"start", "stop", "group"}, "partition")
        try:
            cut = cls(
                start=float(data["start"]),
                stop=float(data["stop"]),
                group=tuple(int(p) for p in data["group"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ScenarioError(f"partition: {exc!r}") from exc
        _require(cut.start >= 0.0, f"partition: negative start {cut.start}")
        _require(
            cut.stop > cut.start,
            f"partition: stop {cut.stop} must be after start {cut.start}",
        )
        _require(bool(cut.group), "partition: empty group cuts nothing")
        return cut


@dataclass(frozen=True)
class FaultSpec:
    """Probabilistic per-frame faults plus scheduled partitions.

    Rates are per data-frame write and cascade in the order reset →
    corrupt → duplicate → delay; ``hold_rate`` applies per payload
    *before* sequencing (the reorder mechanism).
    """

    reset_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: float = 0.05
    hold_rate: float = 0.0
    max_hold: float = 0.2
    partitions: tuple[PartitionSpec, ...] = ()

    def to_json(self) -> dict:
        return {
            "reset_rate": self.reset_rate,
            "corrupt_rate": self.corrupt_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_rate": self.delay_rate,
            "max_delay": self.max_delay,
            "hold_rate": self.hold_rate,
            "max_hold": self.max_hold,
            "partitions": [cut.to_json() for cut in self.partitions],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultSpec":
        _reject_unknown_keys(
            data,
            {
                "reset_rate", "corrupt_rate", "duplicate_rate", "delay_rate",
                "max_delay", "hold_rate", "max_hold", "partitions",
            },
            "faults",
        )
        try:
            spec = cls(
                reset_rate=float(data.get("reset_rate", 0.0)),
                corrupt_rate=float(data.get("corrupt_rate", 0.0)),
                duplicate_rate=float(data.get("duplicate_rate", 0.0)),
                delay_rate=float(data.get("delay_rate", 0.0)),
                max_delay=float(data.get("max_delay", 0.05)),
                hold_rate=float(data.get("hold_rate", 0.0)),
                max_hold=float(data.get("max_hold", 0.2)),
                partitions=tuple(
                    PartitionSpec.from_json(cut)
                    for cut in data.get("partitions", ())
                ),
            )
        except ScenarioError:
            raise
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"faults: {exc!r}") from exc
        for name in ("reset_rate", "corrupt_rate", "duplicate_rate",
                     "delay_rate", "hold_rate"):
            rate = getattr(spec, name)
            _require(
                0.0 <= rate <= 1.0,
                f"faults: {name}={rate} must be a probability in [0, 1]",
            )
        _require(spec.max_delay >= 0.0, f"faults: negative max_delay {spec.max_delay}")
        _require(spec.max_hold >= 0.0, f"faults: negative max_hold {spec.max_hold}")
        return spec


class SeededFaultPlan(FaultPlan):
    """A :class:`FaultSpec` realized as deterministic per-link streams.

    Every (sender, recipient) link draws its frame/hold decisions from
    ``random.Random(hash((seed, salt, sender, recipient)))`` — tuple-of-
    int hashing is stable across processes (``PYTHONHASHSEED`` only
    randomizes str/bytes), so each replica process independently derives
    the *same* stream for its side of each link.  Partition windows are
    anchored to a shared wall-clock ``epoch`` (recorded in
    ``faults.json``) so separately started processes agree, coarsely,
    on when a cut is active; when no epoch is given, :meth:`start`
    anchors to the local clock (in-process tests).
    """

    _FRAME_SALT = 1
    _HOLD_SALT = 2

    def __init__(
        self, spec: FaultSpec, seed: int, epoch: float | None = None
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.epoch = epoch
        self._frame_rngs: dict[tuple[int, int], random.Random] = {}
        self._hold_rngs: dict[tuple[int, int], random.Random] = {}

    def start(self) -> None:
        if self.epoch is None:
            self.epoch = time.time()

    def _elapsed(self) -> float:
        if self.epoch is None:
            return 0.0
        return time.time() - self.epoch

    def _stream(
        self,
        table: dict[tuple[int, int], random.Random],
        salt: int,
        sender: int,
        recipient: int,
    ) -> random.Random:
        rng = table.get((sender, recipient))
        if rng is None:
            rng = random.Random(hash((self.seed, salt, sender, recipient)))
            table[(sender, recipient)] = rng
        return rng

    def link_up(self, sender: int, recipient: int) -> bool:
        now = self._elapsed()
        for cut in self.spec.partitions:
            if cut.start <= now < cut.stop and (
                (sender in cut.group) != (recipient in cut.group)
            ):
                return False
        return True

    def frame_fault(self, sender: int, recipient: int) -> FrameFault:
        spec = self.spec
        if not (
            spec.reset_rate or spec.corrupt_rate
            or spec.duplicate_rate or spec.delay_rate
        ):
            return FrameFault()
        rng = self._stream(self._frame_rngs, self._FRAME_SALT, sender, recipient)
        draw = rng.random()
        if draw < spec.reset_rate:
            return FrameFault("reset")
        draw -= spec.reset_rate
        if draw < spec.corrupt_rate:
            return FrameFault("corrupt")
        draw -= spec.corrupt_rate
        if draw < spec.duplicate_rate:
            return FrameFault("duplicate")
        draw -= spec.duplicate_rate
        if draw < spec.delay_rate:
            return FrameFault("pass", delay=rng.random() * spec.max_delay)
        return FrameFault()

    def send_hold(self, sender: int, recipient: int) -> float:
        spec = self.spec
        if not spec.hold_rate:
            return 0.0
        rng = self._stream(self._hold_rngs, self._HOLD_SALT, sender, recipient)
        if rng.random() < spec.hold_rate:
            return rng.random() * spec.max_hold
        return 0.0


def save_fault_plan(
    directory: str | pathlib.Path, spec: FaultSpec, seed: int
) -> float:
    """Serialize the plan for subprocess replicas; returns the epoch
    every process (and the orchestrator's own timeline) anchors to."""
    epoch = time.time()
    path = pathlib.Path(directory) / FAULTS_FILE
    path.write_text(
        json.dumps({"seed": seed, "epoch": epoch, "spec": spec.to_json()})
    )
    return epoch


def load_fault_plan(directory: str | pathlib.Path) -> SeededFaultPlan | None:
    """Load ``faults.json`` if the deployment has one (``None`` = no
    chaos; the transport then uses its no-op default plan)."""
    path = pathlib.Path(directory) / FAULTS_FILE
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    return SeededFaultPlan(
        FaultSpec.from_json(data["spec"]),
        seed=int(data["seed"]),
        epoch=float(data["epoch"]),
    )


# -- Byzantine parties over TCP -----------------------------------------------------

BYZANTINE_KINDS = ("silent", "spam", "equivocate")


def byzantine_node(
    kind: str,
    network: NetworkBackend,
    party: int,
    public: PublicKeys,
    keys: PartyKeys,
    seed: int = 0,
    state_machine: StateMachine | None = None,
    causal: bool = False,
) -> tuple[Node, ProtocolRuntime | None, Replica | None]:
    """Build a corrupted party for a live transport.

    Returns ``(node, runtime, replica)`` — the node to attach in place
    of the honest runtime, plus the inner runtime/replica when the
    behavior wraps one (``equivocate``), else ``None``.

    * ``silent`` — receives everything, says nothing (the failure mode
      timeout-based detectors cannot distinguish from slowness);
    * ``spam`` — floods peers with well-formed junk on every delivery;
    * ``equivocate`` — runs the honest stack inside a
      :class:`~repro.net.adversary.MutatingNode` but re-signs a
      *different* (empty, validly signed) round-1 batch for half its
      peers in atomic broadcast: allowed adversary behavior that the
      agreement layer must neutralize.
    """
    if kind == "silent":
        return SilentNode(), None, None
    if kind == "spam":
        rng = random.Random(seed ^ 0x5FA17)
        return (
            SpamNode(
                network, party,
                lambda r: ("chaos-junk", r.getrandbits(32)),
                rng,
            ),
            None,
            None,
        )
    if kind == "equivocate":
        built: dict[str, object] = {}

        def inner_factory(intercepted) -> ProtocolRuntime:
            runtime = ProtocolRuntime(party, intercepted, public, keys, seed=seed)
            replica = Replica(state_machine or KeyValueStore(), causal=causal)
            runtime.spawn(service_session(), replica)
            built["runtime"] = runtime
            built["replica"] = replica
            return runtime

        sign_rng = random.Random(seed ^ 0xE041)

        def mutate(recipient: int, payload: object):
            if isinstance(payload, tuple) and len(payload) == 2:
                session, message = payload
                if isinstance(message, AbcProposal) and recipient % 2 == 1:
                    batch: tuple = ()
                    statement = proposal_statement(
                        session, message.round, batch_digest(batch)
                    )
                    signature = keys.signing_key.sign(statement, sign_rng)
                    return (session, AbcProposal(message.round, batch, signature))
            return payload

        node = MutatingNode(network, party, inner_factory, mutate)
        return node, built["runtime"], built["replica"]
    raise ValueError(
        f"unknown byzantine kind {kind!r} (expected one of {BYZANTINE_KINDS})"
    )


# -- scenarios ----------------------------------------------------------------------


@dataclass(frozen=True)
class LifecycleEvent:
    """One scheduled process fault, ``at`` seconds after the run epoch."""

    at: float
    action: str  # kill | restart | suspend | resume | corrupt-checkpoint
    party: int

    def to_json(self) -> dict:
        return {"at": self.at, "action": self.action, "party": self.party}

    @classmethod
    def from_json(cls, data: dict) -> "LifecycleEvent":
        _reject_unknown_keys(data, {"at", "action", "party"}, "event")
        try:
            event = cls(
                at=float(data["at"]),
                action=str(data["action"]),
                party=int(data["party"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ScenarioError(f"event: {exc!r}") from exc
        _require(event.at >= 0.0, f"event: negative time {event.at}")
        _require(
            event.action in LIFECYCLE_ACTIONS,
            f"event: unknown action {event.action!r} "
            f"(expected one of {', '.join(LIFECYCLE_ACTIONS)})",
        )
        _require(event.party >= 0, f"event: negative party {event.party}")
        return event


@dataclass(frozen=True)
class Scenario:
    """A complete declarative chaos run.

    All times are seconds after the run epoch (the moment the fault
    plan is saved, before replicas spawn) — schedule the first activity
    late enough (builtins use >= 2s) for the cluster to come up.
    """

    name: str
    n: int = 4
    t: int = 1
    seed: int = 0
    ops: int = 6
    faults: FaultSpec = FaultSpec()
    events: tuple[LifecycleEvent, ...] = ()
    byzantine: tuple[tuple[int, str], ...] = ()
    io_timeout: float = 45.0
    op_timeout: float = 30.0
    liveness_bound: float = 20.0
    liveness_probes: int = 2
    checkpoint_every: int = 2
    workload_start: float = 2.0
    # Workload shape: how many client operations may be in flight at
    # once (1 = the original closed loop).  >1 exercises batching and
    # pipelining in the replicas.
    op_concurrency: int = 1
    # Optional atomic-broadcast knobs for the cluster (None = protocol
    # defaults); see docs/PERFORMANCE.md.
    abc_max_batch: int | None = None
    abc_pipeline_depth: int | None = None
    # Times at which a signed Reconfigure(refresh) is ordered through
    # the live cluster: each one reshapes every threshold key and opens
    # the next epoch mid-workload, so lifecycle events scheduled around
    # these instants exercise kills *during* resharing and restarts
    # into a configuration the crashed replica has never seen.
    reconfigs: tuple[float, ...] = ()

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "n": self.n,
            "t": self.t,
            "seed": self.seed,
            "ops": self.ops,
            "faults": self.faults.to_json(),
            "events": [event.to_json() for event in self.events],
            "byzantine": [[party, kind] for party, kind in self.byzantine],
            "io_timeout": self.io_timeout,
            "op_timeout": self.op_timeout,
            "liveness_bound": self.liveness_bound,
            "liveness_probes": self.liveness_probes,
            "checkpoint_every": self.checkpoint_every,
            "workload_start": self.workload_start,
            "op_concurrency": self.op_concurrency,
            "abc_max_batch": self.abc_max_batch,
            "abc_pipeline_depth": self.abc_pipeline_depth,
            "reconfigs": list(self.reconfigs),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Scenario":
        _reject_unknown_keys(
            data,
            {
                "name", "n", "t", "seed", "ops", "faults", "events",
                "byzantine", "io_timeout", "op_timeout", "liveness_bound",
                "liveness_probes", "checkpoint_every", "workload_start",
                "op_concurrency", "abc_max_batch", "abc_pipeline_depth",
                "reconfigs",
            },
            "scenario",
        )
        _require("name" in data, "scenario: missing name")
        try:
            scenario = cls(
                name=str(data["name"]),
                n=int(data.get("n", 4)),
                t=int(data.get("t", 1)),
                seed=int(data.get("seed", 0)),
                ops=int(data.get("ops", 6)),
                faults=FaultSpec.from_json(data.get("faults", {})),
                events=tuple(
                    LifecycleEvent.from_json(event)
                    for event in data.get("events", ())
                ),
                byzantine=tuple(
                    (int(party), str(kind))
                    for party, kind in data.get("byzantine", ())
                ),
                io_timeout=float(data.get("io_timeout", 45.0)),
                op_timeout=float(data.get("op_timeout", 30.0)),
                liveness_bound=float(data.get("liveness_bound", 20.0)),
                liveness_probes=int(data.get("liveness_probes", 2)),
                checkpoint_every=int(data.get("checkpoint_every", 2)),
                workload_start=float(data.get("workload_start", 2.0)),
                op_concurrency=int(data.get("op_concurrency", 1)),
                abc_max_batch=(
                    int(data["abc_max_batch"])
                    if data.get("abc_max_batch") is not None
                    else None
                ),
                abc_pipeline_depth=(
                    int(data["abc_pipeline_depth"])
                    if data.get("abc_pipeline_depth") is not None
                    else None
                ),
                reconfigs=tuple(
                    float(at) for at in data.get("reconfigs", ())
                ),
            )
        except ScenarioError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ScenarioError(f"scenario: {exc!r}") from exc
        scenario.validate()
        return scenario

    def validate(self) -> None:
        """Structural sanity for specs that reach the run/sweep layer;
        raises :class:`ScenarioError` on the first violation."""
        _require(self.n >= 1, f"scenario: n={self.n} must be at least 1")
        _require(
            0 <= self.t < self.n,
            f"scenario: t={self.t} must satisfy 0 <= t < n={self.n}",
        )
        _require(self.ops >= 0, f"scenario: negative ops {self.ops}")
        _require(
            self.op_concurrency >= 1,
            f"scenario: op_concurrency={self.op_concurrency} must be >= 1",
        )
        for label, value in (
            ("io_timeout", self.io_timeout),
            ("op_timeout", self.op_timeout),
            ("liveness_bound", self.liveness_bound),
        ):
            _require(value > 0.0, f"scenario: {label}={value} must be positive")
        _require(
            self.liveness_probes >= 0,
            f"scenario: negative liveness_probes {self.liveness_probes}",
        )
        _require(
            self.checkpoint_every >= 1,
            f"scenario: checkpoint_every={self.checkpoint_every} must be >= 1",
        )
        _require(
            self.workload_start >= 0.0,
            f"scenario: negative workload_start {self.workload_start}",
        )
        for knob, value in (
            ("abc_max_batch", self.abc_max_batch),
            ("abc_pipeline_depth", self.abc_pipeline_depth),
        ):
            _require(
                value is None or value >= 1,
                f"scenario: {knob}={value} must be >= 1",
            )
        seen: set[int] = set()
        for party, kind in self.byzantine:
            _require(
                0 <= party < self.n,
                f"scenario: byzantine party {party} outside 0..{self.n - 1}",
            )
            _require(
                kind in BYZANTINE_KINDS,
                f"scenario: unknown byzantine kind {kind!r} "
                f"(expected one of {', '.join(BYZANTINE_KINDS)})",
            )
            _require(
                party not in seen,
                f"scenario: party {party} corrupted twice",
            )
            seen.add(party)
        for event in self.events:
            _require(
                0 <= event.party < self.n,
                f"scenario: event party {event.party} outside 0..{self.n - 1}",
            )
        for at in self.reconfigs:
            _require(
                at >= 0.0,
                f"scenario: negative reconfig time {at}",
            )
        for cut in self.faults.partitions:
            for party in cut.group:
                _require(
                    0 <= party < self.n,
                    f"scenario: partition party {party} outside 0..{self.n - 1}",
                )


def builtin_scenarios() -> dict[str, Scenario]:
    """The named scenarios ``repro chaos run --scenario`` accepts."""
    partition_heal = Scenario(
        name="partition-heal",
        seed=1101,
        ops=6,
        faults=FaultSpec(
            duplicate_rate=0.05,
            hold_rate=0.15,
            max_hold=0.1,
            partitions=(PartitionSpec(start=2.6, stop=4.6, group=(3,)),),
        ),
    )
    kill_recover = Scenario(
        name="kill-recover",
        seed=2202,
        ops=8,
        faults=FaultSpec(reset_rate=0.02),
        events=(
            LifecycleEvent(at=3.4, action="kill", party=2),
            LifecycleEvent(at=3.6, action="corrupt-checkpoint", party=2),
            LifecycleEvent(at=4.4, action="restart", party=2),
        ),
    )
    stall = Scenario(
        name="stall",
        seed=4404,
        ops=6,
        events=(
            LifecycleEvent(at=2.8, action="suspend", party=1),
            LifecycleEvent(at=4.2, action="resume", party=1),
        ),
    )
    torture = Scenario(
        name="torture",
        seed=3303,
        ops=8,
        byzantine=((3, "equivocate"),),
        faults=FaultSpec(
            reset_rate=0.02,
            corrupt_rate=0.02,
            duplicate_rate=0.05,
            delay_rate=0.1,
            max_delay=0.02,
            hold_rate=0.1,
            max_hold=0.1,
            partitions=(PartitionSpec(start=2.6, stop=4.0, group=(1,)),),
        ),
        events=(
            LifecycleEvent(at=4.6, action="kill", party=2),
            LifecycleEvent(at=5.6, action="restart", party=2),
        ),
        checkpoint_every=3,
    )
    pipeline_load = Scenario(
        name="pipeline-load",
        seed=5505,
        ops=12,
        op_concurrency=4,
        abc_max_batch=8,
        abc_pipeline_depth=3,
        faults=FaultSpec(duplicate_rate=0.05),
        events=(
            LifecycleEvent(at=3.0, action="kill", party=2),
            LifecycleEvent(at=4.0, action="restart", party=2),
        ),
    )
    # Regression scenario for superseded inbound channels: back-to-back
    # kill/restart cycles under a steady reset_rate force every peer to
    # accept a *new* connection from the restarted replica while the
    # read on the old one may still be suspended.  The transport must
    # drop the stale connection (not feed its frames through orphaned
    # replay bookkeeping) for replies to keep flowing.
    reconnect_churn = Scenario(
        name="reconnect-churn",
        seed=6606,
        ops=8,
        faults=FaultSpec(reset_rate=0.06),
        events=(
            LifecycleEvent(at=2.8, action="kill", party=2),
            LifecycleEvent(at=3.2, action="restart", party=2),
            LifecycleEvent(at=4.2, action="kill", party=2),
            LifecycleEvent(at=4.6, action="restart", party=2),
        ),
    )
    # Live reconfiguration under churn: a Reconfigure(refresh) is
    # ordered mid-workload, party 2 is killed while the resharing it
    # triggers is in flight and restarted before the epoch boundary
    # (recovery replays the committed reconfig op, which re-joins the
    # reshare), then a second refresh steps the cluster to epoch 2.
    # The client must follow both epoch hops by resubmitting pending
    # ops under their original nonces.
    reconfig_churn = Scenario(
        name="reconfig-churn",
        seed=7707,
        ops=8,
        reconfigs=(3.0, 8.0),
        events=(
            LifecycleEvent(at=3.2, action="kill", party=2),
            LifecycleEvent(at=4.6, action="restart", party=2),
        ),
    )
    return {
        scenario.name: scenario
        for scenario in (
            partition_heal, kill_recover, stall, torture, pipeline_load,
            reconnect_churn, reconfig_churn,
        )
    }


# -- scenario templating (the sweep harness's parameterization surface) -------------
#
# A sweep grid names a *fault mix*, a *latency distribution* and a
# *client load* per axis value; these templates turn those names into
# concrete FaultSpec/LifecycleEvent/workload fragments, parameterized by
# the cluster size where that matters (partition groups, churn victims).

FAULT_TEMPLATES = ("clean", "lossy", "duplicating", "partition", "churn")
LATENCY_TEMPLATES = ("none", "jitter", "heavy")
LOAD_TEMPLATES = ("serial", "pipelined", "heavy")


def fault_template(
    name: str, n: int
) -> tuple[FaultSpec, tuple[LifecycleEvent, ...]]:
    """A named fault mix instantiated for an ``n``-party cluster.

    Returns the base :class:`FaultSpec` plus any lifecycle events the
    mix implies (``churn`` kills and restarts the highest-numbered
    party).  Latency overlays from :func:`latency_template` compose on
    top of the returned spec.
    """
    if name == "clean":
        return FaultSpec(), ()
    if name == "lossy":
        return FaultSpec(reset_rate=0.03, corrupt_rate=0.02), ()
    if name == "duplicating":
        return FaultSpec(duplicate_rate=0.08, hold_rate=0.1, max_hold=0.08), ()
    if name == "partition":
        _require(n >= 2, f"fault template 'partition' needs n >= 2, got {n}")
        return (
            FaultSpec(
                duplicate_rate=0.04,
                partitions=(
                    PartitionSpec(start=2.6, stop=4.4, group=(n - 1,)),
                ),
            ),
            (),
        )
    if name == "churn":
        _require(n >= 2, f"fault template 'churn' needs n >= 2, got {n}")
        return (
            FaultSpec(reset_rate=0.02),
            (
                LifecycleEvent(at=3.0, action="kill", party=n - 1),
                LifecycleEvent(at=4.2, action="restart", party=n - 1),
            ),
        )
    raise ScenarioError(
        f"unknown fault template {name!r} "
        f"(expected one of {', '.join(FAULT_TEMPLATES)})"
    )


def latency_template(name: str) -> dict:
    """A named latency/jitter distribution as a FaultSpec field overlay
    (applied with :func:`dataclasses.replace` over the fault mix)."""
    if name == "none":
        return {}
    if name == "jitter":
        return {
            "delay_rate": 0.2, "max_delay": 0.02,
            "hold_rate": 0.1, "max_hold": 0.05,
        }
    if name == "heavy":
        return {
            "delay_rate": 0.45, "max_delay": 0.06,
            "hold_rate": 0.25, "max_hold": 0.15,
        }
    raise ScenarioError(
        f"unknown latency template {name!r} "
        f"(expected one of {', '.join(LATENCY_TEMPLATES)})"
    )


def load_template(name: str) -> dict:
    """A named client workload as Scenario field overrides (op count,
    concurrency, atomic-broadcast batching/pipelining knobs)."""
    if name == "serial":
        return {"ops": 6, "op_concurrency": 1}
    if name == "pipelined":
        return {
            "ops": 10, "op_concurrency": 4,
            "abc_max_batch": 8, "abc_pipeline_depth": 3,
        }
    if name == "heavy":
        return {
            "ops": 16, "op_concurrency": 8,
            "abc_max_batch": 16, "abc_pipeline_depth": 4,
        }
    raise ScenarioError(
        f"unknown load template {name!r} "
        f"(expected one of {', '.join(LOAD_TEMPLATES)})"
    )


def parameterize_scenario(
    name: str,
    *,
    n: int,
    t: int,
    seed: int,
    fault: str = "clean",
    latency: str = "none",
    load: str = "serial",
    byzantine: tuple[tuple[int, str], ...] = (),
) -> Scenario:
    """Compose a concrete :class:`Scenario` from template names.

    This is the sweep harness's expansion primitive: one grid cell =
    one call.  The composed scenario is validated, so a malformed cell
    (byzantine party out of range, t >= n, ...) fails at expansion time
    rather than mid-campaign.
    """
    faults, events = fault_template(fault, n)
    overlay = latency_template(latency)
    if overlay:
        faults = replace(faults, **overlay)
    scenario = Scenario(
        name=name,
        n=n,
        t=t,
        seed=seed,
        faults=faults,
        events=events,
        byzantine=tuple(byzantine),
        **load_template(load),
    )
    scenario.validate()
    return scenario


def plan_timeline(scenario: Scenario) -> list[dict]:
    """Derive the full fault-and-workload schedule from the scenario.

    Pure function of the spec (op spacing jitter comes from
    ``random.Random(scenario.seed)``), so the same seed always yields
    the identical timeline — this is what the run journal records and
    what ``chaos replay`` re-derives and compares.  Entries are plain
    JSON types so equality survives a serialization round-trip.
    """
    rng = random.Random(scenario.seed)
    timeline: list[dict] = []
    for cut in scenario.faults.partitions:
        timeline.append(
            {
                "at": cut.start,
                "kind": "partition",
                "stop": cut.stop,
                "group": list(cut.group),
            }
        )
    for event in scenario.events:
        timeline.append(
            {"at": event.at, "kind": event.action, "party": event.party}
        )
    for at in scenario.reconfigs:
        timeline.append({"at": float(at), "kind": "reconfig"})
    at = scenario.workload_start
    for i in range(scenario.ops):
        at += 0.15 + rng.random() * 0.35
        timeline.append(
            {
                "at": round(at, 6),
                "kind": "op",
                "op": ["set", f"chaos-{i}", i],
            }
        )
    timeline.sort(key=lambda entry: (entry["at"], entry["kind"], entry.get("party", -1)))
    return timeline


def corrupt_checkpoint(directory: str | pathlib.Path, party: int) -> bool:
    """Flip a byte inside the checkpoint body (keeping the recorded MAC)
    so the next ``--recover`` must reject it; False if none exists yet."""
    path = checkpoint_path(directory, party)
    if not path.exists():
        return False
    data = json.loads(path.read_text())
    body = bytearray(bytes.fromhex(data["body"]))
    if not body:
        return False
    body[len(body) // 2] ^= 0xFF
    data["body"] = bytes(body).hex()
    path.write_text(json.dumps(data))
    return True


# -- running a scenario -------------------------------------------------------------


async def _run_scenario(scenario: Scenario, workdir: pathlib.Path) -> dict:
    byzantine = dict(scenario.byzantine)
    honest = [p for p in range(scenario.n) if p not in byzantine]
    deal_rng = random.Random(scenario.seed ^ 0xDEA1)
    print(
        f"chaos[{scenario.name}]: dealing keys for n={scenario.n}, "
        f"t={scenario.t}, seed={scenario.seed}",
        flush=True,
    )
    keys = deal_system(
        scenario.n, deal_rng, t=scenario.t, clients=1, group=small_group()
    )
    keystore.write_deployment(keys, workdir)
    addresses = allocate_addresses(list(range(scenario.n)) + [CLIENT_BASE])
    ClusterConfig(
        addresses,
        io_timeout=scenario.io_timeout,
        abc_max_batch=scenario.abc_max_batch,
        abc_pipeline_depth=scenario.abc_pipeline_depth,
    ).save(workdir / CLUSTER_FILE)
    epoch = save_fault_plan(workdir, scenario.faults, scenario.seed)
    timeline = plan_timeline(scenario)

    print(
        f"chaos[{scenario.name}]: spawning {scenario.n} replicas "
        f"(byzantine: {byzantine or 'none'})",
        flush=True,
    )
    replicas = {}
    for party in range(scenario.n):
        replicas[party] = await _spawn_replica(
            workdir,
            party,
            byzantine=byzantine.get(party),
            journal=party not in byzantine,
            checkpoint_every=scenario.checkpoint_every,
            io_timeout=scenario.io_timeout,
        )
    for party in range(scenario.n):
        await replicas[party].wait_for_line("listening")

    public = keystore.load_public(workdir / "public.json")
    cid, channel_keys = keystore.load_client(
        workdir / f"client-{CLIENT_BASE}.json"
    )
    network = TransportNetwork(
        cid, addresses, channel_keys,
        faults=SeededFaultPlan(scenario.faults, scenario.seed, epoch=epoch),
    )
    client = ServiceClient(cid, network, public, random.Random(scenario.seed + 99))
    network.attach(cid, client)
    await network.start()

    # Reconfigure(refresh) ops are signed with party 0's identity key;
    # identity keys persist across epochs, so one load at boot covers
    # every epoch the run steps through.
    reconfig_signer = (
        keystore.load_party(workdir / "server-0.json", public).signing_key
        if scenario.reconfigs
        else None
    )
    reconfig_rng = random.Random(scenario.seed ^ 0x5EC0)

    loop = asyncio.get_running_loop()
    # Convert the shared wall-clock epoch into this loop's clock so the
    # orchestrator and every replica process agree on event times.
    t0 = loop.time() - (time.time() - epoch)
    events_log: list[dict] = []
    restarted: list[int] = []

    def note(entry: dict) -> None:
        entry["at_actual"] = round(loop.time() - t0, 3)
        events_log.append(entry)
        pretty = {k: v for k, v in entry.items() if k not in ("at", "at_actual")}
        print(
            f"chaos[{scenario.name}] t={entry['at_actual']:>6.2f}: {pretty}",
            flush=True,
        )

    async def run_op(entry: dict) -> None:
        operation = tuple(entry["op"])
        started = loop.time()
        try:
            completed = await client.call(
                operation,
                timeout=scenario.op_timeout,
                attempt_timeout=2.0,
            )
            note(
                {
                    "kind": "op",
                    "op": entry["op"],
                    "nonce": completed.nonce,
                    "latency": round(loop.time() - started, 3),
                }
            )
        except asyncio.TimeoutError:
            # A workload op may legitimately stall while faults
            # are active; it is not a liveness verdict (probes
            # in the quiescent window are) and the safety
            # checker only requires *committed* ops to survive.
            note({"kind": "op", "op": entry["op"], "latency": None})

    async def run_reconfig() -> None:
        # The replicas persist epoch.json atomically at every switch, and
        # the orchestrator shares their working directory — reading it
        # here targets the *cluster's* current epoch even when the client
        # has not yet tripped over a tombstone and caught up.
        target = max(load_epoch(workdir), client.epoch) + 1
        operation = reconfig.reconfigure_operation(
            "refresh", target, 0, reconfig_signer, reconfig_rng
        )
        started = loop.time()
        try:
            completed = await client.call(
                operation,
                timeout=scenario.op_timeout,
                attempt_timeout=2.0,
            )
            note(
                {
                    "kind": "reconfig",
                    "epoch": target,
                    "result": list(completed.result),
                    "latency": round(loop.time() - started, 3),
                }
            )
        except asyncio.TimeoutError:
            note({"kind": "reconfig", "epoch": target, "latency": None})

    pending_ops: list[asyncio.Task] = []

    try:
        for entry in timeline:
            delay = t0 + entry["at"] - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            kind = entry["kind"]
            party = entry.get("party")
            if kind == "op":
                if scenario.op_concurrency > 1:
                    # Open-loop dispatch: up to op_concurrency calls in
                    # flight at once, so the replicas actually see
                    # batched, pipelined load.  Each call self-terminates
                    # via its own op_timeout, so the waits are bounded.
                    pending_ops = [t for t in pending_ops if not t.done()]
                    if len(pending_ops) >= scenario.op_concurrency:
                        await asyncio.wait(  # repro: noqa-RL005 bounded by the timeout= kwarg; ops self-terminate via op_timeout
                            pending_ops,
                            timeout=scenario.op_timeout + 5.0,
                            return_when=asyncio.FIRST_COMPLETED,
                        )
                        pending_ops = [t for t in pending_ops if not t.done()]
                    pending_ops.append(loop.create_task(run_op(entry)))
                else:
                    await run_op(entry)
            elif kind == "reconfig":
                # Submitted open-loop: the interesting failure modes are
                # kills landing *during* the resharing the op triggers,
                # so later timeline entries must not wait on the call.
                pending_ops = [t for t in pending_ops if not t.done()]
                pending_ops.append(loop.create_task(run_reconfig()))
            elif kind == "partition":
                note(
                    {
                        "kind": "partition",
                        "group": entry["group"],
                        "heal_at": entry["stop"],
                    }
                )
            elif kind == "kill":
                await replicas[party].kill()
                note({"kind": "kill", "party": party})
            elif kind == "suspend":
                replicas[party].suspend()
                note({"kind": "suspend", "party": party})
            elif kind == "resume":
                replicas[party].resume()
                note({"kind": "resume", "party": party})
            elif kind == "corrupt-checkpoint":
                corrupted = corrupt_checkpoint(workdir, party)
                note(
                    {
                        "kind": "corrupt-checkpoint",
                        "party": party,
                        "corrupted": corrupted,
                    }
                )
            elif kind == "restart":
                replicas[party] = await _spawn_replica(
                    workdir,
                    party,
                    recover=True,
                    byzantine=byzantine.get(party),
                    journal=party not in byzantine,
                    checkpoint_every=scenario.checkpoint_every,
                    io_timeout=scenario.io_timeout,
                )
                await replicas[party].wait_for_line("listening")
                status = await replicas[party].wait_for_line("replica-checkpoint")
                if party not in byzantine:
                    restarted.append(party)
                note({"kind": "restart", "party": party, "checkpoint": status})

        if pending_ops:
            # Drain outstanding workload calls before judging liveness;
            # bounded because each call enforces op_timeout internally.
            await asyncio.wait(  # repro: noqa-RL005 bounded by the timeout= kwarg; ops self-terminate via op_timeout
                pending_ops, timeout=scenario.op_timeout + 5.0
            )
            pending_ops = [t for t in pending_ops if not t.done()]

        # -- quiescent window: every partition healed, no pending fault --
        heal_at = max(
            (cut.stop for cut in scenario.faults.partitions), default=0.0
        )
        settle = t0 + heal_at + 1.0 - loop.time()
        if settle > 0:
            await asyncio.sleep(settle)
        for party in restarted:
            await replicas[party].wait_for_line("replica-recovered")
        note({"kind": "quiescent"})

        probes: list[dict] = []
        for i in range(scenario.liveness_probes):
            operation = ("set", f"probe-{i}", i)
            started = loop.time()
            try:
                await client.call(
                    operation,
                    timeout=scenario.liveness_bound,
                    attempt_timeout=2.0,
                )
                latency: float | None = round(loop.time() - started, 3)
            except asyncio.TimeoutError:
                latency = None
            probes.append({"op": list(operation), "latency": latency})
            note({"kind": "probe", "op": list(operation), "latency": latency})

        committed = [
            JournalEntry(
                client=client.client_id,
                nonce=nonce,
                op=client.operation(nonce),
            )
            for nonce in sorted(client.completed)
        ]

        print(f"chaos[{scenario.name}]: stopping the cluster", flush=True)
        for party in sorted(replicas):
            await replicas[party].stop()
    finally:
        for task in pending_ops:
            task.cancel()
        for process in replicas.values():
            await process.kill()
        await network.close()

    journals = read_journals(workdir, honest)
    safety = check_safety(journals, committed)
    liveness = check_liveness(probes, scenario.liveness_bound)
    counters = {
        name: value
        for name, value in sorted(network.trace.counters.items())
        if name.startswith(("chaos.", "transport."))
    }
    return {
        "scenario": scenario.to_json(),
        "timeline": timeline,
        "events": events_log,
        "journal_lengths": {
            str(party): len(entries) for party, entries in journals.items()
        },
        "committed": len(committed),
        "resubmissions": client.resubmissions,
        "duplicate_replies": client.duplicate_replies,
        "client_counters": counters,
        "safety": safety.to_json(),
        "liveness": liveness.to_json(),
        "ok": safety.ok and liveness.ok,
    }


def resolve_scenario(name_or_path: str, seed: int | None = None) -> Scenario:
    """A builtin scenario by name, or a JSON spec by path; ``seed``
    overrides the spec's seed when given."""
    scenarios = builtin_scenarios()
    if name_or_path in scenarios:
        scenario = scenarios[name_or_path]
    else:
        path = pathlib.Path(name_or_path)
        if not path.exists():
            raise SystemExit(
                f"chaos: unknown scenario {name_or_path!r} "
                f"(builtins: {', '.join(sorted(scenarios))})"
            )
        try:
            scenario = Scenario.from_json(json.loads(path.read_text()))
        except ScenarioError as exc:
            raise SystemExit(f"chaos: invalid scenario {name_or_path}: {exc}") from exc
    if seed is not None:
        scenario = replace(scenario, seed=seed)
    return scenario


def failure_record(
    report: dict, scenario_ref: str | None = None
) -> dict:
    """The machine-readable verdict CI jobs and the sweep gate on: the
    violation kinds, the seed that reproduces the run, and where the
    scenario came from."""
    scenario = report.get("scenario", {})
    return {
        "failed": not report.get("ok", False),
        "scenario": scenario.get("name"),
        "seed": scenario.get("seed"),
        "scenario_ref": scenario_ref,
        "violations": violation_kinds(report),
        "issues": (
            (report.get("safety") or {}).get("issues", [])
            + (report.get("liveness") or {}).get("issues", [])
        ),
    }


def run_scenario(
    scenario: Scenario,
    directory: str | pathlib.Path | None = None,
    keep: bool = False,
    journal_out: str | pathlib.Path | None = DEFAULT_JOURNAL,
    failure_out: str | pathlib.Path | None = None,
    scenario_ref: str | None = None,
) -> int:
    """Execute a scenario end to end; returns a process exit code.

    Writes the run journal (scenario + derived timeline + observations
    + verdicts) to ``journal_out`` and to ``chaos-journal.json`` inside
    the working directory.  When a checker fires and ``failure_out`` is
    given, a machine-readable failure record (violation kinds, seed,
    scenario reference) is written there so CI jobs and the sweep
    harness can gate uniformly without parsing logs.
    """
    created = directory is None
    workdir = pathlib.Path(directory or tempfile.mkdtemp(prefix="repro-chaos-"))
    workdir.mkdir(parents=True, exist_ok=True)
    try:
        report = asyncio.run(_run_scenario(scenario, workdir))
        text = json.dumps(report, indent=1)
        (workdir / DEFAULT_JOURNAL).write_text(text)
        if journal_out is not None:
            pathlib.Path(journal_out).write_text(text)
            print(f"chaos[{scenario.name}]: journal written to {journal_out}")
        for issue in report["safety"]["issues"]:
            print(f"chaos[{scenario.name}]: SAFETY: {issue}")
        for issue in report["liveness"]["issues"]:
            print(f"chaos[{scenario.name}]: LIVENESS: {issue}")
        if failure_out is not None and not report["ok"]:
            record = failure_record(report, scenario_ref=scenario_ref)
            record["journal"] = str(journal_out) if journal_out else None
            pathlib.Path(failure_out).write_text(json.dumps(record, indent=1))
            print(f"chaos[{scenario.name}]: failure record written to {failure_out}")
        verdict = "ok" if report["ok"] else "FAILED"
        print(
            f"chaos[{scenario.name}]: {verdict} "
            f"(safety={report['safety']['ok']}, "
            f"liveness={report['liveness']['ok']}, "
            f"committed={report['committed']}, "
            f"resubmissions={report['resubmissions']})"
        )
        return 0 if report["ok"] else 1
    finally:
        if created and not keep:
            shutil.rmtree(workdir, ignore_errors=True)
        elif keep:
            print(f"chaos state kept in {workdir}")


def replay_journal(
    journal: str | pathlib.Path,
    seed: int | None = None,
    execute: bool = False,
    directory: str | pathlib.Path | None = None,
    keep: bool = False,
) -> int:
    """Re-derive the fault schedule from a recorded run journal.

    With the journal's own seed (the default) the derived timeline must
    be *identical* to the recorded one — the reproducibility invariant.
    ``--seed`` swaps in a different seed (equality is then skipped) and
    ``--execute`` re-runs the scenario for real.
    """
    data = json.loads(pathlib.Path(journal).read_text())
    scenario = Scenario.from_json(data["scenario"])
    if seed is not None and seed != scenario.seed:
        scenario = replace(scenario, seed=seed)
        print(f"chaos replay: seed overridden to {seed}; skipping equality check")
    else:
        timeline = plan_timeline(scenario)
        if timeline != data["timeline"]:
            print("chaos replay: MISMATCH — derived timeline differs from journal")
            for derived, recorded in zip(timeline, data["timeline"]):
                if derived != recorded:
                    print(f"  derived:  {derived}")
                    print(f"  recorded: {recorded}")
                    break
            return 1
        print(
            f"chaos replay: timeline of {len(timeline)} events reproduced "
            f"exactly (seed {scenario.seed})"
        )
    if execute:
        return run_scenario(
            scenario, directory=directory, keep=keep, journal_out=None
        )
    return 0
