"""Continuous safety and liveness checking for chaos runs.

The chaos engine (:mod:`repro.net.chaos`) tortures a live TCP cluster;
these checkers are the oracle deciding whether the run refuted the
paper's guarantees:

* **Safety** — the executed-operation journals of the honest replicas
  must be *prefix-consistent* (any two journals agree on every position
  both contain: the single total order of atomic broadcast, observed
  from the outside), and no operation the client holds a threshold-
  signed answer for may be missing from the longest honest journal —
  "no committed op is lost", including across crash/recovery.
* **Liveness** — operations submitted in a *quiescent window* (every
  partition healed, no pending lifecycle fault) must complete within a
  stated bound.  During active faults only safety is checked: the
  asynchronous model promises nothing about timing there.

Checkers are pure functions over plain data (journal entries as
dictionaries, probe records), so they are trivially unit-testable and
reusable against any journal source.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field

__all__ = [
    "JournalEntry",
    "SafetyReport",
    "LivenessReport",
    "read_journals",
    "check_safety",
    "check_liveness",
    "percentile",
    "summarize_run",
    "violation_kinds",
]


@dataclass(frozen=True)
class JournalEntry:
    """One executed operation as recorded by a replica host.

    ``round`` is the atomic-broadcast round the operation was ordered
    in (-1 for records predating the batched protocol, or for
    client-side commit records where the round is unknown).  With
    batching, several entries share a round; rounds must never decrease
    along a journal.
    """

    client: int
    nonce: int
    op: tuple
    round: int = -1

    @classmethod
    def from_json(cls, data: dict) -> "JournalEntry":
        return cls(
            client=int(data["client"]),
            nonce=int(data["nonce"]),
            op=tuple(data["op"]),
            round=int(data.get("round", -1)),
        )

    def key(self) -> tuple:
        return (self.client, self.nonce)


def read_journals(
    directory: str | pathlib.Path, parties: list[int]
) -> dict[int, list[JournalEntry]]:
    """Load ``journal/exec-<party>.jsonl`` for every listed party.

    A missing journal (replica never started, or was killed before its
    first execution) reads as an empty log — an empty log is trivially
    a prefix of every other log, so this is not an error.
    """
    journals: dict[int, list[JournalEntry]] = {}
    base = pathlib.Path(directory) / "journal"
    for party in parties:
        path = base / f"exec-{party}.jsonl"
        entries: list[JournalEntry] = []
        if path.exists():
            for line in path.read_text().splitlines():
                line = line.strip()
                if line:
                    entries.append(JournalEntry.from_json(json.loads(line)))
        journals[party] = entries
    return journals


@dataclass
class SafetyReport:
    """Verdict of the prefix-consistency / no-lost-commit check.

    ``kinds`` classifies each issue with a stable machine-readable tag
    (``safety.divergence``, ``safety.round-regression``,
    ``safety.lost-commit``) so CI jobs and the sweep harness can gate
    and aggregate on violation *kind* without parsing prose.
    """

    ok: bool
    issues: list[str] = field(default_factory=list)
    longest: int = 0
    kinds: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "issues": self.issues,
            "longest": self.longest,
            "kinds": self.kinds,
        }


def check_safety(
    journals: dict[int, list[JournalEntry]],
    committed: list[JournalEntry] | None = None,
) -> SafetyReport:
    """Honest journals must be pairwise prefix-consistent, and every
    client-committed operation must appear in the longest journal.

    ``committed`` holds the operations the client received a combined
    threshold signature for — the service vouched for them, so a
    recovery that loses one is a safety violation even if the surviving
    logs still agree with each other.
    """
    issues: list[str] = []
    kinds: list[str] = []

    def flag(kind: str, message: str) -> None:
        kinds.append(kind)
        issues.append(message)

    parties = sorted(journals)
    # Batched rounds: several journal entries may share an ordering
    # round, but rounds must never decrease along any single journal —
    # a decrease means a replica executed part of an earlier batch
    # after a later one (ordering violated across a batch boundary).
    for party in parties:
        last_round = -1
        for position, entry in enumerate(journals[party]):
            if entry.round < 0:
                continue  # legacy record without round information
            if entry.round < last_round:
                flag(
                    "safety.round-regression",
                    f"round regression in journal of replica {party} at "
                    f"position {position}: round {entry.round} after "
                    f"round {last_round}",
                )
                break
            last_round = entry.round
    for i, a in enumerate(parties):
        for b in parties[i + 1:]:
            log_a, log_b = journals[a], journals[b]
            for position in range(min(len(log_a), len(log_b))):
                if log_a[position] != log_b[position]:
                    flag(
                        "safety.divergence",
                        f"divergence at position {position}: "
                        f"replica {a} executed {log_a[position]}, "
                        f"replica {b} executed {log_b[position]}",
                    )
                    break  # one divergence per pair is enough evidence
    longest: list[JournalEntry] = []
    for party in parties:
        if len(journals[party]) > len(longest):
            longest = journals[party]
    if committed:
        executed_keys = {entry.key() for entry in longest}
        for entry in committed:
            if entry.key() not in executed_keys:
                flag(
                    "safety.lost-commit",
                    f"committed operation lost: client {entry.client} holds a "
                    f"signed answer for nonce {entry.nonce} ({entry.op!r}) but "
                    f"no honest journal of maximal length contains it",
                )
    return SafetyReport(
        ok=not issues, issues=issues, longest=len(longest), kinds=kinds
    )


@dataclass
class LivenessReport:
    """Verdict of the quiescent-window completion check.

    ``kinds`` carries the machine-readable violation tags
    (``liveness.stuck`` for a probe that never completed,
    ``liveness.slow`` for one that exceeded the bound).
    """

    ok: bool
    bound: float
    probes: list[dict] = field(default_factory=list)
    issues: list[str] = field(default_factory=list)
    kinds: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "bound": self.bound,
            "probes": self.probes,
            "issues": self.issues,
            "kinds": self.kinds,
        }


def check_liveness(probes: list[dict], bound: float) -> LivenessReport:
    """Every probe submitted in a quiescent window must have completed
    within ``bound`` (seconds on the TCP backend, delivery steps on the
    simulator; ``latency`` is ``None`` for a timeout)."""
    issues: list[str] = []
    kinds: list[str] = []
    for probe in probes:
        latency = probe.get("latency")
        if latency is None:
            kinds.append("liveness.stuck")
            issues.append(f"probe {probe.get('op')!r} never completed")
        elif latency > bound:
            kinds.append("liveness.slow")
            issues.append(
                f"probe {probe.get('op')!r} took {latency:.2f}s "
                f"(bound {bound:.2f}s)"
            )
    return LivenessReport(
        ok=not issues, bound=bound, probes=list(probes), issues=issues,
        kinds=kinds,
    )


# -- per-run summary extraction ------------------------------------------------------


def percentile(values: list[float], q: float) -> float | None:
    """Nearest-rank percentile (q in [0, 1]); ``None`` on empty input."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def violation_kinds(report: dict) -> list[str]:
    """The machine-readable violation tags of a run report (journal
    dict as written by ``chaos run`` or the sweep's simulator path).

    Journals written before ``kinds`` existed fall back to a generic
    per-checker tag so old artifacts still aggregate.
    """
    kinds: list[str] = []
    for checker in ("safety", "liveness"):
        verdict = report.get(checker) or {}
        tags = verdict.get("kinds")
        if tags is None:
            tags = [f"{checker}.violation"] if verdict.get("issues") else []
        kinds.extend(tags)
    return kinds


def summarize_run(report: dict) -> dict:
    """Schema-stable summary of one chaos/sweep run report.

    Extracts what the sweep aggregates per grid cell: commit counts,
    workload-op and probe latency percentiles, and committed ops/sec.
    Latencies are in the report's ``latency_unit`` (``seconds`` for TCP
    runs, ``steps`` for simulator runs — ops/sec is only computed for
    wall-clock units).  Pure function over the report dict, so it works
    on journals from disk as well as in-process results.
    """
    events = report.get("events", [])
    op_events = [e for e in events if e.get("kind") == "op"]
    op_latencies = [
        e["latency"] for e in op_events if e.get("latency") is not None
    ]
    probes = (report.get("liveness") or {}).get("probes", [])
    probe_latencies = [
        p["latency"] for p in probes if p.get("latency") is not None
    ]
    unit = report.get("latency_unit", "seconds")
    committed = int(report.get("committed", 0))
    ops_per_s: float | None = None
    if unit == "seconds":
        stamps = [e["at_actual"] for e in events if "at_actual" in e]
        span = max(stamps) - min(stamps) if len(stamps) >= 2 else 0.0
        if committed and span > 0:
            ops_per_s = committed / span
    return {
        "ok": bool(report.get("ok")),
        "committed": committed,
        "ops": len(op_events),
        "probes": len(probes),
        "latency_unit": unit,
        "latency_p50": percentile(op_latencies, 0.5),
        "latency_p99": percentile(op_latencies, 0.99),
        "probe_p50": percentile(probe_latencies, 0.5),
        "ops_per_s": ops_per_s,
        "violations": violation_kinds(report),
    }
