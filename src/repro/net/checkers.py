"""Continuous safety and liveness checking for chaos runs.

The chaos engine (:mod:`repro.net.chaos`) tortures a live TCP cluster;
these checkers are the oracle deciding whether the run refuted the
paper's guarantees:

* **Safety** — the executed-operation journals of the honest replicas
  must be *prefix-consistent* (any two journals agree on every position
  both contain: the single total order of atomic broadcast, observed
  from the outside), and no operation the client holds a threshold-
  signed answer for may be missing from the longest honest journal —
  "no committed op is lost", including across crash/recovery.
* **Liveness** — operations submitted in a *quiescent window* (every
  partition healed, no pending lifecycle fault) must complete within a
  stated bound.  During active faults only safety is checked: the
  asynchronous model promises nothing about timing there.

Checkers are pure functions over plain data (journal entries as
dictionaries, probe records), so they are trivially unit-testable and
reusable against any journal source.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

__all__ = [
    "JournalEntry",
    "SafetyReport",
    "LivenessReport",
    "read_journals",
    "check_safety",
    "check_liveness",
]


@dataclass(frozen=True)
class JournalEntry:
    """One executed operation as recorded by a replica host.

    ``round`` is the atomic-broadcast round the operation was ordered
    in (-1 for records predating the batched protocol, or for
    client-side commit records where the round is unknown).  With
    batching, several entries share a round; rounds must never decrease
    along a journal.
    """

    client: int
    nonce: int
    op: tuple
    round: int = -1

    @classmethod
    def from_json(cls, data: dict) -> "JournalEntry":
        return cls(
            client=int(data["client"]),
            nonce=int(data["nonce"]),
            op=tuple(data["op"]),
            round=int(data.get("round", -1)),
        )

    def key(self) -> tuple:
        return (self.client, self.nonce)


def read_journals(
    directory: str | pathlib.Path, parties: list[int]
) -> dict[int, list[JournalEntry]]:
    """Load ``journal/exec-<party>.jsonl`` for every listed party.

    A missing journal (replica never started, or was killed before its
    first execution) reads as an empty log — an empty log is trivially
    a prefix of every other log, so this is not an error.
    """
    journals: dict[int, list[JournalEntry]] = {}
    base = pathlib.Path(directory) / "journal"
    for party in parties:
        path = base / f"exec-{party}.jsonl"
        entries: list[JournalEntry] = []
        if path.exists():
            for line in path.read_text().splitlines():
                line = line.strip()
                if line:
                    entries.append(JournalEntry.from_json(json.loads(line)))
        journals[party] = entries
    return journals


@dataclass
class SafetyReport:
    """Verdict of the prefix-consistency / no-lost-commit check."""

    ok: bool
    issues: list[str] = field(default_factory=list)
    longest: int = 0

    def to_json(self) -> dict:
        return {"ok": self.ok, "issues": self.issues, "longest": self.longest}


def check_safety(
    journals: dict[int, list[JournalEntry]],
    committed: list[JournalEntry] | None = None,
) -> SafetyReport:
    """Honest journals must be pairwise prefix-consistent, and every
    client-committed operation must appear in the longest journal.

    ``committed`` holds the operations the client received a combined
    threshold signature for — the service vouched for them, so a
    recovery that loses one is a safety violation even if the surviving
    logs still agree with each other.
    """
    issues: list[str] = []
    parties = sorted(journals)
    # Batched rounds: several journal entries may share an ordering
    # round, but rounds must never decrease along any single journal —
    # a decrease means a replica executed part of an earlier batch
    # after a later one (ordering violated across a batch boundary).
    for party in parties:
        last_round = -1
        for position, entry in enumerate(journals[party]):
            if entry.round < 0:
                continue  # legacy record without round information
            if entry.round < last_round:
                issues.append(
                    f"round regression in journal of replica {party} at "
                    f"position {position}: round {entry.round} after "
                    f"round {last_round}"
                )
                break
            last_round = entry.round
    for i, a in enumerate(parties):
        for b in parties[i + 1:]:
            log_a, log_b = journals[a], journals[b]
            for position in range(min(len(log_a), len(log_b))):
                if log_a[position] != log_b[position]:
                    issues.append(
                        f"divergence at position {position}: "
                        f"replica {a} executed {log_a[position]}, "
                        f"replica {b} executed {log_b[position]}"
                    )
                    break  # one divergence per pair is enough evidence
    longest: list[JournalEntry] = []
    for party in parties:
        if len(journals[party]) > len(longest):
            longest = journals[party]
    if committed:
        executed_keys = {entry.key() for entry in longest}
        for entry in committed:
            if entry.key() not in executed_keys:
                issues.append(
                    f"committed operation lost: client {entry.client} holds a "
                    f"signed answer for nonce {entry.nonce} ({entry.op!r}) but "
                    f"no honest journal of maximal length contains it"
                )
    return SafetyReport(ok=not issues, issues=issues, longest=len(longest))


@dataclass
class LivenessReport:
    """Verdict of the quiescent-window completion check."""

    ok: bool
    bound: float
    probes: list[dict] = field(default_factory=list)
    issues: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "bound": self.bound,
            "probes": self.probes,
            "issues": self.issues,
        }


def check_liveness(probes: list[dict], bound: float) -> LivenessReport:
    """Every probe submitted in a quiescent window must have completed
    within ``bound`` seconds (``latency`` is ``None`` for a timeout)."""
    issues: list[str] = []
    for probe in probes:
        latency = probe.get("latency")
        if latency is None:
            issues.append(f"probe {probe.get('op')!r} never completed")
        elif latency > bound:
            issues.append(
                f"probe {probe.get('op')!r} took {latency:.2f}s "
                f"(bound {bound:.2f}s)"
            )
    return LivenessReport(
        ok=not issues, bound=bound, probes=list(probes), issues=issues
    )
