"""The send/deliver contract every network backend satisfies.

The protocol stack (``core/``, ``smr/``) talks to the network through
exactly three things: ``send``, ``broadcast`` and the ``trace``
statistics object.  Both the deterministic simulator
(:class:`repro.net.simulator.Network`) and the asyncio TCP transport
(:class:`repro.net.transport.TransportNetwork`) satisfy this structural
interface, which is what lets replicas and clients run unmodified on
either backend.
"""

from __future__ import annotations

from typing import Protocol

from .tracing import Trace

__all__ = ["NetworkBackend"]


class NetworkBackend(Protocol):
    """Structural interface of a network backend (simulator or TCP)."""

    trace: Trace

    @property
    def parties(self) -> list[int]:
        """Every known party id, sorted (used by broadcast-style
        behaviors, including the Byzantine attack chassis)."""
        ...

    def send(self, sender: int, recipient: int, payload: object) -> None:
        """Queue an authenticated point-to-point message."""
        ...

    def broadcast(self, sender: int, payload: object) -> None:
        """Send to every known party, including the sender itself."""
        ...
