"""Grid-driven chaos campaigns: the scenario-coverage engine.

One chaos scenario probes one point of the fault space; the paper's
claims are quantified over *all* admissible adversaries.  This module
closes some of that gap by sweeping a declarative grid
(:class:`SweepSpec`) over the axes that change protocol behavior
qualitatively:

* **cluster shape** — ``n``/``t`` and the corrupted coalition
  (:class:`ShapeSpec`), including deliberately inadmissible coalitions
  (``expect="violation"``) that must make a checker fire — the sweep
  doubles as a self-test of the oracles;
* **fault mix** — named :func:`~repro.net.chaos.fault_template` mixes
  (clean, lossy, duplicating, partition, churn);
* **latency distribution** — :func:`~repro.net.chaos.latency_template`
  overlays (none, jitter, heavy);
* **client load** — :func:`~repro.net.chaos.load_template` workloads
  (serial, pipelined, heavy) carrying the atomic-broadcast
  batching/pipelining knobs;
* **seeds** — every cell is run per seed, and every run is a
  deterministic function of its scenario (seed included).

Each cell expands to a concrete :class:`~repro.net.chaos.Scenario` via
:func:`~repro.net.chaos.parameterize_scenario`.  The **simulator
backend** (:func:`run_scenario_sim`) is the breadth path: the grid runs
in-process on the discrete-event network with a scheduler that realizes
the scenario's partitions, suspensions and reorder pressure, at
thousands of delivery steps per second.  A sampled subset re-runs on
the **TCP backend** (real replica subprocesses via
``python -m repro chaos run``) for depth.  Every run — both backends —
is judged by the same :mod:`repro.net.checkers` safety/liveness
oracles.

Results aggregate into a schema-stable ``SWEEP.json`` (pass/fail per
cell, violation kinds, latency summaries) plus a markdown table, and
any cell whose outcome is a violation emits a self-contained repro
bundle that ``python -m repro chaos replay`` accepts verbatim.

**Simulator fault-model note.**  Frame-level faults (reset / corrupt /
duplicate) live *below* the channel abstraction the simulator models —
the simulated channels are reliable and authenticated by construction.
The scheduler therefore maps the scenario's frame-fault rates onto
*reorder pressure* (adversarial LIFO preference), which is the
observable consequence the protocols must tolerate; the byte-level
machinery is exercised by the TCP subset.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import pathlib
import subprocess
import sys
import tempfile
from dataclasses import dataclass

from ..core.atomic_broadcast import AbcConfig
from ..core.protocol import Context
from ..core.runtime import ProtocolRuntime
from ..smr.replica import Replica, service_session
from ..smr.service import build_service
from ..smr.state_machine import KeyValueStore
from .chaos import (
    BYZANTINE_KINDS,
    FAULT_TEMPLATES,
    LATENCY_TEMPLATES,
    LOAD_TEMPLATES,
    Scenario,
    ScenarioError,
    _reject_unknown_keys,
    _require,
    byzantine_node,
    parameterize_scenario,
    plan_timeline,
)
from .checkers import (
    JournalEntry,
    check_liveness,
    check_safety,
    summarize_run,
    violation_kinds,
)
from .scheduler import Scheduler
from .simulator import Envelope, LivenessError

__all__ = [
    "EXPECTATIONS",
    "ShapeSpec",
    "SweepSpec",
    "SweepCell",
    "SweepScheduler",
    "expand_cells",
    "run_scenario_sim",
    "run_sweep",
    "smoke_spec",
    "nightly_spec",
    "write_markdown",
]

EXPECTATIONS = ("pass", "violation")

# Liveness bound for simulator probes, in delivery steps.  A probe that
# has not completed within this budget is declared stuck (the simulator
# has no wall clock; steps are its only notion of "too long").
PROBE_STEP_BOUND = 150_000


# -- the grid spec ------------------------------------------------------------------


@dataclass(frozen=True)
class ShapeSpec:
    """One cluster shape: size, threshold, and the corrupted coalition.

    ``expect`` states the verdict the oracles must reach for every cell
    of this shape: ``"pass"`` for admissible configurations,
    ``"violation"`` for deliberately inadmissible ones (coalition
    exceeding ``t``) whose failure *proves the checkers can fire*.
    """

    n: int = 4
    t: int = 1
    byzantine: tuple[tuple[int, str], ...] = ()
    expect: str = "pass"

    @property
    def label(self) -> str:
        tag = f"n{self.n}t{self.t}"
        if self.byzantine:
            kinds = sorted({kind for _, kind in self.byzantine})
            if len(kinds) == 1:
                tag += f"+{len(self.byzantine)}{kinds[0]}"
            else:
                tag += f"+{len(self.byzantine)}({'+'.join(kinds)})"
        return tag

    def to_json(self) -> dict:
        return {
            "n": self.n,
            "t": self.t,
            "byzantine": [[party, kind] for party, kind in self.byzantine],
            "expect": self.expect,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ShapeSpec":
        _reject_unknown_keys(data, {"n", "t", "byzantine", "expect"}, "shape")
        try:
            shape = cls(
                n=int(data.get("n", 4)),
                t=int(data.get("t", 1)),
                byzantine=tuple(
                    (int(party), str(kind))
                    for party, kind in data.get("byzantine", ())
                ),
                expect=str(data.get("expect", "pass")),
            )
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"shape: {exc!r}") from exc
        shape.validate()
        return shape

    def validate(self) -> None:
        _require(self.n >= 1, f"shape: n={self.n} must be at least 1")
        _require(
            0 <= self.t < self.n,
            f"shape: t={self.t} must satisfy 0 <= t < n={self.n}",
        )
        _require(
            self.expect in EXPECTATIONS,
            f"shape: expect={self.expect!r} must be one of "
            f"{', '.join(EXPECTATIONS)}",
        )
        for party, kind in self.byzantine:
            _require(
                0 <= party < self.n,
                f"shape: byzantine party {party} outside 0..{self.n - 1}",
            )
            _require(
                kind in BYZANTINE_KINDS,
                f"shape: unknown byzantine kind {kind!r}",
            )


@dataclass(frozen=True)
class SweepSpec:
    """A declarative campaign: the grid axes and the TCP sample size.

    Shapes with ``expect="pass"`` expand to the full cartesian product
    over (faults x latencies x loads x seeds).  Shapes with
    ``expect="violation"`` pair only with the *first* value of each
    template axis, per seed — they exist to prove the oracle fires, not
    to cover the grid, so multiplying them across benign axes buys
    nothing.
    """

    name: str
    shapes: tuple[ShapeSpec, ...]
    faults: tuple[str, ...] = ("clean",)
    latencies: tuple[str, ...] = ("none",)
    loads: tuple[str, ...] = ("serial",)
    seeds: tuple[int, ...] = (1,)
    tcp_cells: int = 0

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "shapes": [shape.to_json() for shape in self.shapes],
            "faults": list(self.faults),
            "latencies": list(self.latencies),
            "loads": list(self.loads),
            "seeds": list(self.seeds),
            "tcp_cells": self.tcp_cells,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SweepSpec":
        _reject_unknown_keys(
            data,
            {
                "name", "shapes", "faults", "latencies", "loads", "seeds",
                "tcp_cells",
            },
            "sweep",
        )
        _require("name" in data, "sweep: missing name")
        _require(bool(data.get("shapes")), "sweep: at least one shape required")
        try:
            spec = cls(
                name=str(data["name"]),
                shapes=tuple(
                    ShapeSpec.from_json(shape) for shape in data["shapes"]
                ),
                faults=tuple(str(f) for f in data.get("faults", ("clean",))),
                latencies=tuple(
                    str(d) for d in data.get("latencies", ("none",))
                ),
                loads=tuple(str(w) for w in data.get("loads", ("serial",))),
                seeds=tuple(int(s) for s in data.get("seeds", (1,))),
                tcp_cells=int(data.get("tcp_cells", 0)),
            )
        except ScenarioError:
            raise
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"sweep: {exc!r}") from exc
        spec.validate()
        return spec

    def validate(self) -> None:
        for axis, values, known in (
            ("faults", self.faults, FAULT_TEMPLATES),
            ("latencies", self.latencies, LATENCY_TEMPLATES),
            ("loads", self.loads, LOAD_TEMPLATES),
        ):
            _require(bool(values), f"sweep: empty {axis} axis")
            for value in values:
                _require(
                    value in known,
                    f"sweep: unknown {axis} template {value!r} "
                    f"(expected one of {', '.join(known)})",
                )
        _require(bool(self.seeds), "sweep: empty seeds axis")
        _require(
            len(set(self.seeds)) == len(self.seeds),
            "sweep: duplicate seeds",
        )
        _require(
            self.tcp_cells >= 0,
            f"sweep: negative tcp_cells {self.tcp_cells}",
        )


@dataclass(frozen=True)
class SweepCell:
    """One concrete run: a scenario, the backend, and the expected
    verdict."""

    label: str
    backend: str  # "sim" | "tcp"
    expected: str
    scenario: Scenario


def expand_cells(spec: SweepSpec) -> list[SweepCell]:
    """Deterministically expand a grid into concrete cells.

    Simulator cells come first in grid order; the ``tcp_cells`` TCP
    re-runs (evenly sampled from the expected-pass simulator cells) are
    appended after them.
    """
    spec.validate()
    cells: list[SweepCell] = []
    for shape in spec.shapes:
        if shape.expect == "pass":
            combos = [
                (fault, latency, load)
                for fault in spec.faults
                for latency in spec.latencies
                for load in spec.loads
            ]
        else:
            combos = [(spec.faults[0], spec.latencies[0], spec.loads[0])]
        for fault, latency, load in combos:
            for seed in spec.seeds:
                name = f"sweep-{shape.label}-{fault}-{latency}-{load}"
                scenario = parameterize_scenario(
                    name,
                    n=shape.n,
                    t=shape.t,
                    seed=seed,
                    fault=fault,
                    latency=latency,
                    load=load,
                    byzantine=shape.byzantine,
                )
                cells.append(
                    SweepCell(
                        label=(
                            f"{shape.label}/{fault}/{latency}/{load}/s{seed}"
                        ),
                        backend="sim",
                        expected=shape.expect,
                        scenario=scenario,
                    )
                )
    if spec.tcp_cells:
        pool = [cell for cell in cells if cell.expected == "pass"]
        _require(
            bool(pool),
            "sweep: tcp_cells requested but no expected-pass cells to sample",
        )
        count = min(spec.tcp_cells, len(pool))
        picked: list[int] = []
        for i in range(count):
            index = round(i * (len(pool) - 1) / max(1, count - 1))
            if index not in picked:
                picked.append(index)
        for index in picked:
            cell = pool[index]
            cells.append(
                SweepCell(
                    label=f"tcp:{cell.label}",
                    backend="tcp",
                    expected=cell.expected,
                    scenario=cell.scenario,
                )
            )
    return cells


# -- the simulator fast path --------------------------------------------------------


class SweepScheduler(Scheduler):
    """Realizes a scenario's network-fault plan inside the simulator.

    The runner advances ``now`` (scenario seconds) at timeline
    boundaries; partitions block cut-crossing envelopes while active,
    ``suspended`` parties neither send nor receive effects (their
    traffic is postponed), and the scenario's frame-fault rates sum
    into a reorder pressure: with that probability the *newest* allowed
    envelope is delivered (adversarial LIFO), else a uniformly random
    one.  Returning ``None`` while only blocked traffic is pending
    reads as quiescence to ``Network.run`` — the runner resumes the
    postponed envelopes after advancing ``now`` past the heal.
    """

    def __init__(self, scenario: Scenario) -> None:
        self.now = 0.0
        self.suspended: set[int] = set()
        self.cuts = [
            (cut.start, cut.stop, frozenset(cut.group))
            for cut in scenario.faults.partitions
        ]
        faults = scenario.faults
        self.reorder = min(
            0.9,
            faults.reset_rate + faults.corrupt_rate + faults.duplicate_rate
            + faults.delay_rate + faults.hold_rate,
        )

    def _blocked(self, envelope: Envelope) -> bool:
        if (
            envelope.sender in self.suspended
            or envelope.recipient in self.suspended
        ):
            return True
        for start, stop, group in self.cuts:
            if start <= self.now < stop and (
                (envelope.sender in group) != (envelope.recipient in group)
            ):
                return True
        return False

    def select(self, pending, rng):
        if not pending:
            return None
        allowed = [
            i for i, envelope in enumerate(pending)
            if not self._blocked(envelope)
        ]
        if not allowed:
            return None  # only blocked traffic: quiesce until `now` moves
        if self.reorder and rng.random() < self.reorder:
            return allowed[-1]
        return allowed[rng.randrange(len(allowed))]


def run_scenario_sim(scenario: Scenario) -> dict:
    """Execute a scenario on the in-process simulator.

    Deterministic function of the scenario (all randomness is seeded
    from it).  Returns a report dict with the same shape as the TCP
    journal written by ``chaos run`` — same checker verdicts, same
    summary extraction — with ``backend="sim"`` and latencies counted
    in delivery steps rather than seconds.
    """
    scenario.validate()
    scheduler = SweepScheduler(scenario)
    abc_config = None
    if scenario.abc_max_batch or scenario.abc_pipeline_depth:
        abc_config = AbcConfig(
            max_batch=scenario.abc_max_batch or 64,
            pipeline_depth=scenario.abc_pipeline_depth or 1,
        )
    dep = build_service(
        scenario.n,
        KeyValueStore,
        t=scenario.t,
        seed=scenario.seed,
        scheduler=scheduler,
        abc_config=abc_config,
    )
    byzantine = dict(scenario.byzantine)
    journals: dict[int, list[JournalEntry]] = {}

    def observe(party: int):
        def hook(request, result, rnd: int) -> None:
            journals[party].append(
                JournalEntry(
                    client=request.client,
                    nonce=request.nonce,
                    op=tuple(request.operation),
                    round=rnd,
                )
            )
        return hook

    for party in range(scenario.n):
        if party in byzantine:
            continue
        journals[party] = []
        dep.replicas[party].on_execute = observe(party)

    for party, kind in scenario.byzantine:
        node, _runtime, _replica = byzantine_node(
            kind,
            dep.network,
            party,
            dep.keys.public,
            dep.keys.private[party],
            seed=scenario.seed,
        )
        # unchecked: violation shapes deliberately exceed the structure.
        dep.controller.corrupt(dep.network, party, node, unchecked=True)

    client = dep.new_client()
    network = dep.network
    network.start()

    timeline = plan_timeline(scenario)
    events_log: list[dict] = []
    open_ops: dict[int, dict] = {}

    def reap() -> None:
        for nonce in [n for n in open_ops if n in client.completed]:
            info = open_ops.pop(nonce)
            events_log.append(
                {
                    "at": info["at"],
                    "kind": "op",
                    "op": info["op"],
                    "nonce": nonce,
                    "latency": float(
                        network.delivered_count - info["submitted"]
                    ),
                }
            )

    times = [entry["at"] for entry in timeline]
    for index, entry in enumerate(timeline):
        scheduler.now = entry["at"]
        kind = entry["kind"]
        party = entry.get("party")
        if kind == "op":
            nonce = client.submit(tuple(entry["op"]))
            open_ops[nonce] = {
                "at": entry["at"],
                "op": entry["op"],
                "submitted": network.delivered_count,
            }
        elif kind == "partition":
            events_log.append(
                {
                    "at": entry["at"],
                    "kind": "partition",
                    "group": entry["group"],
                    "heal_at": entry["stop"],
                }
            )
        elif kind == "kill":
            network.crash(party)
            events_log.append({"at": entry["at"], "kind": "kill", "party": party})
        elif kind == "restart":
            # The simulator's crash-recovery idiom: a *fresh* runtime and
            # replica (volatile state gone) rejoin and replay the agreed
            # log via peer state transfer; the journal restarts empty and
            # is rebuilt by the replay (on_execute fires on replays too).
            runtime = ProtocolRuntime(
                party,
                network,
                dep.keys.public,
                dep.keys.private[party],
                seed=scenario.seed + 7,
            )
            replica = Replica(KeyValueStore(), abc_config=abc_config)
            runtime.spawn(service_session("service"), replica)
            network.recover(party, runtime)
            replica.begin_recovery(Context(runtime, service_session("service")))
            dep.runtimes[party] = runtime
            dep.replicas[party] = replica
            if party not in byzantine:
                journals[party] = []
                replica.on_execute = observe(party)
            events_log.append(
                {"at": entry["at"], "kind": "restart", "party": party}
            )
        elif kind == "suspend":
            scheduler.suspended.add(party)
            events_log.append(
                {"at": entry["at"], "kind": "suspend", "party": party}
            )
        elif kind == "resume":
            scheduler.suspended.discard(party)
            events_log.append(
                {"at": entry["at"], "kind": "resume", "party": party}
            )
        elif kind == "corrupt-checkpoint":
            # No checkpoint files in the simulator; recovery always
            # replays from peers, which is the checkpoint-rejection
            # fallback path by construction.
            events_log.append(
                {
                    "at": entry["at"],
                    "kind": "corrupt-checkpoint",
                    "party": party,
                    "corrupted": False,
                }
            )
        gap = times[index + 1] - entry["at"] if index + 1 < len(times) else 0.5
        network.run(max_steps=max(2000, int(gap * 4000)))
        reap()

    # -- quiescent window: every cut healed, nothing suspended --
    heal_at = max(
        (cut.stop for cut in scenario.faults.partitions), default=0.0
    )
    scheduler.now = max([heal_at] + times) + 1.0
    scheduler.suspended.clear()
    network.run(max_steps=300_000)
    reap()
    for nonce in sorted(open_ops):
        info = open_ops[nonce]
        events_log.append(
            {
                "at": info["at"],
                "kind": "op",
                "op": info["op"],
                "nonce": nonce,
                "latency": None,
            }
        )
    open_ops.clear()

    probes: list[dict] = []
    for i in range(scenario.liveness_probes):
        operation = ("set", f"probe-{i}", i)
        nonce = client.submit(operation)
        before = network.delivered_count
        try:
            network.run(
                max_steps=PROBE_STEP_BOUND,
                until=lambda nonce=nonce: nonce in client.completed,
            )
            latency: float | None = float(network.delivered_count - before)
        except LivenessError:
            latency = None
        probes.append({"op": list(operation), "latency": latency})
        events_log.append(
            {"kind": "probe", "op": list(operation), "latency": latency}
        )

    committed = [
        JournalEntry(
            client=client.client_id,
            nonce=nonce,
            op=tuple(client.operation(nonce)),
        )
        for nonce in sorted(client.completed)
    ]
    safety = check_safety(journals, committed)
    liveness = check_liveness(probes, bound=float(PROBE_STEP_BOUND))
    return {
        "scenario": scenario.to_json(),
        "backend": "sim",
        "latency_unit": "steps",
        "timeline": timeline,
        "events": events_log,
        "journal_lengths": {
            str(party): len(journals[party]) for party in sorted(journals)
        },
        "committed": len(committed),
        "resubmissions": client.resubmissions,
        "duplicate_replies": client.duplicate_replies,
        "safety": safety.to_json(),
        "liveness": liveness.to_json(),
        "ok": safety.ok and liveness.ok,
    }


def _sim_cell_worker(scenario_json: str) -> dict:
    """Worker-process entry point (module-level for picklability)."""
    return run_scenario_sim(Scenario.from_json(json.loads(scenario_json)))


# -- the TCP depth path -------------------------------------------------------------


def _run_tcp_cell(cell: SweepCell, workdir: pathlib.Path) -> dict:
    """Run one cell on the real subprocess TCP cluster via the chaos
    CLI — deliberately the same entry point CI uses, so the
    failure-JSON gate is exercised uniformly."""
    safe = _safe_name(cell.label)
    scenario_path = workdir / f"{safe}.scenario.json"
    journal_path = workdir / f"{safe}.journal.json"
    failure_path = workdir / f"{safe}.failure.json"
    scenario_path.write_text(json.dumps(cell.scenario.to_json(), indent=1))
    src_root = pathlib.Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    command = [
        sys.executable, "-m", "repro", "chaos", "run",
        "--scenario", str(scenario_path),
        "--journal", str(journal_path),
        "--failure-json", str(failure_path),
    ]
    try:
        proc = subprocess.run(
            command, capture_output=True, text=True, timeout=600, env=env
        )
        stderr_tail = proc.stderr[-2000:]
    except subprocess.TimeoutExpired as exc:
        proc = None
        stderr_tail = f"timeout after {exc.timeout}s"
    if journal_path.exists():
        report = json.loads(journal_path.read_text())
        report["backend"] = "tcp"
        report["latency_unit"] = "seconds"
        return report
    # The run died before producing a journal: report it as a harness
    # error so the cell cannot silently count as covered.
    return {
        "scenario": cell.scenario.to_json(),
        "backend": "tcp",
        "latency_unit": "seconds",
        "events": [],
        "committed": 0,
        "safety": {"ok": False, "issues": [
            f"tcp run produced no journal: {stderr_tail}"
        ], "kinds": ["harness.error"]},
        "liveness": {"ok": True, "bound": 0.0, "probes": [], "issues": [],
                     "kinds": []},
        "ok": False,
    }


# -- aggregation and reporting ------------------------------------------------------


def _safe_name(label: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch in "._-" else "-" for ch in label
    )


def _cell_record(
    cell: SweepCell,
    report: dict,
    repro_dir: pathlib.Path | None,
) -> dict:
    outcome = "pass" if report.get("ok") else "violation"
    record = {
        "cell": cell.label,
        "backend": cell.backend,
        "scenario": cell.scenario.name,
        "seed": cell.scenario.seed,
        "expected": cell.expected,
        "outcome": outcome,
        "matched": outcome == cell.expected,
        "violations": violation_kinds(report),
        "summary": summarize_run(report),
        "repro": None,
    }
    if outcome == "violation" and repro_dir is not None:
        repro_dir.mkdir(parents=True, exist_ok=True)
        bundle_path = repro_dir / f"{_safe_name(cell.label)}.json"
        # Self-contained: `chaos replay --journal <bundle>` re-derives
        # the timeline from the scenario+seed and must match verbatim
        # (extra keys are ignored by the replayer).
        bundle = {
            "cell": cell.label,
            "backend": cell.backend,
            "expected": cell.expected,
            "violations": record["violations"],
            "scenario": cell.scenario.to_json(),
            "timeline": plan_timeline(cell.scenario),
        }
        bundle_path.write_text(json.dumps(bundle, indent=1))
        record["repro"] = str(bundle_path)
    return record


def aggregate(spec: SweepSpec, records: list[dict]) -> dict:
    """The schema-stable SWEEP.json payload."""
    by_violation: dict[str, int] = {}
    for record in records:
        for kind in record["violations"]:
            by_violation[kind] = by_violation.get(kind, 0) + 1
    return {
        "schema": 1,
        "name": spec.name,
        "spec": spec.to_json(),
        "axes": {
            "shapes": [shape.label for shape in spec.shapes],
            "faults": list(spec.faults),
            "latencies": list(spec.latencies),
            "loads": list(spec.loads),
            "seeds": list(spec.seeds),
        },
        "runs": records,
        "totals": {
            "runs": len(records),
            "sim": sum(1 for r in records if r["backend"] == "sim"),
            "tcp": sum(1 for r in records if r["backend"] == "tcp"),
            "passed": sum(1 for r in records if r["outcome"] == "pass"),
            "violations": sum(
                1 for r in records if r["outcome"] == "violation"
            ),
            "expected_violations": sum(
                1 for r in records
                if r["outcome"] == "violation" and r["matched"]
            ),
            "mismatched": sum(1 for r in records if not r["matched"]),
            "by_violation": dict(sorted(by_violation.items())),
        },
    }


def write_markdown(payload: dict, path: str | pathlib.Path) -> None:
    """Render the sweep report as a human-readable markdown table."""
    totals = payload["totals"]
    lines = [
        f"# Sweep report: {payload['name']}",
        "",
        f"{totals['runs']} runs ({totals['sim']} simulator, "
        f"{totals['tcp']} TCP) — {totals['passed']} passed, "
        f"{totals['violations']} violations "
        f"({totals['expected_violations']} expected), "
        f"{totals['mismatched']} cells mismatched their expectation.",
        "",
        "Axes: shapes " + ", ".join(f"`{s}`" for s in payload["axes"]["shapes"])
        + "; faults " + ", ".join(payload["axes"]["faults"])
        + "; latencies " + ", ".join(payload["axes"]["latencies"])
        + "; loads " + ", ".join(payload["axes"]["loads"])
        + "; seeds " + ", ".join(str(s) for s in payload["axes"]["seeds"])
        + ".",
        "",
        "| cell | backend | expected | outcome | committed | p50 | "
        "violations |",
        "|---|---|---|---|---|---|---|",
    ]
    for record in payload["runs"]:
        summary = record["summary"]
        p50 = summary.get("latency_p50")
        unit = "s" if summary.get("latency_unit") == "seconds" else " steps"
        p50_text = "—" if p50 is None else f"{p50:g}{unit}"
        marker = "" if record["matched"] else " ⚠"
        lines.append(
            f"| `{record['cell']}` | {record['backend']} "
            f"| {record['expected']} | {record['outcome']}{marker} "
            f"| {summary.get('committed', 0)} | {p50_text} "
            f"| {', '.join(record['violations']) or '—'} |"
        )
    if totals["by_violation"]:
        lines += ["", "Violation kinds: " + ", ".join(
            f"`{kind}` ×{count}"
            for kind, count in totals["by_violation"].items()
        ) + "."]
    lines.append("")
    pathlib.Path(path).write_text("\n".join(lines))


# -- campaign drivers ---------------------------------------------------------------


def smoke_spec() -> SweepSpec:
    """The PR-gate grid: ≥20 seeded runs across shape, fault, latency
    and seed axes in a few minutes, including one coalition that must
    trip the liveness oracle (t exceeded) and one TCP depth cell."""
    return SweepSpec(
        name="smoke",
        shapes=(
            ShapeSpec(n=4, t=1),
            ShapeSpec(n=4, t=1, byzantine=((3, "silent"),)),
            ShapeSpec(
                n=4,
                t=1,
                byzantine=((2, "silent"), (3, "silent")),
                expect="violation",
            ),
        ),
        faults=("clean", "duplicating"),
        latencies=("none", "jitter"),
        loads=("serial",),
        seeds=(101, 102, 103),
        tcp_cells=1,
    )


def nightly_spec() -> SweepSpec:
    """The nightly campaign: a medium grid (hundreds of simulator runs
    plus a TCP-cluster sample) covering every fault template, byzantine
    behaviors within and beyond the threshold, and a larger cluster."""
    return SweepSpec(
        name="nightly",
        shapes=(
            ShapeSpec(n=4, t=1),
            ShapeSpec(n=4, t=1, byzantine=((3, "silent"),)),
            ShapeSpec(n=4, t=1, byzantine=((3, "equivocate"),)),
            ShapeSpec(n=7, t=2),
            ShapeSpec(
                n=4,
                t=1,
                byzantine=((2, "silent"), (3, "silent")),
                expect="violation",
            ),
        ),
        faults=("clean", "duplicating", "partition", "churn"),
        latencies=("none", "jitter", "heavy"),
        loads=("serial", "pipelined"),
        seeds=(11, 12),
        tcp_cells=6,
    )


def run_sweep(
    spec: SweepSpec,
    out: str | pathlib.Path = "SWEEP.json",
    markdown: str | pathlib.Path | None = None,
    repro_dir: str | pathlib.Path | None = None,
    workers: int | None = None,
    tcp_override: int | None = None,
) -> int:
    """Expand, execute and aggregate a campaign.

    Returns 0 iff *every* cell's outcome matches its expectation —
    expected violations must fire (the oracle self-test) and expected
    passes must pass.  ``tcp_override`` replaces the spec's TCP sample
    size (0 disables TCP entirely, e.g. in sandboxed environments).
    """
    if tcp_override is not None:
        spec = SweepSpec(
            name=spec.name,
            shapes=spec.shapes,
            faults=spec.faults,
            latencies=spec.latencies,
            loads=spec.loads,
            seeds=spec.seeds,
            tcp_cells=tcp_override,
        )
    cells = expand_cells(spec)
    sim_cells = [cell for cell in cells if cell.backend == "sim"]
    tcp_cells = [cell for cell in cells if cell.backend == "tcp"]
    print(
        f"sweep[{spec.name}]: {len(sim_cells)} simulator cells, "
        f"{len(tcp_cells)} tcp cells"
    )

    reports: dict[str, dict] = {}
    if workers is None:
        workers = max(2, min(8, (os.cpu_count() or 2) - 1))
    if workers <= 1 or len(sim_cells) <= 1:
        for cell in sim_cells:
            reports[cell.label] = run_scenario_sim(cell.scenario)
            print(_progress_line(spec, cell, reports[cell.label]))
    else:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers
        ) as pool:
            futures = {
                pool.submit(
                    _sim_cell_worker, json.dumps(cell.scenario.to_json())
                ): cell
                for cell in sim_cells
            }
            for future in concurrent.futures.as_completed(futures):
                cell = futures[future]
                reports[cell.label] = future.result()
                print(_progress_line(spec, cell, reports[cell.label]))

    if tcp_cells:
        with tempfile.TemporaryDirectory(prefix="repro-sweep-tcp-") as tmp:
            for cell in tcp_cells:  # serial: each spawns a full cluster
                reports[cell.label] = _run_tcp_cell(cell, pathlib.Path(tmp))
                print(_progress_line(spec, cell, reports[cell.label]))

    repro_path = pathlib.Path(repro_dir) if repro_dir is not None else None
    records = [
        _cell_record(cell, reports[cell.label], repro_path) for cell in cells
    ]
    payload = aggregate(spec, records)
    pathlib.Path(out).write_text(json.dumps(payload, indent=1) + "\n")
    print(f"sweep[{spec.name}]: report written to {out}")
    if markdown is not None:
        write_markdown(payload, markdown)
        print(f"sweep[{spec.name}]: markdown written to {markdown}")
    totals = payload["totals"]
    mismatched = [record for record in records if not record["matched"]]
    for record in mismatched:
        print(
            f"sweep[{spec.name}]: MISMATCH {record['cell']}: expected "
            f"{record['expected']}, got {record['outcome']} "
            f"({', '.join(record['violations']) or 'no violations'})"
            + (f" — repro: {record['repro']}" if record["repro"] else "")
        )
    print(
        f"sweep[{spec.name}]: {totals['runs']} runs, "
        f"{totals['passed']} passed, {totals['violations']} violations "
        f"({totals['expected_violations']} expected), "
        f"{totals['mismatched']} mismatched"
    )
    return 0 if not mismatched else 1


def _progress_line(spec: SweepSpec, cell: SweepCell, report: dict) -> str:
    verdict = "ok" if report.get("ok") else "VIOLATION"
    return (
        f"sweep[{spec.name}]: {cell.label} [{cell.backend}] -> {verdict} "
        f"(committed={report.get('committed', 0)}, expected={cell.expected})"
    )
