"""Process hosts for the TCP transport: replicas, clients, clusters.

Where :mod:`repro.net.transport` provides the authenticated links, this
module provides the *deployment shape* around them:

* :class:`ReplicaHost` — one server process: keystore bundles from
  disk, a :class:`~repro.net.transport.TransportNetwork`, the
  :class:`~repro.core.runtime.ProtocolRuntime` and the service
  :class:`~repro.smr.replica.Replica`, with graceful SIGTERM shutdown
  and optional Section-6 crash recovery on startup.
* :func:`run_client_ops` — a client process: submits operations over
  TCP and awaits the threshold-signed answers.
* :func:`demo_cluster` — spawns an ``n``-server cluster in
  subprocesses, drives a client workload end-to-end, kills and restarts
  one replica mid-run, and verifies the restarted replica recovered the
  full history.

Everything here is the operational counterpart of
:func:`repro.smr.service.build_service`, which wires the same objects
to the deterministic simulator instead.  See ``docs/DEPLOYMENT.md``.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import json
import os
import pathlib
import random
import shutil
import signal
import socket
import sys
import tempfile
from collections.abc import Callable
from dataclasses import dataclass

from ..adversary.quorums import ThresholdQuorumSystem
from ..core.atomic_broadcast import AbcConfig
from ..core.protocol import Context, SessionId
from ..core.runtime import ProtocolRuntime
from ..crypto import dkg, keystore
from ..crypto.dealer import CLIENT_BASE, deal_channel_keys, deal_system
from ..crypto.groups import SchnorrGroup, small_group
from ..crypto.hashing import hash_bytes
from ..crypto.lsss import threshold_scheme
from ..crypto.schnorr import SigningKey, keygen
from ..smr import reconfig
from ..smr.client import ServiceClient
from ..smr.reconfig import EpochTombstone, epoch_service_session
from ..smr.replica import Replica, service_session
from ..smr.state_machine import KeyValueStore, StateMachine
from .transport import FaultPlan, TransportError, TransportNetwork

__all__ = [
    "CLUSTER_FILE",
    "DEFAULT_IO_TIMEOUT",
    "EPOCH_FILE",
    "BootstrapFile",
    "ClusterConfig",
    "ReplicaHost",
    "allocate_addresses",
    "checkpoint_path",
    "demo_cluster",
    "dh_channel_key",
    "load_bootstrap",
    "load_checkpoint",
    "load_epoch",
    "provision_dkg_deployment",
    "provision_joiner",
    "run_client_ops",
    "save_epoch",
    "serve_replica",
    "submit_reconfigure",
    "write_checkpoint",
]

CLUSTER_FILE = "cluster.json"
EPOCH_FILE = "epoch.json"

# Default bound on every "wait for the cluster to say something" loop.
# Configurable per deployment through ``ClusterConfig.io_timeout`` (and
# ``demo-cluster --io-timeout`` / chaos scenarios), because 30s is
# plenty on a laptop but flaky on a loaded CI machine or under
# injected faults.
DEFAULT_IO_TIMEOUT = 30.0


# -- cluster topology on disk -------------------------------------------------------


@dataclass(frozen=True)
class ClusterConfig:
    """The operational shape of a deployed cluster: the address map
    (party id -> host, port) plus the deployment-wide I/O deadline
    every process-level wait inherits."""

    addresses: dict[int, tuple[str, int]]
    io_timeout: float = DEFAULT_IO_TIMEOUT
    # Atomic-broadcast throughput knobs (docs/PERFORMANCE.md).  ``None``
    # means the protocol default — older cluster.json files load fine.
    abc_max_batch: int | None = None
    abc_max_batch_bytes: int | None = None
    abc_pipeline_depth: int | None = None

    def save(self, path: str | pathlib.Path) -> None:
        data = {
            "addresses": {
                str(party): [host, port]
                for party, (host, port) in sorted(self.addresses.items())
            },
            "io_timeout": self.io_timeout,
        }
        for knob in ("abc_max_batch", "abc_max_batch_bytes", "abc_pipeline_depth"):
            value = getattr(self, knob)
            if value is not None:
                data[knob] = value
        pathlib.Path(path).write_text(json.dumps(data, indent=1))

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "ClusterConfig":
        data = json.loads(pathlib.Path(path).read_text())

        def knob(name: str) -> int | None:
            value = data.get(name)
            return int(value) if value is not None else None

        return cls(
            addresses={
                int(party): (str(entry[0]), int(entry[1]))
                for party, entry in data["addresses"].items()
            },
            io_timeout=float(data.get("io_timeout", DEFAULT_IO_TIMEOUT)),
            abc_max_batch=knob("abc_max_batch"),
            abc_max_batch_bytes=knob("abc_max_batch_bytes"),
            abc_pipeline_depth=knob("abc_pipeline_depth"),
        )

    def abc_config(self) -> "AbcConfig | None":
        """The :class:`AbcConfig` these knobs describe, or None for the
        protocol defaults."""
        overrides = {
            field_name: value
            for field_name, value in (
                ("max_batch", self.abc_max_batch),
                ("max_batch_bytes", self.abc_max_batch_bytes),
                ("pipeline_depth", self.abc_pipeline_depth),
            )
            if value is not None
        }
        if not overrides:
            return None
        return AbcConfig(**overrides)


def allocate_addresses(
    parties: list[int], host: str = "127.0.0.1"
) -> dict[int, tuple[str, int]]:
    """Pick a free localhost port per party (all sockets held open until
    every port is chosen, to avoid handing out the same one twice)."""
    sockets: list[socket.socket] = []
    addresses: dict[int, tuple[str, int]] = {}
    try:
        for party in parties:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind((host, 0))
            sockets.append(sock)
            addresses[party] = (host, sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return addresses


# -- authenticated local checkpoints ------------------------------------------------
#
# A replica's delivered log is periodically persisted so a restart can
# replay most of its history from disk and only fetch the tail from
# peers (Section 6 recovery stays the source of truth).  The file is
# *authenticated*: the paper's adversary may control the machine
# between crash and restart, so an unauthenticated snapshot would let
# it rewrite history.  The MAC key is derived from the party's full
# channel keyring — forging a checkpoint requires compromising the
# party's entire key material, at which point it is simply corrupted.
# A checkpoint that fails authentication (or fails to parse) is
# REJECTED and recovery falls back to pure peer state transfer; the
# chaos engine's corrupted-snapshot fault asserts exactly this.


def checkpoint_path(directory: str | pathlib.Path, party: int) -> pathlib.Path:
    return pathlib.Path(directory) / f"checkpoint-{party}.json"


def _checkpoint_key(party: int, channel_keys: dict[int, bytes]) -> bytes:
    material = [b"repro-checkpoint-v1", party.to_bytes(8, "big")]
    for peer in sorted(channel_keys):
        material.append(peer.to_bytes(8, "big"))
        material.append(channel_keys[peer])
    return hashlib.sha256(b"".join(material)).digest()


def write_checkpoint(
    directory: str | pathlib.Path,
    party: int,
    channel_keys: dict[int, bytes],
    entries: tuple,
    round_number: int,
) -> pathlib.Path:
    """Atomically persist the delivered log with an HMAC over its
    canonical wire encoding."""
    from . import wire

    body = wire.dumps((tuple(entries), round_number))
    mac = hmac.new(_checkpoint_key(party, channel_keys), body, hashlib.sha256)
    path = checkpoint_path(directory, party)
    data = json.dumps(
        {"party": party, "body": body.hex(), "mac": mac.hexdigest()}
    )
    tmp = path.with_suffix(".tmp")
    tmp.write_text(data)
    tmp.replace(path)  # atomic: a crash mid-write never half-updates
    return path


def load_checkpoint(
    directory: str | pathlib.Path, party: int, channel_keys: dict[int, bytes]
) -> tuple[tuple, int] | None:
    """Load and authenticate a checkpoint; ``None`` if it is missing,
    malformed, or fails the MAC — the caller must treat all three the
    same way (recover purely from peers)."""
    from . import wire

    path = checkpoint_path(directory, party)
    try:
        data = json.loads(path.read_text())
        body = bytes.fromhex(data["body"])
        tag = bytes.fromhex(data["mac"])
    except (OSError, ValueError, TypeError, KeyError):
        return None
    expected = hmac.new(
        _checkpoint_key(party, channel_keys), body, hashlib.sha256
    ).digest()
    if not hmac.compare_digest(tag, expected):
        return None
    try:
        entries, round_number = wire.loads(body)
    except (wire.WireError, ValueError):
        return None
    if not isinstance(entries, tuple) or not isinstance(round_number, int):
        return None
    return entries, round_number


# -- dealerless bootstrap and epochs ------------------------------------------------
#
# A DKG deployment has no dealer output to distribute.  The operator
# instead provisions each party a *bootstrap* bundle — identity signing
# key + pairwise channel keys, the authenticated-channel assumption of
# the model and nothing more — and the cluster generates its threshold
# keys itself (crypto/dkg.py).  The epoch file records which committed
# `Reconfigure` generation the on-disk keystore belongs to.


def epoch_file_path(directory: str | pathlib.Path) -> pathlib.Path:
    return pathlib.Path(directory) / EPOCH_FILE


def load_epoch(directory: str | pathlib.Path) -> int:
    """The keystore's epoch; 0 when absent (dealer-era deployments)."""
    try:
        return int(json.loads(epoch_file_path(directory).read_text())["epoch"])
    except (OSError, ValueError, TypeError, KeyError):
        return 0


def save_epoch(directory: str | pathlib.Path, epoch: int) -> None:
    keystore.atomic_write_text(
        epoch_file_path(directory), json.dumps({"epoch": epoch})
    )


@dataclass(frozen=True)
class BootstrapFile:
    """One party's on-disk pre-key identity (``bootstrap-<i>.json``)."""

    party: int
    n: int
    t: int
    group: SchnorrGroup
    signing_key: SigningKey
    channel_keys: dict[int, bytes]


def bootstrap_path(directory: str | pathlib.Path, party: int) -> pathlib.Path:
    return pathlib.Path(directory) / f"bootstrap-{party}.json"


def save_bootstrap(directory: str | pathlib.Path, bundle: BootstrapFile) -> pathlib.Path:
    data = {
        "version": 1,
        "party": bundle.party,
        "n": bundle.n,
        "t": bundle.t,
        "group": {
            "p": str(bundle.group.p),
            "q": str(bundle.group.q),
            "g": str(bundle.group.g),
        },
        "signing_key": str(bundle.signing_key.x),
        "channel_keys": {
            str(peer): key.hex() for peer, key in sorted(bundle.channel_keys.items())
        },
    }
    path = bootstrap_path(directory, bundle.party)
    keystore.atomic_write_text(path, json.dumps(data, indent=1))
    return path


def load_bootstrap(directory: str | pathlib.Path, party: int) -> BootstrapFile:
    try:
        data = json.loads(bootstrap_path(directory, party).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise keystore.KeystoreError(f"cannot read bootstrap bundle: {exc}") from exc
    group = SchnorrGroup(
        p=int(data["group"]["p"]),
        q=int(data["group"]["q"]),
        g=int(data["group"]["g"]),
    )
    return BootstrapFile(
        party=int(data["party"]),
        n=int(data["n"]),
        t=int(data["t"]),
        group=group,
        signing_key=SigningKey(group=group, x=int(data["signing_key"])),
        channel_keys={
            int(peer): bytes.fromhex(key)
            for peer, key in data.get("channel_keys", {}).items()
        },
    )


def provision_dkg_deployment(
    n: int,
    t: int,
    rng: random.Random,
    directory: str | pathlib.Path,
    clients: int = 1,
    group: SchnorrGroup | None = None,
) -> list[pathlib.Path]:
    """Operator-side provisioning for a dealerless cluster.

    Writes one ``bootstrap-<i>.json`` per server and the usual
    ``client-<id>.json`` channel bundles.  Unlike :func:`deal_system`,
    no threshold secret exists anywhere — compromising one bundle
    corrupts exactly one party.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    grp = group or small_group()
    parties = list(range(n))
    client_ids = [CLIENT_BASE + i for i in range(clients)]
    keyring = deal_channel_keys(parties + client_ids, rng)
    written = []
    for party in parties:
        bundle = BootstrapFile(
            party=party,
            n=n,
            t=t,
            group=grp,
            signing_key=keygen(rng, grp),
            channel_keys=keyring[party],
        )
        written.append(save_bootstrap(directory, bundle))
    for cid in client_ids:
        path = directory / f"client-{cid}.json"
        keystore.atomic_write_text(
            path, json.dumps(keystore.client_to_dict(cid, keyring[cid]), indent=1)
        )
        written.append(path)
    return written


def provision_joiner(
    directory: str | pathlib.Path, party: int, rng: random.Random
) -> BootstrapFile:
    """Provision a replica that will *join* a running cluster.

    The joiner gets an identity key (its verify key rides inside the
    signed ``Reconfigure`` op) and fresh channel keys with every known
    client — the existing client bundles are updated in place.  Channel
    keys with the current *members* need no provisioning at all: both
    sides derive them Diffie-Hellman style from identity keys
    (:func:`dh_channel_key`).
    """
    directory = pathlib.Path(directory)
    public = keystore.load_public(directory / "public.json")
    signing_key = keygen(rng, public.group)
    channel_keys: dict[int, bytes] = {}
    for path in sorted(directory.glob("client-*.json")):
        try:
            cid, existing = keystore.load_client(path)
        except keystore.KeystoreError:
            continue
        key = bytes(rng.getrandbits(8) for _ in range(32))
        channel_keys[cid] = key
        existing[party] = key
        keystore.atomic_write_text(
            path, json.dumps(keystore.client_to_dict(cid, existing), indent=1)
        )
    bundle = BootstrapFile(
        party=party,
        n=public.n + 1,
        t=getattr(public.quorum, "t", 0),
        group=public.group,
        signing_key=signing_key,
        channel_keys=channel_keys,
    )
    save_bootstrap(directory, bundle)
    return bundle


def dh_channel_key(group: SchnorrGroup, secret_x: int, peer_h: int) -> bytes:
    """Pairwise channel key from identity keys (hashed Diffie-Hellman).

    Both endpoints compute ``H(g^{xy})`` — the joiner from its secret
    and a member's public verify key, the member from its secret and
    the joiner's verify key carried in the ordered ``Reconfigure`` op.
    """
    return hash_bytes("dh-channel", pow(peer_h, secret_x, group.p))


# -- one server process -------------------------------------------------------------


class ReplicaHost:
    """One server: keystore + transport + protocol runtime + replica.

    Optional chaos surface:

    * ``faults`` — a :class:`~repro.net.transport.FaultPlan` injected
      into the transport (when ``None``, a plan serialized by the chaos
      engine as ``faults.json`` in the deployment directory is loaded
      automatically, so subprocess replicas pick up the scenario);
    * ``byzantine`` — host a corrupted party instead of an honest one
      (a behavior name understood by
      :func:`repro.net.chaos.byzantine_node`);
    * ``journal`` — append every executed operation to
      ``journal/exec-<party>.jsonl`` for the chaos safety checker;
    * checkpoints — when ``checkpoint_every > 0`` the delivered log is
      persisted (authenticated) every that-many executions and on
      graceful shutdown, and a restart with ``recover=True`` preloads
      it before asking peers for the tail.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        party: int,
        state_machine: StateMachine | None = None,
        causal: bool = False,
        seed: int | None = None,
        faults: FaultPlan | None = None,
        byzantine: str | None = None,
        journal: bool = False,
        checkpoint_every: int = 0,
        dkg_boot: bool = False,
        join: bool = False,
    ) -> None:
        directory = pathlib.Path(directory)
        self.directory = directory
        self.party = party
        self.mode = "dkg" if dkg_boot else "join" if join else "serve"
        if self.mode != "serve" and (byzantine is not None or causal):
            raise ValueError("dkg/join hosts must be honest, non-causal replicas")
        cluster = ClusterConfig.load(directory / CLUSTER_FILE)
        self.io_timeout = cluster.io_timeout
        self._abc_config = cluster.abc_config()
        self._state_machine = state_machine or KeyValueStore()
        self._causal = causal
        self.epoch = 0
        self._reshare_target: int | None = None
        # Set by the flush watchdog when a resharing neither completes
        # nor settles after retries: unlocks the stale-membership rescue
        # path (peers may have finished the epoch without us).
        self._reshare_stalled = False
        # The epoch as of this replica incarnation's *executed* history
        # (every replica replays from genesis, so this starts at 0 and
        # advances with each accepted Reconfigure, replayed or live).
        # During replay it lags self.epoch and selects the archived
        # configuration a historic op must be re-validated against.
        self._executed_epoch = 0
        # Set once this replica learns it was removed by an epoch it
        # missed: stops the resharing retry ladder from respawning.
        self._retired = False
        self._bootstrap: BootstrapFile | None = None
        # Signed membership votes for an epoch newer than ours, keyed
        # like the client's: (epoch, canonical public json) -> voters.
        self._stale_votes: dict[tuple[int, str], set[int]] = {}
        if self.mode == "serve":
            self.public = keystore.load_public(directory / "public.json")
            self.keys = keystore.load_party(
                directory / f"server-{party}.json", self.public
            )
            self.epoch = load_epoch(directory)
        elif self.mode == "dkg":
            bundle = load_bootstrap(directory, party)
            self._bootstrap = bundle
            self.public = dkg.BootstrapPublic(
                n=bundle.n, quorum=ThresholdQuorumSystem(n=bundle.n, t=bundle.t)
            )
            self.keys = dkg.BootstrapKeys(
                party=party,
                signing_key=bundle.signing_key,
                channel_keys=dict(bundle.channel_keys),
            )
        else:  # join a live cluster: previous epoch's public bundle
            bundle = load_bootstrap(directory, party)
            self._bootstrap = bundle
            self.public = keystore.load_public(directory / "public.json")
            self.epoch = load_epoch(directory)
            channel_keys = dict(bundle.channel_keys)
            for member, verify_key in self.public.verify_keys.items():
                channel_keys[member] = dh_channel_key(
                    self.public.group, bundle.signing_key.x, verify_key.h
                )
            self.keys = dkg.BootstrapKeys(
                party=party,
                signing_key=bundle.signing_key,
                channel_keys=channel_keys,
            )
        if faults is None:
            from .chaos import load_fault_plan  # lazy: chaos imports us

            faults = load_fault_plan(directory)
        self.network = TransportNetwork(
            party, cluster.addresses, self.keys.channel_keys, faults=faults
        )
        self.byzantine = byzantine
        self.checkpoint_status = "absent"
        self._checkpoint_every = checkpoint_every
        self._executions = 0
        self._journal = None
        seed = seed if seed is not None else party
        if byzantine is None:
            self.runtime: ProtocolRuntime | None = ProtocolRuntime(
                party, self.network, self.public, self.keys, seed=seed
            )
            self.network.attach(party, self.runtime)
            self.replica: Replica | None = None
            if self.mode == "serve":
                self.replica = Replica(
                    self._state_machine,
                    causal=causal,
                    abc_config=self._abc_config,
                )
                self._install_replica_hooks()
                self.runtime.spawn(epoch_service_session(self.epoch), self.replica)
        else:
            from .chaos import byzantine_node  # lazy: chaos imports us

            node, self.runtime, self.replica = byzantine_node(
                byzantine, self.network, party, self.public, self.keys,
                seed=seed, state_machine=self._state_machine,
                causal=causal,
            )
            self.network.attach(party, node)
            if self.replica is not None:
                self.replica.on_execute = self._on_execute
        if journal and byzantine is None:
            journal_dir = directory / "journal"
            journal_dir.mkdir(exist_ok=True)
            # "w": the journal is this incarnation's executed sequence;
            # recovery replays the full history into it, so truncating
            # keeps it a single consistent prefix-checkable log.
            self._journal = open(
                journal_dir / f"exec-{party}.jsonl", "w", encoding="utf-8"
            )

    def _install_replica_hooks(self) -> None:
        """Wire the host's observation and reconfiguration hooks into
        the (honest) replica instance."""
        assert self.replica is not None
        self.replica.on_execute = self._on_execute
        if self._causal:
            return  # reconfiguration requires the ordered plaintext path
        self.replica.intercept = self._intercept
        self.replica.on_membership_info = self._on_stale_info
        self.replica.membership_info = reconfig.signed_membership_info(
            self.party,
            self.epoch,
            keystore.public_to_dict(self.public),
            self.keys.signing_key,
            self.runtime.rng,
        )

    def _on_execute(self, request, result, rnd) -> None:
        self._executions += 1
        if self._journal is not None:
            self._journal.write(
                json.dumps(
                    {
                        "i": self._executions,
                        "client": request.client,
                        "nonce": request.nonce,
                        "op": list(request.operation),
                        "round": rnd,
                    }
                )
                + "\n"
            )
            self._journal.flush()
        if self._checkpoint_every and self._executions % self._checkpoint_every == 0:
            self.write_checkpoint()

    def write_checkpoint(self) -> pathlib.Path | None:
        """Persist the authenticated delivered log (honest hosts only)."""
        if self.replica is None or self.replica.causal or self.byzantine:
            return None
        return write_checkpoint(
            self.directory,
            self.party,
            self.keys.channel_keys,
            tuple(self.replica.abc.delivered_log),
            self.replica.abc.round,
        )

    async def start(self, recover: bool = False) -> None:
        await self.network.start()
        if self.mode == "dkg":
            self._start_dkg()
            return
        if self.mode == "join":
            self._start_join()
            return
        if recover and self.replica is not None:
            ctx = Context(self.runtime, epoch_service_session(self.epoch))
            loaded = load_checkpoint(
                self.directory, self.party, self.keys.channel_keys
            )
            # Host-owned startup state, written once before any handler
            # runs — not round/epoch-guarded protocol state.
            if loaded is not None:
                self.replica.preload_log(ctx, loaded[0])
                self.checkpoint_status = "loaded"  # repro: noqa-RL005 single-owner startup state
            elif checkpoint_path(self.directory, self.party).exists():
                # Present but unauthenticated/corrupted: reject it and
                # recover purely from peers.
                self.checkpoint_status = "rejected"  # repro: noqa-RL005 single-owner startup state
                self.network.trace.bump("chaos.checkpoint_rejected")
            self.replica.begin_recovery(ctx)

    # -- dealerless bootstrap (DKG) ------------------------------------------------

    def _start_dkg(self, attempt: int = 0) -> None:
        """Run the key-generation session; the replica spawns once the
        cluster's threshold keys exist.

        ``attempt`` indexes the retry ladder: a session that neither
        completes nor settles after its flush (the conditional-agreement
        stall of :mod:`repro.crypto.dkg`) is respawned under a fresh
        tag.  Every host walks the same ladder on the same
        ``io_timeout``-derived schedule, so attempts line up; earlier
        attempts stay spawned so a session that completed at *any* party
        can still complete late at the others.
        """
        bundle = self._bootstrap
        assert bundle is not None
        self._dkg_scheme = threshold_scheme(bundle.n, bundle.t, bundle.group.q)
        session = dkg.dkg_session("boot" if attempt == 0 else ("boot", attempt))
        if attempt:
            print(
                f"replica-dkg-retry party={self.party} attempt={attempt}",
                flush=True,
            )
        self.runtime.spawn(
            session,
            dkg.DistributedKeyGeneration(bundle.group, self._dkg_scheme),
            on_output=self._finish_dkg,
        )
        self._watch_flush(
            session,
            settled=lambda: self.replica is not None,
            retry=lambda: self._start_dkg(attempt + 1),
        )

    def _finish_dkg(self, output: object) -> None:
        if not isinstance(output, dkg.DkgOutput) or self.replica is not None:
            return  # malformed, or a slower retry attempt finishing late
        bundle = self._bootstrap
        assert bundle is not None
        quorum = ThresholdQuorumSystem(n=bundle.n, t=bundle.t)
        public = dkg.build_public_keys(
            bundle.group, self._dkg_scheme, quorum, bundle.n, output
        )
        keys = dkg.build_party_keys(
            self.party,
            public,
            bundle.signing_key,
            output,
            channel_keys=dict(bundle.channel_keys),
        )
        # Every qualified party writes the identical canonical public
        # bundle (atomic replace makes the concurrent writes safe) and
        # its own secret bundle; from here on the deployment directory
        # is indistinguishable from a dealer-provisioned one.
        keystore.atomic_write_text(
            self.directory / "public.json",
            json.dumps(keystore.public_to_dict(public), indent=1),
        )
        keystore.atomic_write_text(
            self.directory / f"server-{self.party}.json",
            json.dumps(keystore.party_to_dict(keys), indent=1),
        )
        save_epoch(self.directory, 0)
        self.public = public
        self.keys = keys
        self.runtime.public = public
        self.runtime.keys = keys
        self.replica = Replica(self._state_machine, abc_config=self._abc_config)
        self._install_replica_hooks()
        self.runtime.spawn(epoch_service_session(0), self.replica)
        qualified = ",".join(str(p) for p in output.qualified)
        print(f"replica-dkg party={self.party} qualified={qualified}", flush=True)

    # -- epoch-based reconfiguration -----------------------------------------------

    def _reshare_tag(self, attempt: int) -> object:
        """The session tag of one resharing attempt — identical at every
        participant (members and joiner walk the same retry ladder)."""
        return "reshare" if attempt == 0 else ("reshare", attempt)

    def _start_join(self, attempt: int = 0) -> None:
        """A joining replica participates in the resharing for the next
        epoch as a pure receiver; its replica spawns at the new epoch's
        session once the resharing completes."""
        public = self.public
        tolerance = getattr(public.quorum, "t", None)
        if tolerance is None:
            raise ValueError("joining requires a threshold quorum deployment")
        if self.party != public.n:
            raise ValueError(f"joiner must take the next free id {public.n}")
        target = self.epoch + 1
        new_n = public.n + 1
        new_scheme = threshold_scheme(new_n, tolerance, public.group.q)
        new_quorum = ThresholdQuorumSystem(n=new_n, t=tolerance)
        new_verify_keys = {
            member: key.h
            for member, key in public.verify_keys.items()
            if member < new_n
        }
        new_verify_keys[self.party] = self.keys.signing_key.verify_key.h
        protocol = dkg.VerifiableResharing(
            public.group,
            public.access_scheme,
            new_scheme,
            public.coin.verification,
            public.encryption.verification,
            tuple(range(new_n)),
            new_quorum,
            new_verify_keys,
        )
        session = dkg.reshare_session(target, self._reshare_tag(attempt))
        if attempt:
            print(
                f"replica-join-retry party={self.party} attempt={attempt}",
                flush=True,
            )
        self.runtime.spawn(
            session,
            protocol,
            on_output=lambda out: self._adopt_epoch(
                out, target, new_n, new_scheme, new_quorum
            ),
        )
        self._watch_flush(
            session,
            settled=lambda: self.epoch >= target or self._retired,
            retry=lambda: self._start_join(attempt + 1),
        )

    def _epoch_public(self, epoch: int):
        """The configuration of ``epoch``: the live one, or the archive
        written at the switch (``public-epoch-<e>.json``); ``None`` when
        the archive is unavailable (fresh disk / pre-archive history)."""
        if epoch == self.epoch:
            return self.public
        try:
            return keystore.load_public(
                self.directory / f"public-epoch-{epoch}.json"
            )
        except (keystore.KeystoreError, OSError):
            return None

    def _archive_epoch_public(self) -> None:
        """Persist the closing epoch's configuration before the keystore
        is overwritten, so a replay can re-validate that epoch's ordered
        ``Reconfigure`` operations exactly as they were validated live."""
        if isinstance(self.public, dkg.BootstrapPublic):
            return
        keystore.atomic_write_text(
            self.directory / f"public-epoch-{self.epoch}.json",
            json.dumps(keystore.public_to_dict(self.public), indent=1),
        )

    def _intercept(self, request, rnd: int, replaying: bool) -> object | None:
        """Replica hook: consume ``Reconfigure`` operations.

        The verdict must be a pure function of the agreed history,
        never of local timing, so that every honest replica records the
        same accept/reject result for the same ordered operation:

        * while a resharing is in flight, the replica's execution is
          *paused* (ordered requests queue in delivery order), so every
          operation behind an accepted ``Reconfigure`` executes at the
          new epoch on every replica — no replica ever validates it
          against an epoch another replica has already left;
        * a historic operation replayed during recovery is re-validated
          in full against the archived configuration of the epoch it
          was originally executed in, so an op that was rejected (bad
          signature, wrong party id, stale epoch) replays as rejected.

        The application state machine never sees the operation.
        """
        operation = request.operation
        parsed = reconfig.parse_reconfigure(operation)
        if parsed is None:
            return None  # an ordinary application operation
        if replaying and self._executed_epoch < self.epoch:
            # Historic change: recompute the original verdict against
            # that epoch's configuration.  The on-disk keystore already
            # reflects a later epoch, so accepting never re-triggers a
            # resharing.
            historic = self._epoch_public(self._executed_epoch)
            if historic is not None:
                accepted = (
                    reconfig.validate_reconfigure(
                        operation, historic, self._executed_epoch
                    )
                    is not None
                )
            else:
                # Archive lost (fresh disk, pre-archive history): fall
                # back to epoch ordinality — each accepted op opened
                # exactly the next epoch.
                accepted = parsed[0].epoch == self._executed_epoch + 1
            if not accepted:
                return ("reconfig", "rejected", self._executed_epoch)
            self._executed_epoch += 1
            return ("reconfig", "accepted", parsed[0].epoch)
        validated = reconfig.validate_reconfigure(operation, self.public, self.epoch)
        if validated is None:
            return ("reconfig", "rejected", self.epoch)
        # Valid for the *next* epoch — start (or, when replaying after a
        # kill mid-resharing, rejoin) the resharing session, and pause
        # ordered execution until the switch.  Peer contributions sent
        # while we were down are retransmitted by the transport and
        # buffered by the runtime, so a late spawn still completes.
        if self._start_reshare(validated):
            self._executed_epoch = validated.epoch
            self._reshare_target = validated.epoch
            self.replica.pause_execution()
        return ("reconfig", "accepted", validated.epoch)

    def _start_reshare(
        self, request: "reconfig.ReconfigureRequest", attempt: int = 0
    ) -> bool:
        """Spawn one resharing attempt for an accepted ``Reconfigure``;
        True when a session was actually started."""
        public = self.public
        group = public.group
        tolerance = getattr(public.quorum, "t", None)
        if tolerance is None:
            print(
                f"replica-reconfig-unsupported party={self.party} "
                "(non-threshold quorum)",
                flush=True,
            )
            return False
        target = request.epoch
        new_n = reconfig.new_member_count(public, request)
        new_scheme = threshold_scheme(new_n, tolerance, group.q)
        new_quorum = ThresholdQuorumSystem(n=new_n, t=tolerance)
        new_verify_keys = {
            member: key.h
            for member, key in public.verify_keys.items()
            if member < new_n
        }
        if request.action == "add":
            new_verify_keys[request.party] = request.verify_key
            # The joiner becomes reachable: address from the ordered op
            # (authoritative — an add that reuses a previously removed
            # id must not keep that id's stale address), channel key
            # derived Diffie-Hellman style from identities.
            joiner_key = dh_channel_key(
                group, self.keys.signing_key.x, request.verify_key
            )
            self.network.admit_peer(
                request.party, (request.host, request.port), joiner_key
            )
            # The reshare protocol masks the joiner's subshares with the
            # same pairwise key, so the keystore bundle needs it too.
            self.keys.channel_keys[request.party] = joiner_key
        removed = request.party if request.action == "remove" else None
        protocol = dkg.VerifiableResharing(
            group,
            public.access_scheme,
            new_scheme,
            public.coin.verification,
            public.encryption.verification,
            tuple(range(new_n)),
            new_quorum,
            new_verify_keys,
            self.keys.coin.subshares,
            self.keys.decryption.subshares,
        )
        session = dkg.reshare_session(target, self._reshare_tag(attempt))
        if attempt:
            print(
                f"replica-reshare-retry party={self.party} epoch={target} "
                f"attempt={attempt}",
                flush=True,
            )
            # Peers may have completed this epoch without us (divergent
            # flush): probe for their signed membership record so the
            # stale-adoption path can rescue this replica if so.
            self._reshare_stalled = True
            Context(self.runtime, epoch_service_session(self.epoch)).broadcast(
                reconfig.MembershipQuery(known_epoch=self.epoch)
            )
        if request.action == "remove" and request.party == self.party:
            # We are being retired: deal our contribution so the others
            # can reshare, but take no new keys.  We keep answering the
            # old epoch's session until the operator stops us; after the
            # switch our shares are useless against the re-randomized
            # verification values (tests/crypto/test_dkg.py proves it).
            self.runtime.spawn(session, protocol)
            if attempt == 0:
                print(
                    f"replica-departed party={self.party} epoch={target}",
                    flush=True,
                )
        else:
            self.runtime.spawn(
                session,
                protocol,
                on_output=lambda out: self._adopt_epoch(
                    out, target, new_n, new_scheme, new_quorum, removed=removed
                ),
            )
        self._watch_flush(
            session,
            # A departed replica never adopts ``target``; it settles by
            # learning (via the stale-membership probe) that it retired.
            settled=lambda: self.epoch >= target or self._retired,
            retry=lambda: self._start_reshare(request, attempt + 1),
        )
        return True

    def _adopt_epoch(
        self,
        output: object,
        target: int,
        new_n: int,
        new_scheme,
        new_quorum,
        removed: int | None = None,
    ) -> None:
        """Switch this replica to the new epoch's keys and session."""
        if not isinstance(output, dkg.DkgOutput) or self.epoch >= target:
            return  # malformed, or a slower retry attempt finishing late
        group = (
            self.public.group
            if not isinstance(self.public, dkg.BootstrapPublic)
            else self._bootstrap.group
        )
        new_public = dkg.build_public_keys(group, new_scheme, new_quorum, new_n, output)
        # Probe: a coin share from the *pre-switch* keys must fail under
        # the freshly randomized verification values (this is what makes
        # a departed replica's shares useless).
        stale_note = ""
        old_coin = getattr(self.keys, "coin", None)
        if old_coin is not None:
            try:
                stale = old_coin.share_for(("epoch-probe", target), self.runtime.rng)
                stale_note = (
                    f" stale_shares_valid={new_public.coin.verify_share(stale)}"
                )
            except (KeyError, ValueError):
                stale_note = " stale_shares_valid=False"
        new_keys = dkg.build_party_keys(
            self.party,
            new_public,
            self.keys.signing_key,
            output,
            channel_keys=dict(self.keys.channel_keys),
        )
        self._archive_epoch_public()
        keystore.atomic_write_text(
            self.directory / "public.json",
            json.dumps(keystore.public_to_dict(new_public), indent=1),
        )
        keystore.atomic_write_text(
            self.directory / f"server-{self.party}.json",
            json.dumps(keystore.party_to_dict(new_keys), indent=1),
        )
        save_epoch(self.directory, target)
        old_epoch = self.epoch
        old_session = epoch_service_session(old_epoch)
        info = reconfig.signed_membership_info(
            self.party,
            target,
            keystore.public_to_dict(new_public),
            self.keys.signing_key,
            self.runtime.rng,
        )
        self.public = new_public
        self.keys = new_keys
        self.runtime.public = new_public
        self.runtime.keys = new_keys
        self.epoch = target
        self._reshare_target = None
        self._reshare_stalled = False
        if removed is not None and removed != self.party:
            # The ordered remove is final: drop the departed peer's
            # address, channel key and connection state so a later add
            # reusing the id starts clean (and broadcasts stop dialing
            # a dead replica).
            self.network.forget_peer(removed)
        # Close every prior epoch: the current session's replica becomes
        # a tombstone, and older tombstones learn the newest record.
        joined = self.replica is None
        self.runtime.instances.pop(old_session, None)
        self.runtime.spawn(old_session, EpochTombstone(info))
        for epoch in range(old_epoch):
            stale_session = epoch_service_session(epoch)
            instance = self.runtime.instances.get(stale_session)
            if isinstance(instance, EpochTombstone):
                instance.info = info
        if joined:
            self.replica = Replica(self._state_machine, abc_config=self._abc_config)
        self._install_replica_hooks()
        new_session = epoch_service_session(target)
        self.runtime.spawn(new_session, self.replica)
        if not joined:
            # Rounds in flight when the old session was tombstoned can
            # never decide there; re-propose their payloads here so the
            # broadcast does not wedge behind a dead round.
            self.replica.rebase_broadcast(Context(self.runtime, new_session))
        # Release everything ordered behind the Reconfigure: it executes
        # now, at the new epoch, in delivery order — the same point of
        # the history at every replica.
        self.replica.resume_execution(Context(self.runtime, new_session))
        print(
            f"replica-epoch party={self.party} epoch={target} n={new_n}{stale_note}",
            flush=True,
        )
        if joined:
            # State transfer from the checkpointed history (Section 6)
            # on the new epoch's session.
            self.replica.begin_recovery(Context(self.runtime, new_session))
            task = asyncio.get_running_loop().create_task(_announce_recovery(self))
            task.add_done_callback(lambda t: t.cancelled() or t.exception())

    def _on_stale_info(self, sender: int, info: object) -> None:
        """A RecoverQuery we sent came back with the signed membership
        record of a newer epoch: the cluster moved on while this replica
        was down.  Adopt once an honest-containing set of *currently
        trusted* members signed the identical record — the same trust
        chain clients use (identity keys persist across epochs).

        While a resharing is in flight the votes are ignored — unless
        the flush watchdog marked it stalled, in which case the peers
        may have completed the epoch without us and this is the way
        back in (degraded: our share material missed the refresh)."""
        if self.replica is None:
            return
        if self._reshare_target is not None and not self._reshare_stalled:
            return
        if not reconfig.verify_membership_info(info, self.public):
            return
        if info.epoch <= self.epoch:
            return
        votes = self._stale_votes.setdefault(
            (info.epoch, info.public_json), set()
        )
        votes.add(sender)
        if not self.public.quorum.contains_honest(frozenset(votes)):
            return
        try:
            new_public = keystore.public_from_dict(json.loads(info.public_json))
        except (ValueError, KeyError, TypeError):
            return
        self._stale_votes.clear()
        self._adopt_stale(info.epoch, new_public)

    def _adopt_stale(self, target: int, new_public) -> None:
        """Rejoin at a newer epoch whose resharing we missed entirely.

        Our threshold share material predates the re-randomization, so
        it stays useless until the next refresh epoch; identity and
        channel keys persist, though, so the replica still
        authenticates, orders, executes and state-transfers — degraded
        but consistent rather than stalled at a dead session.
        """
        if self.party >= new_public.n:
            # The epoch we missed removed us.  Stop the retry ladder —
            # the peers will never spawn our resharing session.
            self._retired = True
            self._reshare_target = None
            self._reshare_stalled = False
            print(f"replica-retired party={self.party} epoch={target}", flush=True)
            return
        # Channel keys for members admitted while we were down derive
        # from identity keys, Diffie-Hellman style (same construction
        # the resharing used).
        for member, verify_key in new_public.verify_keys.items():
            if member not in self.keys.channel_keys and member != self.party:
                key = dh_channel_key(
                    new_public.group, self.keys.signing_key.x, verify_key.h
                )
                self.keys.channel_keys[member] = key
                self.network.channel_keys[member] = key
        new_keys = keystore.party_from_dict(
            keystore.party_to_dict(self.keys), new_public
        )
        # Keep the superseded configuration for journal-replay
        # re-validation (epochs we skipped have no archive; replay
        # falls back to ordinal checking for those).
        self._archive_epoch_public()
        keystore.atomic_write_text(
            self.directory / "public.json",
            json.dumps(keystore.public_to_dict(new_public), indent=1),
        )
        save_epoch(self.directory, target)
        old_epoch = self.epoch
        old_session = epoch_service_session(old_epoch)
        info = reconfig.signed_membership_info(
            self.party,
            target,
            keystore.public_to_dict(new_public),
            self.keys.signing_key,
            self.runtime.rng,
        )
        self.public = new_public
        self.keys = new_keys
        self.runtime.public = new_public
        self.runtime.keys = new_keys
        self.epoch = target
        self._reshare_target = None
        self._reshare_stalled = False
        # Members the missed epochs retired: drop their channels and
        # addresses so a later add may reuse the id with a clean slate.
        for member in sorted(self.network.addresses):
            if member >= new_public.n and member != self.party:
                self.network.forget_peer(member)
        self.runtime.instances.pop(old_session, None)
        self.runtime.spawn(old_session, EpochTombstone(info))
        for epoch in range(old_epoch):
            stale_session = epoch_service_session(epoch)
            instance = self.runtime.instances.get(stale_session)
            if isinstance(instance, EpochTombstone):
                instance.info = info
        self._install_replica_hooks()
        new_session = epoch_service_session(target)
        self.runtime.spawn(new_session, self.replica)
        # Rounds in flight at the tombstoned session can never decide
        # there; re-propose their payloads under the adopted session.
        self.replica.rebase_broadcast(Context(self.runtime, new_session))
        # Operations queued behind the stalled reshare execute now,
        # under the epoch the cluster actually agreed on.
        self.replica.resume_execution(Context(self.runtime, new_session))
        print(
            f"replica-stale-epoch party={self.party} epoch={target} "
            f"n={new_public.n}",
            flush=True,
        )
        # State transfer on the new session fills in everything ordered
        # while we were away.
        self.replica.begin_recovery(Context(self.runtime, new_session))
        task = asyncio.get_running_loop().create_task(_announce_recovery(self))
        task.add_done_callback(lambda t: t.cancelled() or t.exception())

    def _watch_flush(
        self,
        session: SessionId,
        settled: Callable[[], bool] | None = None,
        retry: Callable[[], None] | None = None,
    ) -> None:
        """Liveness hatch for a bootstrap/resharing session.

        Flushing is a one-shot, idempotent escape hatch — it only expels
        contributors that never delivered — and execution is paused for
        the whole reshare, so the service is unavailable until the
        session settles.  The flush therefore fires after an eighth of
        the deployment I/O budget (scaled, never capped: slow links and
        large n stretch it proportionally) so a crashed contributor
        costs availability on the order of seconds, not the full
        budget.  Uncoordinated flushes can still settle hosts on
        divergent qualified sets — conditional agreement then leaves
        the session with no ready quorum.  So once a full I/O budget
        has passed in silence the `retry` callback respawns the
        protocol under a fresh session tag, exactly as dkg.py
        prescribes; every host runs the same clock so the ladders
        stay aligned.  `settled` reports success recorded outside the
        session result (e.g. the epoch already adopted)."""

        def is_settled() -> bool:
            if self.runtime is None or self.runtime.result(session) is not None:
                return True
            return settled is not None and settled()

        async def watch() -> None:
            await asyncio.sleep(self.io_timeout / 8)
            if is_settled():
                return
            instance = self.runtime.instances.get(session)
            flush = getattr(instance, "flush", None)
            if flush is not None:
                flush(Context(self.runtime, session))
            if retry is None:
                return
            await asyncio.sleep(self.io_timeout * 7 / 8)
            if is_settled():
                return
            retry()

        task = asyncio.get_running_loop().create_task(watch())
        task.add_done_callback(lambda t: t.cancelled() or t.exception())

    async def close(self) -> None:
        await self.network.close()
        if self._journal is not None:
            self._journal.close()
            self._journal = None  # repro: noqa-RL005 idempotent shutdown, single owner


async def serve_replica(
    directory: str | pathlib.Path,
    party: int,
    recover: bool = False,
    causal: bool = False,
    byzantine: str | None = None,
    journal: bool = False,
    checkpoint_every: int = 0,
    dkg_boot: bool = False,
    join: bool = False,
) -> int:
    """Run one replica until SIGTERM/SIGINT; prints a parseable final
    state line (the demo cluster checks it to verify recovery)."""
    host = ReplicaHost(
        directory, party, causal=causal, byzantine=byzantine,
        journal=journal, checkpoint_every=checkpoint_every,
        dkg_boot=dkg_boot, join=join,
    )
    await host.start(recover=recover)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    address = host.network.listen_address
    print(
        f"replica {party} listening on {address[0]}:{address[1]}"
        + (" (recovering)" if recover else ""),
        flush=True,
    )
    if recover:
        print(
            f"replica-checkpoint party={party} status={host.checkpoint_status}",
            flush=True,
        )
    if recover and host.replica is not None:
        task = loop.create_task(_announce_recovery(host))
        task.add_done_callback(lambda t: t.cancelled() or t.exception())
    # Bounded by SIGTERM from the operator, not by wall clock: a
    # replica serves until told to stop.
    await stop.wait()  # repro: noqa-RL005 runs-until-signalled by design
    if host.replica is not None:
        if checkpoint_every:
            host.write_checkpoint()
        snapshot = host.replica.state_machine.snapshot()
        stats = host.replica.abc.stats()
        print(
            f"replica-abc-stats party={party} "
            f"rounds={stats['rounds']:.0f} "
            f"delivered={stats['delivered']:.0f} "
            f"mean_batch={stats['mean_batch']:.3f} "
            f"occupancy={stats['pipeline_occupancy']:.3f}",
            flush=True,
        )
        print(
            f"replica-final party={party} executed={len(host.replica.executed)} "
            f"snapshot={snapshot!r}",
            flush=True,
        )
    else:
        print(f"replica-final party={party} byzantine={byzantine}", flush=True)
    await host.close()
    return 0


async def _announce_recovery(host: ReplicaHost) -> None:
    """Print a parseable line once Section-6 state transfer finishes
    (the demo cluster waits for it before declaring success)."""
    while host.replica.recovering:
        await asyncio.sleep(0.05)
    print(
        f"replica-recovered party={host.party} "
        f"executed={len(host.replica.executed)}",
        flush=True,
    )


# -- a client process ---------------------------------------------------------------


async def run_client_ops(
    directory: str | pathlib.Path,
    operations: list[tuple],
    client_id: int = CLIENT_BASE,
    timeout: float = 60.0,
) -> list[object]:
    """Submit operations over TCP, one at a time; returns their results."""
    directory = pathlib.Path(directory)
    public = keystore.load_public(directory / "public.json")
    cid, channel_keys = keystore.load_client(directory / f"client-{client_id}.json")
    cluster = ClusterConfig.load(directory / CLUSTER_FILE)
    network = TransportNetwork(cid, cluster.addresses, channel_keys)
    client = ServiceClient(
        cid, network, public, random.Random(), epoch=load_epoch(directory)
    )
    network.attach(cid, client)
    await network.start()
    try:
        results: list[object] = []
        for operation in operations:
            nonce = client.submit(operation)
            await network.wait_until(
                lambda: nonce in client.completed, timeout=timeout
            )
            results.append(client.completed[nonce].result)
        return results
    finally:
        await network.close()


async def submit_reconfigure(
    directory: str | pathlib.Path,
    action: str,
    signer: int = 0,
    party: int = -1,
    verify_key: int = 0,
    host: str = "",
    port: int = 0,
    client_id: int = CLIENT_BASE,
    timeout: float = 60.0,
    rng: random.Random | None = None,
) -> object:
    """Operator entry point: sign a ``Reconfigure`` op with a member's
    identity key from the deployment directory and order it through the
    live cluster.  Returns the agreed result tuple."""
    directory = pathlib.Path(directory)
    rng = rng or random.Random()
    public = keystore.load_public(directory / "public.json")
    signing_key = keystore.load_party(
        directory / f"server-{signer}.json", public
    ).signing_key
    epoch = load_epoch(directory) + 1
    if action == "remove" and party < 0:
        party = public.n - 1
    operation = reconfig.reconfigure_operation(
        action,
        epoch,
        signer,
        signing_key,
        rng,
        party=party,
        verify_key=verify_key,
        host=host,
        port=port,
    )
    results = await run_client_ops(
        directory, [operation], client_id=client_id, timeout=timeout
    )
    return results[0]


# -- the demo cluster ---------------------------------------------------------------


def _replica_env() -> dict[str, str]:
    """Child processes must be able to ``import repro`` exactly like us."""
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


class _ReplicaProcess:
    """A spawned ``repro run-replica`` subprocess with captured output."""

    def __init__(
        self,
        proc: asyncio.subprocess.Process,
        party: int,
        io_timeout: float = DEFAULT_IO_TIMEOUT,
    ) -> None:
        self.proc = proc
        self.party = party
        self.io_timeout = io_timeout
        self.lines: list[str] = []
        task = asyncio.get_running_loop().create_task(self._drain())
        task.add_done_callback(lambda t: t.cancelled() or t.exception())
        self._task = task

    async def _drain(self) -> None:
        assert self.proc.stdout is not None
        while True:
            # Terminates on child exit (EOF), not on a deadline — the
            # drain must outlive any pause/partition the child is under.
            raw = await self.proc.stdout.readline()  # repro: noqa-RL005 EOF-bounded pipe drain
            if not raw:
                return
            line = raw.decode(errors="replace").rstrip()
            self.lines.append(line)
            print(f"  [replica {self.party}] {line}", flush=True)

    async def wait_for_line(self, needle: str, timeout: float | None = None) -> str:
        """Block until a captured stdout line contains ``needle``.

        The deadline defaults to the deployment's configured
        ``ClusterConfig.io_timeout`` (threaded through at spawn time)
        rather than a hardcoded constant.
        """
        if timeout is None:
            timeout = self.io_timeout
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            for line in self.lines:
                if needle in line:
                    return line
            if self.proc.returncode is not None:
                raise TransportError(
                    f"replica {self.party} exited before printing {needle!r}"
                )
            if asyncio.get_running_loop().time() > deadline:
                raise TransportError(
                    f"replica {self.party} never printed {needle!r}"
                )
            await asyncio.sleep(0.05)

    async def stop(self, grace: float = 15.0) -> None:
        if self.proc.returncode is None:
            self.proc.terminate()
            try:
                await asyncio.wait_for(self.proc.wait(), grace)
            except asyncio.TimeoutError:
                self.proc.kill()
                await self.proc.wait()  # repro: noqa-RL005 SIGKILL already sent; exit is certain
        await self._task

    async def kill(self) -> None:
        """Crash the replica (no grace, no cleanup) — the fault model."""
        if self.proc.returncode is None:
            self.proc.kill()
            await self.proc.wait()  # repro: noqa-RL005 SIGKILL already sent; exit is certain
        await self._task

    def suspend(self) -> None:
        """SIGSTOP: the process freezes mid-whatever — from the cluster's
        point of view, an arbitrarily slow (but not crashed) replica."""
        if self.proc.returncode is None:
            self.proc.send_signal(signal.SIGSTOP)

    def resume(self) -> None:
        """SIGCONT after :meth:`suspend`."""
        if self.proc.returncode is None:
            self.proc.send_signal(signal.SIGCONT)


async def _spawn_replica(
    directory: pathlib.Path,
    party: int,
    recover: bool = False,
    byzantine: str | None = None,
    journal: bool = False,
    checkpoint_every: int = 0,
    io_timeout: float = DEFAULT_IO_TIMEOUT,
    dkg_boot: bool = False,
    join: bool = False,
) -> _ReplicaProcess:
    command = [
        sys.executable, "-m", "repro", "run-replica",
        "--dir", str(directory), "--party", str(party),
    ]
    if recover:
        command.append("--recover")
    if dkg_boot:
        command.append("--dkg")
    if join:
        command.append("--join")
    if byzantine:
        command.extend(["--byzantine", byzantine])
    if journal:
        command.append("--journal")
    if checkpoint_every:
        command.extend(["--checkpoint-every", str(checkpoint_every)])
    proc = await asyncio.create_subprocess_exec(
        *command,
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.STDOUT,
        env=_replica_env(),
    )
    return _ReplicaProcess(proc, party, io_timeout=io_timeout)


async def _submit_and_await(
    network: TransportNetwork,
    client: ServiceClient,
    operations: list[tuple],
    timeout: float,
) -> list[object]:
    results: list[object] = []
    for operation in operations:
        nonce = client.submit(operation)
        await network.wait_until(lambda: nonce in client.completed, timeout=timeout)
        result = client.completed[nonce].result
        print(f"  client: {operation!r} -> {result!r}", flush=True)
        results.append(result)
    return results


async def _demo_cluster(
    n: int, t: int, seed: int, directory: pathlib.Path, timeout: float
) -> int:
    rng = random.Random(seed)
    print(f"dealing keys for n={n}, t={t} (plus one client identity)", flush=True)
    keys = deal_system(n, rng, t=t, clients=1, group=small_group())
    keystore.write_deployment(keys, directory)
    addresses = allocate_addresses(list(range(n)) + [CLIENT_BASE])
    ClusterConfig(addresses, io_timeout=timeout).save(directory / CLUSTER_FILE)

    print(f"spawning {n} replica processes", flush=True)
    replicas = {
        party: await _spawn_replica(directory, party, io_timeout=timeout)
        for party in range(n)
    }
    public = keystore.load_public(directory / "public.json")
    cid, channel_keys = keystore.load_client(
        directory / f"client-{CLIENT_BASE}.json"
    )
    network = TransportNetwork(cid, addresses, channel_keys)
    client = ServiceClient(cid, network, public, random.Random(seed + 99))
    network.attach(cid, client)
    await network.start()
    victim = n - 1
    try:
        print("phase A: 3 writes with the full cluster", flush=True)
        phase_a = [("set", f"key-{i}", i) for i in range(3)]
        await _submit_and_await(network, client, phase_a, timeout)

        print(f"killing replica {victim} (SIGKILL, no warning)", flush=True)
        await replicas[victim].kill()

        print(f"phase B: 2 writes with {n - 1} replicas", flush=True)
        phase_b = [("set", f"key-{i}", i) for i in range(3, 5)]
        await _submit_and_await(network, client, phase_b, timeout)

        print(f"restarting replica {victim} with --recover", flush=True)
        replicas[victim] = await _spawn_replica(
            directory, victim, recover=True, io_timeout=timeout
        )
        await replicas[victim].wait_for_line("listening", timeout)

        print("phase C: 1 write + 1 read with the recovered cluster", flush=True)
        phase_c = [("set", "key-5", 5), ("get", "key-0")]
        results = await _submit_and_await(network, client, phase_c, timeout)
        if results[-1] != ("value", 0):
            print("demo-cluster: FAILED (read returned the wrong value)")
            return 1

        # State transfer (Section 6) runs concurrently with phase C;
        # wait for the restarted replica to announce it has caught up
        # before asking everyone for their final snapshot.
        await replicas[victim].wait_for_line("replica-recovered", timeout)

        print("stopping the cluster (SIGTERM)", flush=True)
        for party in sorted(replicas):
            await replicas[party].stop()

        # The restarted replica must have replayed the history it
        # missed: every key from every phase in its final snapshot.
        final = next(
            (line for line in replicas[victim].lines if "replica-final" in line), ""
        )
        missing = [f"key-{i}" for i in range(6) if f"key-{i}" not in final]
        if not final or missing:
            print(f"demo-cluster: FAILED (replica {victim} did not recover "
                  f"{missing or 'at all'})")
            return 1
        print(f"demo-cluster: ok (replica {victim} recovered the full history)")
        return 0
    finally:
        for process in replicas.values():
            await process.kill()
        await network.close()


async def _demo_cluster_dkg(
    n: int, t: int, seed: int, directory: pathlib.Path, timeout: float
) -> int:
    """Dealerless demo: boot via DKG, then reconfigure the live cluster
    n -> n+1 -> n (add a member, then remove it) without stopping."""
    rng = random.Random(seed)
    joiner = n
    print(f"provisioning bootstrap identities for n={n}, t={t} (NO dealer)",
          flush=True)
    provision_dkg_deployment(n, t, rng, directory, clients=1, group=small_group())
    addresses = allocate_addresses(list(range(n + 1)) + [CLIENT_BASE])
    joiner_addr = addresses.pop(joiner)
    ClusterConfig(dict(addresses), io_timeout=timeout).save(
        directory / CLUSTER_FILE
    )

    print(f"spawning {n} replicas with --dkg (distributed key generation)",
          flush=True)
    replicas = {
        party: await _spawn_replica(
            directory, party, dkg_boot=True, io_timeout=timeout
        )
        for party in range(n)
    }
    for party in range(n):
        line = await replicas[party].wait_for_line("replica-dkg", timeout)
        print(f"  {line}", flush=True)

    public = keystore.load_public(directory / "public.json")
    cid, channel_keys = keystore.load_client(
        directory / f"client-{CLIENT_BASE}.json"
    )
    network = TransportNetwork(cid, dict(addresses), channel_keys)
    client = ServiceClient(cid, network, public, random.Random(seed + 99))
    network.attach(cid, client)
    await network.start()
    operator_rng = random.Random(seed + 7)
    try:
        print("phase A: 3 writes against the DKG-generated keys", flush=True)
        phase_a = [("set", f"key-{i}", i) for i in range(3)]
        await _submit_and_await(network, client, phase_a, timeout)

        print(f"provisioning joiner {joiner} and spawning it with --join",
              flush=True)
        bundle = provision_joiner(directory, joiner, operator_rng)
        addresses[joiner] = joiner_addr
        ClusterConfig(dict(addresses), io_timeout=timeout).save(
            directory / CLUSTER_FILE
        )
        # The running client learns the joiner's address and its fresh
        # channel key (provision_joiner rewrote the client bundle).
        _, refreshed_keys = keystore.load_client(
            directory / f"client-{CLIENT_BASE}.json"
        )
        network.addresses[joiner] = joiner_addr
        network.channel_keys[joiner] = refreshed_keys[joiner]
        replicas[joiner] = await _spawn_replica(
            directory, joiner, join=True, io_timeout=timeout
        )

        print(f"submitting ordered Reconfigure(add, party={joiner}) -> epoch 1",
              flush=True)
        signer_keys = keystore.load_party(directory / "server-0.json", public)
        add_op = reconfig.reconfigure_operation(
            "add", 1, 0, signer_keys.signing_key, operator_rng,
            party=joiner,
            verify_key=bundle.signing_key.verify_key.h,
            host=joiner_addr[0], port=joiner_addr[1],
        )
        results = await _submit_and_await(network, client, [add_op], timeout)
        if results[0] != ("reconfig", "accepted", 1):
            print("demo-cluster: FAILED (add operation rejected)")
            return 1
        for party in range(n + 1):
            line = await replicas[party].wait_for_line("replica-epoch", timeout)
            print(f"  {line}", flush=True)
        await replicas[joiner].wait_for_line("replica-recovered", timeout)
        print(f"  replica {joiner} joined epoch 1 and state-transferred",
              flush=True)

        print(f"phase B: 2 writes with n={n + 1} (client refetches membership)",
              flush=True)
        phase_b = [("set", f"key-{i}", i) for i in range(3, 5)]
        await _submit_and_await(network, client, phase_b, timeout)
        if client.epoch != 1:
            print("demo-cluster: FAILED (client never adopted epoch 1)")
            return 1

        print(f"submitting ordered Reconfigure(remove, party={joiner}) -> epoch 2",
              flush=True)
        public = keystore.load_public(directory / "public.json")
        signer_keys = keystore.load_party(directory / "server-0.json", public)
        remove_op = reconfig.reconfigure_operation(
            "remove", 2, 0, signer_keys.signing_key, operator_rng, party=joiner
        )
        results = await _submit_and_await(network, client, [remove_op], timeout)
        if results[0] != ("reconfig", "accepted", 2):
            print("demo-cluster: FAILED (remove operation rejected)")
            return 1
        stale_ok = True
        for party in range(n):
            line = await replicas[party].wait_for_line(
                f"replica-epoch party={party} epoch=2", timeout
            )
            print(f"  {line}", flush=True)
            stale_ok = stale_ok and "stale_shares_valid=False" in line
        if not stale_ok:
            print("demo-cluster: FAILED (departed replica's shares still "
                  "verify in epoch 2)")
            return 1
        line = await replicas[joiner].wait_for_line("replica-departed", timeout)
        print(f"  {line}", flush=True)
        print(f"stopping departed replica {joiner}", flush=True)
        await replicas[joiner].stop()

        print(f"phase C: 1 write + 1 read back at n={n} (epoch 2)", flush=True)
        phase_c = [("set", "key-5", 5), ("get", "key-0")]
        results = await _submit_and_await(network, client, phase_c, timeout)
        if results[-1] != ("value", 0):
            print("demo-cluster: FAILED (read returned the wrong value)")
            return 1
        if client.epoch != 2 or client.epoch_refreshes < 2:
            print("demo-cluster: FAILED (client did not follow both epochs)")
            return 1

        print("stopping the cluster (SIGTERM)", flush=True)
        for party in range(n):
            await replicas[party].stop()
        for party in range(n):
            final = next(
                (l for l in replicas[party].lines if "replica-final" in l), ""
            )
            missing = [f"key-{i}" for i in range(6) if f"key-{i}" not in final]
            if not final or missing:
                print(f"demo-cluster: FAILED (replica {party} final state "
                      f"missing {missing or 'everything'})")
                return 1
        print(f"demo-cluster: ok (dealerless boot, live {n}->{n + 1}->{n} "
              f"reconfiguration, epochs 0..2)")
        return 0
    finally:
        for process in replicas.values():
            await process.kill()
        await network.close()


def demo_cluster(
    n: int = 4,
    t: int = 1,
    seed: int = 0,
    directory: str | pathlib.Path | None = None,
    keep: bool = False,
    timeout: float = 60.0,
    dkg: bool = False,
) -> int:
    """Run the end-to-end TCP cluster demo; returns a process exit code."""
    created = directory is None
    workdir = pathlib.Path(directory or tempfile.mkdtemp(prefix="repro-cluster-"))
    workdir.mkdir(parents=True, exist_ok=True)
    runner = _demo_cluster_dkg if dkg else _demo_cluster
    try:
        return asyncio.run(runner(n, t, seed, workdir, timeout))
    finally:
        if created and not keep:
            shutil.rmtree(workdir, ignore_errors=True)
        elif keep:
            print(f"cluster state kept in {workdir}")
