"""Process hosts for the TCP transport: replicas, clients, clusters.

Where :mod:`repro.net.transport` provides the authenticated links, this
module provides the *deployment shape* around them:

* :class:`ReplicaHost` — one server process: keystore bundles from
  disk, a :class:`~repro.net.transport.TransportNetwork`, the
  :class:`~repro.core.runtime.ProtocolRuntime` and the service
  :class:`~repro.smr.replica.Replica`, with graceful SIGTERM shutdown
  and optional Section-6 crash recovery on startup.
* :func:`run_client_ops` — a client process: submits operations over
  TCP and awaits the threshold-signed answers.
* :func:`demo_cluster` — spawns an ``n``-server cluster in
  subprocesses, drives a client workload end-to-end, kills and restarts
  one replica mid-run, and verifies the restarted replica recovered the
  full history.

Everything here is the operational counterpart of
:func:`repro.smr.service.build_service`, which wires the same objects
to the deterministic simulator instead.  See ``docs/DEPLOYMENT.md``.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import json
import os
import pathlib
import random
import shutil
import signal
import socket
import sys
import tempfile
from dataclasses import dataclass

from ..core.atomic_broadcast import AbcConfig
from ..core.protocol import Context
from ..core.runtime import ProtocolRuntime
from ..crypto import keystore
from ..crypto.dealer import CLIENT_BASE, deal_system
from ..crypto.groups import small_group
from ..smr.client import ServiceClient
from ..smr.replica import Replica, service_session
from ..smr.state_machine import KeyValueStore, StateMachine
from .transport import FaultPlan, TransportError, TransportNetwork

__all__ = [
    "CLUSTER_FILE",
    "DEFAULT_IO_TIMEOUT",
    "ClusterConfig",
    "ReplicaHost",
    "allocate_addresses",
    "checkpoint_path",
    "demo_cluster",
    "load_checkpoint",
    "run_client_ops",
    "serve_replica",
    "write_checkpoint",
]

CLUSTER_FILE = "cluster.json"

# Default bound on every "wait for the cluster to say something" loop.
# Configurable per deployment through ``ClusterConfig.io_timeout`` (and
# ``demo-cluster --io-timeout`` / chaos scenarios), because 30s is
# plenty on a laptop but flaky on a loaded CI machine or under
# injected faults.
DEFAULT_IO_TIMEOUT = 30.0


# -- cluster topology on disk -------------------------------------------------------


@dataclass(frozen=True)
class ClusterConfig:
    """The operational shape of a deployed cluster: the address map
    (party id -> host, port) plus the deployment-wide I/O deadline
    every process-level wait inherits."""

    addresses: dict[int, tuple[str, int]]
    io_timeout: float = DEFAULT_IO_TIMEOUT
    # Atomic-broadcast throughput knobs (docs/PERFORMANCE.md).  ``None``
    # means the protocol default — older cluster.json files load fine.
    abc_max_batch: int | None = None
    abc_max_batch_bytes: int | None = None
    abc_pipeline_depth: int | None = None

    def save(self, path: str | pathlib.Path) -> None:
        data = {
            "addresses": {
                str(party): [host, port]
                for party, (host, port) in sorted(self.addresses.items())
            },
            "io_timeout": self.io_timeout,
        }
        for knob in ("abc_max_batch", "abc_max_batch_bytes", "abc_pipeline_depth"):
            value = getattr(self, knob)
            if value is not None:
                data[knob] = value
        pathlib.Path(path).write_text(json.dumps(data, indent=1))

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "ClusterConfig":
        data = json.loads(pathlib.Path(path).read_text())

        def knob(name: str) -> int | None:
            value = data.get(name)
            return int(value) if value is not None else None

        return cls(
            addresses={
                int(party): (str(entry[0]), int(entry[1]))
                for party, entry in data["addresses"].items()
            },
            io_timeout=float(data.get("io_timeout", DEFAULT_IO_TIMEOUT)),
            abc_max_batch=knob("abc_max_batch"),
            abc_max_batch_bytes=knob("abc_max_batch_bytes"),
            abc_pipeline_depth=knob("abc_pipeline_depth"),
        )

    def abc_config(self) -> "AbcConfig | None":
        """The :class:`AbcConfig` these knobs describe, or None for the
        protocol defaults."""
        overrides = {
            field_name: value
            for field_name, value in (
                ("max_batch", self.abc_max_batch),
                ("max_batch_bytes", self.abc_max_batch_bytes),
                ("pipeline_depth", self.abc_pipeline_depth),
            )
            if value is not None
        }
        if not overrides:
            return None
        return AbcConfig(**overrides)


def allocate_addresses(
    parties: list[int], host: str = "127.0.0.1"
) -> dict[int, tuple[str, int]]:
    """Pick a free localhost port per party (all sockets held open until
    every port is chosen, to avoid handing out the same one twice)."""
    sockets: list[socket.socket] = []
    addresses: dict[int, tuple[str, int]] = {}
    try:
        for party in parties:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind((host, 0))
            sockets.append(sock)
            addresses[party] = (host, sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return addresses


# -- authenticated local checkpoints ------------------------------------------------
#
# A replica's delivered log is periodically persisted so a restart can
# replay most of its history from disk and only fetch the tail from
# peers (Section 6 recovery stays the source of truth).  The file is
# *authenticated*: the paper's adversary may control the machine
# between crash and restart, so an unauthenticated snapshot would let
# it rewrite history.  The MAC key is derived from the party's full
# channel keyring — forging a checkpoint requires compromising the
# party's entire key material, at which point it is simply corrupted.
# A checkpoint that fails authentication (or fails to parse) is
# REJECTED and recovery falls back to pure peer state transfer; the
# chaos engine's corrupted-snapshot fault asserts exactly this.


def checkpoint_path(directory: str | pathlib.Path, party: int) -> pathlib.Path:
    return pathlib.Path(directory) / f"checkpoint-{party}.json"


def _checkpoint_key(party: int, channel_keys: dict[int, bytes]) -> bytes:
    material = [b"repro-checkpoint-v1", party.to_bytes(8, "big")]
    for peer in sorted(channel_keys):
        material.append(peer.to_bytes(8, "big"))
        material.append(channel_keys[peer])
    return hashlib.sha256(b"".join(material)).digest()


def write_checkpoint(
    directory: str | pathlib.Path,
    party: int,
    channel_keys: dict[int, bytes],
    entries: tuple,
    round_number: int,
) -> pathlib.Path:
    """Atomically persist the delivered log with an HMAC over its
    canonical wire encoding."""
    from . import wire

    body = wire.dumps((tuple(entries), round_number))
    mac = hmac.new(_checkpoint_key(party, channel_keys), body, hashlib.sha256)
    path = checkpoint_path(directory, party)
    data = json.dumps(
        {"party": party, "body": body.hex(), "mac": mac.hexdigest()}
    )
    tmp = path.with_suffix(".tmp")
    tmp.write_text(data)
    tmp.replace(path)  # atomic: a crash mid-write never half-updates
    return path


def load_checkpoint(
    directory: str | pathlib.Path, party: int, channel_keys: dict[int, bytes]
) -> tuple[tuple, int] | None:
    """Load and authenticate a checkpoint; ``None`` if it is missing,
    malformed, or fails the MAC — the caller must treat all three the
    same way (recover purely from peers)."""
    from . import wire

    path = checkpoint_path(directory, party)
    try:
        data = json.loads(path.read_text())
        body = bytes.fromhex(data["body"])
        tag = bytes.fromhex(data["mac"])
    except (OSError, ValueError, TypeError, KeyError):
        return None
    expected = hmac.new(
        _checkpoint_key(party, channel_keys), body, hashlib.sha256
    ).digest()
    if not hmac.compare_digest(tag, expected):
        return None
    try:
        entries, round_number = wire.loads(body)
    except (wire.WireError, ValueError):
        return None
    if not isinstance(entries, tuple) or not isinstance(round_number, int):
        return None
    return entries, round_number


# -- one server process -------------------------------------------------------------


class ReplicaHost:
    """One server: keystore + transport + protocol runtime + replica.

    Optional chaos surface:

    * ``faults`` — a :class:`~repro.net.transport.FaultPlan` injected
      into the transport (when ``None``, a plan serialized by the chaos
      engine as ``faults.json`` in the deployment directory is loaded
      automatically, so subprocess replicas pick up the scenario);
    * ``byzantine`` — host a corrupted party instead of an honest one
      (a behavior name understood by
      :func:`repro.net.chaos.byzantine_node`);
    * ``journal`` — append every executed operation to
      ``journal/exec-<party>.jsonl`` for the chaos safety checker;
    * checkpoints — when ``checkpoint_every > 0`` the delivered log is
      persisted (authenticated) every that-many executions and on
      graceful shutdown, and a restart with ``recover=True`` preloads
      it before asking peers for the tail.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        party: int,
        state_machine: StateMachine | None = None,
        causal: bool = False,
        seed: int | None = None,
        faults: FaultPlan | None = None,
        byzantine: str | None = None,
        journal: bool = False,
        checkpoint_every: int = 0,
    ) -> None:
        directory = pathlib.Path(directory)
        self.directory = directory
        self.party = party
        self.public = keystore.load_public(directory / "public.json")
        self.keys = keystore.load_party(directory / f"server-{party}.json", self.public)
        cluster = ClusterConfig.load(directory / CLUSTER_FILE)
        self.io_timeout = cluster.io_timeout
        if faults is None:
            from .chaos import load_fault_plan  # lazy: chaos imports us

            faults = load_fault_plan(directory)
        self.network = TransportNetwork(
            party, cluster.addresses, self.keys.channel_keys, faults=faults
        )
        self.byzantine = byzantine
        self.checkpoint_status = "absent"
        self._checkpoint_every = checkpoint_every
        self._executions = 0
        self._journal = None
        seed = seed if seed is not None else party
        if byzantine is None:
            self.runtime: ProtocolRuntime | None = ProtocolRuntime(
                party, self.network, self.public, self.keys, seed=seed
            )
            self.network.attach(party, self.runtime)
            self.replica: Replica | None = Replica(
                state_machine or KeyValueStore(),
                causal=causal,
                abc_config=cluster.abc_config(),
            )
            self.runtime.spawn(service_session(), self.replica)
        else:
            from .chaos import byzantine_node  # lazy: chaos imports us

            node, self.runtime, self.replica = byzantine_node(
                byzantine, self.network, party, self.public, self.keys,
                seed=seed, state_machine=state_machine or KeyValueStore(),
                causal=causal,
            )
            self.network.attach(party, node)
        if self.replica is not None:
            self.replica.on_execute = self._on_execute
        if journal and byzantine is None:
            journal_dir = directory / "journal"
            journal_dir.mkdir(exist_ok=True)
            # "w": the journal is this incarnation's executed sequence;
            # recovery replays the full history into it, so truncating
            # keeps it a single consistent prefix-checkable log.
            self._journal = open(
                journal_dir / f"exec-{party}.jsonl", "w", encoding="utf-8"
            )

    def _on_execute(self, request, result, rnd) -> None:
        self._executions += 1
        if self._journal is not None:
            self._journal.write(
                json.dumps(
                    {
                        "i": self._executions,
                        "client": request.client,
                        "nonce": request.nonce,
                        "op": list(request.operation),
                        "round": rnd,
                    }
                )
                + "\n"
            )
            self._journal.flush()
        if self._checkpoint_every and self._executions % self._checkpoint_every == 0:
            self.write_checkpoint()

    def write_checkpoint(self) -> pathlib.Path | None:
        """Persist the authenticated delivered log (honest hosts only)."""
        if self.replica is None or self.replica.causal or self.byzantine:
            return None
        return write_checkpoint(
            self.directory,
            self.party,
            self.keys.channel_keys,
            tuple(self.replica.abc.delivered_log),
            self.replica.abc.round,
        )

    async def start(self, recover: bool = False) -> None:
        await self.network.start()
        if recover and self.replica is not None:
            ctx = Context(self.runtime, service_session())
            loaded = load_checkpoint(
                self.directory, self.party, self.keys.channel_keys
            )
            # Host-owned startup state, written once before any handler
            # runs — not round/epoch-guarded protocol state.
            if loaded is not None:
                self.replica.preload_log(ctx, loaded[0])
                self.checkpoint_status = "loaded"  # repro: noqa-RL005 single-owner startup state
            elif checkpoint_path(self.directory, self.party).exists():
                # Present but unauthenticated/corrupted: reject it and
                # recover purely from peers.
                self.checkpoint_status = "rejected"  # repro: noqa-RL005 single-owner startup state
                self.network.trace.bump("chaos.checkpoint_rejected")
            self.replica.begin_recovery(ctx)

    async def close(self) -> None:
        await self.network.close()
        if self._journal is not None:
            self._journal.close()
            self._journal = None  # repro: noqa-RL005 idempotent shutdown, single owner


async def serve_replica(
    directory: str | pathlib.Path,
    party: int,
    recover: bool = False,
    causal: bool = False,
    byzantine: str | None = None,
    journal: bool = False,
    checkpoint_every: int = 0,
) -> int:
    """Run one replica until SIGTERM/SIGINT; prints a parseable final
    state line (the demo cluster checks it to verify recovery)."""
    host = ReplicaHost(
        directory, party, causal=causal, byzantine=byzantine,
        journal=journal, checkpoint_every=checkpoint_every,
    )
    await host.start(recover=recover)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    address = host.network.listen_address
    print(
        f"replica {party} listening on {address[0]}:{address[1]}"
        + (" (recovering)" if recover else ""),
        flush=True,
    )
    if recover:
        print(
            f"replica-checkpoint party={party} status={host.checkpoint_status}",
            flush=True,
        )
    if recover and host.replica is not None:
        task = loop.create_task(_announce_recovery(host))
        task.add_done_callback(lambda t: t.cancelled() or t.exception())
    # Bounded by SIGTERM from the operator, not by wall clock: a
    # replica serves until told to stop.
    await stop.wait()  # repro: noqa-RL005 runs-until-signalled by design
    if host.replica is not None:
        if checkpoint_every:
            host.write_checkpoint()
        snapshot = host.replica.state_machine.snapshot()
        stats = host.replica.abc.stats()
        print(
            f"replica-abc-stats party={party} "
            f"rounds={stats['rounds']:.0f} "
            f"delivered={stats['delivered']:.0f} "
            f"mean_batch={stats['mean_batch']:.3f} "
            f"occupancy={stats['pipeline_occupancy']:.3f}",
            flush=True,
        )
        print(
            f"replica-final party={party} executed={len(host.replica.executed)} "
            f"snapshot={snapshot!r}",
            flush=True,
        )
    else:
        print(f"replica-final party={party} byzantine={byzantine}", flush=True)
    await host.close()
    return 0


async def _announce_recovery(host: ReplicaHost) -> None:
    """Print a parseable line once Section-6 state transfer finishes
    (the demo cluster waits for it before declaring success)."""
    while host.replica.recovering:
        await asyncio.sleep(0.05)
    print(
        f"replica-recovered party={host.party} "
        f"executed={len(host.replica.executed)}",
        flush=True,
    )


# -- a client process ---------------------------------------------------------------


async def run_client_ops(
    directory: str | pathlib.Path,
    operations: list[tuple],
    client_id: int = CLIENT_BASE,
    timeout: float = 60.0,
) -> list[object]:
    """Submit operations over TCP, one at a time; returns their results."""
    directory = pathlib.Path(directory)
    public = keystore.load_public(directory / "public.json")
    cid, channel_keys = keystore.load_client(directory / f"client-{client_id}.json")
    cluster = ClusterConfig.load(directory / CLUSTER_FILE)
    network = TransportNetwork(cid, cluster.addresses, channel_keys)
    client = ServiceClient(cid, network, public, random.Random())
    network.attach(cid, client)
    await network.start()
    try:
        results: list[object] = []
        for operation in operations:
            nonce = client.submit(operation)
            await network.wait_until(
                lambda: nonce in client.completed, timeout=timeout
            )
            results.append(client.completed[nonce].result)
        return results
    finally:
        await network.close()


# -- the demo cluster ---------------------------------------------------------------


def _replica_env() -> dict[str, str]:
    """Child processes must be able to ``import repro`` exactly like us."""
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


class _ReplicaProcess:
    """A spawned ``repro run-replica`` subprocess with captured output."""

    def __init__(
        self,
        proc: asyncio.subprocess.Process,
        party: int,
        io_timeout: float = DEFAULT_IO_TIMEOUT,
    ) -> None:
        self.proc = proc
        self.party = party
        self.io_timeout = io_timeout
        self.lines: list[str] = []
        task = asyncio.get_running_loop().create_task(self._drain())
        task.add_done_callback(lambda t: t.cancelled() or t.exception())
        self._task = task

    async def _drain(self) -> None:
        assert self.proc.stdout is not None
        while True:
            # Terminates on child exit (EOF), not on a deadline — the
            # drain must outlive any pause/partition the child is under.
            raw = await self.proc.stdout.readline()  # repro: noqa-RL005 EOF-bounded pipe drain
            if not raw:
                return
            line = raw.decode(errors="replace").rstrip()
            self.lines.append(line)
            print(f"  [replica {self.party}] {line}", flush=True)

    async def wait_for_line(self, needle: str, timeout: float | None = None) -> str:
        """Block until a captured stdout line contains ``needle``.

        The deadline defaults to the deployment's configured
        ``ClusterConfig.io_timeout`` (threaded through at spawn time)
        rather than a hardcoded constant.
        """
        if timeout is None:
            timeout = self.io_timeout
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            for line in self.lines:
                if needle in line:
                    return line
            if self.proc.returncode is not None:
                raise TransportError(
                    f"replica {self.party} exited before printing {needle!r}"
                )
            if asyncio.get_running_loop().time() > deadline:
                raise TransportError(
                    f"replica {self.party} never printed {needle!r}"
                )
            await asyncio.sleep(0.05)

    async def stop(self, grace: float = 15.0) -> None:
        if self.proc.returncode is None:
            self.proc.terminate()
            try:
                await asyncio.wait_for(self.proc.wait(), grace)
            except asyncio.TimeoutError:
                self.proc.kill()
                await self.proc.wait()  # repro: noqa-RL005 SIGKILL already sent; exit is certain
        await self._task

    async def kill(self) -> None:
        """Crash the replica (no grace, no cleanup) — the fault model."""
        if self.proc.returncode is None:
            self.proc.kill()
            await self.proc.wait()  # repro: noqa-RL005 SIGKILL already sent; exit is certain
        await self._task

    def suspend(self) -> None:
        """SIGSTOP: the process freezes mid-whatever — from the cluster's
        point of view, an arbitrarily slow (but not crashed) replica."""
        if self.proc.returncode is None:
            self.proc.send_signal(signal.SIGSTOP)

    def resume(self) -> None:
        """SIGCONT after :meth:`suspend`."""
        if self.proc.returncode is None:
            self.proc.send_signal(signal.SIGCONT)


async def _spawn_replica(
    directory: pathlib.Path,
    party: int,
    recover: bool = False,
    byzantine: str | None = None,
    journal: bool = False,
    checkpoint_every: int = 0,
    io_timeout: float = DEFAULT_IO_TIMEOUT,
) -> _ReplicaProcess:
    command = [
        sys.executable, "-m", "repro", "run-replica",
        "--dir", str(directory), "--party", str(party),
    ]
    if recover:
        command.append("--recover")
    if byzantine:
        command.extend(["--byzantine", byzantine])
    if journal:
        command.append("--journal")
    if checkpoint_every:
        command.extend(["--checkpoint-every", str(checkpoint_every)])
    proc = await asyncio.create_subprocess_exec(
        *command,
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.STDOUT,
        env=_replica_env(),
    )
    return _ReplicaProcess(proc, party, io_timeout=io_timeout)


async def _submit_and_await(
    network: TransportNetwork,
    client: ServiceClient,
    operations: list[tuple],
    timeout: float,
) -> list[object]:
    results: list[object] = []
    for operation in operations:
        nonce = client.submit(operation)
        await network.wait_until(lambda: nonce in client.completed, timeout=timeout)
        result = client.completed[nonce].result
        print(f"  client: {operation!r} -> {result!r}", flush=True)
        results.append(result)
    return results


async def _demo_cluster(
    n: int, t: int, seed: int, directory: pathlib.Path, timeout: float
) -> int:
    rng = random.Random(seed)
    print(f"dealing keys for n={n}, t={t} (plus one client identity)", flush=True)
    keys = deal_system(n, rng, t=t, clients=1, group=small_group())
    keystore.write_deployment(keys, directory)
    addresses = allocate_addresses(list(range(n)) + [CLIENT_BASE])
    ClusterConfig(addresses, io_timeout=timeout).save(directory / CLUSTER_FILE)

    print(f"spawning {n} replica processes", flush=True)
    replicas = {
        party: await _spawn_replica(directory, party, io_timeout=timeout)
        for party in range(n)
    }
    public = keystore.load_public(directory / "public.json")
    cid, channel_keys = keystore.load_client(
        directory / f"client-{CLIENT_BASE}.json"
    )
    network = TransportNetwork(cid, addresses, channel_keys)
    client = ServiceClient(cid, network, public, random.Random(seed + 99))
    network.attach(cid, client)
    await network.start()
    victim = n - 1
    try:
        print("phase A: 3 writes with the full cluster", flush=True)
        phase_a = [("set", f"key-{i}", i) for i in range(3)]
        await _submit_and_await(network, client, phase_a, timeout)

        print(f"killing replica {victim} (SIGKILL, no warning)", flush=True)
        await replicas[victim].kill()

        print(f"phase B: 2 writes with {n - 1} replicas", flush=True)
        phase_b = [("set", f"key-{i}", i) for i in range(3, 5)]
        await _submit_and_await(network, client, phase_b, timeout)

        print(f"restarting replica {victim} with --recover", flush=True)
        replicas[victim] = await _spawn_replica(
            directory, victim, recover=True, io_timeout=timeout
        )
        await replicas[victim].wait_for_line("listening", timeout)

        print("phase C: 1 write + 1 read with the recovered cluster", flush=True)
        phase_c = [("set", "key-5", 5), ("get", "key-0")]
        results = await _submit_and_await(network, client, phase_c, timeout)
        if results[-1] != ("value", 0):
            print("demo-cluster: FAILED (read returned the wrong value)")
            return 1

        # State transfer (Section 6) runs concurrently with phase C;
        # wait for the restarted replica to announce it has caught up
        # before asking everyone for their final snapshot.
        await replicas[victim].wait_for_line("replica-recovered", timeout)

        print("stopping the cluster (SIGTERM)", flush=True)
        for party in sorted(replicas):
            await replicas[party].stop()

        # The restarted replica must have replayed the history it
        # missed: every key from every phase in its final snapshot.
        final = next(
            (line for line in replicas[victim].lines if "replica-final" in line), ""
        )
        missing = [f"key-{i}" for i in range(6) if f"key-{i}" not in final]
        if not final or missing:
            print(f"demo-cluster: FAILED (replica {victim} did not recover "
                  f"{missing or 'at all'})")
            return 1
        print(f"demo-cluster: ok (replica {victim} recovered the full history)")
        return 0
    finally:
        for process in replicas.values():
            await process.kill()
        await network.close()


def demo_cluster(
    n: int = 4,
    t: int = 1,
    seed: int = 0,
    directory: str | pathlib.Path | None = None,
    keep: bool = False,
    timeout: float = 60.0,
) -> int:
    """Run the end-to-end TCP cluster demo; returns a process exit code."""
    created = directory is None
    workdir = pathlib.Path(directory or tempfile.mkdtemp(prefix="repro-cluster-"))
    workdir.mkdir(parents=True, exist_ok=True)
    try:
        return asyncio.run(_demo_cluster(n, t, seed, workdir, timeout))
    finally:
        if created and not keep:
            shutil.rmtree(workdir, ignore_errors=True)
        elif keep:
            print(f"cluster state kept in {workdir}")
