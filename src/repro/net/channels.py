"""Authenticated point-to-point channels bootstrapped from a PKI.

The simulator's links already deliver the true sender identity, which
models secure channels as an assumption.  This module shows the
*mechanism* the paper mentions — "it is possible to bootstrap security
from a PKI, e.g., to establish secure point-to-point channels": every
message is Schnorr-signed by its sender and verified against the
directory of public keys distributed by the dealer.  A channel wrapper
rejects forgeries, so even a scheduler that could inject messages (it
cannot, but a real network attacker could) gains nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..crypto.schnorr import Signature, SigningKey, VerifyKey

__all__ = ["SignedPayload", "ChannelAuthenticator"]


@dataclass(frozen=True)
class SignedPayload:
    """A payload with its channel signature and claimed origin."""

    origin: int
    sequence: int
    payload: object
    signature: Signature


class ChannelAuthenticator:
    """Signs outgoing payloads and verifies incoming ones.

    Sequence numbers make every signed unit unique, preventing replay
    of old channel messages into new sessions.
    """

    def __init__(
        self,
        party: int,
        signing_key: SigningKey,
        directory: dict[int, VerifyKey],
        rng: random.Random,
    ) -> None:
        self.party = party
        self.signing_key = signing_key
        self.directory = directory
        self.rng = rng
        self._sequence = 0
        self._seen: dict[int, set[int]] = {}

    def wrap(self, payload: object) -> SignedPayload:
        self._sequence += 1
        signature = self.signing_key.sign(
            ("channel", self.party, self._sequence, payload), self.rng
        )
        return SignedPayload(
            origin=self.party,
            sequence=self._sequence,
            payload=payload,
            signature=signature,
        )

    def unwrap(self, claimed_sender: int, signed: SignedPayload) -> object | None:
        """Return the payload if authentic and fresh, else None.

        Rejects (a) origin/sender mismatches, (b) unknown origins,
        (c) bad signatures, and (d) replayed sequence numbers.
        """
        if signed.origin != claimed_sender:
            return None
        key = self.directory.get(signed.origin)
        if key is None:
            return None
        message = ("channel", signed.origin, signed.sequence, signed.payload)
        if not key.verify(message, signed.signature):
            return None
        seen = self._seen.setdefault(signed.origin, set())
        if signed.sequence in seen:
            return None
        seen.add(signed.sequence)
        return signed.payload
