"""Byzantine corruption harness.

Without loss of generality the paper assumes a single adversary that
controls all corrupted parties and the network.  This module is the
server-side half of that adversary (the network half lives in
:mod:`repro.net.scheduler`): it tracks which parties are corrupted,
checks the corruption against the declared adversary structure, and
provides reusable malicious node behaviors.

Protocol-specific attacks (equivocating broadcast senders, parties
voting both ways in agreement, servers leaking request plaintext) are
built on these hooks in the protocol tests and benchmarks.
"""

from __future__ import annotations

import random
from typing import Callable

from ..adversary.quorums import QuorumSystem
from .base import NetworkBackend
from .simulator import Node

__all__ = [
    "CorruptionController",
    "SilentNode",
    "CrashNode",
    "SpamNode",
    "MutatingNode",
]


class CorruptionController:
    """Registers corruptions and enforces the adversary-structure bound.

    The protocols' guarantees hold only when the corrupted coalition
    lies in the declared structure; experiments that intentionally
    exceed it (to show guarantees degrade) pass ``unchecked=True``.
    """

    def __init__(self, quorum: QuorumSystem) -> None:
        self.quorum = quorum
        self.corrupted: set[int] = set()

    def corrupt(self, network, party: int, node: Node, unchecked: bool = False) -> None:
        """Replace a party's node with an adversarial one.

        Requires the simulator backend (live node swap via ``nodes``);
        on the TCP backend a corrupted party is *started* byzantine
        instead (``repro.net.chaos.byzantine_node`` /
        ``run-replica --byzantine``) — the behavior classes themselves
        run on either backend.
        """
        proposed = self.corrupted | {party}
        if not unchecked and not self.quorum.can_be_corrupted(proposed):
            raise ValueError(
                f"corrupting {sorted(proposed)} exceeds the adversary structure"
            )
        self.corrupted.add(party)
        network.nodes[party] = node

    def honest(self, all_parties: list[int]) -> list[int]:
        return [p for p in all_parties if p not in self.corrupted]


class SilentNode(Node):
    """A corrupted party that receives everything and says nothing.

    Indistinguishable from a slow honest party — the behavior that
    breaks timeout-based failure detectors (Section 2.2) and that the
    asynchronous protocols must tolerate by design.
    """

    def on_message(self, sender: int, payload: object) -> None:
        pass


class CrashNode(Node):
    """Runs the honest protocol, then crashes after ``crash_after`` deliveries.

    Used by the hybrid-failure experiments (Section 6) where crashes
    are injected separately from Byzantine corruptions.
    """

    def __init__(self, inner: Node, crash_after: int) -> None:
        self.inner = inner
        self.crash_after = crash_after
        self._seen = 0

    def on_start(self) -> None:
        if self.crash_after > 0:
            self.inner.on_start()

    def on_message(self, sender: int, payload: object) -> None:
        if self._seen >= self.crash_after:
            return
        self._seen += 1
        self.inner.on_message(sender, payload)


class SpamNode(Node):
    """Floods peers with garbage payloads on every delivery.

    Exercises input validation: honest protocol stacks must discard
    unparseable or unauthenticated junk without state corruption.
    """

    def __init__(self, network: NetworkBackend, party: int, payload_factory: Callable[[random.Random], object],
                 rng: random.Random, fanout: int = 3) -> None:
        self.network = network
        self.party = party
        self.payload_factory = payload_factory
        self.rng = rng
        self.fanout = fanout

    def on_message(self, sender: int, payload: object) -> None:
        parties = self.network.parties
        for _ in range(self.fanout):
            target = parties[self.rng.randrange(len(parties))]
            self.network.send(self.party, target, self.payload_factory(self.rng))


class MutatingNode(Node):
    """Wraps an honest node but rewrites its outgoing messages.

    The mutation hook sees ``(recipient, payload)`` and may return a
    different payload, ``None`` to drop, or a list of payloads to
    equivocate.  This is the generic chassis for Byzantine senders.
    """

    def __init__(
        self,
        network: NetworkBackend,
        party: int,
        inner_factory: Callable[["_InterceptNetwork"], Node],
        mutate: Callable[[int, object], object | None | list[object]],
    ) -> None:
        self.network = network
        self.party = party
        self.mutate = mutate
        self._intercept = _InterceptNetwork(self)
        self.inner = inner_factory(self._intercept)

    def on_start(self) -> None:
        self.inner.on_start()

    def on_message(self, sender: int, payload: object) -> None:
        self.inner.on_message(sender, payload)

    def _deliver_out(self, recipient: int, payload: object) -> None:
        result = self.mutate(recipient, payload)
        if result is None:
            return
        outputs = result if isinstance(result, list) else [result]
        for out in outputs:
            self.network.send(self.party, recipient, out)


class _InterceptNetwork:
    """A network facade handed to the wrapped honest node."""

    def __init__(self, owner: MutatingNode) -> None:
        self.owner = owner

    @property
    def parties(self) -> list[int]:
        return self.owner.network.parties

    @property
    def trace(self):
        return self.owner.network.trace

    def send(self, sender: int, recipient: int, payload: object) -> None:
        self.owner._deliver_out(recipient, payload)

    def broadcast(self, sender: int, payload: object) -> None:
        for recipient in self.parties:
            self.owner._deliver_out(recipient, payload)
