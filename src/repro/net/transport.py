"""Asyncio TCP transport: the deployment realization of the model's links.

Section 2 assumes *authenticated asynchronous point-to-point channels*.
The simulator realizes them as an in-memory pool ruled by an adversarial
scheduler; this module realizes them as real sockets:

* **Frames.**  Every message is one length-prefixed frame whose payload
  is the canonical :mod:`repro.net.wire` encoding — the transport never
  invents a second serialization, and the codec's ``_MAX_LENGTH`` bound
  is enforced per frame before any allocation.
* **Authentication.**  Channels are keyed from the dealer setup
  (:func:`repro.crypto.dealer.deal_channel_keys`): each unordered pair
  of parties shares a 32-byte key and every frame carries an
  HMAC-SHA256 tag over (direction, incarnation, sequence, payload).  A
  bad tag, a malformed frame or an oversized length drops the
  connection — the model's "authenticated links" assumption, made
  mechanical.
* **Eventual delivery.**  Each peer has its own outbound queue drained
  by a connection task with reconnect, capped exponential backoff and
  jitter.  A successful TCP write confirms nothing (the kernel buffers
  bytes for dead peers), so the receiver returns authenticated
  *cumulative acknowledgements* on the same connection; frames stay
  queued and are retransmitted on every reconnect until acknowledged,
  and the receiver deduplicates by (incarnation, sequence).  Together
  this gives the asynchronous model's eventual-delivery guarantee
  between honest, live parties without ever duplicating a delivery.

:class:`TransportNetwork` exposes the same ``attach``/``send``/
``broadcast``/``trace`` surface as the simulator's ``Network``
(:mod:`repro.net.base`), so :class:`~repro.core.runtime.ProtocolRuntime`
and :class:`~repro.smr.client.ServiceClient` run on sockets unmodified.
One :class:`TransportNetwork` hosts exactly one party — one process (or
one in-process test node) per participant.

See ``docs/DEPLOYMENT.md`` for the trust assumptions compared with the
simulator.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import os
import random
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Callable

from . import wire
from .simulator import Node
from .tracing import Trace

__all__ = [
    "TransportError",
    "MAX_FRAME_BODY",
    "FrameFault",
    "FaultPlan",
    "encode_hello",
    "decode_hello",
    "encode_data",
    "decode_data",
    "encode_ack",
    "decode_ack",
    "TransportNetwork",
]


class TransportError(Exception):
    """Malformed, oversized, or unauthenticated transport frame."""


# -- fault injection hooks ----------------------------------------------------------
#
# The chaos engine (repro.net.chaos) needs to exercise the deployed
# transport under the same adversary the simulator's schedulers model:
# partitions, loss, corruption, duplication and reordering.  Rather
# than a parallel "test transport", the production code path exposes a
# small hook surface that defaults to a no-op; every fault the plan can
# express maps onto a failure mode TCP already has, so the reliability
# machinery (reconnect + retransmit + cumulative acks + dedup) is what
# gets exercised, not bypassed:
#
# * a severed link (partition) looks like dial failures / dead
#   connections;
# * a lost or corrupted frame looks like a connection reset — the
#   unacked backlog is retransmitted on reconnect (frames can never be
#   *silently* dropped mid-stream: the receiver's cumulative ack would
#   permanently skip them);
# * a duplicated frame is delivered twice and deduplicated;
# * reordering happens *above* the framing layer, by holding a payload
#   back before it is assigned a sequence number.


@dataclass(frozen=True)
class FrameFault:
    """One frame-level fault decision: an action plus an extra delay."""

    action: str = "pass"  # pass | reset | corrupt | duplicate
    delay: float = 0.0


_PASS_FRAME = FrameFault()

# How often a severed sender re-checks whether its link healed.
_PARTITION_POLL = 0.05


class FaultPlan:
    """Fault-injection hook surface consulted by the TCP transport.

    The base class injects nothing and is the default for every
    :class:`TransportNetwork`; :class:`repro.net.chaos.SeededFaultPlan`
    overrides these hooks with seed-reproducible decisions.  All hooks
    are synchronous and must be cheap — they run on the hot path.
    """

    def start(self) -> None:
        """Anchor the plan's clock; called from ``TransportNetwork.start``."""

    def link_up(self, sender: int, recipient: int) -> bool:
        """False while the directed link is severed (partition)."""
        return True

    def frame_fault(self, sender: int, recipient: int) -> FrameFault:
        """Sampled once per data-frame write on the sender side."""
        return _PASS_FRAME

    def send_hold(self, sender: int, recipient: int) -> float:
        """Seconds to hold a payload *before* sequencing (reorder/delay);
        0 sends immediately."""
        return 0.0


# -- frame codec -------------------------------------------------------------------
#
# frame     = length(4, big-endian) || body
# hello body = 0x01 || sender(8) || incarnation(8) || mac(32)
# data body  = 0x02 || incarnation(8) || seq(8) || mac(32) || payload
# ack body   = 0x03 || incarnation(8) || seq(8) || mac(32)
#
# The mac covers (kind, sender, recipient, incarnation, seq, payload)
# under the pairwise channel key, so direction is authenticated (no
# reflection) and replays across restarts land in a different
# incarnation namespace.  Acks are cumulative ("I have delivered every
# frame of your incarnation up to seq") and flow back on the same
# connection the data arrived on.

_KIND_HELLO = 0x01
_KIND_DATA = 0x02
_KIND_ACK = 0x03
_MAC_BYTES = 32
_ID_BYTES = 8
_HELLO_BODY = 1 + 2 * _ID_BYTES + _MAC_BYTES
_ACK_BODY = 1 + 2 * _ID_BYTES + _MAC_BYTES
_DATA_OVERHEAD = 1 + 2 * _ID_BYTES + _MAC_BYTES

# The wire codec's own length bound, enforced per frame *before* the
# body is read: no peer can make us allocate more than this.
MAX_FRAME_BODY = _DATA_OVERHEAD + wire._MAX_LENGTH

_BACKOFF_MIN = 0.05
_BACKOFF_MAX = 2.0
_PENDING_LIMIT = 65536


def _tag(
    key: bytes, kind: int, sender: int, recipient: int,
    incarnation: int, seq: int, payload: bytes,
) -> bytes:
    material = b"".join(
        (
            b"repro-channel-v1",
            bytes([kind]),
            sender.to_bytes(_ID_BYTES, "big"),
            recipient.to_bytes(_ID_BYTES, "big"),
            incarnation.to_bytes(_ID_BYTES, "big"),
            seq.to_bytes(_ID_BYTES, "big"),
            payload,
        )
    )
    return hmac.new(key, material, hashlib.sha256).digest()


def encode_hello(key: bytes, sender: int, recipient: int, incarnation: int) -> bytes:
    """The first frame of every connection: who is dialing, and which
    process incarnation its sequence numbers belong to."""
    mac = _tag(key, _KIND_HELLO, sender, recipient, incarnation, 0, b"")
    body = (
        bytes([_KIND_HELLO])
        + sender.to_bytes(_ID_BYTES, "big")
        + incarnation.to_bytes(_ID_BYTES, "big")
        + mac
    )
    return len(body).to_bytes(4, "big") + body


def decode_hello(
    body: bytes, recipient: int, key_for: Callable[[int], bytes | None]
) -> tuple[int, int]:
    """Validate a hello body; returns ``(sender, incarnation)``."""
    if len(body) != _HELLO_BODY or body[0] != _KIND_HELLO:
        raise TransportError("malformed hello frame")
    sender = int.from_bytes(body[1 : 1 + _ID_BYTES], "big")
    incarnation = int.from_bytes(body[1 + _ID_BYTES : 1 + 2 * _ID_BYTES], "big")
    mac = body[1 + 2 * _ID_BYTES :]
    key = key_for(sender)
    if key is None:
        raise TransportError(f"no channel key for party {sender}")
    expected = _tag(key, _KIND_HELLO, sender, recipient, incarnation, 0, b"")
    if not hmac.compare_digest(mac, expected):
        raise TransportError("hello authentication failed")
    return sender, incarnation


def encode_data(
    key: bytes, sender: int, recipient: int,
    incarnation: int, seq: int, payload: bytes,
) -> bytes:
    """Frame one wire-encoded payload for the (sender -> recipient) channel."""
    if len(payload) > wire._MAX_LENGTH:
        raise TransportError("payload exceeds the wire length bound")
    mac = _tag(key, _KIND_DATA, sender, recipient, incarnation, seq, payload)
    body = (
        bytes([_KIND_DATA])
        + incarnation.to_bytes(_ID_BYTES, "big")
        + seq.to_bytes(_ID_BYTES, "big")
        + mac
        + payload
    )
    return len(body).to_bytes(4, "big") + body


def decode_data(
    body: bytes, key: bytes, sender: int, recipient: int
) -> tuple[int, int, bytes]:
    """Validate a data body; returns ``(incarnation, seq, payload bytes)``."""
    if len(body) < _DATA_OVERHEAD or body[0] != _KIND_DATA:
        raise TransportError("malformed data frame")
    incarnation = int.from_bytes(body[1 : 1 + _ID_BYTES], "big")
    seq = int.from_bytes(body[1 + _ID_BYTES : 1 + 2 * _ID_BYTES], "big")
    mac = body[1 + 2 * _ID_BYTES : _DATA_OVERHEAD]
    payload = body[_DATA_OVERHEAD:]
    expected = _tag(key, _KIND_DATA, sender, recipient, incarnation, seq, payload)
    if not hmac.compare_digest(mac, expected):
        raise TransportError("frame authentication failed")
    return incarnation, seq, payload


def encode_ack(key: bytes, sender: int, recipient: int,
               incarnation: int, seq: int) -> bytes:
    """Acknowledge delivery of every frame up to ``seq`` (cumulative) of
    the recipient's ``incarnation``; sent by the receiving party."""
    mac = _tag(key, _KIND_ACK, sender, recipient, incarnation, seq, b"")
    body = (
        bytes([_KIND_ACK])
        + incarnation.to_bytes(_ID_BYTES, "big")
        + seq.to_bytes(_ID_BYTES, "big")
        + mac
    )
    return len(body).to_bytes(4, "big") + body


def decode_ack(body: bytes, key: bytes, sender: int, recipient: int) -> tuple[int, int]:
    """Validate an ack body; returns ``(incarnation, seq)``."""
    if len(body) != _ACK_BODY or body[0] != _KIND_ACK:
        raise TransportError("malformed ack frame")
    incarnation = int.from_bytes(body[1 : 1 + _ID_BYTES], "big")
    seq = int.from_bytes(body[1 + _ID_BYTES : 1 + 2 * _ID_BYTES], "big")
    mac = body[1 + 2 * _ID_BYTES :]
    expected = _tag(key, _KIND_ACK, sender, recipient, incarnation, seq, b"")
    if not hmac.compare_digest(mac, expected):
        raise TransportError("ack authentication failed")
    return incarnation, seq


# -- per-peer outbound channel ------------------------------------------------------


@dataclass
class _InboundChannel:
    """Receive-side replay state for one peer."""

    incarnation: int
    last_seq: int = 0


class _PeerChannel:
    """Outbound queue + connection task for one remote peer.

    A successful TCP write proves nothing about delivery (the kernel
    happily buffers bytes for a peer that just died), so frames stay in
    ``pending`` until the receiver's cumulative ack covers their
    sequence number.  A broken connection triggers reconnection with
    capped exponential backoff plus jitter, and every still-unacked
    frame is retransmitted in order; the receiver's sequence check
    discards any frame that did survive the broken connection.
    """

    def __init__(self, net: "TransportNetwork", peer: int) -> None:
        self.net = net
        self.peer = peer
        self.pending: deque[tuple[int, bytes]] = deque()
        self.next_seq = 0
        self._wake = asyncio.Event()
        task = asyncio.get_running_loop().create_task(self._run())
        task.add_done_callback(net._on_task_done)
        self._task = task

    def enqueue(self, seq: int, frame: bytes) -> None:
        if len(self.pending) >= _PENDING_LIMIT:
            self.net.trace.bump("transport.dropped")
            return
        self.pending.append((seq, frame))
        self._wake.set()

    def stop(self) -> None:
        self._task.cancel()

    async def _run(self) -> None:
        delay = _BACKOFF_MIN
        while True:
            if self.net._closed:
                return
            if not self.net.faults.link_up(self.net.party, self.peer):
                # The chaos plan severed this link: do not even dial.
                self.net.trace.bump("chaos.partitioned")
                await asyncio.sleep(_PARTITION_POLL)
                continue
            writer = None
            ack_task = None
            try:
                host, port = self.net.addresses[self.peer]
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(self.net._hello_frame(self.peer))
                await writer.drain()
                delay = _BACKOFF_MIN  # connected: reset the backoff window
                self.net.trace.bump("transport.connects")
                loop = asyncio.get_running_loop()
                ack_task = loop.create_task(self._read_acks(reader))
                ack_task.add_done_callback(self._on_ack_done)
                await self._pump(writer, ack_task)
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                self.net.trace.bump("transport.reconnects")
            except TransportError:
                self.net.trace.bump("transport.rejected")
            finally:
                if ack_task is not None:
                    ack_task.cancel()
                if writer is not None:
                    writer.close()
            if self.net._closed:
                return
            # Capped exponential backoff with jitter before redialing.
            await asyncio.sleep(delay + self.net.rng.uniform(0, delay / 2))
            delay = min(delay * 2, _BACKOFF_MAX)

    async def _pump(
        self, writer: asyncio.StreamWriter, ack_task: asyncio.Task
    ) -> None:
        """Write every unacked frame, oldest first, then follow the queue.

        ``written`` tracks the highest sequence sent on *this*
        connection; a fresh connection starts at 0 and therefore
        retransmits the whole unacked backlog.
        """
        written = 0
        while True:
            if self.net._closed:
                return
            if ack_task.done():
                # The read side died (connection lost or a bad ack);
                # surface its verdict and let _run reconnect.
                exc = ack_task.exception()
                raise exc if exc is not None else ConnectionResetError()
            frame = self._next_after(written)
            if frame is None:
                self._wake.clear()
                if self._next_after(written) is not None:
                    continue  # raced with an enqueue before clear()
                await self._wake.wait()
                continue
            seq, data = frame
            written = await self._write_frame(writer, seq, data, written)

    async def _write_frame(
        self, writer: asyncio.StreamWriter, seq: int, data: bytes, written: int
    ) -> int:
        """Write one frame, applying the chaos plan's frame fault (if any).

        Loss and corruption are realized as connection resets so the
        reconnect path retransmits the unacked backlog — a frame that
        was simply skipped would be permanently jumped over by the
        receiver's cumulative ack.
        """
        if not self.net.faults.link_up(self.net.party, self.peer):
            # A partition severing a *live* connection mid-stream.
            self.net.trace.bump("chaos.partitioned")
            raise ConnectionResetError("chaos: link severed")
        fault = self.net.faults.frame_fault(self.net.party, self.peer)
        if fault.delay > 0:
            await asyncio.sleep(fault.delay)
        if fault.action == "reset":
            self.net.trace.bump("chaos.resets")
            raise ConnectionResetError("chaos: frame dropped, connection reset")
        if fault.action == "corrupt":
            # Flip one payload byte: the receiver's HMAC check MUST
            # reject the frame and drop the connection; we reset our
            # side immediately and retransmit the intact frame.
            corrupted = bytearray(data)
            corrupted[-1] ^= 0x01
            writer.write(bytes(corrupted))
            await writer.drain()
            self.net.trace.bump("chaos.corruptions")
            raise ConnectionResetError("chaos: frame corrupted")
        writer.write(data)
        if fault.action == "duplicate":
            self.net.trace.bump("chaos.duplicated")
            writer.write(data)
        await writer.drain()
        return seq

    def _next_after(self, written: int) -> tuple[int, bytes] | None:
        """The oldest unacked frame not yet written on this connection.

        Acked frames are popped from the front, so the deque is sorted
        by sequence number and the scan skips only the written-but-
        unacked prefix.
        """
        for entry in self.pending:
            if entry[0] > written:
                return entry
        return None

    def _on_ack_done(self, task: asyncio.Task) -> None:
        if not task.cancelled():
            task.exception()  # retrieved here; the pump re-raises it
        self._wake.set()  # unblock a pump waiting with an empty queue

    async def _read_acks(self, reader: asyncio.StreamReader) -> None:
        """Prune the unacked queue as the receiver's cumulative acks
        arrive; the ack also wakes the pump so it can notice progress."""
        key = self.net.channel_keys[self.peer]
        while True:
            body = await self.net._read_frame(reader)
            incarnation, seq = decode_ack(body, key, self.peer, self.net.party)
            if incarnation != self.net.incarnation:
                continue  # ack for a previous life of this process
            while self.pending and self.pending[0][0] <= seq:
                self.pending.popleft()
            self._wake.set()


# -- the network -------------------------------------------------------------------


class TransportNetwork:
    """One party's view of the network, over real TCP sockets.

    Mirrors the simulator's ``Network`` surface (``attach`` / ``send`` /
    ``broadcast`` / ``trace``) for a single local party; remote parties
    are reached through ``addresses`` (party id -> ``(host, port)``)
    using the pairwise ``channel_keys`` dealt by the trusted dealer.

    Must be used from within a running asyncio event loop::

        net = TransportNetwork(party, addresses, channel_keys)
        net.attach(party, node)
        await net.start()
        ...
        await net.close()
    """

    def __init__(
        self,
        party: int,
        addresses: dict[int, tuple[str, int]],
        channel_keys: dict[int, bytes],
        rng: random.Random | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self.party = party
        self.addresses = dict(addresses)
        self.channel_keys = dict(channel_keys)
        self.rng = rng or random.Random()
        self.faults = faults or FaultPlan()
        self.trace = Trace()
        self.node: Node | None = None
        self.errors: list[BaseException] = []
        self.incarnation = self.rng.getrandbits(63)
        self._channels: dict[int, _PeerChannel] = {}
        self._inbound: dict[int, _InboundChannel] = {}
        self._forgotten: set[int] = set()
        self._server: asyncio.Server | None = None
        self._tasks: set[asyncio.Task] = set()
        self._closed = False
        self._delivery_event = asyncio.Event()

    # -- topology ----------------------------------------------------------

    def attach(self, party: int, node: Node) -> None:
        """Attach the local node (one party per transport instance)."""
        if party != self.party:
            raise ValueError(
                f"transport for party {self.party} cannot host party {party}"
            )
        self.node = node

    def forget_peer(self, party: int) -> None:
        """Drop a departed peer entirely: address, channel key, outbound
        queue/connection and inbound replay state.

        Called by the host when an ordered ``Reconfigure(remove)``
        commits.  A later ``add`` that reuses the id then starts from a
        clean slate — fresh identity-derived channel key, the address
        carried by the new ordered op, fresh sequence numbers — instead
        of inheriting stale contact info that would leave the rejoined
        replica unreachable.  Late sends to a forgotten peer are
        silently dropped (counted in the trace), not errors: protocol
        instances from closed epochs may still address it.
        """
        channel = self._channels.pop(party, None)
        if channel is not None:
            channel.stop()
        self._inbound.pop(party, None)
        self.addresses.pop(party, None)
        self.channel_keys.pop(party, None)
        self._forgotten.add(party)

    def admit_peer(
        self, party: int, address: tuple[str, int], channel_key: bytes
    ) -> None:
        """(Re-)admit a peer with the address carried by the ordered
        ``Reconfigure(add)`` and the identity-derived channel key — the
        ordered op is authoritative, so any stale entry for a previously
        removed holder of the same id is overwritten, not kept."""
        self._forgotten.discard(party)
        self.addresses[party] = address
        self.channel_keys[party] = channel_key

    @property
    def parties(self) -> list[int]:
        return sorted(set(self.addresses) | {self.party})

    @property
    def listen_address(self) -> tuple[str, int]:
        return self.addresses[self.party]

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener (port 0 allocates a free port) and start
        accepting authenticated peer connections."""
        self.faults.start()
        host, port = self.addresses.get(self.party, ("127.0.0.1", 0))
        self._server = await asyncio.start_server(self._on_connection, host, port)
        if self._closed:
            self._server.close()
            return
        bound = self._server.sockets[0].getsockname()
        self.addresses[self.party] = (host, bound[1])

    async def close(self) -> None:
        """Graceful shutdown: stop accepting, cancel every connection."""
        if self._closed:
            return
        self._closed = True
        self._delivery_event.set()  # release any wait_until() waiters
        for channel in self._channels.values():
            channel.stop()
        for task in list(self._tasks):
            task.cancel()
        if self._server is not None:
            self._server.close()
        pending = [c._task for c in self._channels.values()] + list(self._tasks)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()

    # -- sending -----------------------------------------------------------

    def send(self, sender: int, recipient: int, payload: object) -> None:
        """Queue a point-to-point message (authenticated by the channel
        key; the wire codec is the single serialization and the single
        source of truth for byte accounting)."""
        if self._closed:
            return
        if recipient != self.party and recipient not in self.addresses:
            if recipient in self._forgotten:
                # A closed epoch's protocol instance addressing a
                # removed member: drop quietly, it is gone by agreement.
                self.trace.bump("transport.departed_drops")
                return
            raise ValueError(f"unknown recipient {recipient}")
        try:
            encoded = wire.dumps(payload)
        except wire.WireError as exc:
            raise TransportError(f"unencodable payload: {exc}") from exc
        self.trace.record_send(sender, recipient, payload, encoded=encoded)
        if recipient == self.party:
            # Self-delivery is still asynchronous (never inline), exactly
            # like the simulator's self-messages through the pool.
            asyncio.get_running_loop().call_soon(self._deliver_local, encoded)
            return
        if self.channel_keys.get(recipient) is None:
            raise TransportError(f"no channel key for party {recipient}")
        hold = self.faults.send_hold(self.party, recipient)
        if hold > 0:
            # Reordering happens here, above the framing layer: the held
            # payload is sequenced only when it is finally enqueued, so
            # payloads sent after it overtake it without violating the
            # per-connection in-order invariant the acks rely on.
            self.trace.bump("chaos.held")
            asyncio.get_running_loop().call_later(
                hold, self._enqueue_payload, recipient, encoded
            )
            return
        self._enqueue_payload(recipient, encoded)

    def _enqueue_payload(self, recipient: int, encoded: bytes) -> None:
        """Sequence and frame one encoded payload for a remote peer."""
        if self._closed:
            return
        key = self.channel_keys[recipient]
        channel = self._channels.get(recipient)
        if channel is None:
            channel = _PeerChannel(self, recipient)
            self._channels[recipient] = channel
        channel.next_seq += 1
        frame = encode_data(
            key, self.party, recipient, self.incarnation, channel.next_seq, encoded
        )
        channel.enqueue(channel.next_seq, frame)

    def broadcast(self, sender: int, payload: object) -> None:
        """Send to every known party, including the local one."""
        for recipient in self.parties:
            self.send(sender, recipient, payload)

    def _hello_frame(self, peer: int) -> bytes:
        return encode_hello(
            self.channel_keys[peer], self.party, peer, self.incarnation
        )

    # -- receiving ---------------------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._handle_connection(reader, writer)
        )
        task.add_done_callback(self._on_task_done)
        self._tasks.add(task)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one inbound connection until it misbehaves or closes.

        Any violation — oversized length, garbage framing, a bad HMAC,
        an undecodable payload — drops the connection on the spot; the
        honest peer's sender task will redial and retransmit.
        """
        peer = None
        try:
            body = await self._read_frame(reader)
            peer, incarnation = decode_hello(
                body, self.party, self.channel_keys.get
            )
            inbound = self._inbound.get(peer)
            if inbound is None or inbound.incarnation != incarnation:
                # A restarted peer gets a fresh replay namespace.
                inbound = _InboundChannel(incarnation=incarnation)
                self._inbound[peer] = inbound
            while True:
                body = await self._read_frame(reader)
                if self._inbound.get(peer) is not inbound:
                    # A newer connection from a restarted peer replaced
                    # this channel while we were suspended in the read;
                    # updating the orphaned object would silently drop
                    # its replay bookkeeping.  Drop the old connection.
                    raise ConnectionResetError("superseded inbound channel")
                if self._closed:
                    return
                if not self.faults.link_up(peer, self.party):
                    # Partition enforced on the receive side too, so a
                    # cut holds even when only one endpoint has a plan.
                    self.trace.bump("chaos.partitioned")
                    raise ConnectionResetError("chaos: link severed")
                incarnation, seq, payload_bytes = decode_data(
                    body, self.channel_keys[peer], peer, self.party
                )
                if incarnation != inbound.incarnation:
                    raise TransportError("stale incarnation")
                if seq > inbound.last_seq:
                    inbound.last_seq = seq
                    payload = wire.loads(payload_bytes)
                    self._dispatch(peer, payload)
                else:
                    self.trace.bump("transport.duplicates")
                # Cumulative ack (sent even for duplicates: the sender
                # only retransmitted because an earlier ack was lost).
                writer.write(encode_ack(
                    self.channel_keys[peer], self.party, peer,
                    inbound.incarnation, inbound.last_seq,
                ))
                await writer.drain()
        except (TransportError, wire.WireError):
            self.trace.bump("transport.rejected")
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            self.trace.bump("transport.disconnects")
        finally:
            writer.close()

    async def _read_frame(self, reader: asyncio.StreamReader) -> bytes:
        header = await reader.readexactly(4)
        length = int.from_bytes(header, "big")
        if length == 0 or length > MAX_FRAME_BODY:
            raise TransportError("frame length out of bounds")
        return await reader.readexactly(length)

    def _deliver_local(self, encoded: bytes) -> None:
        try:
            payload = wire.loads(encoded)
        except wire.WireError:
            self.trace.bump("transport.rejected")
            return
        self._dispatch(self.party, payload)

    def _dispatch(self, sender: int, payload: object) -> None:
        if self._closed or self.node is None:
            return
        self.trace.record_delivery(None)
        try:
            self.node.on_message(sender, payload)
        except Exception as exc:  # a handler bug must not kill the link
            self.errors.append(exc)
            self.trace.bump("transport.handler_errors")
            if os.environ.get("REPRO_DEBUG"):
                traceback.print_exception(exc)
        self._delivery_event.set()

    # -- waiting -----------------------------------------------------------

    async def wait_until(
        self, predicate: Callable[[], bool], timeout: float | None = None
    ) -> None:
        """Block until ``predicate()`` holds, re-checking after every
        local delivery; raises ``asyncio.TimeoutError`` on timeout."""
        async def _poll() -> None:
            while not predicate():
                if self._closed:
                    raise TransportError("transport closed while waiting")
                self._delivery_event.clear()
                await self._delivery_event.wait()

        await asyncio.wait_for(_poll(), timeout)

    # -- task bookkeeping --------------------------------------------------

    def _on_task_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self.errors.append(exc)
            self.trace.bump("transport.task_errors")
