"""Instrumentation: message and crypto-operation accounting.

The benchmark harness regenerates the paper's complexity claims from
measured counts, so the network keeps cheap aggregate statistics about
everything sent and delivered, and protocols can register custom
counters (e.g. "coin flips", "MVBA instances").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["Trace"]


def _kind_of(payload: object) -> str:
    """Best-effort message kind for per-type statistics."""
    if isinstance(payload, tuple) and payload:
        return _kind_of(payload[-1])
    return type(payload).__name__


@dataclass
class Trace:
    """Aggregate counters for one network run."""

    sent: int = 0
    delivered: int = 0
    sent_by_kind: Counter = field(default_factory=Counter)
    sent_by_party: Counter = field(default_factory=Counter)
    counters: Counter = field(default_factory=Counter)
    measure_bytes: bool = False
    bytes_sent: int = 0
    bytes_by_kind: Counter = field(default_factory=Counter)

    def enable_byte_accounting(self) -> None:
        """Also account real wire bytes per message (costs one
        serialization per send; off by default)."""
        self.measure_bytes = True

    def record_send(
        self,
        sender: int,
        recipient: int,
        payload: object,
        encoded: bytes | None = None,
    ) -> None:
        """Account one send.

        Byte accounting has a single source of truth — ``wire.dumps`` —
        on every backend: the simulator lets this method serialize the
        payload, while the TCP transport passes the exact ``wire.dumps``
        output it is about to frame as ``encoded`` (framing overhead is
        deliberately excluded, so both backends report identical
        ``bytes_sent`` for identical runs).
        """
        self.sent += 1
        kind = _kind_of(payload)
        self.sent_by_kind[kind] += 1
        self.sent_by_party[sender] += 1
        if self.measure_bytes:
            if encoded is None:
                from . import wire

                try:
                    encoded = wire.dumps(payload)
                except wire.WireError:
                    return  # non-wire payloads (test fixtures) are skipped
            self.bytes_sent += len(encoded)
            self.bytes_by_kind[kind] += len(encoded)

    def record_delivery(self, envelope: object) -> None:
        self.delivered += 1

    def bump(self, name: str, amount: int = 1) -> None:
        """Protocol-defined counter (crypto ops, rounds, instances...)."""
        self.counters[name] += amount

    def snapshot(self) -> dict[str, object]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "by_kind": dict(self.sent_by_kind),
            "counters": dict(self.counters),
        }
