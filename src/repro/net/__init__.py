"""Asynchronous network substrate: the simulator, adversarial
schedulers, corruption harness, tracing, authenticated channels, and
the asyncio TCP transport (``repro.net.transport`` /
``repro.net.runtime``) that runs the same protocol stack over real
sockets."""

from .adversary import (
    CorruptionController,
    CrashNode,
    MutatingNode,
    SilentNode,
    SpamNode,
)
from .attacks import (
    CoinShareReplayer,
    DivergentAbcProposer,
    EquivocatingCbcSender,
    EquivocatingRbcSender,
    TwoFacedVoter,
)
from .base import NetworkBackend
from .channels import ChannelAuthenticator, SignedPayload
from .scheduler import (
    DelayScheduler,
    FifoScheduler,
    PartitionScheduler,
    RandomScheduler,
    ReorderScheduler,
    Scheduler,
    StarvingScheduler,
)
from .simulator import Envelope, LivenessError, Network, Node
from .tracing import Trace
from .transport import TransportError, TransportNetwork

__all__ = [
    "CorruptionController",
    "CrashNode",
    "MutatingNode",
    "SilentNode",
    "SpamNode",
    "CoinShareReplayer",
    "DivergentAbcProposer",
    "EquivocatingCbcSender",
    "EquivocatingRbcSender",
    "TwoFacedVoter",
    "ChannelAuthenticator",
    "NetworkBackend",
    "SignedPayload",
    "DelayScheduler",
    "FifoScheduler",
    "PartitionScheduler",
    "RandomScheduler",
    "ReorderScheduler",
    "Scheduler",
    "StarvingScheduler",
    "Envelope",
    "LivenessError",
    "Network",
    "Node",
    "Trace",
    "TransportError",
    "TransportNetwork",
]
