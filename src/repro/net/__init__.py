"""Asynchronous network substrate: the simulator, adversarial
schedulers, corruption harness, tracing, and authenticated channels."""

from .adversary import (
    CorruptionController,
    CrashNode,
    MutatingNode,
    SilentNode,
    SpamNode,
)
from .attacks import (
    CoinShareReplayer,
    DivergentAbcProposer,
    EquivocatingCbcSender,
    EquivocatingRbcSender,
    TwoFacedVoter,
)
from .channels import ChannelAuthenticator, SignedPayload
from .scheduler import (
    DelayScheduler,
    FifoScheduler,
    PartitionScheduler,
    RandomScheduler,
    ReorderScheduler,
    Scheduler,
    StarvingScheduler,
)
from .simulator import Envelope, LivenessError, Network, Node
from .tracing import Trace

__all__ = [
    "CorruptionController",
    "CrashNode",
    "MutatingNode",
    "SilentNode",
    "SpamNode",
    "CoinShareReplayer",
    "DivergentAbcProposer",
    "EquivocatingCbcSender",
    "EquivocatingRbcSender",
    "TwoFacedVoter",
    "ChannelAuthenticator",
    "SignedPayload",
    "DelayScheduler",
    "FifoScheduler",
    "PartitionScheduler",
    "RandomScheduler",
    "ReorderScheduler",
    "Scheduler",
    "StarvingScheduler",
    "Envelope",
    "LivenessError",
    "Network",
    "Node",
    "Trace",
]
