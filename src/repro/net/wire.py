"""Wire format: safe serialization for every protocol message.

The simulator passes Python objects between nodes; a deployment passes
bytes.  This module closes that gap with a canonical, self-describing,
*safe* encoding (no pickle — deserialization can only ever construct
the registered, frozen message dataclasses), so that

* every protocol message can be measured in real wire bytes (the size
  benchmarks E12/E13 build on the same encoding), and
* the test suite can run entire protocol stacks through a
  byte-serializing network, proving no protocol secretly depends on
  object identity or unserializable state.

Supported values: ``None``, ``bool``, ``int``, ``str``, ``bytes``,
``tuple``, ``frozenset``, ``dict`` (any encodable keys) and registered
dataclasses.  Unknown types raise :class:`WireError` at encode time;
malformed or unregistered input raises at decode time.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

__all__ = ["WireError", "register", "registered_types", "dumps", "loads"]

_MAX_DEPTH = 32
_MAX_LENGTH = 1 << 24


class WireError(ValueError):
    """Malformed, oversized, or unregistered wire data."""


_REGISTRY: dict[str, type] = {}
_LOADED = False


def register(cls: type) -> type:
    """Register a (frozen) dataclass for wire transport."""
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls.__name__} is not a dataclass")
    name = cls.__name__
    if _REGISTRY.get(name, cls) is not cls:
        raise WireError(f"duplicate wire registration for {name}")
    _REGISTRY[name] = cls
    return cls


def registered_types() -> dict[str, type]:
    _ensure_registry()
    return dict(_REGISTRY)


def _ensure_registry() -> None:
    """Populate the registry with every message and crypto object the
    stack sends (imported lazily to avoid cycles)."""
    global _LOADED
    if _LOADED:
        return
    from ..baselines import leader_based
    from ..core import (
        atomic_broadcast,
        binary_agreement,
        cks_agreement,
        consistent_broadcast,
        multivalued_agreement,
        optimistic,
        reliable_broadcast,
        secure_causal,
    )
    from ..crypto import coin, dkg, schnorr, threshold_enc, threshold_sig, zkp
    from ..smr import reconfig, replica, state_machine

    classes = [
        schnorr.Signature,
        zkp.DleqProof,
        zkp.SchnorrProof,
        coin.CoinShare,
        threshold_enc.Ciphertext,
        threshold_enc.DecryptionShare,
        threshold_sig.QuorumCertificate,
        threshold_sig.RsaSignature,
        threshold_sig.RsaSignatureShare,
        reliable_broadcast.RbcSend,
        reliable_broadcast.RbcEcho,
        reliable_broadcast.RbcReady,
        consistent_broadcast.CbcSend,
        consistent_broadcast.CbcEchoSignature,
        consistent_broadcast.CbcFinal,
        consistent_broadcast.CbcDelivery,
        binary_agreement.AbaBval,
        binary_agreement.AbaAux,
        binary_agreement.AbaConf,
        binary_agreement.AbaCoinShare,
        binary_agreement.AbaDone,
        cks_agreement.CksPreVote,
        cks_agreement.CksMainVote,
        cks_agreement.CksCoinShare,
        cks_agreement.CksDone,
        multivalued_agreement.MvbaPermShare,
        multivalued_agreement.MvbaValue,
        multivalued_agreement.MvbaDecision,
        atomic_broadcast.AbcProposal,
        atomic_broadcast.AbcBatchRequest,
        atomic_broadcast.AbcBatch,
        atomic_broadcast.AbcRejoin,
        secure_causal.ScDecryptionShare,
        optimistic.OptForward,
        optimistic.OptOrder,
        optimistic.OptAck,
        optimistic.OptCommit,
        optimistic.OptComplain,
        optimistic.OptState,
        leader_based.PrePrepare,
        leader_based.Prepare,
        leader_based.Commit,
        leader_based.ViewChange,
        leader_based.NewView,
        replica.SubmitRequest,
        replica.SubmitUnordered,
        replica.SubmitEncrypted,
        replica.RecoverQuery,
        replica.RecoverLog,
        state_machine.Request,
        state_machine.Reply,
        dkg.FeldmanTree,
        dkg.DkgCommit,
        dkg.ReshareCommit,
        dkg.DkgStatus,
        dkg.DkgDefense,
        dkg.DkgReady,
        reconfig.EpochError,
        reconfig.MembershipQuery,
        reconfig.MembershipInfo,
    ]
    for cls in classes:
        register(cls)
    _LOADED = True


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def dumps(value: object) -> bytes:
    """Encode a payload into canonical wire bytes."""
    _ensure_registry()
    out = bytearray()
    _write(out, value, depth=0)
    return bytes(out)


def _write(out: bytearray, value: object, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise WireError("value too deeply nested")
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        body = str(value).encode("ascii")
        out += b"I" + len(body).to_bytes(4, "big") + body
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out += b"S" + len(body).to_bytes(4, "big") + body
    elif isinstance(value, bytes):
        out += b"B" + len(value).to_bytes(4, "big") + value
    elif isinstance(value, tuple):
        out += b"L" + len(value).to_bytes(4, "big")
        for item in value:
            _write(out, item, depth + 1)
    elif isinstance(value, frozenset):
        encoded = sorted(dumps_fragment(item, depth + 1) for item in value)
        out += b"E" + len(encoded).to_bytes(4, "big")
        for fragment in encoded:
            out += fragment
    elif isinstance(value, dict):
        encoded = sorted(
            dumps_fragment(key, depth + 1) + dumps_fragment(val, depth + 1)
            for key, val in value.items()
        )
        out += b"D" + len(encoded).to_bytes(4, "big")
        for fragment in encoded:
            out += fragment
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if _REGISTRY.get(name) is not type(value):
            raise WireError(f"unregistered dataclass {name}")
        body = name.encode("ascii")
        out += b"C" + len(body).to_bytes(4, "big") + body
        fields = dataclasses.fields(value)
        out += len(fields).to_bytes(4, "big")
        for field in fields:
            _write(out, getattr(value, field.name), depth + 1)
    else:
        raise WireError(f"cannot encode {type(value).__name__}")


def dumps_fragment(value: object, depth: int) -> bytes:
    fragment = bytearray()
    _write(fragment, value, depth)
    return bytes(fragment)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def loads(data: bytes) -> object:
    """Decode wire bytes; raises :class:`WireError` on any malformation."""
    _ensure_registry()
    value, offset = _read(data, 0, depth=0)
    if offset != len(data):
        raise WireError("trailing bytes")
    return value


def _read_length(data: bytes, offset: int) -> tuple[int, int]:
    if offset + 4 > len(data):
        raise WireError("truncated length")
    length = int.from_bytes(data[offset : offset + 4], "big")
    if length > _MAX_LENGTH:
        raise WireError("length bound exceeded")
    return length, offset + 4


def _read(data: bytes, offset: int, depth: int) -> tuple[object, int]:
    if depth > _MAX_DEPTH:
        raise WireError("wire data too deeply nested")
    if offset >= len(data):
        raise WireError("truncated")
    tag = data[offset : offset + 1]
    offset += 1
    if tag == b"N":
        return None, offset
    if tag == b"T":
        return True, offset
    if tag == b"F":
        return False, offset
    if tag in (b"I", b"S", b"B"):
        length, offset = _read_length(data, offset)
        if offset + length > len(data):
            raise WireError("truncated body")
        body = data[offset : offset + length]
        offset += length
        if tag == b"B":
            return bytes(body), offset
        try:
            text = body.decode("utf-8" if tag == b"S" else "ascii")
        except UnicodeDecodeError as exc:
            raise WireError("bad text encoding") from exc
        if tag == b"S":
            return text, offset
        try:
            return int(text), offset
        except ValueError as exc:
            raise WireError("bad integer") from exc
    if tag == b"L":
        length, offset = _read_length(data, offset)
        items = []
        for _ in range(length):
            item, offset = _read(data, offset, depth + 1)
            items.append(item)
        return tuple(items), offset
    if tag == b"E":
        length, offset = _read_length(data, offset)
        items = []
        for _ in range(length):
            item, offset = _read(data, offset, depth + 1)
            items.append(item)
        try:
            return frozenset(items), offset
        except TypeError as exc:
            raise WireError("unhashable frozenset member") from exc
    if tag == b"D":
        length, offset = _read_length(data, offset)
        out: dict = {}
        for _ in range(length):
            key, offset = _read(data, offset, depth + 1)
            val, offset = _read(data, offset, depth + 1)
            try:
                out[key] = val
            except TypeError as exc:
                raise WireError("unhashable dict key") from exc
        return out, offset
    if tag == b"C":
        length, offset = _read_length(data, offset)
        if offset + length > len(data):
            raise WireError("truncated class name")
        try:
            name = data[offset : offset + length].decode("ascii")
        except UnicodeDecodeError as exc:
            raise WireError("bad class name") from exc
        offset += length
        cls = _REGISTRY.get(name)
        if cls is None:
            raise WireError(f"unknown wire type {name!r}")
        count, offset = _read_length(data, offset)
        expected = dataclasses.fields(cls)
        if count != len(expected):
            raise WireError(f"field count mismatch for {name}")
        values = []
        for _ in range(count):
            value, offset = _read(data, offset, depth + 1)
            values.append(value)
        try:
            return cls(*values), offset
        except (TypeError, ValueError) as exc:
            raise WireError(f"cannot reconstruct {name}") from exc
    raise WireError(f"unknown tag {tag!r}")
