"""Reusable protocol-aware Byzantine behaviors.

The generic chassis in :mod:`repro.net.adversary` (silent, crash, spam,
mutate) covers omission and noise; this module packages the *targeted*
attacks the tests and benchmarks mount against specific protocols, so
experiments can compose them declaratively:

* :class:`EquivocatingRbcSender` — tells different parties different
  values in reliable broadcast;
* :class:`EquivocatingCbcSender` — same against consistent broadcast
  (defeated by quorum-certificate uniqueness);
* :class:`TwoFacedVoter` — votes both ways, confirms everything, and
  spams DONE messages in binary agreement;
* :class:`CoinShareReplayer` — replays observed coin shares under its
  own identity (defeated by share-to-party binding in verification);
* :class:`DivergentAbcProposer` — signs different round-1 batches for
  different peers in atomic broadcast.

Each behavior is a :class:`~repro.net.simulator.Node` that can be
attached in place of an honest server (typically registered through the
:class:`~repro.net.adversary.CorruptionController`).  They are written
against the :class:`~repro.net.base.NetworkBackend` surface, so the
same attack classes run over the deterministic simulator *and* over
the TCP transport (``repro.net.chaos`` attaches them to live
clusters).
"""

from __future__ import annotations

import random
from typing import Hashable

from ..core.atomic_broadcast import AbcProposal, batch_digest, proposal_statement
from ..core.binary_agreement import AbaBval, AbaConf, AbaCoinShare, AbaDone
from ..core.consistent_broadcast import CbcSend
from ..core.reliable_broadcast import RbcSend
from ..crypto.dealer import PartyKeys
from .base import NetworkBackend
from .simulator import Node

__all__ = [
    "EquivocatingRbcSender",
    "EquivocatingCbcSender",
    "TwoFacedVoter",
    "CoinShareReplayer",
    "DivergentAbcProposer",
]


class _OneShot(Node):
    """Fires its attack on the first delivery, then goes silent."""

    def __init__(self, network: NetworkBackend, party: int) -> None:
        self.network = network
        self.party = party
        self.fired = False

    def on_message(self, sender: int, payload: object) -> None:
        if self.fired:
            return
        self.fired = True
        self.attack(sender, payload)

    def attack(self, sender: int, payload: object) -> None:
        raise NotImplementedError


class EquivocatingRbcSender(_OneShot):
    """Split the receivers into two camps with conflicting SENDs.

    Bracha's echo quorums guarantee at most one value can ever be
    delivered; with an even split, typically neither is.
    """

    def __init__(
        self,
        network: NetworkBackend,
        party: int,
        session: tuple,
        value_a: Hashable,
        value_b: Hashable,
        camp_a: list[int],
        camp_b: list[int],
    ) -> None:
        super().__init__(network, party)
        self.session = session
        self.value_a, self.value_b = value_a, value_b
        self.camp_a, self.camp_b = camp_a, camp_b

    def on_start(self) -> None:
        self.fired = True
        for target in self.camp_a:
            self.network.send(self.party, target, (self.session, RbcSend(self.value_a)))
        for target in self.camp_b:
            self.network.send(self.party, target, (self.session, RbcSend(self.value_b)))

    def attack(self, sender: int, payload: object) -> None:  # pragma: no cover
        pass


class EquivocatingCbcSender(_OneShot):
    """The same split against consistent broadcast: signature shares for
    conflicting values cannot both reach a quorum."""

    def __init__(
        self,
        network: NetworkBackend,
        party: int,
        session: tuple,
        value_a: Hashable,
        value_b: Hashable,
        camp_a: list[int],
        camp_b: list[int],
    ) -> None:
        super().__init__(network, party)
        self.session = session
        self.value_a, self.value_b = value_a, value_b
        self.camp_a, self.camp_b = camp_a, camp_b

    def on_start(self) -> None:
        self.fired = True
        for target in self.camp_a:
            self.network.send(self.party, target, (self.session, CbcSend(self.value_a)))
        for target in self.camp_b:
            self.network.send(self.party, target, (self.session, CbcSend(self.value_b)))

    def attack(self, sender: int, payload: object) -> None:  # pragma: no cover
        pass


class TwoFacedVoter(_OneShot):
    """Binary-agreement chaos: support both values in several rounds,
    confirm `{0,1}`, and claim both decisions via DONE."""

    def __init__(self, network: NetworkBackend, party: int, session: tuple,
                 rounds: int = 2) -> None:
        super().__init__(network, party)
        self.session = session
        self.rounds = rounds

    def attack(self, sender: int, payload: object) -> None:
        for r in range(1, self.rounds + 1):
            for value in (0, 1):
                self.network.broadcast(self.party, (self.session, AbaBval(r, value)))
            self.network.broadcast(
                self.party, (self.session, AbaConf(r, frozenset({0, 1})))
            )
        for value in (0, 1):
            self.network.broadcast(self.party, (self.session, AbaDone(value)))


class CoinShareReplayer(Node):
    """Replays every observed coin share under its own identity.

    Verification binds a share to its producing party (the DLEQ proof
    is against that party's verification values), so replays are
    rejected and the coin stays unbiased.
    """

    def __init__(self, network: NetworkBackend, party: int, session: tuple,
                 budget: int = 5) -> None:
        self.network = network
        self.party = party
        self.session = session
        self.budget = budget

    def on_message(self, sender: int, payload: object) -> None:
        if self.budget <= 0 or not (isinstance(payload, tuple) and len(payload) == 2):
            return
        _session, message = payload
        if isinstance(message, AbaCoinShare):
            self.budget -= 1
            self.network.broadcast(self.party, (self.session, message))


class DivergentAbcProposer(_OneShot):
    """Signs a different (validly signed!) round-1 batch for each peer.

    External validity accepts any properly signed proposal, so this is
    allowed adversary behavior; agreement on ONE candidate list is what
    keeps the total order intact.
    """

    def __init__(
        self,
        network: NetworkBackend,
        party: int,
        session: tuple,
        keys: PartyKeys,
        batches: dict[int, tuple],
        seed: int = 0,
    ) -> None:
        super().__init__(network, party)
        self.session = session
        self.keys = keys
        self.batches = batches
        self.rng = random.Random(seed)

    def attack(self, sender: int, payload: object) -> None:
        for target, batch in self.batches.items():
            statement = proposal_statement(self.session, 1, batch_digest(batch))
            signature = self.keys.signing_key.sign(statement, self.rng)
            self.network.send(
                self.party, target, (self.session, AbcProposal(1, batch, signature))
            )
