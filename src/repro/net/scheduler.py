"""Adversarial message schedulers (Section 2.2).

A scheduler *is* the network adversary: at every step it decides which
pending message arrives next.  The asynchronous model grants it total
freedom over ordering and delay, constrained only by eventual delivery
between honest parties.  The schedulers here encode the attacks the
paper argues about:

* :class:`RandomScheduler` — a benign but unordered network (the
  baseline for round-count experiments);
* :class:`FifoScheduler` — an orderly network (fast path);
* :class:`DelayScheduler` — the Section 2.2 attack: starve a chosen
  target set (e.g. the current leader of a deterministic protocol, or
  an honest server a failure detector then falsely suspects) for as
  long as any other traffic exists;
* :class:`PartitionScheduler` — temporarily sever a set of parties, and
  heal after a budget of steps (eventual delivery preserved);
* :class:`ReorderScheduler` — adversarially prefers the *newest*
  messages, maximizing reordering.

All choices draw from the network's seeded RNG, so every attack run is
reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from .simulator import Envelope

__all__ = [
    "Scheduler",
    "FifoScheduler",
    "RandomScheduler",
    "ReorderScheduler",
    "DelayScheduler",
    "StarvingScheduler",
    "PartitionScheduler",
]


class Scheduler:
    """Picks the index of the next envelope to deliver, or None if empty."""

    def select(self, pending: Sequence[Envelope], rng: random.Random) -> int | None:
        raise NotImplementedError


class FifoScheduler(Scheduler):
    """Deliver in send order — the friendliest possible network."""

    def select(self, pending: Sequence[Envelope], rng: random.Random) -> int | None:
        return 0 if pending else None


class RandomScheduler(Scheduler):
    """Deliver a uniformly random pending message."""

    def select(self, pending: Sequence[Envelope], rng: random.Random) -> int | None:
        if not pending:
            return None
        return rng.randrange(len(pending))


class ReorderScheduler(Scheduler):
    """Prefer the most recently sent message (LIFO): maximal reordering."""

    def select(self, pending: Sequence[Envelope], rng: random.Random) -> int | None:
        return len(pending) - 1 if pending else None


class DelayScheduler(Scheduler):
    """Starve a target set of parties as long as other traffic exists.

    Messages to or from targets are delivered only when nothing else is
    pending — the "delay the communication with a server longer than
    the timeout" attack of Section 2.2, pushed to its asynchronous
    limit while still guaranteeing eventual delivery.

    ``targets`` may be a static set or a callable evaluated per step
    (for attacks that follow a moving target, e.g. the rotating leader
    of the deterministic baseline).
    """

    def __init__(
        self,
        targets: set[int] | Callable[[], set[int]],
        delay_from: bool = True,
        delay_to: bool = True,
    ) -> None:
        self._targets = targets
        self.delay_from = delay_from
        self.delay_to = delay_to

    def targets(self) -> set[int]:
        return self._targets() if callable(self._targets) else self._targets

    def _is_delayed(self, envelope: Envelope, targets: set[int]) -> bool:
        if self.delay_from and envelope.sender in targets:
            return True
        if self.delay_to and envelope.recipient in targets:
            return True
        return False

    def select(self, pending: Sequence[Envelope], rng: random.Random) -> int | None:
        if not pending:
            return None
        targets = self.targets()
        fast = [i for i, env in enumerate(pending) if not self._is_delayed(env, targets)]
        pool = fast if fast else list(range(len(pending)))
        return pool[rng.randrange(len(pool))]


class StarvingScheduler(Scheduler):
    """Starve targets by *stalling*: deliver nothing while only target
    traffic is pending, letting victims' timeout clocks run out.

    This is the full Section 2.2 attack against timeout-based designs:
    the adversary lets time pass (``select`` returns ``None`` even
    though messages are pending) until the honest parties' timeouts
    fire, then keeps starving the *new* target.  Eventual delivery is
    preserved: any message older than ``patience`` selections is
    released.  Use with a manual drive loop that ticks protocol
    watchdogs on every selection round — ``Network.run`` treats a
    ``None`` selection as quiescence, which is intended only for
    schedulers that always deliver when something is pending.
    """

    def __init__(self, targets: set[int] | Callable[[], set[int]], patience: int = 500) -> None:
        self._targets = targets
        self.patience = patience
        self.clock = 0
        self._birth: dict[int, int] = {}

    def targets(self) -> set[int]:
        return self._targets() if callable(self._targets) else self._targets

    def select(self, pending: Sequence[Envelope], rng: random.Random) -> int | None:
        self.clock += 1
        if not pending:
            return None
        for env in pending:
            self._birth.setdefault(env.seq, self.clock)
        targets = self.targets()
        fast = [
            i
            for i, env in enumerate(pending)
            if env.sender not in targets and env.recipient not in targets
        ]
        if fast:
            return fast[rng.randrange(len(fast))]
        overdue = [
            i
            for i, env in enumerate(pending)
            if self.clock - self._birth[env.seq] > self.patience
        ]
        if overdue:
            return overdue[0]
        return None  # stall: let the victims' timeouts burn


class PartitionScheduler(Scheduler):
    """Cut a group off for ``duration`` deliveries, then heal.

    While the partition holds, messages crossing the cut are postponed;
    after ``duration`` total deliveries the partition heals and the
    scheduler behaves randomly — modeling a transient outage of, say,
    one site of Example 2's multi-site deployment.
    """

    def __init__(self, isolated: set[int], duration: int) -> None:
        self.isolated = set(isolated)
        self.duration = duration
        self._delivered = 0

    def _crosses_cut(self, envelope: Envelope) -> bool:
        return (envelope.sender in self.isolated) != (envelope.recipient in self.isolated)

    def select(self, pending: Sequence[Envelope], rng: random.Random) -> int | None:
        if not pending:
            return None
        self._delivered += 1
        if self._delivered > self.duration:
            return rng.randrange(len(pending))
        allowed = [i for i, env in enumerate(pending) if not self._crosses_cut(env)]
        pool = allowed if allowed else list(range(len(pending)))
        return pool[rng.randrange(len(pool))]
