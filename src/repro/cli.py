"""Command-line interface: deal keys, run demos, inspect structures.

Gives the library a direct operational surface::

    python -m repro deal --n 4 --t 1 --out ./deployment
    python -m repro demo notary
    python -m repro demo directory --corrupt 1
    python -m repro structure example2
    python -m repro attack leader
    python -m repro lint src/repro --format json
    python -m repro demo-cluster --n 4 --t 1
    python -m repro run-replica --dir ./deployment --party 2
    python -m repro run-client --dir ./deployment --op "set k v" --op "get k"

Every simulator command is deterministic given ``--seed``; the
``run-replica`` / ``run-client`` / ``demo-cluster`` family runs over
real TCP sockets (see docs/DEPLOYMENT.md) and is as deterministic as
the operating system's scheduler.
"""

from __future__ import annotations

import argparse
import random
import sys

__all__ = ["main"]


def _cmd_deal(args: argparse.Namespace) -> int:
    from .adversary import example1_access_formula, example1_structure
    from .adversary import example2_access_formula, example2_structure
    from .crypto import deal_system, default_group, small_group
    from .crypto.keystore import write_deployment

    rng = random.Random(args.seed)
    group = default_group() if args.full_strength else small_group()
    if args.structure == "example1":
        keys = deal_system(
            9, rng, structure=example1_structure(),
            access_formula=example1_access_formula(), group=group,
        )
    elif args.structure == "example2":
        keys = deal_system(
            16, rng, structure=example2_structure(),
            access_formula=example2_access_formula(), group=group,
        )
    elif args.hybrid:
        b, c = (int(x) for x in args.hybrid.split(","))
        keys = deal_system(args.n, rng, hybrid=(b, c), group=group,
                           clients=args.clients)
    else:
        keys = deal_system(args.n, rng, t=args.t, group=group,
                           clients=args.clients)
    paths = write_deployment(keys, args.out)
    print(f"dealt {keys.public.quorum.describe()}")
    for path in paths:
        print(f"  wrote {path}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .apps import (
        CaClient,
        CertificationAuthority,
        DirectoryClient,
        DirectoryService,
        NotaryClient,
        NotaryService,
    )
    from .net import SilentNode
    from .smr import build_service

    factories = {
        "directory": (DirectoryService, False),
        "ca": (CertificationAuthority, False),
        "notary": (NotaryService, True),
    }
    factory, causal = factories[args.service]
    deployment = build_service(
        args.n, factory, t=args.t, causal=causal, seed=args.seed
    )
    for server in range(args.corrupt):
        victim = args.n - 1 - server
        deployment.controller.corrupt(deployment.network, victim, SilentNode())
        print(f"corrupted server {victim} (silent)")
    raw_client = deployment.new_client()
    deployment.network.start()

    if args.service == "directory":
        client = DirectoryClient(raw_client)
        nonces = [client.bind("demo/name", "value-1"), client.resolve("demo/name")]
    elif args.service == "ca":
        client = CaClient(raw_client)
        nonces = [
            client.request_certificate("demo-user", 0xD3F0,
                                       {"name": "Demo", "email": "demo@example"}),
            client.lookup("demo-user"),
        ]
    else:
        client = NotaryClient(raw_client, confidential=True)
        nonces = [client.register(b"demo document")]
    results = deployment.run_until_complete(raw_client, nonces, max_steps=1_500_000)
    for nonce in nonces:
        print(f"request {nonce} ->", results[nonce].result)
    print(f"messages delivered: {deployment.network.delivered_count}")
    snapshots = {r.state_machine.snapshot() for r in deployment.honest_replicas()}
    deployment.network.run(max_steps=1_500_000)
    snapshots = {r.state_machine.snapshot() for r in deployment.honest_replicas()}
    print(f"honest replicas consistent: {len(snapshots) == 1}")
    return 0


def _parse_operation(text: str) -> tuple:
    """``"set key value"`` / ``"get key"`` -> a KeyValueStore operation."""
    parts = text.split()
    if len(parts) == 3 and parts[0] == "set":
        value: object = parts[2]
        try:
            value = int(parts[2])
        except ValueError:
            pass
        return ("set", parts[1], value)
    if len(parts) == 2 and parts[0] == "get":
        return ("get", parts[1])
    raise SystemExit(f"cannot parse operation {text!r} (use 'set K V' or 'get K')")


def _cmd_run_replica(args: argparse.Namespace) -> int:
    import asyncio

    from .net.runtime import serve_replica

    return asyncio.run(
        serve_replica(
            args.dir, args.party, recover=args.recover,
            byzantine=args.byzantine, journal=args.journal,
            checkpoint_every=args.checkpoint_every,
            dkg_boot=args.dkg, join=args.join,
        )
    )


def _cmd_reconfig(args: argparse.Namespace) -> int:
    import asyncio

    from .net.runtime import submit_reconfigure

    result = asyncio.run(
        submit_reconfigure(
            args.dir, args.action, signer=args.signer, party=args.party,
            verify_key=args.verify_key, host=args.host, port=args.port,
            timeout=args.timeout,
        )
    )
    print(f"reconfigure {args.action}: {result!r}")
    return 0 if isinstance(result, tuple) and "accepted" in result else 1


def _cmd_run_client(args: argparse.Namespace) -> int:
    import asyncio

    from .crypto.dealer import CLIENT_BASE
    from .net.runtime import run_client_ops

    if args.op:
        operations = [_parse_operation(op) for op in args.op]
    else:
        operations = [("set", "demo", 1), ("get", "demo")]
    results = asyncio.run(
        run_client_ops(
            args.dir, operations,
            client_id=args.client if args.client is not None else CLIENT_BASE,
            timeout=args.timeout,
        )
    )
    for operation, result in zip(operations, results):
        print(f"{operation!r} -> {result!r}")
    return 0


def _cmd_demo_cluster(args: argparse.Namespace) -> int:
    from .net.runtime import demo_cluster

    return demo_cluster(
        n=args.n,
        t=args.t,
        seed=args.seed,
        directory=args.dir,
        keep=args.keep,
        timeout=args.timeout,
        dkg=args.dkg,
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .net import chaos

    if args.chaos_command == "list":
        for name, scenario in sorted(chaos.builtin_scenarios().items()):
            print(
                f"{name}: n={scenario.n} t={scenario.t} seed={scenario.seed} "
                f"ops={scenario.ops} events={len(scenario.events)} "
                f"byzantine={dict(scenario.byzantine) or '{}'}"
            )
        return 0
    if args.chaos_command == "run":
        scenario = chaos.resolve_scenario(args.scenario, seed=args.chaos_seed)
        return chaos.run_scenario(
            scenario, directory=args.dir, keep=args.keep,
            journal_out=args.journal,
            failure_out=args.failure_json,
            scenario_ref=args.scenario,
        )
    return chaos.replay_journal(
        args.journal, seed=args.chaos_seed, execute=args.execute,
        directory=args.dir, keep=args.keep,
    )


def _cmd_structure(args: argparse.Namespace) -> int:
    from .adversary import (
        example1_structure,
        example2_structure,
        threshold_structure,
    )

    if args.which == "example1":
        structure = example1_structure()
    elif args.which == "example2":
        structure = example2_structure()
    else:
        structure = threshold_structure(args.n, args.t)
    print(structure.describe() if len(structure.maximal_sets) <= 40 else
          f"AdversaryStructure(n={structure.n}, |A*|={len(structure.maximal_sets)})")
    print("Q^3:", structure.satisfies_q3())
    print("max corruptible coalition:", structure.max_corruptible_size())
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    if args.target == "leader":
        # Reuse the example's logic inline (it is self-checking).
        import runpy
        import pathlib

        script = pathlib.Path(__file__).resolve().parents[2] / "examples" / (
            "agreement_under_attack.py"
        )
        if script.exists():
            runpy.run_path(str(script), run_name="__main__")
            return 0
        print("examples/agreement_under_attack.py not found", file=sys.stderr)
        return 1
    print(f"unknown attack target {args.target}", file=sys.stderr)
    return 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from . import bench

    if args.mode == "guard":
        return bench.main_guard(
            crypto_fresh=args.crypto_fresh,
            e2e_fresh=args.e2e_fresh,
            crypto_committed=args.crypto_committed,
            e2e_committed=args.e2e_committed,
            tolerance=args.tolerance,
        )
    if args.mode == "e2e":
        out = args.out if args.out is not None else "BENCH_e2e.json"
        return bench.main_e2e(seed=args.seed, out=out, smoke=args.smoke)
    out = args.out if args.out is not None else "BENCH_crypto.json"
    return bench.main(seed=args.seed, out=out, smoke=args.smoke)


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .net import sweep
    from .net.chaos import ScenarioError

    if args.grid is not None:
        path = pathlib.Path(args.grid)
        if not path.exists():
            print(f"sweep: no such grid file {args.grid}", file=sys.stderr)
            return 2
        try:
            spec = sweep.SweepSpec.from_json(json.loads(path.read_text()))
        except (ScenarioError, ValueError) as exc:
            print(f"sweep: invalid grid {args.grid}: {exc}", file=sys.stderr)
            return 2
    elif args.smoke:
        spec = sweep.smoke_spec()
    else:
        spec = sweep.nightly_spec()
    return sweep.run_sweep(
        spec,
        out=args.out,
        markdown=args.markdown,
        repro_dir=args.repro_dir,
        workers=args.workers,
        tcp_override=args.tcp,
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    import pathlib

    from .analysis import engine, rules

    try:
        rule_ids = args.rules.split(",") if args.rules else None
        if rule_ids is not None:
            rules.rules_by_id(rule_ids)  # validate before any file IO
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return 2

    paths = [pathlib.Path(p) for p in (args.paths or ["src/repro"])]
    if args.no_baseline:
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = pathlib.Path(args.baseline)
    else:
        # Default: lint-baseline.json next to the first path's repo root
        # (the directory that contains src/), else the current directory.
        anchor = paths[0].resolve()
        baseline_path = pathlib.Path(engine.DEFAULT_BASELINE_NAME)
        for parent in (anchor, *anchor.parents):
            candidate = parent / engine.DEFAULT_BASELINE_NAME
            if candidate.exists():
                baseline_path = candidate
                break

    if args.no_cache:
        cache_path = None
    else:
        # The cache lives next to the baseline (i.e. at the repo root);
        # with --no-baseline it sits in the current directory.
        anchor_dir = (
            baseline_path.parent if baseline_path is not None else pathlib.Path(".")
        )
        cache_path = anchor_dir / ".lint-cache.json"

    try:
        report = engine.run_lint(
            paths,
            rule_ids=rule_ids,
            baseline_path=baseline_path,
            jobs=args.jobs,
            cache_path=cache_path,
        )
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or pathlib.Path(engine.DEFAULT_BASELINE_NAME)
        engine.write_baseline(report, target)
        print(f"wrote {len(report.diagnostics) + len(report.baselined)} "
              f"finding(s) to {target}")
        return 0

    if args.format == "json":
        print(engine.format_json(report))
    elif args.format == "sarif":
        from .analysis import sarif

        print(sarif.format_sarif(report))
    else:
        print(report.format_text(verbose=args.verbose))
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributing Trust on the Internet — reproduction CLI",
    )
    parser.add_argument("--seed", type=int, default=0, help="deterministic seed")
    sub = parser.add_subparsers(dest="command", required=True)

    deal = sub.add_parser("deal", help="run the trusted dealer, write key files")
    deal.add_argument("--n", type=int, default=4)
    deal.add_argument("--t", type=int, default=1)
    deal.add_argument("--hybrid", help="b,c hybrid budgets (exclusive with --t)")
    deal.add_argument(
        "--structure", choices=["example1", "example2"],
        help="use a generalized structure from the paper",
    )
    deal.add_argument("--out", default="./deployment")
    deal.add_argument(
        "--full-strength", action="store_true",
        help="256-bit group instead of the fast test group",
    )
    deal.add_argument(
        "--clients", type=int, default=0,
        help="provision channel keys for this many client identities",
    )
    deal.set_defaults(func=_cmd_deal)

    demo = sub.add_parser("demo", help="run a replicated service end to end")
    demo.add_argument("service", choices=["directory", "ca", "notary"])
    demo.add_argument("--n", type=int, default=4)
    demo.add_argument("--t", type=int, default=1)
    demo.add_argument("--corrupt", type=int, default=1,
                      help="how many servers to silence")
    demo.set_defaults(func=_cmd_demo)

    run_replica = sub.add_parser(
        "run-replica",
        help="serve one replica over TCP from a dealt deployment",
        description=(
            "Load public.json, server-<party>.json and cluster.json from --dir, "
            "then serve the replica until SIGTERM/SIGINT. With --recover, run "
            "Section-6 crash recovery (state transfer from peers) on startup."
        ),
    )
    run_replica.add_argument("--dir", required=True, help="deployment directory")
    run_replica.add_argument("--party", type=int, required=True)
    run_replica.add_argument("--recover", action="store_true",
                             help="rebuild state from peers before serving")
    run_replica.add_argument(
        "--byzantine", default=None,
        choices=["silent", "spam", "equivocate"],
        help="start this party corrupted (chaos testing)",
    )
    run_replica.add_argument(
        "--journal", action="store_true",
        help="append executed operations to journal/exec-<party>.jsonl",
    )
    run_replica.add_argument(
        "--checkpoint-every", type=int, default=0,
        help="persist an authenticated checkpoint every N executions",
    )
    run_replica.add_argument(
        "--dkg", action="store_true",
        help="boot dealerless: run distributed key generation from "
             "bootstrap-<party>.json, then serve",
    )
    run_replica.add_argument(
        "--join", action="store_true",
        help="join a live cluster as a new member: wait for the ordered "
             "Reconfigure(add) and the verifiable resharing",
    )
    run_replica.set_defaults(func=_cmd_run_replica)

    reconfig_cmd = sub.add_parser(
        "reconfig",
        help="submit a signed membership change to a live cluster",
        description=(
            "Sign a Reconfigure operation with a current member's identity "
            "key (server-<signer>.json) and order it through the running "
            "cluster's atomic broadcast. On commit the cluster reshares to "
            "the new membership and opens the next epoch."
        ),
    )
    reconfig_cmd.add_argument("--dir", required=True, help="deployment directory")
    reconfig_cmd.add_argument("action", choices=["add", "remove", "refresh"])
    reconfig_cmd.add_argument("--signer", type=int, default=0,
                              help="member whose key signs the change")
    reconfig_cmd.add_argument("--party", type=int, default=-1,
                              help="joining/leaving replica id")
    reconfig_cmd.add_argument("--verify-key", type=int, default=0,
                              help="joiner's identity verify key (add only)")
    reconfig_cmd.add_argument("--host", default="", help="joiner's host (add only)")
    reconfig_cmd.add_argument("--port", type=int, default=0,
                              help="joiner's port (add only)")
    reconfig_cmd.add_argument("--timeout", type=float, default=60.0)
    reconfig_cmd.set_defaults(func=_cmd_reconfig)

    run_client = sub.add_parser(
        "run-client",
        help="submit requests to a TCP cluster and await signed answers",
    )
    run_client.add_argument("--dir", required=True, help="deployment directory")
    run_client.add_argument("--client", type=int, default=None,
                            help="client identity (default: first dealt client)")
    run_client.add_argument("--op", action="append",
                            help="operation, e.g. 'set key value' or 'get key'")
    run_client.add_argument("--timeout", type=float, default=60.0)
    run_client.set_defaults(func=_cmd_run_client)

    demo_cluster = sub.add_parser(
        "demo-cluster",
        help="spawn an n-server TCP cluster and run a fault-injecting workload",
        description=(
            "Deal keys, spawn n replica subprocesses over localhost TCP, run a "
            "client workload end to end — killing one replica mid-run and "
            "restarting it with crash recovery — and verify the restarted "
            "replica rebuilt the full history. Exits 0 on success."
        ),
    )
    demo_cluster.add_argument("--n", type=int, default=4)
    demo_cluster.add_argument("--t", type=int, default=1)
    demo_cluster.add_argument("--dir", default=None,
                              help="deployment directory (default: a temp dir)")
    demo_cluster.add_argument("--keep", action="store_true",
                              help="keep the deployment directory afterwards")
    demo_cluster.add_argument("--timeout", type=float, default=60.0,
                              help="per-request completion timeout")
    demo_cluster.add_argument(
        "--dkg", action="store_true",
        help="dealerless variant: boot via DKG, then add and remove a "
             "member on the live cluster (epochs 0 -> 1 -> 2)",
    )
    demo_cluster.set_defaults(func=_cmd_demo_cluster)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault injection against a live TCP cluster",
        description=(
            "Run declarative chaos scenarios — network partitions with "
            "scheduled heal, frame loss/corruption/duplication/reordering, "
            "SIGKILL and recovery, SIGSTOP/SIGCONT, corrupted-checkpoint "
            "restarts and Byzantine replicas — against a real TCP cluster, "
            "with continuous safety (prefix-consistent honest logs, no "
            "committed op lost) and liveness (quiescent-window completion "
            "bound) checking. The fault schedule is a deterministic "
            "function of the seed; 'replay' verifies it. See docs/CHAOS.md."
        ),
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_run = chaos_sub.add_parser(
        "run", help="execute a scenario and write its run journal"
    )
    chaos_run.add_argument(
        "--scenario", default="torture",
        help="builtin scenario name or path to a JSON spec "
             "(see 'chaos list'; default: torture)",
    )
    chaos_run.add_argument("--seed", type=int, default=None, dest="chaos_seed",
                           help="override the scenario's seed")
    chaos_run.add_argument("--dir", default=None,
                           help="working directory (default: a temp dir)")
    chaos_run.add_argument("--keep", action="store_true",
                           help="keep the working directory afterwards")
    chaos_run.add_argument("--journal", default="chaos-journal.json",
                           help="where to write the run journal")
    chaos_run.add_argument(
        "--failure-json", default="chaos-failure.json", dest="failure_json",
        help="where to write a machine-readable failure record (violation "
             "kinds, seed, scenario) when a checker fires",
    )
    chaos_run.set_defaults(func=_cmd_chaos)
    chaos_replay = chaos_sub.add_parser(
        "replay",
        help="re-derive a recorded run's fault schedule and verify it",
    )
    chaos_replay.add_argument("--journal", default="chaos-journal.json",
                              help="run journal written by 'chaos run'")
    chaos_replay.add_argument("--seed", type=int, default=None,
                              dest="chaos_seed",
                              help="re-run under a different seed")
    chaos_replay.add_argument("--execute", action="store_true",
                              help="also re-run the scenario for real")
    chaos_replay.add_argument("--dir", default=None)
    chaos_replay.add_argument("--keep", action="store_true")
    chaos_replay.set_defaults(func=_cmd_chaos)
    chaos_list = chaos_sub.add_parser("list", help="list builtin scenarios")
    chaos_list.set_defaults(func=_cmd_chaos)

    structure = sub.add_parser("structure", help="inspect an adversary structure")
    structure.add_argument("which", choices=["threshold", "example1", "example2"])
    structure.add_argument("--n", type=int, default=4)
    structure.add_argument("--t", type=int, default=1)
    structure.set_defaults(func=_cmd_structure)

    attack = sub.add_parser("attack", help="run a scheduling-attack demonstration")
    attack.add_argument("target", choices=["leader"])
    attack.set_defaults(func=_cmd_attack)

    bench = sub.add_parser(
        "bench",
        help="run the tracked benchmarks (crypto microbenchmarks or e2e TCP)",
        description=(
            "'crypto' (default): microbenchmarks for multi-exponentiation, "
            "fixed-base tables and batched share verification, plus "
            "n in {4,7,16} binary-agreement end-to-end timings "
            "(BENCH_crypto.json). 'e2e': committed ops/sec of a live n=4 TCP "
            "cluster under open-loop client load, unbatched baseline vs "
            "batched+pipelined atomic broadcast (BENCH_e2e.json). See "
            "docs/PERFORMANCE.md."
        ),
    )
    bench.add_argument("mode", nargs="?", default="crypto",
                       choices=["crypto", "e2e", "guard"],
                       help="benchmark family to run, or 'guard' to compare "
                            "fresh numbers against the committed artifacts "
                            "(default: crypto)")
    bench.add_argument("--out", default=None,
                       help="output JSON path (default: BENCH_crypto.json "
                            "or BENCH_e2e.json by mode)")
    bench.add_argument("--smoke", action="store_true",
                       help="minimal repeats/sizes; wiring check for CI")
    bench.add_argument("--crypto-fresh", default=None, dest="crypto_fresh",
                       help="guard: freshly produced crypto bench JSON")
    bench.add_argument("--e2e-fresh", default=None, dest="e2e_fresh",
                       help="guard: freshly produced e2e bench JSON")
    bench.add_argument("--crypto-committed", default="BENCH_crypto.json",
                       dest="crypto_committed",
                       help="guard: committed crypto artifact to compare to")
    bench.add_argument("--e2e-committed", default="BENCH_e2e.json",
                       dest="e2e_committed",
                       help="guard: committed e2e artifact to compare to")
    bench.add_argument("--tolerance", type=float, default=0.30,
                       help="guard: max fractional regression before failing "
                            "(default 0.30)")
    bench.set_defaults(func=_cmd_bench)

    sweep = sub.add_parser(
        "sweep",
        help="grid-driven chaos campaign over shapes, faults, latency and load",
        description=(
            "Expand a declarative sweep grid into concrete chaos scenarios "
            "and run them — in-process simulator cells for breadth plus a "
            "sampled subset on the real subprocess TCP cluster for depth — "
            "judging every run with the safety/liveness oracles. Writes a "
            "schema-stable SWEEP.json, an optional markdown table, and a "
            "self-contained repro bundle (accepted verbatim by 'chaos "
            "replay') for every violating cell. Exits 0 iff every cell "
            "matched its expectation. See docs/CHAOS.md."
        ),
    )
    sweep.add_argument("--smoke", action="store_true",
                       help="run the small PR-gate grid instead of the "
                            "nightly campaign")
    sweep.add_argument("--grid", default=None,
                       help="path to a JSON SweepSpec (overrides --smoke)")
    sweep.add_argument("--out", default="SWEEP.json",
                       help="aggregated report path (default: SWEEP.json)")
    sweep.add_argument("--markdown", default=None,
                       help="also render a markdown table to this path")
    sweep.add_argument("--repro-dir", default="sweep-repro", dest="repro_dir",
                       help="directory for failing-cell repro bundles")
    sweep.add_argument("--workers", type=int, default=None,
                       help="simulator worker processes (<=1 runs inline)")
    sweep.add_argument("--tcp", type=int, default=None,
                       help="override the grid's TCP cell count (0 disables)")
    sweep.set_defaults(func=_cmd_sweep)

    lint = sub.add_parser(
        "lint",
        help="run the protocol-invariant static analysis (rules RL001-RL009)",
        description=(
            "AST-based checks for the invariants the protocol stack relies on: "
            "quorum abstraction (RL001), verified-result gating (RL002), "
            "determinism (RL003), wire registration/handling (RL004), async "
            "hygiene (RL005), whole-program taint flow (RL006/RL007) and "
            "async interleaving safety (RL008/RL009). "
            "See docs/STATIC_ANALYSIS.md."
        ),
    )
    lint.add_argument("paths", nargs="*", help="files or directories (default: src/repro)")
    lint.add_argument("--format", choices=["text", "json", "sarif"], default="text")
    lint.add_argument("--jobs", type=int, default=None,
                      help="parse/check files in N worker processes")
    lint.add_argument("--rules", help="comma-separated rule ids, e.g. RL001,RL003")
    lint.add_argument("--baseline", help="baseline file (default: nearest lint-baseline.json)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report every finding, ignoring the baseline")
    lint.add_argument("--write-baseline", action="store_true",
                      help="snapshot current findings into the baseline file")
    lint.add_argument("--no-cache", action="store_true",
                      help="bypass the incremental result cache (.lint-cache.json)")
    lint.add_argument("-v", "--verbose", action="store_true",
                      help="also summarize baselined findings")
    lint.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
