"""RSA key generation for Shoup's threshold signature scheme [35].

The modulus is a product of two *safe* primes ``p = 2p' + 1`` and
``q = 2q' + 1``; the signing exponent ``d`` is shared over ``Z_m`` with
``m = p'q'`` (kept secret by the dealer).  Safe primes guarantee that
the squares modulo ``N`` form a cyclic group of order ``m`` in which
the share-correctness proofs are sound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .numtheory import is_probable_prime, modinv, random_safe_prime

__all__ = ["RsaModulus", "generate_rsa_modulus", "choose_public_exponent"]


@dataclass(frozen=True)
class RsaModulus:
    """An RSA modulus from safe primes, with the dealer's trapdoor.

    Attributes:
        n_modulus: ``N = p·q``.
        m: the order ``p'·q'`` of the squares mod ``N`` (dealer secret).
    """

    p: int
    q: int
    n_modulus: int
    m: int


def generate_rsa_modulus(bits: int, rng: random.Random) -> RsaModulus:
    """Generate ``N = pq`` with ``p, q`` distinct safe primes of ``bits/2`` bits."""
    half = bits // 2
    sp1 = random_safe_prime(half, rng)
    while True:
        sp2 = random_safe_prime(half, rng)
        if sp2.p != sp1.p:
            break
    return RsaModulus(
        p=sp1.p,
        q=sp2.p,
        n_modulus=sp1.p * sp2.p,
        m=sp1.q * sp2.q,
    )


def choose_public_exponent(modulus: RsaModulus, minimum: int) -> int:
    """Smallest prime ``e > minimum`` that is invertible mod ``m``.

    Shoup's scheme needs ``e`` to be a prime larger than the number of
    parties so that the integer Lagrange coefficients are invertible
    modulo ``e`` during share combination.
    """
    candidate = max(minimum, 2) + 1
    while True:
        if is_probable_prime(candidate) and modulus.m % candidate != 0:
            try:
                modinv(candidate, modulus.m)
                return candidate
            except ValueError:
                pass
        candidate += 1
