"""Linear secret sharing for general access structures (Benaloh-Leichter).

Section 4.2 requires, for every generalized Q^3 adversary structure, a
*linear* secret sharing scheme realizing the corresponding access
structure [4, 13].  The Benaloh-Leichter construction walks the
monotone threshold-gate formula:

* at a leaf for party ``i``, the current value becomes a subshare of
  party ``i``;
* at a gate ``Θ_k^m``, the current value is Shamir-shared with
  threshold ``k - 1`` among the ``m`` children (AND = additive
  sharing, OR = replication fall out as the special cases).

A party may hold several subshares ("slots"), one per leaf occurrence;
slots are identified by the leaf's path in the formula tree.
Reconstruction is *linear*: for any qualified set there are public
coefficients ``λ`` with ``secret = Σ λ_slot · subshare_slot`` — which is
what lets the threshold coin, the TDH2 cryptosystem and the proactive
resharing operate on shares *in the exponent* without ever
reconstructing the secret (robustness, Section 2.1).

The classical Shamir scheme is the special case of a single
``Θ_{t+1}^n`` gate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..adversary.formulas import Formula, Leaf, Threshold, majority
from .shamir import evaluate_polynomial, lagrange_coefficients

__all__ = ["SlotId", "LsssScheme", "LsssSharing", "threshold_scheme"]

# A slot is the path of a leaf occurrence in the formula tree.
SlotId = tuple[int, ...]


@dataclass(frozen=True)
class LsssSharing:
    """The result of dealing a secret: every party's labelled subshares."""

    shares: dict[int, dict[SlotId, int]]

    def share_of(self, party: int) -> dict[SlotId, int]:
        return self.shares.get(party, {})

    def all_slots(self) -> dict[SlotId, int]:
        """Flat view ``slot -> value`` (slots are globally unique)."""
        flat: dict[SlotId, int] = {}
        for subshares in self.shares.values():
            flat.update(subshares)
        return flat


@dataclass(frozen=True)
class LsssScheme:
    """A linear secret sharing scheme for a monotone access formula.

    Attributes:
        formula: the access formula (qualified sets evaluate to True).
        modulus: prime field order (``q`` of the Schnorr group, or any
            prime for standalone use).
    """

    formula: Formula
    modulus: int

    # Recombination coefficients and the slot->owner map are pure
    # functions of the (frozen) scheme; they sit on the hot path of
    # every combine, so both are memoized per instance.  The caches
    # live in __dict__ via object.__setattr__, leaving dataclass
    # equality/hash semantics untouched.
    _RECOMB_CACHE_MAX = 1024

    def __post_init__(self) -> None:
        object.__setattr__(self, "_recomb_cache", {})
        object.__setattr__(self, "_owner_map", None)

    # -- structure queries -------------------------------------------------

    def slots(self) -> list[tuple[SlotId, int]]:
        """All ``(slot, party)`` pairs in deterministic order."""
        return list(self.formula.leaves())

    def slots_of_party(self, party: int) -> list[SlotId]:
        return [slot for slot, p in self.formula.leaves() if p == party]

    def slot_owner(self, slot: SlotId) -> int:
        owners: dict[SlotId, int] | None = self.__dict__["_owner_map"]
        if owners is None:
            owners = dict(self.formula.leaves())
            object.__setattr__(self, "_owner_map", owners)
        try:
            return owners[slot]
        except KeyError:
            raise KeyError(f"unknown slot {slot}") from None

    def is_qualified(self, present: set[int] | frozenset[int]) -> bool:
        return self.formula.evaluate(frozenset(present))

    # -- dealing -----------------------------------------------------------

    def deal(self, secret: int, rng: random.Random) -> LsssSharing:
        """Share ``secret`` along the formula tree."""
        shares: dict[int, dict[SlotId, int]] = {}

        def descend(node: Formula, value: int, path: SlotId) -> None:
            if isinstance(node, Leaf):
                shares.setdefault(node.party, {})[path] = value % self.modulus
                return
            assert isinstance(node, Threshold)
            m = len(node.children)
            # Shamir with threshold k-1 among m children (points 1..m).
            coeffs = [value % self.modulus] + [
                rng.randrange(self.modulus) for _ in range(node.k - 1)
            ]
            for idx, child in enumerate(node.children):
                child_value = evaluate_polynomial(coeffs, idx + 1, self.modulus)
                descend(child, child_value, (*path, idx))

        descend(self.formula, secret % self.modulus, ())
        return LsssSharing(shares=shares)

    # -- reconstruction ------------------------------------------------------

    def recombination(
        self, present: set[int] | frozenset[int]
    ) -> dict[SlotId, int] | None:
        """Linear coefficients reconstructing the secret from a qualified set.

        Returns ``slot -> λ_slot`` with
        ``secret = Σ λ_slot · subshare_slot  (mod modulus)``, using only
        slots owned by parties in ``present``; ``None`` if the set is
        not qualified.  The choice among multiple qualified subsets is
        deterministic (first ``k`` satisfied children at every gate).

        Results are memoized per qualified set (the same quorum recurs
        on every coin flip of a session); callers receive a copy.
        """
        avail = frozenset(present)
        cache: dict[frozenset[int], dict[SlotId, int] | None] = self.__dict__[
            "_recomb_cache"
        ]
        if avail in cache:
            cached = cache[avail]
            return dict(cached) if cached is not None else None

        def solve(node: Formula, path: SlotId) -> dict[SlotId, int] | None:
            if isinstance(node, Leaf):
                if node.party in avail:
                    return {path: 1}
                return None
            assert isinstance(node, Threshold)
            solved: list[tuple[int, dict[SlotId, int]]] = []
            for idx, child in enumerate(node.children):
                solution = solve(child, (*path, idx))
                if solution is not None:
                    solved.append((idx + 1, solution))
                    if len(solved) == node.k:
                        break
            if len(solved) < node.k:
                return None
            lam = lagrange_coefficients([point for point, _ in solved], self.modulus)
            combined: dict[SlotId, int] = {}
            for point, solution in solved:
                factor = lam[point]
                for slot, coeff in solution.items():
                    combined[slot] = (
                        combined.get(slot, 0) + factor * coeff
                    ) % self.modulus
            return combined

        result = solve(self.formula, ())
        if len(cache) >= self._RECOMB_CACHE_MAX:
            cache.clear()
        cache[avail] = dict(result) if result is not None else None
        return result

    def reconstruct(
        self, sharing: LsssSharing, present: set[int] | frozenset[int]
    ) -> int:
        """Recover the secret from the subshares of a qualified set."""
        lam = self.recombination(present)
        if lam is None:
            raise ValueError(f"set {sorted(present)} is not qualified")
        flat = sharing.all_slots()
        return sum(coeff * flat[slot] for slot, coeff in lam.items()) % self.modulus


def threshold_scheme(n: int, t: int, modulus: int) -> LsssScheme:
    """The ``t+1``-out-of-``n`` scheme as a single-gate LSSS (= Shamir)."""
    return LsssScheme(formula=majority(list(range(n)), t + 1), modulus=modulus)
