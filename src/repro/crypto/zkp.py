"""Non-interactive zero-knowledge proofs of discrete-log relations.

Robustness of every threshold scheme in the architecture rests on each
party proving that its share is valid:

* the coin-tossing scheme of [8] attaches a Chaum-Pedersen proof of
  discrete-log equality (DLEQ) to every coin share;
* the TDH2 cryptosystem [36] uses DLEQ proofs on decryption shares and a
  related proof on ciphertexts;
* plain Schnorr proofs of knowledge authenticate public keys.

All proofs are made non-interactive with the Fiat-Shamir transform in
the random oracle model, which is exactly the proof methodology the
paper adopts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .groups import SchnorrGroup
from .hashing import hash_to_exponent

__all__ = ["DleqProof", "prove_dleq", "verify_dleq", "SchnorrProof",
           "prove_dlog", "verify_dlog"]


@dataclass(frozen=True)
class DleqProof:
    """Proof that log_g(h1) == log_u(h2) for public (g, h1, u, h2)."""

    challenge: int
    response: int


def prove_dleq(
    group: SchnorrGroup,
    g: int,
    u: int,
    secret: int,
    rng: random.Random,
    context: object = None,
) -> DleqProof:
    """Prove knowledge of ``x`` with ``h1 = g^x`` and ``h2 = u^x``.

    ``context`` is bound into the Fiat-Shamir challenge to prevent proof
    replay across protocol sessions (e.g. the coin name or ciphertext).
    """
    h1 = group.exp(g, secret)
    h2 = group.exp(u, secret)
    w = group.random_exponent(rng)
    a1 = group.exp(g, w)
    a2 = group.exp(u, w)
    c = hash_to_exponent(group, "dleq", g, h1, u, h2, a1, a2, context)
    z = (w + c * secret) % group.q
    return DleqProof(challenge=c, response=z)


def verify_dleq(
    group: SchnorrGroup,
    g: int,
    h1: int,
    u: int,
    h2: int,
    proof: DleqProof,
    context: object = None,
) -> bool:
    """Verify a DLEQ proof; returns False on any malformed input."""
    if not all(group.is_member(x) for x in (g, h1, u, h2)):
        return False
    if not (0 < proof.challenge < group.q and 0 <= proof.response < group.q):
        return False
    a1 = group.mul(group.exp(g, proof.response), group.inv(group.exp(h1, proof.challenge)))
    a2 = group.mul(group.exp(u, proof.response), group.inv(group.exp(h2, proof.challenge)))
    expected = hash_to_exponent(group, "dleq", g, h1, u, h2, a1, a2, context)
    return expected == proof.challenge


@dataclass(frozen=True)
class SchnorrProof:
    """Proof of knowledge of ``x`` with ``h = g^x`` (Fiat-Shamir Schnorr)."""

    challenge: int
    response: int


def prove_dlog(
    group: SchnorrGroup,
    secret: int,
    rng: random.Random,
    context: object = None,
) -> SchnorrProof:
    h = group.power_of_g(secret)
    w = group.random_exponent(rng)
    a = group.power_of_g(w)
    c = hash_to_exponent(group, "dlog", group.g, h, a, context)
    z = (w + c * secret) % group.q
    return SchnorrProof(challenge=c, response=z)


def verify_dlog(
    group: SchnorrGroup,
    h: int,
    proof: SchnorrProof,
    context: object = None,
) -> bool:
    if not group.is_member(h):
        return False
    a = group.mul(group.power_of_g(proof.response), group.inv(group.exp(h, proof.challenge)))
    expected = hash_to_exponent(group, "dlog", group.g, h, a, context)
    return expected == proof.challenge
