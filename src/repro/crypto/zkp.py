"""Non-interactive zero-knowledge proofs of discrete-log relations.

Robustness of every threshold scheme in the architecture rests on each
party proving that its share is valid:

* the coin-tossing scheme of [8] attaches a Chaum-Pedersen proof of
  discrete-log equality (DLEQ) to every coin share;
* the TDH2 cryptosystem [36] uses DLEQ proofs on decryption shares and a
  related proof on ciphertexts;
* plain Schnorr proofs of knowledge authenticate public keys.

All proofs are made non-interactive with the Fiat-Shamir transform in
the random oracle model, which is exactly the proof methodology the
paper adopts.

Proofs carry their *commitments* ``(a₁, a₂, z)`` rather than the
``(c, z)`` compression: the verifier recomputes the challenge by
hashing and checks the defining equations ``g^z = a₁·h₁^c`` directly.
This form is what makes **batch verification** possible — the equations
of a whole quorum of shares collapse into one simultaneous
multi-exponentiation via a small-exponent random linear combination
(``verify_dleq_batch``), with soundness error 2^-64; the compressed
form would force recomputing every commitment individually before
hashing, which is exactly the per-share cost batching removes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from .accel import accel_for, batch_coefficients, verify_product_equations
from .groups import SchnorrGroup
from .hashing import hash_to_exponent

__all__ = [
    "DleqProof",
    "prove_dleq",
    "verify_dleq",
    "verify_dleq_batch",
    "SchnorrProof",
    "prove_dlog",
    "verify_dlog",
]


@dataclass(frozen=True)
class DleqProof:
    """Proof that log_g(h1) == log_u(h2) for public (g, h1, u, h2).

    ``commit1 = g^w``, ``commit2 = u^w`` and ``response = w + c·x`` with
    the challenge ``c`` recomputed by the verifier from the transcript.
    """

    commit1: int
    commit2: int
    response: int


def _dleq_challenge(
    group: SchnorrGroup, g: int, h1: int, u: int, h2: int,
    a1: int, a2: int, context: object,
) -> int:
    return hash_to_exponent(group, "dleq", g, h1, u, h2, a1, a2, context)


def prove_dleq(
    group: SchnorrGroup,
    g: int,
    u: int,
    secret: int,
    rng: random.Random,
    context: object = None,
) -> DleqProof:
    """Prove knowledge of ``x`` with ``h1 = g^x`` and ``h2 = u^x``.

    ``context`` is bound into the Fiat-Shamir challenge to prevent proof
    replay across protocol sessions (e.g. the coin name or ciphertext).
    """
    h1 = group.exp(g, secret)
    h2 = group.exp(u, secret)
    w = group.random_exponent(rng)
    a1 = group.exp(g, w)
    a2 = group.exp(u, w)
    c = _dleq_challenge(group, g, h1, u, h2, a1, a2, context)
    z = (w + c * secret) % group.q
    return DleqProof(commit1=a1, commit2=a2, response=z)


def _dleq_well_formed(group: SchnorrGroup, proof: DleqProof) -> bool:
    if not isinstance(proof, DleqProof):
        return False
    return (
        isinstance(proof.commit1, int)
        and isinstance(proof.commit2, int)
        and isinstance(proof.response, int)
        and 0 < proof.commit1 < group.p
        and 0 < proof.commit2 < group.p
        and 0 <= proof.response < group.q
    )


def verify_dleq(
    group: SchnorrGroup,
    g: int,
    h1: int,
    u: int,
    h2: int,
    proof: DleqProof,
    context: object = None,
) -> bool:
    """Verify a DLEQ proof; returns False on any malformed input."""
    accel = accel_for(group)
    if not all(accel.is_member(x) for x in (g, h1, u, h2)):
        return False
    if not _dleq_well_formed(group, proof):
        return False
    a1, a2, z = proof.commit1, proof.commit2, proof.response
    c = _dleq_challenge(group, g, h1, u, h2, a1, a2, context)
    p = group.p
    if accel.exp(g, z) != a1 * accel.exp(h1, c) % p:
        return False
    return accel.exp(u, z) == a2 * accel.exp(h2, c) % p


def verify_dleq_batch(
    group: SchnorrGroup,
    items: Sequence[tuple[int, int, int, int, DleqProof, object]],
) -> bool:
    """Batch-verify DLEQ proofs: ``items`` of ``(g, h1, u, h2, proof, context)``.

    One simultaneous multi-exponentiation checks the whole batch via a
    small-exponent (64-bit) random linear combination; coefficients are
    Fiat-Shamir-derived from the full transcript, so the check is
    deterministic and sound in the random-oracle model (error 2^-64 —
    see docs/PERFORMANCE.md).  The verdict agrees with running
    :func:`verify_dleq` on every item, up to that soundness error;
    callers that need to pinpoint a culprit in a failing batch fall
    back to per-item verification.

    An empty batch is vacuously valid.
    """
    if not items:
        return True
    accel = accel_for(group)
    equations = []
    transcript: list[object] = [group.p, group.g]
    for g, h1, u, h2, proof, context in items:
        if not all(accel.is_member(x) for x in (g, h1, u, h2)):
            return False
        if not _dleq_well_formed(group, proof):
            return False
        a1, a2, z = proof.commit1, proof.commit2, proof.response
        # Commitments must be members too: the exact per-item equation
        # forces this implicitly, the weighted product does not.
        if not (accel.is_member(a1) and accel.is_member(a2)):
            return False
        c = _dleq_challenge(group, g, h1, u, h2, a1, a2, context)
        equations.append((((g, z),), ((a1, 1), (h1, c))))
        equations.append((((u, z),), ((a2, 1), (h2, c))))
        transcript.extend((g, h1, u, h2, a1, a2, z, c))
    coefficients = batch_coefficients("dleq-batch", transcript, len(equations))
    return verify_product_equations(
        group.p, equations, coefficients, order=group.q
    )


@dataclass(frozen=True)
class SchnorrProof:
    """Proof of knowledge of ``x`` with ``h = g^x`` (Fiat-Shamir Schnorr)."""

    commit: int
    response: int


def prove_dlog(
    group: SchnorrGroup,
    secret: int,
    rng: random.Random,
    context: object = None,
) -> SchnorrProof:
    h = group.power_of_g(secret)
    w = group.random_exponent(rng)
    a = group.power_of_g(w)
    c = hash_to_exponent(group, "dlog", group.g, h, a, context)
    z = (w + c * secret) % group.q
    return SchnorrProof(commit=a, response=z)


def verify_dlog(
    group: SchnorrGroup,
    h: int,
    proof: SchnorrProof,
    context: object = None,
) -> bool:
    accel = accel_for(group)
    if not accel.is_member(h):
        return False
    if not isinstance(proof, SchnorrProof):
        return False
    a, z = proof.commit, proof.response
    if not (isinstance(a, int) and isinstance(z, int)):
        return False
    if not (0 < a < group.p and 0 <= z < group.q):
        return False
    c = hash_to_exponent(group, "dlog", group.g, h, a, context)
    return accel.exp(group.g, z) == a * accel.exp(h, c) % group.p
