"""Shamir secret sharing over Z_q.

The classical threshold scheme underlying all threshold cryptography in
Section 2.1: a degree-``t`` polynomial hides the secret in its constant
term; any ``t+1`` shares reconstruct it, any ``t`` reveal nothing.

Shares are evaluated at points ``1..n`` (party indices).  Lagrange
coefficients are exposed separately because the threshold schemes
recombine *in the exponent* (coin, TDH2) or over a secret modulus
(Shoup RSA signatures) rather than reconstructing the secret itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .numtheory import modinv

__all__ = ["Share", "share_secret", "lagrange_coefficients", "reconstruct",
           "evaluate_polynomial"]


@dataclass(frozen=True)
class Share:
    """One party's share: the polynomial evaluated at ``x = index``."""

    index: int
    value: int


def evaluate_polynomial(coeffs: list[int], x: int, modulus: int) -> int:
    """Horner evaluation of a polynomial given low-to-high coefficients."""
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % modulus
    return acc


def share_secret(
    secret: int,
    n: int,
    t: int,
    modulus: int,
    rng: random.Random,
) -> tuple[list[Share], list[int]]:
    """Split ``secret`` into ``n`` shares with threshold ``t``.

    Any ``t+1`` shares reconstruct; ``t`` or fewer are information-
    theoretically independent of the secret.  Returns the shares and the
    polynomial coefficients (the dealer may need them for verification
    keys, e.g. ``g^{f(i)}`` in the coin scheme).
    """
    if not 0 <= t < n:
        raise ValueError(f"invalid threshold t={t} for n={n}")
    coeffs = [secret % modulus] + [rng.randrange(modulus) for _ in range(t)]
    shares = [
        Share(index=i, value=evaluate_polynomial(coeffs, i, modulus))
        for i in range(1, n + 1)
    ]
    return shares, coeffs


def lagrange_coefficients(indices: list[int], modulus: int, at: int = 0) -> dict[int, int]:
    """Lagrange coefficients ``λ_i`` with ``f(at) = Σ λ_i · f(i)``.

    ``indices`` must be distinct evaluation points; ``modulus`` must be
    prime (all arithmetic is in the field Z_modulus).
    """
    if len(set(indices)) != len(indices):
        raise ValueError("duplicate share indices")
    coeffs: dict[int, int] = {}
    for i in indices:
        num, den = 1, 1
        for j in indices:
            if j == i:
                continue
            num = (num * (at - j)) % modulus
            den = (den * (i - j)) % modulus
        coeffs[i] = (num * modinv(den, modulus)) % modulus
    return coeffs


def reconstruct(shares: list[Share], modulus: int, at: int = 0) -> int:
    """Reconstruct the polynomial's value at ``at`` (the secret by default)."""
    indices = [s.index for s in shares]
    lam = lagrange_coefficients(indices, modulus, at=at)
    return sum(lam[s.index] * s.value for s in shares) % modulus
