"""Threshold public-key encryption with CCA2 security (Shoup-Gennaro TDH2).

Secure causal atomic broadcast (Section 3) requires a *robust*
threshold cryptosystem that is secure against adaptive chosen-
ciphertext attacks: clients encrypt their requests under the single
service public key, and the servers jointly decrypt only after the
message's position in the total order is fixed.  CCA2 security is what
defeats the "patent race" attack of Section 5.2 — a corrupted server
must not be able to transform an observed ciphertext into a related
valid one.

This is the TDH2 scheme of [36]:

* ciphertexts carry a Fiat-Shamir proof of knowledge of ``r`` binding
  ``u = g^r`` and ``ū = ĝ^r`` together with the label ``L`` — making
  the scheme plaintext-aware in the random oracle model;
* decryption shares ``u^{x_slot}`` carry Chaum-Pedersen DLEQ proofs
  against the public verification values (robustness);
* key shares follow the generalized LSSS, so both plain thresholds and
  the Section 4 adversary structures are supported.

Messages are arbitrary byte strings (hybrid DEM via a hash-derived
one-time pad, as in the original paper's H1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from .groups import SchnorrGroup
from .hashing import hash_to_exponent, hash_to_group, mgf1, xor_bytes
from .lsss import LsssScheme, SlotId
from .zkp import DleqProof, prove_dleq, verify_dleq, verify_dleq_batch

__all__ = [
    "Ciphertext",
    "DecryptionShare",
    "EncryptionPublic",
    "DecryptionShareholder",
    "deal_encryption",
]


@dataclass(frozen=True)
class Ciphertext:
    """A labelled TDH2 ciphertext ``(c, L, u, ū, e, f)``."""

    payload: bytes  # c = m ⊕ H1(h^r)
    label: bytes  # L, bound into the validity proof
    u: int  # g^r
    u_bar: int  # ĝ^r
    e: int  # Fiat-Shamir challenge
    f: int  # response  f = s + r·e


@dataclass(frozen=True)
class DecryptionShare:
    """One party's decryption shares ``u^{x_slot}`` with DLEQ proofs."""

    party: int
    values: dict[SlotId, int]
    proofs: dict[SlotId, DleqProof]


@dataclass(frozen=True)
class EncryptionPublic:
    """Public key material: encrypt, check ciphertexts, verify shares,
    and combine shares from a qualified set."""

    group: SchnorrGroup
    scheme: LsssScheme
    h: int  # g^x, the service encryption key
    g_bar: int  # second generator ĝ (hashed, so its dlog is unknown)
    verification: dict[SlotId, int]  # slot -> g^{x_slot}

    # -- encryption (client side) ---------------------------------------

    def encrypt(self, message: bytes, label: bytes, rng: random.Random) -> Ciphertext:
        grp = self.group
        r = grp.random_exponent(rng)
        s = grp.random_exponent(rng)
        mask = mgf1(str(grp.exp(self.h, r)).encode("ascii"), len(message), "tdh2-dem")
        payload = xor_bytes(message, mask)
        u = grp.power_of_g(r)
        w = grp.power_of_g(s)
        u_bar = grp.exp(self.g_bar, r)
        w_bar = grp.exp(self.g_bar, s)
        e = hash_to_exponent(grp, "tdh2-e", payload, label, u, w, u_bar, w_bar)
        f = (s + r * e) % grp.q
        return Ciphertext(payload=payload, label=label, u=u, u_bar=u_bar, e=e, f=f)

    # -- validity --------------------------------------------------------

    def check_ciphertext(self, ct: Ciphertext) -> bool:
        """Publicly verify well-formedness (anyone can run this)."""
        grp = self.group
        if not (grp.is_member(ct.u) and grp.is_member(ct.u_bar)):
            return False
        if not (0 < ct.e < grp.q and 0 <= ct.f < grp.q):
            return False
        w = grp.mul(grp.power_of_g(ct.f), grp.inv(grp.exp(ct.u, ct.e)))
        w_bar = grp.mul(grp.exp(self.g_bar, ct.f), grp.inv(grp.exp(ct.u_bar, ct.e)))
        expected = hash_to_exponent(
            grp, "tdh2-e", ct.payload, ct.label, ct.u, w, ct.u_bar, w_bar
        )
        return expected == ct.e

    def _share_items(
        self, ct: Ciphertext, share: DecryptionShare
    ) -> list[tuple[int, int, int, int, DleqProof, object]] | None:
        """DLEQ batch items for one structurally well-formed share."""
        expected_slots = set(self.scheme.slots_of_party(share.party))
        if set(share.values) != expected_slots or set(share.proofs) != expected_slots:
            return None
        return [
            (
                self.group.g,
                self.verification[slot],
                ct.u,
                share.values[slot],
                share.proofs[slot],
                ("tdh2-share", ct.payload, ct.label, slot),
            )
            for slot in sorted(expected_slots)
        ]

    def verify_share(self, ct: Ciphertext, share: DecryptionShare) -> bool:
        items = self._share_items(ct, share)
        if items is None:
            return False
        return all(
            verify_dleq(self.group, g, h1, u, h2, proof, context=ctx)
            for g, h1, u, h2, proof, ctx in items
        )

    def verify_shares(
        self, ct: Ciphertext, shares: Iterable[DecryptionShare]
    ) -> dict[int, DecryptionShare]:
        """Batch-verify decryption shares; returns the valid ones by party.

        The whole set's DLEQ proofs collapse into one simultaneous
        multi-exponentiation; on batch failure each share is re-checked
        individually to pinpoint culprits (verdict identical to
        per-share :meth:`verify_share`, up to soundness error 2^-64 —
        docs/PERFORMANCE.md).  Duplicate parties are rejected.
        """
        candidates: dict[int, tuple[DecryptionShare, list]] = {}
        for share in shares:
            if share.party in candidates:
                continue
            items = self._share_items(ct, share)
            if items is None:
                continue
            candidates[share.party] = (share, items)
        batch = [item for _, items in candidates.values() for item in items]
        if verify_dleq_batch(self.group, batch):
            return {party: share for party, (share, _) in candidates.items()}
        return {
            party: share
            for party, (share, items) in candidates.items()
            if all(
                verify_dleq(self.group, g, h1, u, h2, proof, context=ctx)
                for g, h1, u, h2, proof, ctx in items
            )
        }

    # -- combination -------------------------------------------------------

    def combine(self, ct: Ciphertext, shares: dict[int, DecryptionShare]) -> bytes:
        """Recover the plaintext from a qualified set of valid shares."""
        if not self.check_ciphertext(ct):
            raise ValueError("invalid ciphertext")
        lam = self.scheme.recombination(set(shares))
        if lam is None:
            raise ValueError(f"parties {sorted(shares)} are not qualified to decrypt")
        h_r = self.group.multiexp(
            (shares[self.scheme.slot_owner(slot)].values[slot], coeff)
            for slot, coeff in lam.items()
        )
        mask = mgf1(str(h_r).encode("ascii"), len(ct.payload), "tdh2-dem")
        return xor_bytes(ct.payload, mask)


@dataclass(frozen=True)
class DecryptionShareholder:
    """A party's secret decryption key: its LSSS subshares of ``x``."""

    party: int
    public: EncryptionPublic
    subshares: dict[SlotId, int]

    def decryption_share(
        self, ct: Ciphertext, rng: random.Random
    ) -> DecryptionShare | None:
        """Produce a decryption share, or ``None`` for invalid ciphertexts.

        Refusing invalid ciphertexts is the CCA2-critical step: a share
        is only ever computed for ciphertexts whose proof shows the
        requester already knows the plaintext randomness.
        """
        if not self.public.check_ciphertext(ct):
            return None
        grp = self.public.group
        values: dict[SlotId, int] = {}
        proofs: dict[SlotId, DleqProof] = {}
        for slot, x_slot in self.subshares.items():
            values[slot] = grp.exp(ct.u, x_slot)
            proofs[slot] = prove_dleq(
                grp,
                grp.g,
                ct.u,
                x_slot,
                rng,
                context=("tdh2-share", ct.payload, ct.label, slot),
            )
        return DecryptionShare(party=self.party, values=values, proofs=proofs)


def deal_encryption(
    group: SchnorrGroup,
    scheme: LsssScheme,
    rng: random.Random,
) -> tuple[EncryptionPublic, dict[int, DecryptionShareholder]]:
    """Trusted-dealer setup of the threshold cryptosystem."""
    if scheme.modulus != group.q:
        raise ValueError("LSSS must be over Z_q of the group")
    x = group.random_exponent(rng)
    sharing = scheme.deal(x, rng)
    verification = {
        slot: group.power_of_g(value) for slot, value in sharing.all_slots().items()
    }
    public = EncryptionPublic(
        group=group,
        scheme=scheme,
        h=group.power_of_g(x),
        g_bar=hash_to_group(group, "tdh2-gbar", "second generator"),
        verification=verification,
    )
    holders = {
        party: DecryptionShareholder(
            party=party, public=public, subshares=dict(subshares)
        )
        for party, subshares in sharing.shares.items()
    }
    return public, holders
