"""Schnorr groups: prime-order subgroups of Z_p^* for discrete-log crypto.

All discrete-log based schemes in the architecture (the threshold coin of
Cachin-Kursawe-Shoup, the TDH2 threshold cryptosystem of Shoup-Gennaro,
Chaum-Pedersen DLEQ proofs and plain Schnorr signatures) operate in a
group of prime order ``q`` inside ``Z_p^*`` with ``p = 2q + 1`` a safe
prime.  Group elements are plain ints; the group object carries the
parameters and the operations.

A couple of fixed groups are precomputed so tests and the simulator do
not pay safe-prime generation on every run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .accel import accel_for
from .numtheory import is_probable_prime, jacobi, random_safe_prime

__all__ = ["SchnorrGroup", "generate_group", "default_group", "small_group"]


@dataclass(frozen=True)
class SchnorrGroup:
    """A cyclic group of prime order ``q``: the squares modulo ``p = 2q+1``.

    Attributes:
        p: safe-prime modulus.
        q: group order, the Sophie Germain prime with ``p = 2q + 1``.
        g: a generator of the order-``q`` subgroup.
    """

    p: int
    q: int
    g: int

    def __post_init__(self) -> None:
        if self.p != 2 * self.q + 1:
            raise ValueError("p must equal 2q + 1")
        if pow(self.g, self.q, self.p) != 1 or self.g in (0, 1):
            raise ValueError("g does not generate the order-q subgroup")

    # -- group operations ------------------------------------------------

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def exp(self, base: int, e: int) -> int:
        return accel_for(self).exp(base, e % self.q)

    def inv(self, a: int) -> int:
        return pow(a, -1, self.p)

    def power_of_g(self, e: int) -> int:
        return accel_for(self).exp(self.g, e % self.q)

    def is_member(self, a: int) -> bool:
        """True iff ``a`` lies in the order-q subgroup (i.e. is a QR mod p).

        Quadratic residuosity mod the safe prime is decided with the
        Jacobi symbol — gcd-speed instead of a full exponentiation.
        """
        return 0 < a < self.p and jacobi(a, self.p) == 1

    def multiexp(self, pairs) -> int:
        """``Π base^exp`` in one interleaved pass (see crypto.accel)."""
        grp_accel = accel_for(self)
        return grp_accel.multiexp([(b, e % self.q) for b, e in pairs])

    # -- sampling --------------------------------------------------------

    def random_exponent(self, rng: random.Random) -> int:
        return rng.randrange(1, self.q)

    def random_element(self, rng: random.Random) -> int:
        return self.power_of_g(self.random_exponent(rng))

    def element_from_bytes(self, data: int) -> int:
        """Map an integer deterministically into the subgroup by squaring.

        Squaring mod a safe prime lands in the quadratic residues, which is
        exactly the order-q subgroup; this is the standard hash-to-group
        trick used to instantiate the random oracles of [8] and [36].
        """
        candidate = data % self.p
        if candidate in (0, 1, self.p - 1):
            candidate += 2
        return pow(candidate, 2, self.p)


def generate_group(bits: int, rng: random.Random) -> SchnorrGroup:
    """Generate a fresh Schnorr group with a ``bits``-bit safe prime."""
    sp = random_safe_prime(bits, rng)
    # Any square other than 1 generates the order-q subgroup.
    while True:
        h = rng.randrange(2, sp.p - 1)
        g = pow(h, 2, sp.p)
        if g != 1:
            return SchnorrGroup(p=sp.p, q=sp.q, g=g)


# Precomputed 256-bit safe-prime group: fast enough for pure-Python
# simulation while remaining a real discrete-log group (generated once
# with generate_group(256, random.Random(2001)) and inlined).
_P_256 = 92100994902829264263416118156988489682240185770887138762239302878959306994279
_Q_256 = 46050497451414632131708059078494244841120092885443569381119651439479653497139
_G_256 = 27762273022819045817900016964770171343555271410647478901621101112889733709133

# A tiny 64-bit group for property-based tests where speed matters more
# than cryptographic strength (still a genuine Schnorr group).
_P_64 = 15262613807217302063
_Q_64 = 7631306903608651031
_G_64 = 298996237192573204


def default_group() -> SchnorrGroup:
    """The standard 256-bit group used by the dealer unless overridden."""
    return SchnorrGroup(p=_P_256, q=_Q_256, g=_G_256)


def small_group() -> SchnorrGroup:
    """A 64-bit group for fast tests; NOT cryptographically strong."""
    return SchnorrGroup(p=_P_64, q=_Q_64, g=_G_64)


def _selfcheck() -> None:  # pragma: no cover - development aid
    for grp in (default_group(), small_group()):
        assert is_probable_prime(grp.p)
        assert is_probable_prime(grp.q)
        assert grp.is_member(grp.g)
