"""The trusted dealer (Section 2).

The model assumes a dealer that generates and distributes all secret
values once, when the system is initialized; afterwards the system
processes an unlimited number of requests.  This module is that dealer:
given the party count and either a threshold ``t`` or a generalized
adversary structure with a compatible access formula, it produces

* the quorum system the protocols consult (Section 4.2 rules),
* per-party Schnorr keys for authenticated channels and certificates,
* the threshold coin of the Byzantine agreement protocol [8],
* the TDH2 threshold cryptosystem for secure causal broadcast [36],
* a threshold signature facility: Shoup RSA [35] (threshold case) or
  quorum certificates (any Q^3 structure) — see DESIGN.md.

The output is split into a :class:`PublicKeys` bundle known to
everyone (including clients) and one :class:`PartyKeys` bundle per
server, mirroring the paper's "clients need only know the single public
keys of the service" property.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..adversary.formulas import Formula, majority
from ..adversary.hybrid import HybridQuorumSystem
from ..adversary.quorums import (
    GeneralQuorumSystem,
    QuorumSystem,
    ThresholdQuorumSystem,
    access_formula_compatible,
    quorum_system_for,
)
from ..adversary.structures import AdversaryStructure
from .coin import CoinPublic, CoinShareholder, deal_coin
from .groups import SchnorrGroup, default_group
from .lsss import LsssScheme
from .schnorr import SigningKey, VerifyKey, keygen
from .threshold_enc import DecryptionShareholder, EncryptionPublic, deal_encryption
from .threshold_sig import (
    QuorumCertScheme,
    QuorumCertShareholder,
    ShoupRsaScheme,
    ShoupRsaShareholder,
    deal_quorum_certs,
    deal_shoup_rsa,
)

__all__ = [
    "CLIENT_BASE",
    "PublicKeys",
    "PartyKeys",
    "SystemKeys",
    "deal_channel_keys",
    "deal_system",
]

# Client party ids start here by convention (servers are 0..n-1); the
# dealer provisions channel keys for client ids at deal time so a real
# transport can authenticate client connections too.
CLIENT_BASE = 1000


@dataclass(frozen=True)
class PublicKeys:
    """Everything that is public: clients and servers all hold this."""

    n: int
    group: SchnorrGroup
    quorum: QuorumSystem
    access_scheme: LsssScheme
    coin: CoinPublic
    encryption: EncryptionPublic
    verify_keys: dict[int, VerifyKey]
    cert_quorum: QuorumCertScheme  # qualified = generalized n-t quorum
    cert_honest: QuorumCertScheme  # qualified = generalized t+1 (contains honest)
    cert_strong: QuorumCertScheme  # qualified = generalized 2t+1 (strong quorum)
    service_signature: ShoupRsaScheme | QuorumCertScheme

    def threshold(self) -> int | None:
        """The classical ``t`` if this is a threshold system, else None."""
        if isinstance(self.quorum, ThresholdQuorumSystem):
            return self.quorum.t
        return None


@dataclass(frozen=True)
class PartyKeys:
    """One server's secret key material."""

    party: int
    signing_key: SigningKey
    coin: CoinShareholder
    decryption: DecryptionShareholder
    cert_quorum: QuorumCertShareholder
    cert_honest: QuorumCertShareholder
    cert_strong: QuorumCertShareholder
    service_signer: ShoupRsaShareholder | QuorumCertShareholder
    # Pairwise symmetric channel keys (peer id -> 32-byte key), the
    # deployment-time mechanism behind the model's authenticated links:
    # a TCP transport HMACs every frame under the key it shares with the
    # peer.  The simulator never reads these.
    channel_keys: dict[int, bytes] = field(default_factory=dict)


@dataclass(frozen=True)
class SystemKeys:
    """The dealer's full output."""

    public: PublicKeys
    private: dict[int, PartyKeys]
    # Channel-key bundles for dealt clients (client id -> peer id -> key);
    # each bundle goes to its client over a secure channel, like the
    # server bundles.
    client_channels: dict[int, dict[int, bytes]] = field(default_factory=dict)


def deal_channel_keys(
    parties: list[int], rng: random.Random
) -> dict[int, dict[int, bytes]]:
    """One fresh 32-byte symmetric key per unordered pair of parties.

    Returns, for every party, the map ``peer id -> shared key``; the
    two endpoints of a pair hold the identical key and nobody else
    holds it, so an HMAC under it authenticates the channel in both
    directions (frames carry direction explicitly to stop reflection).
    """
    keyring: dict[int, dict[int, bytes]] = {party: {} for party in parties}
    for index, a in enumerate(parties):
        for b in parties[index + 1 :]:
            key = rng.randbytes(32)
            keyring[a][b] = key
            keyring[b][a] = key
    return keyring


def deal_system(
    n: int,
    rng: random.Random,
    t: int | None = None,
    structure: AdversaryStructure | None = None,
    hybrid: tuple[int, int] | None = None,
    access_formula: Formula | None = None,
    group: SchnorrGroup | None = None,
    signature_backend: str = "certs",
    rsa_bits: int = 512,
    require_q3: bool = True,
    clients: int = 0,
) -> SystemKeys:
    """Run the trusted dealer.

    Args:
        n: number of servers.
        rng: dealer randomness (seed it for reproducible systems).
        t: classical corruption threshold (exclusive with ``structure``).
        structure: generalized adversary structure (Section 4).
        hybrid: ``(b, c)`` — hybrid failure budgets (Section 6): up to
            ``b`` Byzantine corruptions plus ``c`` crashes, ``n > 3b+2c``.
            The sharing threshold defaults to ``b + 1`` because crashed
            servers do not leak their shares.
        access_formula: linear secret sharing recipe; defaults to the
            ``t+1``-majority formula in the threshold case and is
            mandatory (and checked for compatibility) otherwise.
        group: discrete-log group; defaults to the 256-bit group.
        signature_backend: ``"rsa"`` for Shoup threshold signatures
            (threshold systems only) or ``"certs"`` for quorum
            certificates (any structure; also much faster to set up).
        rsa_bits: RSA modulus size when ``signature_backend == "rsa"``.
        require_q3: refuse structures violating the Q^3 condition.
        clients: how many client identities (ids ``CLIENT_BASE`` and up)
            to provision with pairwise channel keys for a deployed
            (socket) transport.
    """
    grp = group or default_group()
    if hybrid is not None:
        if t is not None or structure is not None:
            raise ValueError("hybrid is exclusive with t and structure")
        b, c = hybrid
        quorum: QuorumSystem = HybridQuorumSystem(n=n, b=b, c=c)
    else:
        quorum = quorum_system_for(n, t=t, structure=structure)
    if require_q3 and not quorum.satisfies_q3:
        raise ValueError(f"{quorum.describe()} violates the Q^3 condition")

    if access_formula is None:
        if hybrid is not None:
            access_formula = majority(list(range(n)), hybrid[0] + 1)
        elif t is not None:
            access_formula = majority(list(range(n)), t + 1)
        else:
            raise ValueError("generalized structures need an explicit access formula")
    if structure is not None and not access_formula_compatible(structure, access_formula):
        raise ValueError("access formula incompatible with the adversary structure")
    if hybrid is not None:
        b, c = hybrid
        # Secrecy: no b-sized coalition qualified; liveness: any quorum
        # of n-b-c live servers must reconstruct.
        if b and access_formula.evaluate(frozenset(range(b))):
            raise ValueError("hybrid access formula leaks to Byzantine coalition")
        if not access_formula.evaluate(frozenset(range(n - b - c))):
            raise ValueError("hybrid access formula not reconstructible by a quorum")
    if t is not None and structure is None:
        # Sanity: the formula must at least qualify every n-t set and
        # disqualify every t-set (the threshold compatibility check).
        if not access_formula_compatible(
            quorum_system_for(n, t=t).to_structure(), access_formula  # type: ignore[union-attr]
        ):
            raise ValueError("access formula incompatible with threshold t")

    scheme = LsssScheme(formula=access_formula, modulus=grp.q)

    signing_keys = {i: keygen(rng, grp) for i in range(n)}
    verify_keys = {i: key.verify_key for i, key in signing_keys.items()}

    coin_public, coin_holders = deal_coin(grp, scheme, rng)
    enc_public, enc_holders = deal_encryption(grp, scheme, rng)

    cert_quorum_pub, cert_quorum_holders = deal_quorum_certs(
        signing_keys, qualifier=quorum.is_quorum, tag="cert-quorum"
    )
    cert_honest_pub, cert_honest_holders = deal_quorum_certs(
        signing_keys, qualifier=quorum.contains_honest, tag="cert-honest"
    )
    cert_strong_pub, cert_strong_holders = deal_quorum_certs(
        signing_keys, qualifier=quorum.is_strong_quorum, tag="cert-strong"
    )

    service_public: ShoupRsaScheme | QuorumCertScheme
    service_holders: dict[int, ShoupRsaShareholder | QuorumCertShareholder]
    if signature_backend == "rsa":
        if t is None:
            raise ValueError("the RSA backend requires a threshold system")
        rsa_public, rsa_holders = deal_shoup_rsa(n, t + 1, rng, bits=rsa_bits)
        service_public = rsa_public
        # Dealer indexes RSA shareholders 1..n; re-key to 0-based parties.
        service_holders = {i: rsa_holders[i + 1] for i in range(n)}
    elif signature_backend == "certs":
        service_pub, holders = deal_quorum_certs(
            signing_keys, qualifier=quorum.contains_honest, tag="service-signature"
        )
        service_public = service_pub
        service_holders = dict(holders)
    else:
        raise ValueError(f"unknown signature backend {signature_backend!r}")

    public = PublicKeys(
        n=n,
        group=grp,
        quorum=quorum,
        access_scheme=scheme,
        coin=coin_public,
        encryption=enc_public,
        verify_keys=verify_keys,
        cert_quorum=cert_quorum_pub,
        cert_honest=cert_honest_pub,
        cert_strong=cert_strong_pub,
        service_signature=service_public,
    )
    # A party the access formula never mentions still participates in the
    # protocols; it simply holds no subshares.
    for i in range(n):
        coin_holders.setdefault(
            i, CoinShareholder(party=i, public=coin_public, subshares={})
        )
        enc_holders.setdefault(
            i, DecryptionShareholder(party=i, public=enc_public, subshares={})
        )

    client_ids = [CLIENT_BASE + c for c in range(clients)]
    channel_keyring = deal_channel_keys(list(range(n)) + client_ids, rng)

    private = {
        i: PartyKeys(
            party=i,
            signing_key=signing_keys[i],
            coin=coin_holders[i],
            decryption=enc_holders[i],
            cert_quorum=cert_quorum_holders[i],
            cert_honest=cert_honest_holders[i],
            cert_strong=cert_strong_holders[i],
            service_signer=service_holders[i],
            channel_keys=channel_keyring[i],
        )
        for i in range(n)
    }
    return SystemKeys(
        public=public,
        private=private,
        client_channels={c: channel_keyring[c] for c in client_ids},
    )
