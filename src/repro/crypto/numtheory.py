"""Number-theoretic primitives used by all cryptographic schemes.

Everything here is deterministic given an explicit ``random.Random``
instance, which keeps protocol runs reproducible in the simulator.  The
routines are standard: Miller-Rabin primality testing, (safe) prime
generation, extended gcd / modular inverses, and CRT recombination.

The 2001-era paper used 768-1024 bit parameters; key sizes here are
explicit arguments so tests can run with short (but real) keys while the
benchmarks can scale them up.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = [
    "is_probable_prime",
    "random_prime",
    "random_safe_prime",
    "egcd",
    "modinv",
    "jacobi",
    "crt",
    "SafePrime",
]

# Small primes used for fast trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277,
    281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
]


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    With ``rounds=40`` the error probability is below 2^-80, far below the
    failure probabilities already accepted by the randomized protocols.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random(n ^ 0x9E3779B97F4A7C15)
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng: random.Random) -> int:
    """Return a random prime of exactly ``bits`` bits."""
    if bits < 2:
        raise ValueError("primes need at least 2 bits")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate


@dataclass(frozen=True)
class SafePrime:
    """A safe prime ``p = 2q + 1`` with its Sophie Germain prime ``q``."""

    p: int
    q: int


def random_safe_prime(bits: int, rng: random.Random) -> SafePrime:
    """Return a random safe prime ``p = 2q + 1`` with ``p`` of ``bits`` bits.

    Uses an incremental sieve over candidates for speed: sample q, then
    check both q and 2q+1 with cheap trial division before Miller-Rabin.
    """
    if bits < 4:
        raise ValueError("safe primes need at least 4 bits")
    while True:
        q = rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1
        p = 2 * q + 1
        # Cheap joint trial division: a small prime dividing either
        # candidate disqualifies the pair without a Miller-Rabin run.
        ok = True
        for sp in _SMALL_PRIMES:
            if q % sp == 0 and q != sp:
                ok = False
                break
            if p % sp == 0 and p != sp:
                ok = False
                break
        if not ok:
            continue
        if is_probable_prime(q) and is_probable_prime(p):
            return SafePrime(p=p, q=q)


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quot = old_r // r
        old_r, r = r, old_r - quot * r
        old_s, s = s, old_s - quot * s
        old_t, t = t, old_t - quot * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` modulo ``m``; raises if not invertible."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {m}")
    return x % m


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol ``(a/n)`` for odd ``n > 0`` (law of quadratic reciprocity).

    For an odd prime ``p`` this is the Legendre symbol, so membership in
    the order-``(p-1)/2`` subgroup of squares can be decided with a
    gcd-speed computation instead of a full modular exponentiation —
    the single cheapest win on the proof-verification hot path.
    """
    if n <= 0 or n % 2 == 0:
        raise ValueError("jacobi symbol requires odd n > 0")
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def crt(residues: list[int], moduli: list[int]) -> int:
    """Chinese remainder recombination for pairwise-coprime moduli."""
    if len(residues) != len(moduli):
        raise ValueError("residues and moduli must have equal length")
    total = 0
    product = 1
    for m in moduli:
        product *= m
    for r, m in zip(residues, moduli):
        partial = product // m
        total += r * partial * modinv(partial, m)
    return total % product
