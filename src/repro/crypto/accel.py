"""Crypto hot-path acceleration: multi-exp, fixed-base tables, memoized checks.

Modular exponentiation dominates the wall-clock of the whole stack —
every ABBA round verifies a quorum of DLEQ-proved coin shares, every
broadcast verifies signature shares (the SecureSMART cost profile).
This module concentrates the arithmetic tricks that cut that cost:

* **Simultaneous multi-exponentiation** (Straus/Shamir interleaved
  windows): ``Π bᵢ^eᵢ`` in one shared-squaring pass, so a product of
  ``k`` exponentiations costs one squaring chain plus a few
  multiplications per base instead of ``k`` full ``pow`` calls.
* **Fixed-base windowed tables**: bases that recur (the group
  generator, verification keys, a round's coin base) get a radix-``2^w``
  digit table; subsequent exponentiations are ~5x cheaper than ``pow``.
  Tables are built automatically once a base has been seen often enough
  to amortize the build.
* **Memoized subgroup membership** via the Jacobi symbol (for a safe
  prime the order-``q`` subgroup is exactly the quadratic residues),
  with a bounded cache so fixed bases are checked once, ever.
* **Batched equation checking** by small-exponent random linear
  combination: ``k`` equations ``Π lhsᵢ == Π rhsᵢ`` collapse into one
  multi-exp identity, with soundness error ``2^-λ`` (λ = 64 by
  default).  Coefficients are derived by Fiat-Shamir hashing of the
  full transcript, keeping verification deterministic and replayable —
  a requirement of the simulator (lint rule RL003) that also yields the
  standard random-oracle soundness argument: the prover must commit to
  the batch before the coefficients are known.

See docs/PERFORMANCE.md for the measured effect (``BENCH_crypto.json``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .numtheory import jacobi

__all__ = [
    "FixedBaseTable",
    "GroupAccel",
    "accel_for",
    "multiexp",
    "batch_coefficients",
    "verify_product_equations",
]

# Build a fixed-base table once a base was exponentiated this often.
_TABLE_THRESHOLD = 16
# Bound every internal cache so adversarial traffic cannot balloon memory.
_MAX_TABLES = 96
_MAX_TRACKED = 8192
_MAX_MEMBERS = 8192

# Window width for the interleaved (Straus) multi-exponentiation.
_STRAUS_WIDTH = 4
_STRAUS_MASK = (1 << _STRAUS_WIDTH) - 1


class FixedBaseTable:
    """Radix-``2^w`` digit table for repeated powers of one base.

    ``windows[i][j-1] = base^(j << (i*w)) mod p`` — an exponentiation is
    then a product of one table entry per nonzero digit: no squarings.
    """

    __slots__ = ("modulus", "width", "mask", "windows", "capacity")

    def __init__(self, base: int, modulus: int, bits: int, width: int = 6) -> None:
        self.modulus = modulus
        self.width = width
        self.mask = (1 << width) - 1
        self.capacity = bits
        windows: list[list[int]] = []
        cur = base % modulus
        for _ in range((bits + width - 1) // width):
            row = [cur]
            entry = cur
            for _ in range(2, 1 << width):
                entry = entry * cur % modulus
                row.append(entry)
            windows.append(row)
            cur = entry * cur % modulus  # base^(2^w << shift)
        self.windows = windows

    def pow(self, exponent: int) -> int:
        if exponent.bit_length() > self.capacity:  # caller failed to reduce
            return pow(self.windows[0][0], exponent, self.modulus)
        acc = 1
        idx = 0
        mod = self.modulus
        mask = self.mask
        width = self.width
        windows = self.windows
        while exponent:
            digit = exponent & mask
            if digit:
                entry = windows[idx][digit - 1]
                acc = entry if acc == 1 else acc * entry % mod
            exponent >>= width
            idx += 1
        return acc % mod


def multiexp(modulus: int, pairs: Iterable[tuple[int, int]]) -> int:
    """``Π base^exp mod modulus`` in one interleaved-window pass.

    Exponents must be nonnegative; callers working in a known-order
    group should reduce them first (smaller exponents mean fewer shared
    squarings — the small-exponent batching trick relies on this).
    """
    live = [(b % modulus, e) for b, e in pairs if e > 0]
    if not live:
        return 1 % modulus
    return _straus(modulus, live)


def _straus(modulus: int, pairs: Sequence[tuple[int, int]]) -> int:
    tables: list[tuple[list[int], int]] = []
    max_bits = 0
    for base, exponent in pairs:
        row = [base]
        entry = base
        for _ in range(2, 1 << _STRAUS_WIDTH):
            entry = entry * base % modulus
            row.append(entry)
        tables.append((row, exponent))
        bits = exponent.bit_length()
        if bits > max_bits:
            max_bits = bits
    acc = 1
    for shift in range(
        (max_bits + _STRAUS_WIDTH - 1) // _STRAUS_WIDTH * _STRAUS_WIDTH - _STRAUS_WIDTH,
        -1,
        -_STRAUS_WIDTH,
    ):
        if acc != 1:
            for _ in range(_STRAUS_WIDTH):
                acc = acc * acc % modulus
        for row, exponent in tables:
            digit = (exponent >> shift) & _STRAUS_MASK
            if digit:
                entry = row[digit - 1]
                acc = entry if acc == 1 else acc * entry % modulus
    return acc


class GroupAccel:
    """Per-group accelerator: tables, membership memo, multi-exp.

    One instance exists per distinct ``(p, q, g)`` (see :func:`accel_for`);
    all schemes over the same group share its caches, so verification
    keys tabled by the coin also speed up e.g. TDH2 share checks.
    """

    __slots__ = ("p", "q", "g", "_tables", "_counts", "_members")

    def __init__(self, p: int, q: int, g: int) -> None:
        self.p = p
        self.q = q
        self.g = g
        self._tables: dict[int, FixedBaseTable] = {}
        self._counts: dict[int, int] = {}
        self._members: dict[int, bool] = {}
        # The generator is exponentiated constantly; table it up front.
        self._tables[g] = FixedBaseTable(g, p, q.bit_length())

    # -- exponentiation --------------------------------------------------

    def exp(self, base: int, exponent: int) -> int:
        """``base^exponent mod p``; auto-tables bases that recur."""
        table = self._tables.get(base)
        if table is not None:
            return table.pow(exponent)
        count = self._counts.get(base, 0) + 1
        if count >= _TABLE_THRESHOLD and len(self._tables) < _MAX_TABLES:
            table = FixedBaseTable(base, self.p, self.q.bit_length())
            self._tables[base] = table
            self._counts.pop(base, None)
            return table.pow(exponent)
        if len(self._counts) >= _MAX_TRACKED:
            self._counts.clear()
        self._counts[base] = count
        return pow(base, exponent, self.p)

    def multiexp(self, pairs: Iterable[tuple[int, int]]) -> int:
        """Multi-exp that routes tabled bases through their tables."""
        acc = 1
        plain: list[tuple[int, int]] = []
        for base, exponent in pairs:
            if exponent <= 0:
                continue
            table = self._tables.get(base)
            if table is not None:
                acc = acc * table.pow(exponent) % self.p
            else:
                plain.append((base % self.p, exponent))
        if plain:
            acc = acc * _straus(self.p, plain) % self.p
        return acc

    # -- membership ------------------------------------------------------

    def is_member(self, a: int) -> bool:
        """Memoized subgroup membership (Jacobi symbol, see numtheory)."""
        if not 0 < a < self.p:
            return False
        cached = self._members.get(a)
        if cached is None:
            cached = jacobi(a, self.p) == 1
            if len(self._members) >= _MAX_MEMBERS:
                self._members.clear()
            self._members[a] = cached
        return cached


_ACCELS: dict[tuple[int, int, int], GroupAccel] = {}


def accel_for(group) -> GroupAccel:  # group: SchnorrGroup (duck-typed, no cycle)
    """The shared accelerator for a Schnorr group (keyed by parameters)."""
    key = (group.p, group.q, group.g)
    accel = _ACCELS.get(key)
    if accel is None:
        if len(_ACCELS) > 64:  # long test runs generate many tiny groups
            _ACCELS.clear()
        accel = GroupAccel(*key)
        _ACCELS[key] = accel
    return accel


# -- batched equation checking ----------------------------------------------


def batch_coefficients(domain: str, transcript: object, count: int, bits: int = 64) -> list[int]:
    """Deterministic small batching exponents bound to the transcript.

    Fiat-Shamir in the random-oracle model: the prover fixes every
    element of the batch before the coefficients exist, so a batch
    containing one bad equation survives with probability ``~2^-bits``.
    """
    from .hashing import hash_bytes, hash_to_int  # local: hashing imports groups

    seed = hash_bytes(domain + "-seed", transcript)
    return [
        hash_to_int(domain + "-coeff", seed, i, bits=bits) or 1 for i in range(count)
    ]


def verify_product_equations(
    modulus: int,
    equations: Sequence[tuple[Sequence[tuple[int, int]], Sequence[tuple[int, int]]]],
    coefficients: Sequence[int],
    order: int | None = None,
    square: bool = False,
) -> bool:
    """Check ``Π lhsᵢ == Π rhsᵢ`` for every equation via one multi-exp.

    Each equation is ``(lhs_pairs, rhs_pairs)`` of ``(base, exponent)``
    terms.  Equation ``i`` is raised to ``coefficients[i]`` and all
    equations are multiplied together; exponents of repeated bases are
    accumulated (mod ``order`` when the group order is known, over the
    integers otherwise — e.g. mod an RSA modulus of hidden order).

    ``square=True`` compares the squares of both sides, quotienting out
    the order-2 subgroup ``{±1}`` — required mod an RSA modulus where
    membership in the squares cannot be tested directly.
    """
    lhs_acc: dict[int, int] = {}
    rhs_acc: dict[int, int] = {}
    for (lhs, rhs), coeff in zip(equations, coefficients):
        for acc, side in ((lhs_acc, lhs), (rhs_acc, rhs)):
            for base, exponent in side:
                weighted = exponent * coeff
                if order is not None:
                    weighted %= order
                acc[base] = acc.get(base, 0) + weighted
    if order is not None:
        lhs_pairs = [(b, e % order) for b, e in lhs_acc.items()]
        rhs_pairs = [(b, e % order) for b, e in rhs_acc.items()]
    else:
        lhs_pairs = list(lhs_acc.items())
        rhs_pairs = list(rhs_acc.items())
    left = multiexp(modulus, lhs_pairs)
    right = multiexp(modulus, rhs_pairs)
    if square:
        return left * left % modulus == right * right % modulus
    return left == right
