"""Random-oracle instantiations (Bellare-Rogaway [2]) used across the stack.

The CKS agreement protocol, the TDH2 cryptosystem and Shoup's threshold
signatures are proved secure in the random oracle model; following common
practice each distinct oracle is instantiated as SHA-256 with a unique
domain-separation tag.  Helpers map hashes to integers, to exponents mod
q and to group elements.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Iterable

from .groups import SchnorrGroup

__all__ = [
    "hash_bytes",
    "hash_to_int",
    "hash_to_exponent",
    "hash_to_group",
    "encode",
    "xor_bytes",
    "mgf1",
]


def encode(*parts: object) -> bytes:
    """Deterministic, unambiguous encoding of heterogeneous values.

    Each part is rendered with an explicit type tag and length prefix so
    that no two distinct tuples collide (the usual concatenation pitfall).
    """
    out = bytearray()
    for part in parts:
        if isinstance(part, bytes):
            tag, body = b"B", part
        elif isinstance(part, str):
            tag, body = b"S", part.encode("utf-8")
        elif isinstance(part, bool):
            tag, body = b"T", (b"\x01" if part else b"\x00")
        elif isinstance(part, int):
            tag, body = b"I", str(part).encode("ascii")
        elif isinstance(part, (tuple, list)):
            tag, body = b"L", encode(*part)
        elif isinstance(part, (frozenset, set)):
            tag, body = b"F", encode(*sorted(part, key=repr))
        elif isinstance(part, dict):
            items = sorted(part.items(), key=lambda kv: repr(kv[0]))
            tag, body = b"D", encode(*[item for pair in items for item in pair])
        elif dataclasses.is_dataclass(part) and not isinstance(part, type):
            fields = [getattr(part, f.name) for f in dataclasses.fields(part)]
            tag, body = b"C", encode(type(part).__name__, fields)
        elif part is None:
            tag, body = b"N", b""
        else:
            raise TypeError(f"cannot encode {type(part).__name__}")
        out += tag + len(body).to_bytes(8, "big") + body
    return bytes(out)


def hash_bytes(domain: str, *parts: object) -> bytes:
    """SHA-256 under a domain-separation tag."""
    h = hashlib.sha256()
    h.update(domain.encode("utf-8") + b"\x00")
    h.update(encode(*parts))
    return h.digest()


def hash_to_int(domain: str, *parts: object, bits: int = 256) -> int:
    """Hash to an integer of up to ``bits`` bits via counter-mode SHA-256."""
    needed = (bits + 7) // 8
    out = bytearray()
    counter = 0
    while len(out) < needed:
        out += hash_bytes(domain, counter, *parts)
        counter += 1
    return int.from_bytes(bytes(out[:needed]), "big") >> (8 * needed - bits)


def hash_to_exponent(group: SchnorrGroup, domain: str, *parts: object) -> int:
    """Hash into Z_q (never zero, so results are usable as challenges)."""
    value = hash_to_int(domain, *parts, bits=group.q.bit_length() + 64)
    return value % (group.q - 1) + 1


# hash_to_group is a deterministic oracle and its hottest inputs recur
# heavily (every share of a named coin re-derives H(C)); memoize hashable
# inputs with a bounded cache.
_TO_GROUP_CACHE: dict = {}
_TO_GROUP_CACHE_MAX = 4096


def hash_to_group(group: SchnorrGroup, domain: str, *parts: object) -> int:
    """Hash into the order-q subgroup (used e.g. to name coins in [8])."""
    try:
        key = (group.p, group.g, domain, parts)
        cached = _TO_GROUP_CACHE.get(key)
    except TypeError:  # unhashable parts: compute without memoizing
        key = None
        cached = None
    if cached is not None:
        return cached
    value = hash_to_int(domain, *parts, bits=group.p.bit_length() + 64)
    element = group.element_from_bytes(value)
    if key is not None:
        if len(_TO_GROUP_CACHE) >= _TO_GROUP_CACHE_MAX:
            _TO_GROUP_CACHE.clear()
        _TO_GROUP_CACHE[key] = element
    return element


def xor_bytes(a: bytes, b: bytes) -> bytes:
    if len(a) != len(b):
        raise ValueError("xor_bytes requires equal lengths")
    return bytes(x ^ y for x, y in zip(a, b))


def mgf1(seed: bytes, length: int, domain: str = "mgf1") -> bytes:
    """Mask generation function (counter-mode hash), for hybrid encryption."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hash_bytes(domain, seed, counter)
        counter += 1
    return bytes(out[:length])


def hash_transcript(domain: str, items: Iterable[object]) -> bytes:
    """Hash an iterable of encodable items (order-sensitive)."""
    return hash_bytes(domain, list(items))
